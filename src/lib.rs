//! # bishop
//!
//! Facade crate for the **Bishop** reproduction — *"Bishop: Sparsified
//! Bundling Spiking Transformers on Heterogeneous Cores with
//! Error-Constrained Pruning"* (ISCA 2025).
//!
//! The workspace is organised as a stack of crates, re-exported here for
//! convenience:
//!
//! * [`spiketensor`] — bit-packed binary spike tensors and workload
//!   generators;
//! * [`neuron`] — LIF dynamics, surrogate gradients, input encodings;
//! * [`model`] — spiking transformer models (Table 2), functional inference,
//!   workload descriptions, FLOPs profiling;
//! * [`bundle`] — Token-Time Bundles, BSA, the dense/sparse stratifier, and
//!   Error-Constrained TTB Pruning;
//! * [`memsys`] — DRAM/SRAM/energy/area models (28 nm, CACTI-style);
//! * [`core`] — the Bishop heterogeneous accelerator simulator;
//! * [`baseline`] — the PTB accelerator and edge-GPU baselines;
//! * [`engine`] — the pluggable [`InferenceEngine`](bishop_engine::InferenceEngine)
//!   layer: the simulator, native-CPU and baseline execution backends behind
//!   one trait, the engine registry, the model catalog and the memoizing
//!   caches;
//! * [`faults`] — deterministic fault injection for chaos testing: a
//!   seeded [`FaultInjectingEngine`](bishop_faults::FaultInjectingEngine)
//!   wrapper that makes any engine fail, stall or panic on a planned
//!   schedule;
//! * [`train`] — surrogate-gradient training with the BSA loss and ECP-aware
//!   evaluation;
//! * [`runtime`] — the batched multi-core inference serving runtime: bounded
//!   submission queue, Token-Time-Bundle-aligned dynamic batching, a worker
//!   pool executing batches on pluggable engines, online submission with
//!   tickets + admission control, and per-run throughput reports;
//! * [`gateway`] — a zero-dependency HTTP/1.1 + JSON gateway over the online
//!   runtime: `POST /v1/infer`, Prometheus `/metrics`, `/healthz`, load
//!   shedding with explicit 429/503;
//! * [`experiments`] — the harness regenerating every table and figure of the
//!   paper's evaluation.
//!
//! ```
//! use bishop::prelude::*;
//! use rand::SeedableRng;
//!
//! // Build a small calibrated workload and compare Bishop against PTB.
//! let config = ModelConfig::new("demo", DatasetKind::Cifar10, 1, 4, 16, 32, 2);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let workload = ModelWorkload::synthetic(&config, &SyntheticTraceSpec::uniform(0.15), &mut rng);
//! let bishop = BishopSimulator::new(BishopConfig::default())
//!     .simulate(&workload, &SimOptions::baseline());
//! let ptb = PtbSimulator::new(PtbConfig::default()).simulate(&workload);
//! assert!(bishop.speedup_vs(&ptb) > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bishop_baseline as baseline;
pub use bishop_bundle as bundle;
pub use bishop_core as core;
pub use bishop_engine as engine;
pub use bishop_experiments as experiments;
pub use bishop_faults as faults;
pub use bishop_gateway as gateway;
pub use bishop_memsys as memsys;
pub use bishop_model as model;
pub use bishop_neuron as neuron;
pub use bishop_runtime as runtime;
pub use bishop_spiketensor as spiketensor;
pub use bishop_train as train;

/// Commonly used types, re-exported flat for examples and quick scripts.
pub mod prelude {
    pub use bishop_baseline::{EdgeGpuModel, PtbConfig, PtbSimulator};
    pub use bishop_bundle::{
        ecp, BsaEffect, BundleShape, BundleSparsityStats, DatasetCalibration, EcpConfig,
        StratifiedWorkload, Stratifier, TrainingRegime, TtbTags,
    };
    pub use bishop_core::{BishopConfig, BishopSimulator, RunMetrics, SimOptions, StratifyPolicy};
    pub use bishop_engine::{
        BaselineEngine, CatalogEntry, EngineBatch, EngineDescriptor, EngineError, EngineName,
        EngineOutput, EngineRegistry, InferenceEngine, NativeEngine, SimulatorEngine,
    };
    pub use bishop_faults::{FaultInjectingEngine, FaultPlan};
    pub use bishop_gateway::{Gateway, GatewayConfig, Json, ModelCatalog};
    pub use bishop_memsys::{AreaPowerBreakdown, DramModel, EnergyModel, MemoryHierarchy};
    pub use bishop_model::workload::SyntheticTraceSpec;
    pub use bishop_model::{
        DatasetKind, LayerWorkload, ModelConfig, ModelWorkload, SpikingTransformer,
    };
    pub use bishop_neuron::{LifConfig, LifNeuron};
    pub use bishop_runtime::{
        BatchPolicy, BishopServer, BreakerConfig, CalibrationCache, EngineLoadStats,
        InferenceRequest, InferenceResponse, OnlineConfig, OnlineServer, RetryPolicy,
        RuntimeConfig, ServeError, ServerHandle, ServingOutcome, ThroughputReport, Ticket,
    };
    pub use bishop_spiketensor::{DenseMatrix, SpikeTensor, TensorShape};
    pub use bishop_train::{SpikePatternDataset, SpikingClassifier, Trainer, TrainingConfig};
}
