//! Gateway demo: boot the full HTTP serving stack in-process — online
//! runtime (admission control + TTB-aligned batching + worker pool) behind
//! the zero-dependency HTTP/1.1 gateway — then talk to it over a real
//! socket exactly the way `curl` would.
//!
//! Run with `cargo run --release --example gateway_demo`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use bishop::prelude::*;

/// One raw HTTP exchange on a fresh connection; returns the full response.
fn http(addr: std::net::SocketAddr, raw: String) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to gateway");
    stream.write_all(raw.as_bytes()).expect("send request");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read response");
    reply
}

fn post_infer(addr: std::net::SocketAddr, body: &str) -> String {
    http(
        addr,
        format!(
            "POST /v1/infer HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn get(addr: std::net::SocketAddr, path: &str) -> String {
    http(
        addr,
        format!("GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n"),
    )
}

fn main() {
    // 1. The online runtime: 4 simulated Bishop chips, batches close after
    //    8 compatible requests or 2 ms, admission sheds beyond 256 pending.
    let runtime = OnlineServer::start(
        OnlineConfig::new(RuntimeConfig::new(4, BatchPolicy::new(8)))
            .with_batch_timeout(Some(Duration::from_millis(2)))
            .with_max_pending(256),
    );

    // 2. The HTTP gateway on an ephemeral port, serving the default model
    //    catalog (the paper's two serving-scale image models).
    let gateway =
        Gateway::start(GatewayConfig::default(), runtime.handle()).expect("bind gateway listener");
    let addr = gateway.local_addr();
    println!("gateway listening on http://{addr}");
    println!("try it from a shell:");
    println!("  curl -s http://{addr}/v1/models");
    println!(
        "  curl -s -X POST http://{addr}/v1/infer \\\n       -d '{{\"model\": \"cifar10-serve\", \"seed\": 7}}'"
    );
    println!("  curl -s http://{addr}/metrics");

    // 3. The model catalog (with per-entry engine support) and the
    //    registered execution backends.
    println!("\n=== GET /v1/models ===");
    println!("{}", get(addr, "/v1/models"));
    println!("=== GET /v1/engines ===");
    println!("{}", get(addr, "/v1/engines"));

    // 4. A few inference requests — the last two share a batch window.
    println!("=== POST /v1/infer ===");
    for seed in [7, 7, 8] {
        let reply = post_infer(
            addr,
            &format!("{{\"model\": \"cifar10-serve\", \"seed\": {seed}}}"),
        );
        let body = reply.split("\r\n\r\n").nth(1).unwrap_or(&reply);
        println!("seed {seed}: {body}");
    }

    // 4b. The same model on different execution substrates: the native
    //     engine really runs the forward pass on the CPU (measured
    //     wall-clock + a class prediction), the baselines A/B Bishop
    //     against the paper's comparison accelerators.
    println!("\n=== POST /v1/infer with \"engine\" ===");
    for engine in ["native", "ptb", "gpu"] {
        let reply = post_infer(
            addr,
            &format!("{{\"model\": \"cifar10-serve\", \"seed\": 7, \"engine\": \"{engine}\"}}"),
        );
        let body = reply.split("\r\n\r\n").nth(1).unwrap_or(&reply);
        println!("engine {engine}: {body}");
    }

    // 4c. "engine": "auto" — the runtime's dispatcher routes each request
    //     to the cheapest engine whose predicted completion meets its
    //     deadline: loose budgets get real native execution, tight ones
    //     degrade to the analytic simulator, the impossible shed with an
    //     explicit 429.
    println!("\n=== POST /v1/infer with \"engine\": \"auto\" ===");
    let reply = post_infer(
        addr,
        "{\"model\": \"cifar10-serve\", \"seed\": 7, \"engine\": \"auto\", \"deadline_ms\": 60000}",
    );
    let body = reply.split("\r\n\r\n").nth(1).unwrap_or(&reply);
    println!("auto, loose deadline: {body}");

    // 5. A request with an unmeetable deadline under a tiny drain estimate
    //    would shed; at this load the backlog is empty, so it is admitted.
    let reply = post_infer(
        addr,
        "{\"model\": \"imagenet100-serve\", \"seed\": 1, \"deadline_ms\": 50}",
    );
    println!(
        "deadline_ms 50: HTTP {}",
        reply.split(' ').nth(1).unwrap_or("?")
    );

    // 6. Request tracing: every response names its trace (X-Request-Id),
    //    `?trace=1` returns the per-stage timings inline, and the finished
    //    trace — stage spans plus the router's decision record — stays
    //    fetchable on the debug endpoint.
    println!("\n=== POST /v1/infer?trace=1 ===");
    let reply = http(
        addr,
        format!(
            "POST /v1/infer?trace=1 HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            r#"{"model": "cifar10-serve", "seed": 9}"#.len(),
            r#"{"model": "cifar10-serve", "seed": 9}"#
        ),
    );
    let traced_id = reply
        .lines()
        .find_map(|l| l.strip_prefix("X-Request-Id: "))
        .unwrap_or("?")
        .trim()
        .to_string();
    println!("X-Request-Id: {traced_id}");
    println!("{}", reply.split("\r\n\r\n").nth(1).unwrap_or(&reply));
    println!("\n=== GET /v1/debug/traces/{traced_id} ===");
    let trace = get(addr, &format!("/v1/debug/traces/{traced_id}"));
    println!("{}", trace.split("\r\n\r\n").nth(1).unwrap_or(&trace));

    // 7. Live observability.
    println!("\n=== GET /healthz ===");
    let health = get(addr, "/healthz");
    println!("{}", health.split("\r\n\r\n").nth(1).unwrap_or(&health));
    println!("\n=== GET /metrics (excerpt) ===");
    let metrics = get(addr, "/metrics");
    for line in metrics.lines().filter(|l| {
        l.starts_with("bishop_runtime_requests_")
            || l.starts_with("bishop_runtime_batches_")
            || l.starts_with("bishop_gateway_http_responses_total{")
            || l.starts_with("bishop_stage_seconds_count{engine=\"simulator\"")
            || l.starts_with("bishop_router_decisions_total")
            || l.starts_with("bishop_slo_")
    }) {
        println!("{line}");
    }

    // 7b. The temporal layer: the background sampler has been scraping the
    //     counters into the time-series store all along, so the SLO engine
    //     can report live compliance and the always-on profiler can say
    //     where worker wall-clock went.
    std::thread::sleep(Duration::from_millis(1100));
    println!("\n=== GET /v1/slo ===");
    let slo = get(addr, "/v1/slo");
    println!("{}", slo.split("\r\n\r\n").nth(1).unwrap_or(&slo));
    println!("\n=== GET /v1/debug/profile (collapsed stacks) ===");
    let profile = get(addr, "/v1/debug/profile");
    let profile_body = profile.split("\r\n\r\n").nth(1).unwrap_or(&profile);
    if let Ok(report) = Json::parse(profile_body) {
        if let Some(Json::Array(collapsed)) = report.get("collapsed") {
            for line in collapsed.iter().filter_map(Json::as_str) {
                println!("{line}");
            }
        }
    }
    println!("\n=== GET /v1/debug/traces?engine=simulator&min_ms=0 ===");
    let listing = get(addr, "/v1/debug/traces?engine=simulator&min_ms=0");
    let listing_body = listing.split("\r\n\r\n").nth(1).unwrap_or(&listing);
    if let Ok(parsed) = Json::parse(listing_body) {
        if let Some(Json::Array(rows)) = parsed.get("recent") {
            println!("{} simulator traces in the recent ring", rows.len());
        }
    }

    // 8. Graceful shutdown: the gateway stops accepting, in-flight requests
    //    finish, then the runtime drains its queue and joins its threads.
    gateway.shutdown();
    let stats = runtime.shutdown();
    println!(
        "\nshutdown clean: {} submitted, {} completed, {} shed, {} batches (mean size {:.2})",
        stats.submitted,
        stats.completed,
        stats.admission.total(),
        stats.batches_executed,
        stats.completed as f64 / stats.batches_executed.max(1) as f64,
    );
}
