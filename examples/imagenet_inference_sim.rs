//! ImageNet-100 scenario (Model 3): runs a *functional* spiking transformer
//! inference to show the algorithmic pipeline end to end, then evaluates the
//! ImageNet-100-calibrated workload on every accelerator variant — the
//! scenario behind Figs. 12/13 and §6.4 of the paper.
//!
//! Run with `cargo run --release --example imagenet_inference_sim`.

use bishop::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    // --- Functional inference on a scaled-down Model 3 ----------------------
    // (The full 8-block, 196-token model is simulated analytically below; the
    // functional pass uses a reduced copy so the example runs in seconds.)
    let functional_config = ModelConfig::new(
        "Model 3 (functional, reduced)",
        DatasetKind::ImageNet100,
        2,
        4,
        49,
        64,
        4,
    );
    let model = SpikingTransformer::random(&functional_config, 3 * 16 * 16, 100, &mut rng);
    let patches =
        DenseMatrix::random_uniform(functional_config.tokens, 3 * 16 * 16, 0.05, &mut rng);
    let result = model.infer(&patches);
    println!(
        "functional inference: predicted class {} of {}, captured {} layer workloads",
        result.prediction,
        model.classes(),
        result.workload.layers().len()
    );

    // --- Accelerator evaluation of the full Model 3 -------------------------
    let config = ModelConfig::model3_imagenet100();
    let calibration = DatasetCalibration::for_model(&config);
    let baseline_workload = ModelWorkload::synthetic(
        &config,
        calibration.spec(TrainingRegime::Baseline),
        &mut rng,
    );
    let bsa_workload =
        ModelWorkload::synthetic(&config, calibration.spec(TrainingRegime::Bsa), &mut rng);

    let gpu = EdgeGpuModel::jetson_nano().simulate(&config);
    let ptb = PtbSimulator::new(PtbConfig::default()).simulate(&baseline_workload);
    let bishop_sim = BishopSimulator::new(BishopConfig::default());
    let bishop = bishop_sim.simulate(&baseline_workload, &SimOptions::baseline());
    let bishop_bsa = bishop_sim.simulate(&bsa_workload, &SimOptions::baseline());
    let bishop_full = bishop_sim.simulate(
        &bsa_workload,
        &SimOptions::with_ecp(calibration.ecp_threshold),
    );

    println!("\n{:-^72}", " ImageNet-100 (Model 3) ");
    println!(
        "{:<22} {:>12} {:>12} {:>14}",
        "variant", "latency", "energy", "speedup vs PTB"
    );
    let row = |name: &str, latency_s: f64, energy_mj: f64| {
        println!(
            "{:<22} {:>9.3} ms {:>9.3} mJ {:>13.2}x",
            name,
            latency_s * 1e3,
            energy_mj,
            ptb.total_latency_seconds() / latency_s
        );
    };
    row("edge GPU", gpu.latency_seconds, gpu.energy_mj);
    row("PTB", ptb.total_latency_seconds(), ptb.total_energy_mj());
    row(
        "Bishop",
        bishop.total_latency_seconds(),
        bishop.total_energy_mj(),
    );
    row(
        "Bishop+BSA",
        bishop_bsa.total_latency_seconds(),
        bishop_bsa.total_energy_mj(),
    );
    row(
        "Bishop+BSA+ECP",
        bishop_full.total_latency_seconds(),
        bishop_full.total_energy_mj(),
    );

    // --- Heterogeneity ablation (§6.4) --------------------------------------
    let all_dense =
        BishopSimulator::new(BishopConfig::default().with_stratify(StratifyPolicy::AllDense))
            .simulate(&baseline_workload, &SimOptions::baseline());
    println!(
        "\nheterogeneity: balanced split is {:.2}x faster and {:.2}x more energy efficient \
         than processing everything on the dense core (paper: 1.39x / 1.57x)",
        all_dense.total_latency_seconds() / bishop.total_latency_seconds(),
        all_dense.total_energy_pj() / bishop.total_energy_pj()
    );
}
