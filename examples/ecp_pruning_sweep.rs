//! Error-Constrained TTB Pruning sweep: how the pruning threshold `θp`
//! trades attention-layer work, memory access and (proxy) accuracy — the
//! scenario behind Fig. 14 and §6.3 of the paper.
//!
//! Run with `cargo run --release --example ecp_pruning_sweep`.

use bishop::prelude::*;
use rand::SeedableRng;

fn main() {
    let config = ModelConfig::model3_imagenet100();
    let calibration = DatasetCalibration::for_model(&config);
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let workload =
        ModelWorkload::synthetic(&config, calibration.spec(TrainingRegime::Bsa), &mut rng);
    let attention = workload
        .attention_layers()
        .next()
        .expect("Model 3 has attention layers");
    let bundle = BundleShape::default();

    println!("ECP sweep on {} (first attention layer)", config.name);
    println!(
        "{:>4} {:>12} {:>12} {:>16} {:>16} {:>12}",
        "θp", "Q retained", "K retained", "score work left", "memory left", "error bound"
    );
    for theta in [0u32, 2, 4, 6, 8, 10, 12, 16] {
        let result = ecp::apply(
            &attention.q,
            &attention.k,
            &attention.v,
            EcpConfig::uniform(theta, bundle),
        );
        println!(
            "{:>4} {:>11.1}% {:>11.1}% {:>15.1}% {:>15.1}% {:>12}",
            theta,
            result.q_retention() * 100.0,
            result.k_retention() * 100.0,
            result.score_work_fraction() * 100.0,
            result.memory_access_fraction() * 100.0,
            result.error_bound()
        );
    }

    // Accuracy proxy: a trained spiking classifier evaluated under the same
    // bundle-row pruning rule (the paper reports the CIFAR/DVS accuracies of
    // its trained transformers; see DESIGN.md for the substitution).
    let mut data_rng = rand::rngs::StdRng::seed_from_u64(5);
    let dataset = SpikePatternDataset::generate(4, 40, 4, 8, 24, 0.05, &mut data_rng);
    let mut model = SpikingClassifier::random(24, 32, 4, &mut data_rng);
    Trainer::new(TrainingConfig {
        epochs: 10,
        learning_rate: 0.08,
        ..TrainingConfig::default()
    })
    .train(&mut model, &dataset, &mut data_rng);
    println!("\naccuracy proxy (synthetic spike-pattern task):");
    for point in
        bishop::train::accuracy_under_pruning(&model, &dataset.test, &[0, 2, 4, 8, 16, 64], bundle)
    {
        println!(
            "  θp = {:>3}: accuracy {:>5.1}% ({:+.1} pp vs unpruned)",
            point.threshold,
            point.accuracy * 100.0,
            point.accuracy_delta() * 100.0
        );
    }
}
