//! Quickstart: build a spiking-transformer workload, run it through the
//! Bishop simulator and the PTB baseline, and print the comparison.
//!
//! Run with `cargo run --release --example quickstart`.

use bishop::prelude::*;
use rand::SeedableRng;

fn main() {
    // 1. Pick a model (Model 1 of the paper: CIFAR-10, 4 blocks, T=10, N=64,
    //    D=384) and the calibrated activation statistics of its dataset.
    let config = ModelConfig::model1_cifar10();
    let calibration = DatasetCalibration::for_model(&config);
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let workload = ModelWorkload::synthetic(
        &config,
        calibration.spec(TrainingRegime::Baseline),
        &mut rng,
    );
    println!("model: {config}");
    println!(
        "workload: {} layers, mean projection density {:.1}%",
        workload.layers().len(),
        workload.mean_projection_density() * 100.0
    );

    // 2. Simulate one inference on Bishop and on the PTB baseline.
    let bishop = BishopSimulator::new(BishopConfig::default());
    let bishop_run = bishop.simulate(&workload, &SimOptions::baseline());
    let ptb_run = PtbSimulator::new(PtbConfig::default()).simulate(&workload);

    println!(
        "Bishop : {:.3} ms, {:.3} mJ",
        bishop_run.total_latency_seconds() * 1e3,
        bishop_run.total_energy_mj()
    );
    println!(
        "PTB    : {:.3} ms, {:.3} mJ",
        ptb_run.total_latency_seconds() * 1e3,
        ptb_run.total_energy_mj()
    );
    println!(
        "Bishop vs PTB: {:.2}x faster, {:.2}x more energy efficient",
        bishop_run.speedup_vs(&ptb_run),
        bishop_run.energy_improvement_vs(&ptb_run)
    );

    // 3. Add the co-design algorithms: a BSA-trained workload plus ECP.
    let bsa_workload =
        ModelWorkload::synthetic(&config, calibration.spec(TrainingRegime::Bsa), &mut rng);
    let full = bishop.simulate(
        &bsa_workload,
        &SimOptions::with_ecp(calibration.ecp_threshold),
    );
    println!(
        "Bishop+BSA+ECP vs PTB: {:.2}x faster, {:.2}x more energy efficient",
        full.speedup_vs(&ptb_run),
        full.energy_improvement_vs(&ptb_run)
    );
}
