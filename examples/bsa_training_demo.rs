//! Bundle-Sparsity-Aware training demo: trains the same spiking classifier
//! with and without the `λ·L_bsp` term and reports how the bundle-level
//! sparsity of its activations changes — the mechanism behind Figs. 5/6 of
//! the paper.
//!
//! Run with `cargo run --release --example bsa_training_demo`.

use bishop::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let dataset = SpikePatternDataset::generate(4, 60, 6, 8, 24, 0.05, &mut rng);
    println!(
        "synthetic task: {} classes, {} train / {} test samples, input shape {}",
        dataset.classes,
        dataset.train.len(),
        dataset.test.len(),
        dataset.input_shape()
    );

    for (name, lambda) in [("baseline (λ = 0)", 0.0f32), ("BSA (λ = 0.01)", 0.01)] {
        let mut model_rng = rand::rngs::StdRng::seed_from_u64(17);
        let mut model = SpikingClassifier::random(24, 32, 4, &mut model_rng);
        let report = Trainer::new(TrainingConfig {
            epochs: 15,
            learning_rate: 0.08,
            bsa_lambda: lambda,
            ..TrainingConfig::default()
        })
        .train(&mut model, &dataset, &mut model_rng);

        println!("\n== {name} ==");
        println!(
            "  loss: {:.3} -> {:.3}",
            report.epoch_losses.first().unwrap(),
            report.epoch_losses.last().unwrap()
        );
        println!(
            "  accuracy: train {:.1}%, test {:.1}%",
            report.final_train_accuracy * 100.0,
            report.test_accuracy * 100.0
        );
        println!(
            "  hidden activations: spike density {:.2}%, TTB density {:.2}%, mean L_bsp {:.1}",
            report.hidden_spike_density * 100.0,
            report.hidden_ttb_density * 100.0,
            report.mean_bundle_loss
        );
    }

    println!(
        "\nThe BSA run keeps accuracy close to the baseline while concentrating firing into \
         fewer Token-Time Bundles — exactly the structured sparsity the Bishop dataflow skips."
    );
}
