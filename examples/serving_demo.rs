//! Serving demo: drive mixed CIFAR-10 / ImageNet-100 traffic through the
//! `bishop-runtime` inference server and compare the pre-runtime status quo
//! (a sequential synthesize-and-simulate loop per request) against batched
//! multi-worker serving.
//!
//! Run with `cargo run --release --example serving_demo`.

use std::time::Instant;

use bishop::prelude::*;
use bishop::runtime::{cache::synthesize, default_mixed_models, mixed_trace};

fn main() {
    // 1. A mixed traffic trace: the paper's two headline image models at
    //    serving scale, with a small seed pool so traffic repeats the way
    //    real retry/replay traffic does.
    let models = default_mixed_models();
    let trace = mixed_trace(&models, 64, 4, 42);
    println!(
        "traffic: {} requests over {} models",
        trace.len(),
        models.len()
    );
    for entry in &models {
        println!(
            "  - {} ({:?}, ecp={:?})",
            entry.config, entry.regime, entry.options.ecp_threshold
        );
    }

    // 2. The pre-runtime status quo: one workload synthesis and one
    //    simulation per request, sequentially, nothing shared.
    let simulator = BishopSimulator::new(BishopConfig::default());
    let start = Instant::now();
    let mut sequential_latency = 0.0;
    for request in &trace {
        let workload = synthesize(request.model(), request.regime, request.seed);
        let run = simulator.simulate(&workload, &request.options);
        sequential_latency += run.total_latency_seconds();
    }
    let sequential_elapsed = start.elapsed().as_secs_f64();
    let sequential_rps = trace.len() as f64 / sequential_elapsed;
    println!("\n=== sequential single-request loop (no runtime) ===");
    println!("wall clock          : {sequential_elapsed:.3} s, {sequential_rps:.1} req/s");
    println!(
        "sim latency (total) : {:.3} ms across {} requests",
        sequential_latency * 1e3,
        trace.len()
    );

    // 3. Batched multi-worker serving: compatible requests coalesce into
    //    Token-Time-Bundle-aligned batches and shard across 4 simulated
    //    Bishop chip instances, with workload + result memoization.
    let server = BishopServer::new(RuntimeConfig::new(4, BatchPolicy::new(8)));
    let outcome = server.serve(trace.clone());
    println!("\n=== batched (4 workers, batch size 8) ===");
    println!("{}", outcome.report.render());

    // 4. Re-serve the identical trace: the result cache now answers every
    //    batch without simulating at all.
    let replay = server.serve(trace);
    println!("\n=== replay on a warm cache ===");
    println!("{}", replay.report.render());

    // 5. Headline comparison.
    let cold_speedup = outcome.report.wall.requests_per_second / sequential_rps;
    let warm_speedup = replay.report.wall.requests_per_second / sequential_rps;
    println!("\nbatched vs sequential single-request loop:");
    println!("  cold caches : {cold_speedup:.2}x wall-clock throughput");
    println!("  warm caches : {warm_speedup:.2}x wall-clock throughput");
    println!(
        "  simulated   : {:.3} ms total chip time vs {:.3} ms sequential (weight streaming + overhead amortized)",
        outcome.report.aggregates.total_simulated_cycles as f64
            / server.config().hardware.clock_hz
            * 1e3,
        sequential_latency * 1e3,
    );
}
