//! Design-space exploration: the two architectural hyper-parameters the
//! paper sweeps — the stratification strategy (Fig. 15) and the TTB bundle
//! volume (Fig. 16) — evaluated on the ImageNet-100 model.
//!
//! Run with `cargo run --release --example design_space_exploration`.

use bishop::prelude::*;
use rand::SeedableRng;

fn main() {
    let config = ModelConfig::model3_imagenet100();
    let calibration = DatasetCalibration::for_model(&config);
    let mut rng = rand::rngs::StdRng::seed_from_u64(23);
    let workload = ModelWorkload::synthetic(
        &config,
        calibration.spec(TrainingRegime::Baseline),
        &mut rng,
    );
    let ptb = PtbSimulator::new(PtbConfig::default()).simulate(&workload);

    println!(
        "=== Stratification strategy (Fig. 15) — {} ===",
        config.name
    );
    println!(
        "{:<28} {:>11} {:>11} {:>12} {:>12}",
        "strategy", "latency", "energy", "EDP (J*s)", "EDP vs PTB"
    );
    let evaluate = |label: &str, policy: StratifyPolicy| {
        let run = BishopSimulator::new(BishopConfig::default().with_stratify(policy))
            .simulate(&workload, &SimOptions::baseline());
        println!(
            "{:<28} {:>8.3} ms {:>8.3} mJ {:>12.3e} {:>11.2}x",
            label,
            run.total_latency_seconds() * 1e3,
            run.total_energy_mj(),
            run.edp(),
            ptb.edp() / run.edp()
        );
    };
    evaluate("balanced (per layer)", StratifyPolicy::Balanced);
    for fraction in [0.1, 0.3, 0.5, 0.7, 0.9] {
        evaluate(
            &format!("{:.0}% features dense", fraction * 100.0),
            StratifyPolicy::TargetDenseFraction(fraction),
        );
    }
    evaluate("all dense", StratifyPolicy::AllDense);
    evaluate("all sparse", StratifyPolicy::AllSparse);

    println!("\n=== TTB bundle volume (Fig. 16) — {} ===", config.name);
    println!(
        "{:<12} {:>8} {:>11} {:>11}",
        "(BSt, BSn)", "volume", "latency", "energy"
    );
    for (bst, bsn) in [
        (1, 2),
        (2, 2),
        (2, 4),
        (4, 2),
        (2, 8),
        (4, 4),
        (4, 8),
        (4, 14),
    ] {
        let bundle = BundleShape::new(bst, bsn);
        let run = BishopSimulator::new(BishopConfig::default().with_bundle(bundle))
            .simulate(&workload, &SimOptions::baseline());
        println!(
            "({:>2}, {:>2})     {:>8} {:>8.3} ms {:>8.3} mJ",
            bst,
            bsn,
            bundle.volume(),
            run.total_latency_seconds() * 1e3,
            run.total_energy_mj()
        );
    }
    println!(
        "\nPaper guidance: balance the two cores' workload (near-optimal EDP, 2.49x better \
         than PTB) and keep the bundle volume between 4 and 8."
    );
}
