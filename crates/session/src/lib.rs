//! # bishop-session
//!
//! Persistent per-session LIF state slots for streamed, stateful serving.
//!
//! A spiking transformer is inherently temporal: LIF membrane potentials
//! evolve across timesteps, so a conversation-style workload wants to
//! *continue* an execution across requests rather than replay it from
//! timestep zero. This crate provides the two pieces the serving stack
//! threads through every layer:
//!
//! * [`SessionState`] — an engine-portable snapshot of a parked execution
//!   (the native engine's full per-layer membrane export, or the
//!   simulator's accumulated-timestep marker);
//! * [`SessionStore`] — a capacity-bounded slab of session slots with TTL
//!   eviction, generation-counted ids, and a lease discipline
//!   ([`SessionStore::begin`] / [`SessionLease`]) so a session can park
//!   between requests and resume into any worker's batch without two
//!   requests racing on the same membranes.
//!
//! The store follows web-rwkv's batch-slot packing discipline: slots are a
//! fixed-capacity slab, ids carry a generation counter so a stale id can
//! never resolve to a slot's next occupant, and eviction only ever touches
//! parked (not in-flight) sessions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bishop_model::ModelState;

/// A parked execution snapshot, portable across workers.
///
/// All cross-timestep coupling in the model flows through LIF membrane
/// potentials, so this snapshot is sufficient to continue an execution
/// bit-identically to a single longer request.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionState {
    /// Full per-layer membrane potentials and pooled spike history from the
    /// native engine's stepper.
    Native(ModelState),
    /// The simulator replays the workload from its memoized caches, so its
    /// session state is just the number of timesteps already accounted for.
    Simulated {
        /// Timesteps the session has executed so far.
        timesteps_done: usize,
    },
}

impl SessionState {
    /// Timesteps this state has accumulated.
    pub fn timesteps_done(&self) -> usize {
        match self {
            SessionState::Native(state) => state.timesteps_done(),
            SessionState::Simulated { timesteps_done } => *timesteps_done,
        }
    }

    /// Short engine-class label (`"native"` / `"simulated"`) for metrics
    /// and listings.
    pub fn kind(&self) -> &'static str {
        match self {
            SessionState::Native(_) => "native",
            SessionState::Simulated { .. } => "simulated",
        }
    }
}

/// A generation-counted session id.
///
/// The slot index addresses the slab entry; the generation is bumped every
/// time the slot is vacated, so an id held across an eviction can never
/// resolve to the slot's next occupant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId {
    slot: usize,
    generation: u64,
}

impl SessionId {
    /// Slab index of the slot.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Generation counter the id was minted at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Parses the wire form produced by [`fmt::Display`]
    /// (`sess-<slot>-<generation>`).
    pub fn parse(token: &str) -> Option<Self> {
        let rest = token.strip_prefix("sess-")?;
        let (slot, generation) = rest.split_once('-')?;
        Some(Self {
            slot: slot.parse().ok()?,
            generation: generation.parse().ok()?,
        })
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sess-{}-{}", self.slot, self.generation)
    }
}

/// Why [`SessionStore`] refused an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The id does not resolve to a live session (wrong slot, stale
    /// generation, or already evicted).
    NotFound,
    /// The session idled past its TTL; it has been evicted.
    Expired,
    /// The session is currently executing a request; concurrent resume or
    /// eviction would race on its membrane state.
    InFlight,
    /// Every slot is occupied by an in-flight session; nothing can be
    /// evicted to make room.
    CapacityExhausted,
}

impl SessionError {
    /// Stable machine-readable error code (doubles as the gateway's typed
    /// error code).
    pub fn code(&self) -> &'static str {
        match self {
            SessionError::NotFound => "session_not_found",
            SessionError::Expired => "session_expired",
            SessionError::InFlight => "session_in_flight",
            SessionError::CapacityExhausted => "session_capacity",
        }
    }
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::NotFound => write!(f, "session not found or already evicted"),
            SessionError::Expired => write!(f, "session idled past its TTL and was evicted"),
            SessionError::InFlight => write!(f, "session is executing another request"),
            SessionError::CapacityExhausted => {
                write!(f, "all session slots are occupied by in-flight sessions")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// Configuration of a [`SessionStore`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionStoreConfig {
    /// Maximum number of concurrently live sessions.
    pub capacity: usize,
    /// Idle TTL: a session untouched for this long is evictable and any
    /// attempt to resume it is refused as [`SessionError::Expired`].
    pub ttl: Duration,
}

impl Default for SessionStoreConfig {
    fn default() -> Self {
        Self {
            capacity: 64,
            ttl: Duration::from_secs(300),
        }
    }
}

/// Why a session was evicted (the `reason` label of
/// `bishop_sessions_evicted_total`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionReason {
    /// Idle TTL expiry.
    Ttl,
    /// Evicted to make room for a new session under capacity pressure.
    Capacity,
    /// Explicit `DELETE /v1/sessions/<id>`.
    Explicit,
}

/// A session's occupancy entry.
#[derive(Debug)]
struct Occupant {
    model: String,
    engine: String,
    seed: u64,
    state: Option<Arc<SessionState>>,
    timesteps_done: usize,
    in_flight: bool,
    created: Instant,
    last_touch: Instant,
}

#[derive(Debug)]
struct Slot {
    generation: u64,
    occupant: Option<Occupant>,
}

/// Listing entry for one live session (`GET /v1/sessions`).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// Wire-form session id.
    pub id: String,
    /// Slab slot index.
    pub slot: usize,
    /// Catalog model the session is pinned to.
    pub model: String,
    /// Engine the session is pinned to.
    pub engine: String,
    /// Input seed the session is pinned to.
    pub seed: u64,
    /// Timesteps accumulated so far.
    pub timesteps_done: usize,
    /// Whether a request is currently executing against this session.
    pub in_flight: bool,
    /// Seconds since the session was created.
    pub age_seconds: f64,
    /// Seconds until idle-TTL eviction (0 when already expired).
    pub ttl_remaining_seconds: f64,
}

/// Monotonic counters and the live gauge for `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStoreStats {
    /// Currently occupied slots.
    pub active: u64,
    /// Sessions evicted by idle-TTL expiry.
    pub evicted_ttl: u64,
    /// Sessions evicted under capacity pressure.
    pub evicted_capacity: u64,
    /// Sessions evicted by explicit delete.
    pub evicted_explicit: u64,
}

/// An exclusive lease on a session for the duration of one request.
///
/// Obtained from [`SessionStore::begin`]; the holder must check the session
/// back in with [`SessionStore::complete`] (new state) or
/// [`SessionStore::abort`] (request failed; previous state kept). While a
/// lease is live the session is in-flight: resumes and evictions are
/// refused typed.
#[derive(Debug)]
pub struct SessionLease {
    id: SessionId,
    model: String,
    engine: String,
    seed: u64,
    state: Option<Arc<SessionState>>,
    timesteps_done: usize,
}

impl SessionLease {
    /// The leased session's id.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// Catalog model the session is pinned to.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// Engine the session is pinned to.
    pub fn engine(&self) -> &str {
        &self.engine
    }

    /// Input seed the session is pinned to.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The parked state to resume from (`None` on a session's first
    /// request).
    pub fn state(&self) -> Option<&Arc<SessionState>> {
        self.state.as_ref()
    }

    /// Timesteps accumulated before this lease.
    pub fn timesteps_done(&self) -> usize {
        self.timesteps_done
    }
}

/// Capacity-bounded slab of session slots with TTL eviction and
/// generation-counted ids.
#[derive(Debug)]
pub struct SessionStore {
    config: SessionStoreConfig,
    slots: Mutex<Vec<Slot>>,
    evicted_ttl: AtomicU64,
    evicted_capacity: AtomicU64,
    evicted_explicit: AtomicU64,
}

impl SessionStore {
    /// Creates an empty store.
    ///
    /// # Panics
    ///
    /// Panics if the configured capacity is zero.
    pub fn new(config: SessionStoreConfig) -> Self {
        assert!(config.capacity > 0, "session store needs at least one slot");
        let slots = (0..config.capacity)
            .map(|_| Slot {
                generation: 0,
                occupant: None,
            })
            .collect();
        Self {
            config,
            slots: Mutex::new(slots),
            evicted_ttl: AtomicU64::new(0),
            evicted_capacity: AtomicU64::new(0),
            evicted_explicit: AtomicU64::new(0),
        }
    }

    /// The store's configuration.
    pub fn config(&self) -> SessionStoreConfig {
        self.config
    }

    /// Creates a fresh session pinned to a model, engine, and input seed.
    ///
    /// Under capacity pressure the store first sweeps TTL-expired parked
    /// sessions, then evicts the least-recently-touched parked session.
    /// In-flight sessions are never evicted; if every slot is in-flight the
    /// create is refused with [`SessionError::CapacityExhausted`].
    pub fn create(&self, model: &str, engine: &str, seed: u64) -> Result<SessionId, SessionError> {
        let now = Instant::now();
        let mut slots = self.slots.lock().expect("session store lock");
        self.sweep_expired_locked(&mut slots, now);
        let slot_index = match slots.iter().position(|s| s.occupant.is_none()) {
            Some(free) => free,
            None => {
                // Evict the least-recently-touched parked session.
                let victim = slots
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.occupant.as_ref().is_some_and(|o| !o.in_flight))
                    .min_by_key(|(_, s)| s.occupant.as_ref().map(|o| o.last_touch))
                    .map(|(i, _)| i)
                    .ok_or(SessionError::CapacityExhausted)?;
                self.vacate_locked(&mut slots[victim], EvictionReason::Capacity);
                victim
            }
        };
        let slot = &mut slots[slot_index];
        slot.occupant = Some(Occupant {
            model: model.to_string(),
            engine: engine.to_string(),
            seed,
            state: None,
            timesteps_done: 0,
            in_flight: false,
            created: now,
            last_touch: now,
        });
        Ok(SessionId {
            slot: slot_index,
            generation: slot.generation,
        })
    }

    /// Takes an exclusive lease on a parked session for one request.
    ///
    /// Refused typed when the id is stale ([`SessionError::NotFound`]), the
    /// session idled past its TTL ([`SessionError::Expired`] — the session
    /// is evicted as a side effect), or another request is already
    /// executing against it ([`SessionError::InFlight`]).
    pub fn begin(&self, id: SessionId) -> Result<SessionLease, SessionError> {
        let now = Instant::now();
        let mut slots = self.slots.lock().expect("session store lock");
        let slot = slots.get_mut(id.slot).ok_or(SessionError::NotFound)?;
        if slot.generation != id.generation || slot.occupant.is_none() {
            return Err(SessionError::NotFound);
        }
        let occupant = slot.occupant.as_mut().expect("checked occupancy");
        if occupant.in_flight {
            return Err(SessionError::InFlight);
        }
        if now.duration_since(occupant.last_touch) > self.config.ttl {
            self.vacate_locked(slot, EvictionReason::Ttl);
            return Err(SessionError::Expired);
        }
        occupant.in_flight = true;
        occupant.last_touch = now;
        Ok(SessionLease {
            id,
            model: occupant.model.clone(),
            engine: occupant.engine.clone(),
            seed: occupant.seed,
            state: occupant.state.clone(),
            timesteps_done: occupant.timesteps_done,
        })
    }

    /// Checks a leased session back in with its post-request state.
    pub fn complete(&self, lease: SessionLease, state: Arc<SessionState>) {
        let mut slots = self.slots.lock().expect("session store lock");
        if let Some(occupant) = Self::leased_occupant_locked(&mut slots, lease.id) {
            occupant.timesteps_done = state.timesteps_done();
            occupant.state = Some(state);
            occupant.in_flight = false;
            occupant.last_touch = Instant::now();
        }
    }

    /// Checks a leased session back in unchanged (the request failed; the
    /// previously parked state remains resumable).
    pub fn abort(&self, lease: SessionLease) {
        let mut slots = self.slots.lock().expect("session store lock");
        if let Some(occupant) = Self::leased_occupant_locked(&mut slots, lease.id) {
            occupant.in_flight = false;
            occupant.last_touch = Instant::now();
        }
    }

    /// Explicitly evicts a parked session (`DELETE /v1/sessions/<id>`).
    pub fn evict(&self, id: SessionId) -> Result<(), SessionError> {
        let mut slots = self.slots.lock().expect("session store lock");
        let slot = slots.get_mut(id.slot).ok_or(SessionError::NotFound)?;
        if slot.generation != id.generation || slot.occupant.is_none() {
            return Err(SessionError::NotFound);
        }
        if slot.occupant.as_ref().is_some_and(|o| o.in_flight) {
            return Err(SessionError::InFlight);
        }
        self.vacate_locked(slot, EvictionReason::Explicit);
        Ok(())
    }

    /// Sweeps TTL-expired parked sessions (also runs implicitly on
    /// [`SessionStore::create`]). Returns how many sessions were evicted.
    pub fn sweep(&self) -> usize {
        let now = Instant::now();
        let mut slots = self.slots.lock().expect("session store lock");
        self.sweep_expired_locked(&mut slots, now)
    }

    /// Lists all live sessions (`GET /v1/sessions`).
    pub fn snapshot(&self) -> Vec<SessionSnapshot> {
        let now = Instant::now();
        let slots = self.slots.lock().expect("session store lock");
        slots
            .iter()
            .enumerate()
            .filter_map(|(index, slot)| {
                let occupant = slot.occupant.as_ref()?;
                let idle = now.duration_since(occupant.last_touch);
                let remaining = self.config.ttl.saturating_sub(idle);
                Some(SessionSnapshot {
                    id: SessionId {
                        slot: index,
                        generation: slot.generation,
                    }
                    .to_string(),
                    slot: index,
                    model: occupant.model.clone(),
                    engine: occupant.engine.clone(),
                    seed: occupant.seed,
                    timesteps_done: occupant.timesteps_done,
                    in_flight: occupant.in_flight,
                    age_seconds: now.duration_since(occupant.created).as_secs_f64(),
                    ttl_remaining_seconds: remaining.as_secs_f64(),
                })
            })
            .collect()
    }

    /// Live gauge and eviction counters for `/metrics`.
    pub fn stats(&self) -> SessionStoreStats {
        let active = {
            let slots = self.slots.lock().expect("session store lock");
            slots.iter().filter(|s| s.occupant.is_some()).count() as u64
        };
        SessionStoreStats {
            active,
            evicted_ttl: self.evicted_ttl.load(Ordering::Relaxed),
            evicted_capacity: self.evicted_capacity.load(Ordering::Relaxed),
            evicted_explicit: self.evicted_explicit.load(Ordering::Relaxed),
        }
    }

    fn leased_occupant_locked(slots: &mut [Slot], id: SessionId) -> Option<&mut Occupant> {
        let slot = slots.get_mut(id.slot)?;
        if slot.generation != id.generation {
            return None;
        }
        slot.occupant.as_mut().filter(|o| o.in_flight)
    }

    fn sweep_expired_locked(&self, slots: &mut [Slot], now: Instant) -> usize {
        let mut evicted = 0;
        for slot in slots.iter_mut() {
            let expired = slot.occupant.as_ref().is_some_and(|o| {
                !o.in_flight && now.duration_since(o.last_touch) > self.config.ttl
            });
            if expired {
                self.vacate_locked(slot, EvictionReason::Ttl);
                evicted += 1;
            }
        }
        evicted
    }

    /// Empties a slot and bumps its generation so outstanding ids for the
    /// old occupant can never resolve again.
    fn vacate_locked(&self, slot: &mut Slot, reason: EvictionReason) {
        debug_assert!(slot.occupant.is_some(), "vacating an empty slot");
        slot.occupant = None;
        slot.generation += 1;
        let counter = match reason {
            EvictionReason::Ttl => &self.evicted_ttl,
            EvictionReason::Capacity => &self.evicted_capacity,
            EvictionReason::Explicit => &self.evicted_explicit,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread::sleep;

    fn store(capacity: usize, ttl: Duration) -> SessionStore {
        SessionStore::new(SessionStoreConfig { capacity, ttl })
    }

    fn begin_err(store: &SessionStore, id: SessionId) -> SessionError {
        store
            .begin(id)
            .map(|_| ())
            .expect_err("expected a typed refusal")
    }

    fn sim_state(timesteps: usize) -> Arc<SessionState> {
        Arc::new(SessionState::Simulated {
            timesteps_done: timesteps,
        })
    }

    #[test]
    fn create_begin_complete_roundtrip() {
        let store = store(4, Duration::from_secs(60));
        let id = store.create("tiny", "native", 7).unwrap();
        let lease = store.begin(id).unwrap();
        assert_eq!(lease.model(), "tiny");
        assert_eq!(lease.engine(), "native");
        assert_eq!(lease.seed(), 7);
        assert!(lease.state().is_none(), "fresh session has no parked state");
        store.complete(lease, sim_state(4));

        let lease = store.begin(id).unwrap();
        assert_eq!(lease.timesteps_done(), 4);
        assert_eq!(lease.state().unwrap().timesteps_done(), 4);
        store.abort(lease);
        // Abort keeps the previously parked state resumable.
        let lease = store.begin(id).unwrap();
        assert_eq!(lease.timesteps_done(), 4);
        store.complete(lease, sim_state(8));
        assert_eq!(store.stats().active, 1);
    }

    #[test]
    fn session_id_wire_form_roundtrips() {
        let id = SessionId {
            slot: 3,
            generation: 17,
        };
        assert_eq!(id.to_string(), "sess-3-17");
        assert_eq!(SessionId::parse("sess-3-17"), Some(id));
        assert_eq!(SessionId::parse("sess-3"), None);
        assert_eq!(SessionId::parse("nope-3-17"), None);
        assert_eq!(SessionId::parse("sess-x-17"), None);
    }

    #[test]
    fn in_flight_sessions_refuse_concurrent_resume_and_eviction() {
        let store = store(2, Duration::from_secs(60));
        let id = store.create("tiny", "native", 1).unwrap();
        let lease = store.begin(id).unwrap();
        assert_eq!(begin_err(&store, id), SessionError::InFlight);
        assert_eq!(store.evict(id), Err(SessionError::InFlight));
        store.complete(lease, sim_state(2));
        assert!(store.begin(id).is_ok());
    }

    #[test]
    fn ttl_expiry_is_refused_typed_and_evicts() {
        let store = store(2, Duration::from_millis(1));
        let id = store.create("tiny", "simulator", 1).unwrap();
        sleep(Duration::from_millis(5));
        assert_eq!(begin_err(&store, id), SessionError::Expired);
        assert_eq!(SessionError::Expired.code(), "session_expired");
        // The expired session is gone: the id no longer resolves at all.
        assert_eq!(begin_err(&store, id), SessionError::NotFound);
        assert_eq!(store.stats().evicted_ttl, 1);
        assert_eq!(store.stats().active, 0);
    }

    #[test]
    fn ttl_is_measured_from_last_touch_not_creation() {
        let store = store(2, Duration::from_millis(40));
        let id = store.create("tiny", "simulator", 1).unwrap();
        // Keep touching the session more often than the TTL.
        for step in 1..=3 {
            sleep(Duration::from_millis(10));
            let lease = store.begin(id).expect("session stays live while used");
            store.complete(lease, sim_state(step));
        }
    }

    #[test]
    fn capacity_pressure_evicts_only_parked_sessions() {
        let store = store(2, Duration::from_secs(60));
        let oldest = store.create("tiny", "native", 1).unwrap();
        sleep(Duration::from_millis(2));
        let busy = store.create("tiny", "native", 2).unwrap();
        let busy_lease = store.begin(busy).unwrap();

        // `oldest` is parked and least-recently-touched, so it is the
        // victim even though `busy` is older by last-touch after begin().
        let newcomer = store.create("tiny", "native", 3).unwrap();
        assert_eq!(begin_err(&store, oldest), SessionError::NotFound);
        assert_eq!(store.stats().evicted_capacity, 1);

        // Now both slots hold an in-flight session and a parked newcomer;
        // lease the newcomer too and the store must refuse to make room.
        let newcomer_lease = store.begin(newcomer).unwrap();
        assert_eq!(
            store
                .create("tiny", "native", 4)
                .expect_err("store is saturated"),
            SessionError::CapacityExhausted
        );
        store.complete(busy_lease, sim_state(1));
        store.complete(newcomer_lease, sim_state(1));
        // With a parked session available, creation succeeds again.
        assert!(store.create("tiny", "native", 5).is_ok());
    }

    #[test]
    fn generations_make_stale_ids_unresolvable() {
        let store = store(1, Duration::from_secs(60));
        let first = store.create("tiny", "native", 1).unwrap();
        store.evict(first).unwrap();
        // The slot is reused by a new session with a bumped generation.
        let second = store.create("tiny", "native", 2).unwrap();
        assert_eq!(first.slot(), second.slot());
        assert_ne!(first.generation(), second.generation());
        assert_eq!(begin_err(&store, first), SessionError::NotFound);
        assert_eq!(store.evict(first), Err(SessionError::NotFound));
        assert!(store.begin(second).is_ok());
    }

    #[test]
    fn explicit_eviction_counts_and_clears() {
        let store = store(2, Duration::from_secs(60));
        let id = store.create("tiny", "simulator", 9).unwrap();
        store.evict(id).unwrap();
        let stats = store.stats();
        assert_eq!(stats.evicted_explicit, 1);
        assert_eq!(stats.active, 0);
        assert_eq!(store.evict(id), Err(SessionError::NotFound));
    }

    #[test]
    fn snapshot_reports_occupancy_and_ttl() {
        let store = store(3, Duration::from_secs(60));
        let id = store.create("cifar10-serve", "native", 11).unwrap();
        let lease = store.begin(id).unwrap();
        let listing = store.snapshot();
        assert_eq!(listing.len(), 1);
        let entry = &listing[0];
        assert_eq!(entry.id, id.to_string());
        assert_eq!(entry.model, "cifar10-serve");
        assert_eq!(entry.engine, "native");
        assert_eq!(entry.seed, 11);
        assert!(entry.in_flight);
        assert!(entry.ttl_remaining_seconds > 0.0);
        assert!(entry.ttl_remaining_seconds <= 60.0);
        store.complete(lease, sim_state(4));
        let listing = store.snapshot();
        assert!(!listing[0].in_flight);
        assert_eq!(listing[0].timesteps_done, 4);
    }

    #[test]
    fn sweep_evicts_expired_parked_sessions() {
        let store = store(4, Duration::from_millis(1));
        store.create("tiny", "native", 1).unwrap();
        let busy = store.create("tiny", "native", 2).unwrap();
        let lease = store.begin(busy).unwrap();
        sleep(Duration::from_millis(5));
        assert_eq!(store.sweep(), 1, "only the parked session is swept");
        assert_eq!(store.stats().active, 1);
        store.complete(lease, sim_state(1));
    }

    #[test]
    fn session_state_reports_timesteps() {
        assert_eq!(sim_state(6).timesteps_done(), 6);
        assert_eq!(sim_state(6).kind(), "simulated");
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_is_rejected() {
        SessionStore::new(SessionStoreConfig {
            capacity: 0,
            ttl: Duration::from_secs(1),
        });
    }
}
