//! # bishop-baseline
//!
//! Baseline accelerator models used by the paper's evaluation (§6.1):
//!
//! * [`PtbSimulator`] — the Parallel Time Batching accelerator (HPCA'22), a
//!   homogeneous 512-PE systolic array that batches multiple timesteps of a
//!   neuron into one weight fetch but has no token-time bundling, no
//!   dense/sparse stratification, no bundle-level skipping, and no dedicated
//!   spiking-attention support.
//! * [`EdgeGpuModel`] — an NVIDIA-Jetson-Nano-class edge GPU modelled with a
//!   roofline (peak FLOPs vs. memory bandwidth) and a low effective
//!   utilisation for sparse, binary, short-sequence spiking workloads.
//!
//! Both baselines consume the same [`bishop_model::ModelWorkload`] the Bishop
//! simulator consumes, and the PTB model reuses the same memory-hierarchy and
//! energy tables so comparisons are iso-technology, mirroring the paper's
//! iso-area/iso-power setup.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gpu;
pub mod ptb;

pub use gpu::{EdgeGpuModel, GpuRunSummary};
pub use ptb::{PtbConfig, PtbSimulator};
