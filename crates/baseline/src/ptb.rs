//! The Parallel Time Batching (PTB) baseline accelerator model.
//!
//! PTB (Lee, Zhang, Li — HPCA 2022) accelerates sparse spiking neural
//! computation on a systolic array by packing the spiking activity of a
//! neuron across a *time window* and reusing the fetched multi-bit weight for
//! every timestep in that window. It targets spiking CNN/FC layers:
//!
//! * weight reuse exists only along the temporal axis (one fetch per token
//!   per window), not across tokens — the reuse Bishop's Token-Time Bundles
//!   add;
//! * there is no bundle-level workload skipping and no dense/sparse
//!   stratification — the single homogeneous array processes everything;
//! * spiking self-attention has no dedicated support: `S = Q·Kᵀ` and
//!   `Y = S·V` are executed as ordinary (multi-bit) matrix products on the
//!   same array, with the score matrix spilled to the global buffers.
//!
//! The model is configured iso-resource with Bishop: 512 PEs, the same
//! global buffers, DRAM channel, clock, and 28 nm energy table.

use bishop_bundle::{BundleShape, TtbTags};
use bishop_core::metrics::{combine_layer, CoreCost, LayerMetrics, RunMetrics};
use bishop_memsys::{EnergyModel, MemoryHierarchy, MemoryTraffic};
use bishop_model::{AttentionWorkload, LayerWorkload, ModelWorkload, ProjectionWorkload};

/// Hardware parameters of the PTB baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct PtbConfig {
    /// Core clock in Hz (500 MHz, same as Bishop).
    pub clock_hz: f64,
    /// Number of PEs in the systolic array (512, same count as Bishop's
    /// dense core for an iso-area comparison).
    pub pes: usize,
    /// Number of timesteps whose spikes share one weight fetch.
    pub time_window: usize,
    /// Number of tokens whose spikes are co-resident in the array and share
    /// one weight fetch (PTB has limited spatial reuse; Bishop's TTBs extend
    /// this to whole bundle groups).
    pub token_parallelism: usize,
    /// Achieved utilisation of the array on spiking workloads.
    pub utilisation: f64,
    /// Parallel LIF lanes of the output stage.
    pub spike_lanes: usize,
    /// Pipeline fill/drain overhead per layer in cycles.
    pub pipeline_overhead_cycles: u64,
}

impl Default for PtbConfig {
    fn default() -> Self {
        Self {
            clock_hz: 500e6,
            pes: 512,
            time_window: 16,
            token_parallelism: 2,
            utilisation: 0.70,
            spike_lanes: 512,
            pipeline_overhead_cycles: 64,
        }
    }
}

impl PtbConfig {
    /// Effective accumulate throughput in operations per cycle.
    pub fn peak_ops_per_cycle(&self) -> f64 {
        self.pes as f64 * self.utilisation
    }
}

/// The PTB accelerator simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct PtbSimulator {
    config: PtbConfig,
    energy: EnergyModel,
    hierarchy: MemoryHierarchy,
}

impl PtbSimulator {
    /// Creates a simulator with the default configuration, energy table and
    /// memory hierarchy.
    pub fn new(config: PtbConfig) -> Self {
        Self {
            config,
            energy: EnergyModel::bishop_28nm(),
            hierarchy: MemoryHierarchy::bishop_default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PtbConfig {
        &self.config
    }

    /// Memory cycles of a traffic record (single GLB port serves the array).
    fn memory_cycles(&self, traffic: &MemoryTraffic) -> u64 {
        let dram = self
            .hierarchy
            .dram
            .transfer_cycles(traffic.dram_bytes(), self.config.clock_hz);
        let glb = self.hierarchy.spike_glb0.access_cycles(traffic.glb_bytes());
        dram.max(glb)
    }

    /// Number of `(token, window, feature)` triples of the input that contain
    /// at least one spike: each costs PTB one weight-row fetch.
    fn weight_fetch_groups(&self, layer: &ProjectionWorkload) -> u64 {
        // A "bundle" of token_parallelism tokens × time_window timesteps
        // reproduces PTB's temporal packing plus its limited spatial reuse,
        // so its active-bundle count is exactly the number of weight fetches
        // PTB performs.
        let window = BundleShape::new(self.config.time_window, self.config.token_parallelism);
        let tags = TtbTags::from_tensor(&layer.input, window);
        tags.active_bundles() as u64
    }

    /// Cost of one MLP/projection layer on PTB.
    fn projection_cost(&self, layer: &ProjectionWorkload) -> (u64, CoreCost) {
        let spikes = layer.input.count_ones() as u64;
        let accumulate_ops = spikes * layer.output_features as u64;
        let compute_cycles =
            (accumulate_ops as f64 / self.config.peak_ops_per_cycle()).ceil() as u64;

        let row_bytes = (layer.output_features * layer.weight_bits).div_ceil(8) as u64;
        let weight_glb_reads = self.weight_fetch_groups(layer) * row_bytes;
        let weight_dram_reads = (layer.input_features() as u64) * row_bytes;

        let shape = layer.input.shape();
        let neuron_updates = (shape.timesteps * shape.tokens * layer.output_features) as u64;

        let compute_energy_pj = accumulate_ops as f64
            * (self.energy.accumulate_pj + self.energy.mux_pj)
            + neuron_updates as f64 * self.energy.lif_update_pj
            + compute_cycles as f64 * self.config.pes as f64 * self.energy.pe_idle_pj_per_cycle;

        let traffic = MemoryTraffic {
            dram_read_bytes: weight_dram_reads + layer.input.packed_bytes() as u64,
            dram_write_bytes: neuron_updates.div_ceil(8),
            glb_read_bytes: weight_glb_reads + spikes * 2,
            glb_write_bytes: neuron_updates.div_ceil(8),
            local_read_bytes: neuron_updates * 2,
            register_bytes: accumulate_ops.div_ceil(8),
            ..MemoryTraffic::new()
        };

        let lif_cycles = neuron_updates.div_ceil(self.config.spike_lanes as u64);
        (
            compute_cycles + lif_cycles,
            CoreCost {
                compute_cycles: compute_cycles + lif_cycles,
                ops: accumulate_ops,
                compute_energy_pj,
                traffic,
            },
        )
    }

    /// Cost of one spiking self-attention layer on PTB (no dedicated core:
    /// executed as two dense multi-bit matrix products).
    fn attention_cost(&self, layer: &AttentionWorkload) -> (u64, CoreCost) {
        let score_ops = layer.score_ops();
        let output_ops = layer.output_ops();
        let mac_ops = score_ops + output_ops;
        let compute_cycles = (mac_ops as f64 / self.config.peak_ops_per_cycle()).ceil() as u64;

        let shape = layer.shape();
        let bitmap_bytes = (shape.len() as u64).div_ceil(8);
        let score_bytes_per_entry = (layer.score_bits as u64).div_ceil(8).max(1);
        // The score matrix does not fit the PE registers without the
        // S-stationary dataflow, so it is written to and re-read from the
        // GLB once per timestep.
        let score_matrix_bytes =
            (shape.timesteps * shape.tokens * shape.tokens) as u64 * score_bytes_per_entry;

        let neuron_updates = shape.len() as u64;
        let compute_energy_pj = mac_ops as f64 * self.energy.mac8_pj
            + neuron_updates as f64 * self.energy.lif_update_pj
            + compute_cycles as f64 * self.config.pes as f64 * self.energy.pe_idle_pj_per_cycle;

        let traffic = MemoryTraffic {
            dram_read_bytes: 3 * bitmap_bytes,
            dram_write_bytes: bitmap_bytes,
            glb_read_bytes: 3 * bitmap_bytes * layer.heads.max(1) as u64 / 2 + score_matrix_bytes,
            glb_write_bytes: score_matrix_bytes + bitmap_bytes,
            local_read_bytes: 3 * bitmap_bytes,
            local_write_bytes: score_matrix_bytes,
            register_bytes: mac_ops.div_ceil(8),
        };

        let lif_cycles = neuron_updates.div_ceil(self.config.spike_lanes as u64);
        (
            compute_cycles + lif_cycles,
            CoreCost {
                compute_cycles: compute_cycles + lif_cycles,
                ops: mac_ops,
                compute_energy_pj,
                traffic,
            },
        )
    }

    /// Simulates one inference of `workload` on PTB.
    pub fn simulate(&self, workload: &ModelWorkload) -> RunMetrics {
        let mut run = RunMetrics::new("PTB", self.config.clock_hz);
        for layer in workload.layers() {
            let metrics = match layer {
                LayerWorkload::Projection(p) => {
                    let (compute_cycles, cost) = self.projection_cost(p);
                    self.layer_metrics(
                        &p.label,
                        p.block,
                        p.kind.group_label(),
                        compute_cycles,
                        &cost,
                    )
                }
                LayerWorkload::Attention(a) => {
                    let (compute_cycles, cost) = self.attention_cost(a);
                    self.layer_metrics(&a.label, a.block, "ATN", compute_cycles, &cost)
                }
            };
            run.push(metrics);
        }
        run
    }

    fn layer_metrics(
        &self,
        label: &str,
        block: usize,
        group: &'static str,
        compute_cycles: u64,
        cost: &CoreCost,
    ) -> LayerMetrics {
        let memory_cycles = self.memory_cycles(&cost.traffic);
        combine_layer(
            label,
            block,
            group,
            compute_cycles,
            memory_cycles,
            self.config.pipeline_overhead_cycles,
            cost,
            &self.energy,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bishop_core::{BishopConfig, BishopSimulator, SimOptions};
    use bishop_model::workload::SyntheticTraceSpec;
    use bishop_model::{DatasetKind, ModelConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spread_workload(seed: u64) -> ModelWorkload {
        let config = ModelConfig::new("ptb-test", DatasetKind::ImageNet100, 2, 4, 64, 128, 4);
        let spec = SyntheticTraceSpec {
            input_density: 0.2,
            q_density: 0.12,
            k_density: 0.08,
            v_density: 0.18,
            hidden_density: 0.15,
            feature_spread: 1.5,
            silent_fraction: 0.05,
            cluster: (2, 4, 2.5),
        };
        let mut rng = StdRng::seed_from_u64(seed);
        ModelWorkload::synthetic(&config, &spec, &mut rng)
    }

    #[test]
    fn ptb_produces_per_layer_metrics() {
        let w = spread_workload(1);
        let run = PtbSimulator::new(PtbConfig::default()).simulate(&w);
        assert_eq!(run.layers.len(), w.layers().len());
        assert!(run.total_latency_seconds() > 0.0);
        assert_eq!(run.accelerator, "PTB");
    }

    #[test]
    fn bishop_is_faster_and_more_efficient_than_ptb() {
        // The headline hardware-only comparison (§6.2/§6.4): Bishop beats PTB
        // on both latency and energy even without BSA/ECP.
        let w = spread_workload(2);
        let ptb = PtbSimulator::new(PtbConfig::default()).simulate(&w);
        let bishop =
            BishopSimulator::new(BishopConfig::default()).simulate(&w, &SimOptions::baseline());
        let speedup = bishop.speedup_vs(&ptb);
        let energy = bishop.energy_improvement_vs(&ptb);
        assert!(speedup > 1.5, "expected a clear speedup, got {speedup:.2}x");
        assert!(speedup < 30.0, "speedup {speedup:.2}x is implausibly large");
        assert!(energy > 1.2, "expected an energy win, got {energy:.2}x");
        assert!(
            energy < 30.0,
            "energy win {energy:.2}x is implausibly large"
        );
    }

    #[test]
    fn ptb_attention_uses_multipliers_and_spills_scores() {
        let w = spread_workload(3);
        let ptb = PtbSimulator::new(PtbConfig::default());
        let attention = w.attention_layers().next().unwrap();
        let (_, cost) = ptb.attention_cost(attention);
        assert_eq!(cost.ops, attention.dense_ops());
        // Score matrix traffic appears in the GLB write stream.
        let shape = attention.shape();
        assert!(
            cost.traffic.glb_write_bytes >= (shape.timesteps * shape.tokens * shape.tokens) as u64
        );
    }

    #[test]
    fn ptb_weight_fetches_scale_with_tokens_not_bundles() {
        let w = spread_workload(4);
        let ptb = PtbSimulator::new(PtbConfig::default());
        let p1 = w.projection_layers().next().unwrap();
        let groups = ptb.weight_fetch_groups(p1);
        // At 20% density almost every (token, window) pair of an active
        // feature holds a spike, so the fetch count approaches
        // tokens × features (far above Bishop's bundle-level fetch count).
        assert!(groups > (p1.input.shape().tokens as u64) * 4);
    }

    #[test]
    fn longer_time_window_reduces_weight_traffic() {
        let w = spread_workload(5);
        let p1 = w.projection_layers().next().unwrap();
        let short = PtbSimulator::new(PtbConfig {
            time_window: 1,
            ..PtbConfig::default()
        });
        let long = PtbSimulator::new(PtbConfig {
            time_window: 16,
            ..PtbConfig::default()
        });
        let (_, short_cost) = short.projection_cost(p1);
        let (_, long_cost) = long.projection_cost(p1);
        assert!(long_cost.traffic.glb_read_bytes < short_cost.traffic.glb_read_bytes);
    }

    #[test]
    fn peak_ops_reflect_utilisation() {
        let config = PtbConfig::default();
        assert!((config.peak_ops_per_cycle() - 512.0 * 0.70).abs() < 1e-9);
    }
}
