//! Edge-GPU baseline (NVIDIA Jetson Nano class), modelled as a roofline.
//!
//! The paper compares Bishop against an edge GPU running the same spiking
//! transformers. A GPU executes the model as dense floating-point tensor
//! operations: it cannot exploit the binary nature of the activations, skips
//! no zero work, and achieves a very low fraction of its peak throughput on
//! the short-sequence, small-batch, temporally iterated workloads spiking
//! transformers produce. The model therefore combines
//!
//! * a compute bound: dense FLOPs / (peak FLOP/s × effective utilisation),
//! * a memory bound: bytes moved / DRAM bandwidth,
//! * a per-timestep kernel-launch overhead,
//!
//! and converts latency to energy with the module's board power.

use bishop_model::profile::WorkloadProfile;
use bishop_model::ModelConfig;

/// Result of running one inference on the edge GPU model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuRunSummary {
    /// End-to-end latency in seconds.
    pub latency_seconds: f64,
    /// Energy in millijoules.
    pub energy_mj: f64,
    /// Dense FLOPs executed.
    pub flops: u64,
    /// Bytes moved through device memory.
    pub bytes: u64,
}

impl GpuRunSummary {
    /// Energy in picojoules (for parity with the accelerator metrics).
    pub fn energy_pj(&self) -> f64 {
        self.energy_mj * 1e9
    }
}

/// Roofline model of a Jetson-Nano-class edge GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeGpuModel {
    /// Peak half-precision throughput in FLOP/s.
    pub peak_flops: f64,
    /// Device memory bandwidth in bytes/s.
    pub memory_bandwidth: f64,
    /// Effective fraction of peak sustained on spiking-transformer inference
    /// (sparse binary operands, T sequential timesteps, batch size 1).
    pub utilisation: f64,
    /// Board power in watts while running inference.
    pub power_watts: f64,
    /// Bytes per tensor element (fp16).
    pub bytes_per_element: usize,
    /// Fixed kernel-launch / framework overhead per timestep per block, in
    /// seconds.
    pub launch_overhead_seconds: f64,
}

impl EdgeGpuModel {
    /// A Jetson-Nano-class configuration: 472 GFLOP/s fp16 peak, 25.6 GB/s
    /// LPDDR4, 10 W module power.
    pub fn jetson_nano() -> Self {
        Self {
            peak_flops: 472e9,
            memory_bandwidth: 25.6e9,
            utilisation: 0.06,
            power_watts: 10.0,
            bytes_per_element: 2,
            launch_overhead_seconds: 40e-6,
        }
    }

    /// Estimates the device-memory traffic of one inference: weights are
    /// read once per timestep (no cross-timestep reuse of the working set in
    /// cache for these model sizes) and activations are written/read between
    /// every layer.
    fn bytes_moved(&self, config: &ModelConfig) -> u64 {
        let weights = config.encoder_parameter_count() as u64 * self.bytes_per_element as u64;
        let activations_per_layer =
            (config.tokens * config.features) as u64 * self.bytes_per_element as u64;
        let layers = (config.blocks * 5) as u64;
        let timesteps = config.timesteps as u64;
        weights * timesteps + activations_per_layer * layers * timesteps * 2
    }

    /// Runs the roofline model for one inference of `config`.
    pub fn simulate(&self, config: &ModelConfig) -> GpuRunSummary {
        let profile = WorkloadProfile::of(config);
        let flops = profile.total();
        let bytes = self.bytes_moved(config);

        let compute_seconds = flops as f64 / (self.peak_flops * self.utilisation);
        let memory_seconds = bytes as f64 / self.memory_bandwidth;
        let overhead_seconds =
            self.launch_overhead_seconds * (config.timesteps * config.blocks * 5) as f64;
        let latency_seconds = compute_seconds.max(memory_seconds) + overhead_seconds;
        let energy_mj = self.power_watts * latency_seconds * 1e3;

        GpuRunSummary {
            latency_seconds,
            energy_mj,
            flops,
            bytes,
        }
    }
}

impl Default for EdgeGpuModel {
    fn default() -> Self {
        Self::jetson_nano()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jetson_constants_are_sane() {
        let gpu = EdgeGpuModel::jetson_nano();
        assert!(gpu.peak_flops > 1e11);
        assert!(gpu.memory_bandwidth > 1e10);
        assert!(gpu.utilisation > 0.0 && gpu.utilisation < 0.2);
    }

    #[test]
    fn bigger_models_take_longer() {
        let gpu = EdgeGpuModel::jetson_nano();
        let small = gpu.simulate(&ModelConfig::model4_dvs_gesture());
        let large = gpu.simulate(&ModelConfig::model1_cifar10());
        assert!(large.latency_seconds > small.latency_seconds);
        assert!(large.energy_mj > small.energy_mj);
    }

    #[test]
    fn latency_is_in_the_milliseconds_range_for_paper_models() {
        // The paper reports the edge GPU to be hundreds of times slower than
        // Bishop (whose inferences take on the order of a millisecond), so
        // GPU latencies should land in the hundreds-of-milliseconds range.
        let gpu = EdgeGpuModel::jetson_nano();
        for config in ModelConfig::paper_models() {
            let run = gpu.simulate(&config);
            assert!(
                run.latency_seconds > 1e-3 && run.latency_seconds < 10.0,
                "{}: unexpected GPU latency {}s",
                config.name,
                run.latency_seconds
            );
        }
    }

    #[test]
    fn energy_follows_latency_times_power() {
        let gpu = EdgeGpuModel::jetson_nano();
        let run = gpu.simulate(&ModelConfig::model3_imagenet100());
        assert!((run.energy_mj - 10.0 * run.latency_seconds * 1e3).abs() < 1e-9);
        assert!((run.energy_pj() - run.energy_mj * 1e9).abs() < 1.0);
    }

    #[test]
    fn higher_utilisation_reduces_latency() {
        let slow = EdgeGpuModel::jetson_nano();
        let fast = EdgeGpuModel {
            utilisation: 0.2,
            ..EdgeGpuModel::jetson_nano()
        };
        let config = ModelConfig::model5_google_sc();
        assert!(fast.simulate(&config).latency_seconds <= slow.simulate(&config).latency_seconds);
    }
}
