//! Live observability: gateway-side counters plus a Prometheus text-format
//! (version 0.0.4) renderer combining them with the runtime's counters.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use bishop_runtime::OnlineStats;

/// HTTP- and connection-level counters maintained by the gateway itself.
/// Runtime-level counters (queue depth, shed totals, simulated work) come
/// from [`OnlineStats`] at render time.
#[derive(Debug, Default)]
pub struct GatewayMetrics {
    /// Connections the acceptor admitted.
    connections_accepted: AtomicU64,
    /// Connections turned away at the concurrency cap.
    connections_rejected: AtomicU64,
    /// Connections currently open.
    connections_active: AtomicU64,
    /// Responses sent, by HTTP status code.
    responses_by_status: Mutex<BTreeMap<u16, u64>>,
    /// Requests that failed to parse (a subset also got an error response).
    parse_errors: AtomicU64,
}

impl GatewayMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an accepted connection; pair with [`Self::connection_closed`].
    pub fn connection_opened(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
        self.connections_active.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection turned away at the concurrency cap.
    pub fn connection_rejected(&self) {
        self.connections_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a closed connection.
    pub fn connection_closed(&self) {
        self.connections_active.fetch_sub(1, Ordering::Relaxed);
    }

    /// Currently open connections.
    pub fn active_connections(&self) -> u64 {
        self.connections_active.load(Ordering::Relaxed)
    }

    /// Records one response by status code.
    pub fn response(&self, status: u16) {
        *self
            .responses_by_status
            .lock()
            .expect("status map lock")
            .entry(status)
            .or_insert(0) += 1;
    }

    /// Responses sent with the given status so far.
    pub fn responses_with_status(&self, status: u16) -> u64 {
        self.responses_by_status
            .lock()
            .expect("status map lock")
            .get(&status)
            .copied()
            .unwrap_or(0)
    }

    /// Records a request that failed to parse.
    pub fn parse_error(&self) {
        self.parse_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the combined gateway + runtime state in Prometheus text
    /// format.
    pub fn render_prometheus(&self, runtime: &OnlineStats) -> String {
        let mut out = String::with_capacity(2048);
        let mut counter = |name: &str, help: &str, value: f64| {
            render_metric(&mut out, name, help, "counter", None, value);
        };
        counter(
            "bishop_gateway_connections_accepted_total",
            "Connections admitted by the acceptor.",
            self.connections_accepted.load(Ordering::Relaxed) as f64,
        );
        counter(
            "bishop_gateway_connections_rejected_total",
            "Connections turned away at the concurrency cap.",
            self.connections_rejected.load(Ordering::Relaxed) as f64,
        );
        counter(
            "bishop_gateway_parse_errors_total",
            "Requests that failed HTTP parsing or violated size limits.",
            self.parse_errors.load(Ordering::Relaxed) as f64,
        );

        {
            let statuses = self.responses_by_status.lock().expect("status map lock");
            out.push_str(
                "# HELP bishop_gateway_http_responses_total Responses sent, by status code.\n\
                 # TYPE bishop_gateway_http_responses_total counter\n",
            );
            for (status, count) in statuses.iter() {
                out.push_str(&format!(
                    "bishop_gateway_http_responses_total{{status=\"{status}\"}} {count}\n"
                ));
            }
        }

        render_metric(
            &mut out,
            "bishop_gateway_connections_active",
            "Connections currently open.",
            "gauge",
            None,
            self.connections_active.load(Ordering::Relaxed) as f64,
        );

        let mut runtime_counter = |name: &str, help: &str, value: f64| {
            render_metric(&mut out, name, help, "counter", None, value);
        };
        runtime_counter(
            "bishop_runtime_requests_submitted_total",
            "Requests offered to admission control.",
            runtime.submitted as f64,
        );
        runtime_counter(
            "bishop_runtime_requests_admitted_total",
            "Requests admitted into the submission queue.",
            runtime.admitted as f64,
        );
        runtime_counter(
            "bishop_runtime_requests_completed_total",
            "Requests whose batch executed successfully.",
            runtime.completed as f64,
        );
        runtime_counter(
            "bishop_runtime_requests_failed_total",
            "Requests whose engine refused the batch (typed ServeError).",
            runtime.failed as f64,
        );
        runtime_counter(
            "bishop_runtime_batches_executed_total",
            "Batches executed by the worker pool.",
            runtime.batches_executed as f64,
        );
        runtime_counter(
            "bishop_runtime_simulated_cycles_total",
            "Total simulated chip-busy cycles.",
            runtime.total_simulated_cycles as f64,
        );
        runtime_counter(
            "bishop_runtime_simulated_energy_millijoules_total",
            "Total simulated energy in millijoules.",
            runtime.total_energy_mj,
        );

        out.push_str(
            "# HELP bishop_runtime_requests_shed_total Requests shed by admission control, by reason.\n\
             # TYPE bishop_runtime_requests_shed_total counter\n",
        );
        for (reason, value) in [
            ("queue_full", runtime.admission.queue_full),
            ("deadline", runtime.admission.deadline),
            ("shutdown", runtime.admission.shutdown),
        ] {
            out.push_str(&format!(
                "bishop_runtime_requests_shed_total{{reason=\"{reason}\"}} {value}\n"
            ));
        }

        let mut gauge = |name: &str, help: &str, value: f64| {
            render_metric(&mut out, name, help, "gauge", None, value);
        };
        gauge(
            "bishop_runtime_queue_depth",
            "Requests admitted but not yet completed.",
            runtime.queue_depth as f64,
        );
        gauge(
            "bishop_runtime_backlog_ops",
            "Estimated dense ops of the admitted backlog.",
            runtime.backlog_ops as f64,
        );
        gauge(
            "bishop_runtime_mean_latency_seconds",
            "Mean simulated per-request latency.",
            runtime.mean_latency_seconds,
        );
        gauge(
            "bishop_runtime_max_latency_seconds",
            "Worst simulated per-request latency.",
            runtime.max_latency_seconds,
        );
        out
    }
}

fn render_metric(
    out: &mut String,
    name: &str,
    help: &str,
    kind: &str,
    label: Option<(&str, &str)>,
    value: f64,
) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
    match label {
        Some((key, val)) => out.push_str(&format!("{name}{{{key}=\"{val}\"}} {value}\n")),
        None => out.push_str(&format!("{name} {value}\n")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_prometheus_text() {
        let metrics = GatewayMetrics::new();
        metrics.connection_opened();
        metrics.response(200);
        metrics.response(200);
        metrics.response(429);
        let runtime = OnlineStats {
            submitted: 3,
            admitted: 2,
            completed: 2,
            queue_depth: 0,
            ..OnlineStats::default()
        };
        let text = metrics.render_prometheus(&runtime);
        assert!(text.contains("# TYPE bishop_gateway_http_responses_total counter"));
        assert!(text.contains("bishop_gateway_http_responses_total{status=\"200\"} 2"));
        assert!(text.contains("bishop_gateway_http_responses_total{status=\"429\"} 1"));
        assert!(text.contains("bishop_runtime_requests_submitted_total 3"));
        assert!(text.contains("bishop_runtime_requests_shed_total{reason=\"queue_full\"} 0"));
        assert!(text.contains("bishop_gateway_connections_active 1"));
    }
}
