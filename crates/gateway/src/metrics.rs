//! Live observability: gateway-side counters plus a Prometheus text-format
//! (version 0.0.4) renderer combining them with the runtime's counters.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use bishop_obs::ObsHub;
use bishop_runtime::OnlineStats;
use bishop_session::SessionStoreStats;

/// HTTP- and connection-level counters maintained by the gateway itself.
/// Runtime-level counters (queue depth, shed totals, simulated work) come
/// from [`OnlineStats`] at render time.
#[derive(Debug, Default)]
pub struct GatewayMetrics {
    /// Connections the acceptor admitted.
    connections_accepted: AtomicU64,
    /// Connections turned away at the concurrency cap.
    connections_rejected: AtomicU64,
    /// Connections currently open.
    connections_active: AtomicU64,
    /// Responses sent, by HTTP status code.
    responses_by_status: Mutex<BTreeMap<u16, u64>>,
    /// Requests that failed to parse (a subset also got an error response).
    parse_errors: AtomicU64,
}

impl GatewayMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an accepted connection; pair with [`Self::connection_closed`].
    pub fn connection_opened(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
        self.connections_active.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection turned away at the concurrency cap.
    pub fn connection_rejected(&self) {
        self.connections_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a closed connection.
    pub fn connection_closed(&self) {
        self.connections_active.fetch_sub(1, Ordering::Relaxed);
    }

    /// Currently open connections.
    pub fn active_connections(&self) -> u64 {
        self.connections_active.load(Ordering::Relaxed)
    }

    /// Records one response by status code.
    pub fn response(&self, status: u16) {
        *self
            .responses_by_status
            .lock()
            .expect("status map lock")
            .entry(status)
            .or_insert(0) += 1;
    }

    /// Responses sent with the given status so far.
    pub fn responses_with_status(&self, status: u16) -> u64 {
        self.responses_by_status
            .lock()
            .expect("status map lock")
            .get(&status)
            .copied()
            .unwrap_or(0)
    }

    /// Records a request that failed to parse.
    pub fn parse_error(&self) {
        self.parse_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the combined gateway + runtime + observability state in
    /// Prometheus text format: the gateway's HTTP counters, the runtime's
    /// scheduling counters, then the obs hub's log-bucketed stage-latency
    /// histograms (`bishop_stage_seconds`), router decision counters
    /// (`bishop_router_decisions_total`), SLO compliance/burn gauges
    /// (`bishop_slo_*`) and profiler self-time totals
    /// (`bishop_profile_seconds_total`). When a session store's stats are
    /// provided, the session gauge/counters
    /// (`bishop_sessions_active`, `bishop_sessions_evicted_total`) ride
    /// along with the per-engine streamed-event counter
    /// (`bishop_stream_events_total`).
    pub fn render_prometheus(
        &self,
        runtime: &OnlineStats,
        obs: &ObsHub,
        sessions: Option<&SessionStoreStats>,
    ) -> String {
        let mut out = String::with_capacity(2048);
        let mut counter = |name: &str, help: &str, value: f64| {
            render_metric(&mut out, name, help, "counter", None, value);
        };
        counter(
            "bishop_gateway_connections_accepted_total",
            "Connections admitted by the acceptor.",
            self.connections_accepted.load(Ordering::Relaxed) as f64,
        );
        counter(
            "bishop_gateway_connections_rejected_total",
            "Connections turned away at the concurrency cap.",
            self.connections_rejected.load(Ordering::Relaxed) as f64,
        );
        counter(
            "bishop_gateway_parse_errors_total",
            "Requests that failed HTTP parsing or violated size limits.",
            self.parse_errors.load(Ordering::Relaxed) as f64,
        );

        {
            let statuses = self.responses_by_status.lock().expect("status map lock");
            out.push_str(
                "# HELP bishop_gateway_http_responses_total Responses sent, by status code.\n\
                 # TYPE bishop_gateway_http_responses_total counter\n",
            );
            for (status, count) in statuses.iter() {
                out.push_str(&format!(
                    "bishop_gateway_http_responses_total{{status=\"{status}\"}} {count}\n"
                ));
            }
        }

        render_metric(
            &mut out,
            "bishop_gateway_connections_active",
            "Connections currently open.",
            "gauge",
            None,
            self.connections_active.load(Ordering::Relaxed) as f64,
        );

        let mut runtime_counter = |name: &str, help: &str, value: f64| {
            render_metric(&mut out, name, help, "counter", None, value);
        };
        runtime_counter(
            "bishop_runtime_requests_submitted_total",
            "Requests offered to admission control.",
            runtime.submitted as f64,
        );
        runtime_counter(
            "bishop_runtime_requests_admitted_total",
            "Requests admitted into the submission queue.",
            runtime.admitted as f64,
        );
        runtime_counter(
            "bishop_runtime_requests_completed_total",
            "Requests whose batch executed successfully.",
            runtime.completed as f64,
        );
        runtime_counter(
            "bishop_runtime_requests_failed_total",
            "Requests whose engine refused the batch (typed ServeError).",
            runtime.failed as f64,
        );
        runtime_counter(
            "bishop_runtime_batches_executed_total",
            "Batches executed by the worker pool.",
            runtime.batches_executed as f64,
        );
        runtime_counter(
            "bishop_runtime_simulated_cycles_total",
            "Total simulated chip-busy cycles.",
            runtime.total_simulated_cycles as f64,
        );
        runtime_counter(
            "bishop_runtime_simulated_energy_millijoules_total",
            "Total simulated energy in millijoules.",
            runtime.total_energy_mj,
        );

        out.push_str(
            "# HELP bishop_runtime_requests_shed_total Requests shed by admission control, by reason.\n\
             # TYPE bishop_runtime_requests_shed_total counter\n",
        );
        for (reason, value) in [
            ("queue_full", runtime.admission.queue_full),
            ("deadline", runtime.admission.deadline),
            ("no_engine_meets_deadline", runtime.admission.no_engine),
            ("engine_unavailable", runtime.admission.unavailable),
            ("shutdown", runtime.admission.shutdown),
        ] {
            out.push_str(&format!(
                "bishop_runtime_requests_shed_total{{reason=\"{reason}\"}} {value}\n"
            ));
        }

        // Queue depth: the global gauge plus one labeled sample per engine
        // scheduling domain (same metric family).
        out.push_str(
            "# HELP bishop_runtime_queue_depth Requests admitted but not yet completed \
             (unlabeled: all domains; engine label: one scheduling domain).\n\
             # TYPE bishop_runtime_queue_depth gauge\n",
        );
        out.push_str(&format!(
            "bishop_runtime_queue_depth {}\n",
            runtime.queue_depth as f64
        ));
        for engine in &runtime.engines {
            out.push_str(&format!(
                "bishop_runtime_queue_depth{{engine=\"{}\"}} {}\n",
                engine.engine, engine.queue_depth as f64
            ));
        }

        // Per-engine scheduling-domain series.
        let mut engine_family =
            |name: &str,
             help: &str,
             kind: &str,
             value: fn(&bishop_runtime::EngineLoadStats) -> f64| {
                out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
                for engine in &runtime.engines {
                    out.push_str(&format!(
                        "{name}{{engine=\"{}\"}} {}\n",
                        engine.engine,
                        value(engine)
                    ));
                }
            };
        engine_family(
            "bishop_runtime_batches_total",
            "Batches executed, by engine scheduling domain.",
            "counter",
            |e| e.batches_executed as f64,
        );
        engine_family(
            "bishop_runtime_engine_completed_total",
            "Requests completed, by engine.",
            "counter",
            |e| e.completed as f64,
        );
        engine_family(
            "bishop_runtime_engine_failed_total",
            "Requests failed with a typed engine refusal, by engine.",
            "counter",
            |e| e.failed as f64,
        );
        engine_family(
            "bishop_runtime_drain_ops_per_second",
            "Calibrated drain rate (EWMA of observed ops/second), by engine.",
            "gauge",
            |e| e.drain_ops_per_second,
        );
        engine_family(
            "bishop_breaker_state",
            "Circuit-breaker state, by engine: 0 = closed, 1 = half-open, 2 = open.",
            "gauge",
            |e| e.breaker.state.metric_value() as f64,
        );
        engine_family(
            "bishop_breaker_opened_total",
            "Circuit-breaker trips since boot, by engine.",
            "counter",
            |e| e.breaker.opened_total as f64,
        );
        engine_family(
            "bishop_worker_panics_total",
            "Engine panics contained by domain workers, by engine.",
            "counter",
            |e| e.worker_panics as f64,
        );
        engine_family(
            "bishop_stream_events_total",
            "Per-step progress events forwarded to streamed tickets, by engine.",
            "counter",
            |e| e.stream_events as f64,
        );

        // Session-slot occupancy and eviction counters, when the gateway
        // runs a session store.
        if let Some(stats) = sessions {
            render_metric(
                &mut out,
                "bishop_sessions_active",
                "Live sessions holding a persistent state slot.",
                "gauge",
                None,
                stats.active as f64,
            );
            out.push_str(
                "# HELP bishop_sessions_evicted_total Sessions evicted, by reason.\n\
                 # TYPE bishop_sessions_evicted_total counter\n",
            );
            for (reason, value) in [
                ("ttl", stats.evicted_ttl),
                ("capacity", stats.evicted_capacity),
                ("explicit", stats.evicted_explicit),
            ] {
                out.push_str(&format!(
                    "bishop_sessions_evicted_total{{reason=\"{reason}\"}} {value}\n"
                ));
            }
        }

        // Retry outcomes, by engine: attempted counts every re-execution,
        // recovered the batches a retry saved, exhausted the batches that
        // failed with max_attempts spent, budget_denied the retries the
        // shared budget refused (outage anti-amplification).
        out.push_str(
            "# HELP bishop_retries_total Batch execution retries, by engine and outcome.\n\
             # TYPE bishop_retries_total counter\n",
        );
        for engine in &runtime.engines {
            for (outcome, value) in [
                ("attempted", engine.retries_attempted),
                ("recovered", engine.retries_recovered),
                ("exhausted", engine.retries_exhausted),
                ("budget_denied", engine.retry_budget_denied),
            ] {
                out.push_str(&format!(
                    "bishop_retries_total{{engine=\"{}\",outcome=\"{outcome}\"}} {value}\n",
                    engine.engine
                ));
            }
        }

        // Backlog: like queue depth, the global gauge and the per-domain
        // labeled samples share one metric family, so aggregations over
        // either view reconcile.
        out.push_str(
            "# HELP bishop_runtime_backlog_ops Estimated dense ops of the admitted backlog \
             (unlabeled: all domains; engine label: one scheduling domain).\n\
             # TYPE bishop_runtime_backlog_ops gauge\n",
        );
        out.push_str(&format!(
            "bishop_runtime_backlog_ops {}\n",
            runtime.backlog_ops as f64
        ));
        for engine in &runtime.engines {
            out.push_str(&format!(
                "bishop_runtime_backlog_ops{{engine=\"{}\"}} {}\n",
                engine.engine, engine.backlog_ops as f64
            ));
        }

        let mut gauge = |name: &str, help: &str, value: f64| {
            render_metric(&mut out, name, help, "gauge", None, value);
        };
        gauge(
            "bishop_runtime_mean_latency_seconds",
            "Mean simulated per-request latency.",
            runtime.mean_latency_seconds,
        );
        gauge(
            "bishop_runtime_max_latency_seconds",
            "Worst simulated per-request latency.",
            runtime.max_latency_seconds,
        );

        // The source of truth for latency distributions: exact log-bucketed
        // histograms per (engine, stage), replacing the bounded-window
        // p50/p95 gauges this endpoint used to export (those summaries
        // remain on /v1/engines). Router decision counters ride along.
        obs.histograms.render_into(&mut out);
        obs.router.render_into(&mut out);
        // The temporal layer: SLO compliance/burn (evaluated as a pure
        // read against the sampler-fed time-series store) and the
        // profiler's per-stage self-time totals.
        obs.slo.render_into(&mut out, &obs.timeseries);
        obs.profiler.render_into(&mut out);
        out
    }
}

fn render_metric(
    out: &mut String,
    name: &str,
    help: &str,
    kind: &str,
    label: Option<(&str, &str)>,
    value: f64,
) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
    match label {
        Some((key, val)) => out.push_str(&format!("{name}{{{key}=\"{val}\"}} {value}\n")),
        None => out.push_str(&format!("{name} {value}\n")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_prometheus_text() {
        let metrics = GatewayMetrics::new();
        metrics.connection_opened();
        metrics.response(200);
        metrics.response(200);
        metrics.response(429);
        let runtime = OnlineStats {
            submitted: 3,
            admitted: 2,
            completed: 2,
            queue_depth: 0,
            ..OnlineStats::default()
        };
        let text = metrics.render_prometheus(&runtime, &ObsHub::default(), None);
        assert!(text.contains("# TYPE bishop_gateway_http_responses_total counter"));
        assert!(text.contains("bishop_gateway_http_responses_total{status=\"200\"} 2"));
        assert!(text.contains("bishop_gateway_http_responses_total{status=\"429\"} 1"));
        assert!(text.contains("bishop_runtime_requests_submitted_total 3"));
        assert!(text.contains("bishop_runtime_requests_shed_total{reason=\"queue_full\"} 0"));
        assert!(text
            .contains("bishop_runtime_requests_shed_total{reason=\"no_engine_meets_deadline\"} 0"));
        assert!(text.contains("bishop_gateway_connections_active 1"));
    }

    #[test]
    fn renders_per_engine_scheduling_series() {
        use bishop_runtime::{EngineLoadStats, LatencyPercentiles};
        let metrics = GatewayMetrics::new();
        let runtime = OnlineStats {
            queue_depth: 5,
            engines: vec![
                EngineLoadStats {
                    engine: bishop_engine::EngineName::simulator(),
                    queue_depth: 1,
                    backlog_ops: 10,
                    batches_executed: 4,
                    completed: 8,
                    failed: 0,
                    drain_ops_per_second: 5e9,
                    drain_observations: 4,
                    latency: LatencyPercentiles {
                        p50: 0.001,
                        p95: 0.002,
                        p99: 0.002,
                        mean: 0.001,
                        max: 0.002,
                    },
                    ..EngineLoadStats::default()
                },
                EngineLoadStats {
                    engine: bishop_engine::EngineName::native(),
                    queue_depth: 4,
                    backlog_ops: 999,
                    batches_executed: 2,
                    completed: 3,
                    failed: 1,
                    drain_ops_per_second: 2e9,
                    drain_observations: 2,
                    latency: LatencyPercentiles::default(),
                    worker_panics: 2,
                    retries_attempted: 5,
                    retries_recovered: 3,
                    retries_exhausted: 1,
                    retry_budget_denied: 4,
                    ..EngineLoadStats::default()
                },
            ],
            ..OnlineStats::default()
        };
        let text = metrics.render_prometheus(&runtime, &ObsHub::default(), None);
        // The global gauge and the per-domain labeled samples share one
        // metric family.
        assert!(text.contains("bishop_runtime_queue_depth 5"));
        assert!(text.contains("bishop_runtime_queue_depth{engine=\"simulator\"} 1"));
        assert!(text.contains("bishop_runtime_queue_depth{engine=\"native\"} 4"));
        assert!(text.contains("bishop_runtime_backlog_ops{engine=\"native\"} 999"));
        assert_eq!(
            text.matches("# TYPE bishop_runtime_backlog_ops gauge")
                .count(),
            1,
            "global and per-engine backlog share one metric family"
        );
        assert!(text.contains("bishop_runtime_batches_total{engine=\"simulator\"} 4"));
        assert!(text.contains("bishop_runtime_batches_total{engine=\"native\"} 2"));
        assert!(text.contains("bishop_runtime_drain_ops_per_second{engine=\"native\"} 2000000000"));
        assert!(text.contains("bishop_runtime_engine_failed_total{engine=\"native\"} 1"));
        // The lossy windowed p50/p95 gauges are gone from the scrape; the
        // histogram family is the source of truth for distributions.
        assert!(!text.contains("bishop_runtime_engine_latency_seconds_p"));
        // Fault-tolerance families: breaker state gauge, contained panics,
        // and retry outcomes — one HELP/TYPE header each.
        assert!(text.contains("bishop_breaker_state{engine=\"simulator\"} 0"));
        assert!(text.contains("bishop_worker_panics_total{engine=\"native\"} 2"));
        assert!(text.contains("bishop_retries_total{engine=\"native\",outcome=\"attempted\"} 5"));
        assert!(text.contains("bishop_retries_total{engine=\"native\",outcome=\"recovered\"} 3"));
        assert!(text.contains("bishop_retries_total{engine=\"native\",outcome=\"exhausted\"} 1"));
        assert!(
            text.contains("bishop_retries_total{engine=\"native\",outcome=\"budget_denied\"} 4")
        );
        assert_eq!(
            text.matches("# TYPE bishop_retries_total counter").count(),
            1
        );
        assert!(
            text.contains("bishop_runtime_requests_shed_total{reason=\"engine_unavailable\"} 0")
        );
        // Exactly one HELP/TYPE header per family even with many engines.
        assert_eq!(
            text.matches("# TYPE bishop_runtime_queue_depth gauge")
                .count(),
            1
        );
    }

    #[test]
    fn renders_obs_histograms_and_router_counters() {
        use bishop_obs::{RouterCandidate, RouterDecision, RouterVerdict};
        let metrics = GatewayMetrics::new();
        let obs = ObsHub::default();
        obs.histograms.record("simulator", "engine_execute", 0.002);
        obs.histograms.record("simulator", "queue_wait", 1e-5);
        obs.router.record(&RouterDecision {
            deadline_seconds: Some(0.01),
            candidates: vec![RouterCandidate {
                engine: "native".to_string(),
                eligible: true,
                predicted_seconds: Some(0.001),
                meets_deadline: Some(true),
                breaker_open: false,
            }],
            verdict: RouterVerdict::Chosen {
                engine: "native".to_string(),
                degraded: false,
            },
        });
        let text = metrics.render_prometheus(&OnlineStats::default(), &obs, None);
        // One HELP/TYPE header for the whole histogram family, then the
        // labeled bucket/sum/count series.
        assert_eq!(
            text.matches("# TYPE bishop_stage_seconds histogram")
                .count(),
            1
        );
        assert!(text.contains(
            "bishop_stage_seconds_bucket{engine=\"simulator\",stage=\"engine_execute\",le=\"+Inf\"} 1"
        ));
        assert!(text
            .contains("bishop_stage_seconds_count{engine=\"simulator\",stage=\"queue_wait\"} 1"));
        assert!(
            text.contains("bishop_router_decisions_total{engine=\"native\",verdict=\"chosen\"} 1")
        );
    }

    #[test]
    fn renders_session_and_stream_families() {
        use bishop_runtime::EngineLoadStats;
        let metrics = GatewayMetrics::new();
        let runtime = OnlineStats {
            engines: vec![EngineLoadStats {
                engine: bishop_engine::EngineName::native(),
                stream_events: 12,
                ..EngineLoadStats::default()
            }],
            ..OnlineStats::default()
        };
        // Without a session store the session families are absent but the
        // per-engine stream counter still renders.
        let text = metrics.render_prometheus(&runtime, &ObsHub::default(), None);
        assert!(text.contains("bishop_stream_events_total{engine=\"native\"} 12"));
        assert!(!text.contains("bishop_sessions_active"));

        let stats = SessionStoreStats {
            active: 3,
            evicted_ttl: 2,
            evicted_capacity: 1,
            evicted_explicit: 4,
        };
        let text = metrics.render_prometheus(&runtime, &ObsHub::default(), Some(&stats));
        assert!(text.contains("bishop_sessions_active 3"));
        assert!(text.contains("bishop_sessions_evicted_total{reason=\"ttl\"} 2"));
        assert!(text.contains("bishop_sessions_evicted_total{reason=\"capacity\"} 1"));
        assert!(text.contains("bishop_sessions_evicted_total{reason=\"explicit\"} 4"));
    }
}
