//! A hand-rolled HTTP/1.1 request parser and response writer on plain
//! `std::io` streams — no external dependencies.
//!
//! The parser is *incremental*: it reads from the socket into an internal
//! buffer until a full head (`\r\n\r\n`) and declared body are available,
//! enforcing size limits while bytes arrive (an oversized request is
//! rejected before it is ever buffered whole). Leftover bytes stay in the
//! buffer, so pipelined or keep-alive requests on one connection parse
//! naturally. Socket read timeouts surface as [`ParseError::Timeout`] —
//! that is the slow-loris defence: a client trickling a request slower
//! than the configured timeout gets `408` and the connection closed.

use std::io::{self, Read, Write};

/// Size limits enforced while a request streams in.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Maximum bytes of declared body.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 64 * 1024,
        }
    }
}

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), uppercase as sent.
    pub method: String,
    /// Request target (path + optional query), as sent.
    pub target: String,
    /// `true` for HTTP/1.1, `false` for HTTP/1.0.
    pub http11: bool,
    /// Header name/value pairs in arrival order; names kept as sent.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The path portion of the target (query string stripped).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// The raw query string of the target (without the `?`), if any.
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, query)| query)
    }

    /// Whether the query string contains `key=value` (or bare `key` when
    /// `value` is empty) among its `&`-separated parameters. No percent
    /// decoding — the gateway's query parameters are plain tokens.
    pub fn query_flag(&self, key: &str, value: &str) -> bool {
        self.query().is_some_and(|query| {
            query.split('&').any(|pair| {
                let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
                k == key && v == value
            })
        })
    }

    /// The value of the first `key=value` pair among the `&`-separated
    /// query parameters (a bare `key` reads as the empty value). No percent
    /// decoding — the gateway's query parameters are plain tokens.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query()?.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == key).then_some(v)
        })
    }

    /// Whether the connection should stay open after the response:
    /// HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close, and an explicit
    /// `Connection` header overrides either.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(value) if value.eq_ignore_ascii_case("close") => false,
            Some(value) if value.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// Why a request could not be parsed. Each maps to one HTTP status.
#[derive(Debug)]
pub enum ParseError {
    /// Syntactically invalid request (`400`).
    BadRequest(String),
    /// Request line + headers exceeded `max_head_bytes` (`431`).
    HeadTooLarge,
    /// Declared body exceeds `max_body_bytes` (`413`).
    BodyTooLarge,
    /// A feature this server does not implement (`501`), e.g. chunked
    /// request bodies.
    Unsupported(String),
    /// An HTTP version other than 1.0/1.1 (`505`).
    BadVersion,
    /// The socket read timed out. `mid_request` distinguishes a slow-loris
    /// stall inside a request (`408`) from an idle keep-alive connection
    /// timing out between requests (quiet close).
    Timeout {
        /// Whether any bytes of the next request had already arrived.
        mid_request: bool,
    },
    /// The peer closed the connection mid-request.
    UnexpectedEof,
    /// Any other socket error.
    Io(io::Error),
}

impl ParseError {
    /// The HTTP status code this error maps to, if a response is owed.
    pub fn status(&self) -> Option<u16> {
        match self {
            ParseError::BadRequest(_) => Some(400),
            ParseError::HeadTooLarge => Some(431),
            ParseError::BodyTooLarge => Some(413),
            ParseError::Unsupported(_) => Some(501),
            ParseError::BadVersion => Some(505),
            ParseError::Timeout { mid_request: true } => Some(408),
            ParseError::Timeout { mid_request: false } => None,
            ParseError::UnexpectedEof | ParseError::Io(_) => None,
        }
    }
}

/// Incremental request reader over one connection.
#[derive(Debug)]
pub struct RequestReader<R> {
    stream: R,
    buffer: Vec<u8>,
    limits: Limits,
}

impl<R: Read> RequestReader<R> {
    /// Wraps a readable stream.
    pub fn new(stream: R, limits: Limits) -> Self {
        Self {
            stream,
            buffer: Vec::new(),
            limits,
        }
    }

    /// Reads the next request off the connection. `Ok(None)` means the peer
    /// closed cleanly between requests.
    pub fn read_request(&mut self) -> Result<Option<Request>, ParseError> {
        // Phase 1: accumulate the head.
        let head_end = loop {
            if let Some(end) = find_head_end(&self.buffer) {
                break end;
            }
            if self.buffer.len() > self.limits.max_head_bytes {
                return Err(ParseError::HeadTooLarge);
            }
            match self.fill()? {
                0 if self.buffer.is_empty() => return Ok(None),
                0 => return Err(ParseError::UnexpectedEof),
                _ => {}
            }
        };

        let head = std::str::from_utf8(&self.buffer[..head_end])
            .map_err(|_| ParseError::BadRequest("non-UTF-8 request head".into()))?;
        if head.len() > self.limits.max_head_bytes {
            return Err(ParseError::HeadTooLarge);
        }
        let (method, target, http11, headers) = parse_head(head)?;

        // Phase 2: the declared body. A chunked transfer-encoding takes
        // precedence over any Content-Length (RFC 9112 §6.3); encodings
        // other than a single `chunked` stay a typed 501.
        let body_start = head_end + 4;
        let (body, consumed) = match header_value(&headers, "transfer-encoding") {
            Some(encoding) if encoding.trim().eq_ignore_ascii_case("chunked") => {
                self.read_chunked_body(body_start)?
            }
            Some(encoding) => {
                return Err(ParseError::Unsupported(format!(
                    "transfer-encoding \"{}\"",
                    encoding.trim()
                )));
            }
            None => {
                let content_length = match header_value(&headers, "content-length") {
                    Some(text) => text
                        .trim()
                        .parse::<usize>()
                        .map_err(|_| ParseError::BadRequest("invalid Content-Length".into()))?,
                    None => 0,
                };
                if content_length > self.limits.max_body_bytes {
                    return Err(ParseError::BodyTooLarge);
                }
                while self.buffer.len() < body_start + content_length {
                    if self.fill()? == 0 {
                        return Err(ParseError::UnexpectedEof);
                    }
                }
                (
                    self.buffer[body_start..body_start + content_length].to_vec(),
                    body_start + content_length,
                )
            }
        };
        // Keep any pipelined bytes for the next call.
        self.buffer.drain(..consumed);

        Ok(Some(Request {
            method,
            target,
            http11,
            headers,
            body,
        }))
    }

    /// Decodes a chunked request body starting at `body_start` in the
    /// buffer. Returns the reassembled body and the buffer offset one past
    /// the terminating blank trailer line, so pipelined requests keep
    /// working. `max_body_bytes` is enforced on the *accumulated* decoded
    /// size, before each chunk's data is buffered.
    fn read_chunked_body(&mut self, body_start: usize) -> Result<(Vec<u8>, usize), ParseError> {
        let mut body = Vec::new();
        let mut pos = body_start;
        loop {
            let line_end = self.find_crlf(pos)?;
            let line = std::str::from_utf8(&self.buffer[pos..line_end])
                .map_err(|_| ParseError::BadRequest("non-UTF-8 chunk size line".into()))?;
            // Chunk extensions (anything after `;`) are legal; ignore them.
            let size_text = line.split(';').next().unwrap_or(line).trim();
            let size = usize::from_str_radix(size_text, 16)
                .map_err(|_| ParseError::BadRequest("invalid chunk size".into()))?;
            if body.len().saturating_add(size) > self.limits.max_body_bytes {
                return Err(ParseError::BodyTooLarge);
            }
            pos = line_end + 2;
            if size == 0 {
                // Discard trailer fields until the blank line that ends the
                // chunked message.
                loop {
                    let trailer_end = self.find_crlf(pos)?;
                    if trailer_end == pos {
                        return Ok((body, pos + 2));
                    }
                    pos = trailer_end + 2;
                }
            }
            while self.buffer.len() < pos + size + 2 {
                if self.fill()? == 0 {
                    return Err(ParseError::UnexpectedEof);
                }
            }
            body.extend_from_slice(&self.buffer[pos..pos + size]);
            if &self.buffer[pos + size..pos + size + 2] != b"\r\n" {
                return Err(ParseError::BadRequest(
                    "chunk data not CRLF-terminated".into(),
                ));
            }
            pos += size + 2;
        }
    }

    /// Fills until a CRLF appears at or after `from`; returns its offset.
    /// Size and trailer lines are bounded by `max_head_bytes` so a peer
    /// cannot grow the buffer without bound between chunks.
    fn find_crlf(&mut self, from: usize) -> Result<usize, ParseError> {
        loop {
            let window_start = from.min(self.buffer.len());
            if let Some(offset) = self.buffer[window_start..]
                .windows(2)
                .position(|w| w == b"\r\n")
            {
                return Ok(window_start + offset);
            }
            if self.buffer.len().saturating_sub(from) > self.limits.max_head_bytes {
                return Err(ParseError::BadRequest("oversized chunk metadata".into()));
            }
            if self.fill()? == 0 {
                return Err(ParseError::UnexpectedEof);
            }
        }
    }

    fn fill(&mut self) -> Result<usize, ParseError> {
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(n) => {
                self.buffer.extend_from_slice(&chunk[..n]);
                Ok(n)
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(self.fill()?),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Err(ParseError::Timeout {
                    mid_request: !self.buffer.is_empty(),
                })
            }
            Err(e) => Err(ParseError::Io(e)),
        }
    }
}

fn find_head_end(buffer: &[u8]) -> Option<usize> {
    buffer.windows(4).position(|w| w == b"\r\n\r\n")
}

fn header_value<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

type Head = (String, String, bool, Vec<(String, String)>);

fn parse_head(head: &str) -> Result<Head, ParseError> {
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| ParseError::BadRequest("empty request".into()))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()))
        .ok_or_else(|| ParseError::BadRequest("invalid method".into()))?;
    let target = parts
        .next()
        .filter(|t| t.starts_with('/') || *t == "*")
        .ok_or_else(|| ParseError::BadRequest("invalid request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| ParseError::BadRequest("missing HTTP version".into()))?;
    if parts.next().is_some() {
        return Err(ParseError::BadRequest("malformed request line".into()));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        v if v.starts_with("HTTP/") => return Err(ParseError::BadVersion),
        _ => return Err(ParseError::BadRequest("invalid HTTP version".into())),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::BadRequest("malformed header line".into()))?;
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::BadRequest("malformed header name".into()));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }
    Ok((method.to_string(), target.to_string(), http11, headers))
}

/// An outgoing HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers (`Content-Length` and `Connection` are added on write).
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty response with the given status.
    pub fn new(status: u16) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A response carrying a JSON body.
    pub fn json(status: u16, body: &crate::json::Json) -> Self {
        Self::new(status)
            .with_header("Content-Type", "application/json")
            .with_body(body.encode().into_bytes())
    }

    /// A plain-text response (used by `/metrics`).
    pub fn text(status: u16, content_type: &str, body: impl Into<Vec<u8>>) -> Self {
        Self::new(status)
            .with_header("Content-Type", content_type)
            .with_body(body.into())
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Sets the body.
    pub fn with_body(mut self, body: Vec<u8>) -> Self {
        self.body = body;
        self
    }

    /// Serializes the response to the wire, stamping `Content-Length` and
    /// `Connection` from `keep_alive`.
    pub fn write_to(&self, writer: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason_phrase(self.status),
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        writer.write_all(head.as_bytes())?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

/// The canonical reason phrase for the status codes this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        410 => "Gone",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_one(raw: &[u8]) -> Result<Option<Request>, ParseError> {
        RequestReader::new(raw, Limits::default()).read_request()
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /v1/infer HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let request = read_one(raw).unwrap().unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.target, "/v1/infer");
        assert_eq!(request.body, b"abcd");
        assert!(request.keep_alive(), "HTTP/1.1 defaults to keep-alive");
        assert_eq!(request.header("HOST"), Some("x"));
    }

    #[test]
    fn strips_query_from_path_and_honours_connection_close() {
        let raw = b"GET /metrics?x=1 HTTP/1.1\r\nConnection: close\r\n\r\n";
        let request = read_one(raw).unwrap().unwrap();
        assert_eq!(request.path(), "/metrics");
        assert!(!request.keep_alive());
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n".to_vec();
        let mut reader = RequestReader::new(&raw[..], Limits::default());
        assert_eq!(reader.read_request().unwrap().unwrap().target, "/a");
        assert_eq!(reader.read_request().unwrap().unwrap().target, "/b");
        assert!(reader.read_request().unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn rejects_malformed_heads() {
        assert!(matches!(
            read_one(b"NOT A REQUEST\r\n\r\n"),
            Err(ParseError::BadRequest(_))
        ));
        assert!(matches!(
            read_one(b"get /lower HTTP/1.1\r\n\r\n"),
            Err(ParseError::BadRequest(_))
        ));
        assert!(matches!(
            read_one(b"GET /x HTTP/2.0\r\n\r\n"),
            Err(ParseError::BadVersion)
        ));
        assert!(matches!(
            read_one(b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(ParseError::BadRequest(_))
        ));
    }

    #[test]
    fn enforces_head_and_body_limits() {
        let limits = Limits {
            max_head_bytes: 64,
            max_body_bytes: 8,
        };
        let huge_head = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(200));
        assert!(matches!(
            RequestReader::new(huge_head.as_bytes(), limits).read_request(),
            Err(ParseError::HeadTooLarge)
        ));
        let big_body = b"POST /x HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789";
        assert!(matches!(
            RequestReader::new(&big_body[..], limits).read_request(),
            Err(ParseError::BodyTooLarge)
        ));
    }

    #[test]
    fn truncated_requests_are_unexpected_eof() {
        assert!(matches!(
            read_one(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(ParseError::UnexpectedEof)
        ));
        assert!(matches!(
            read_one(b"GET /x HT"),
            Err(ParseError::UnexpectedEof)
        ));
    }

    #[test]
    fn chunked_bodies_reassemble() {
        let raw = b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
                    4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n";
        let request = read_one(raw).unwrap().unwrap();
        assert_eq!(request.body, b"Wikipedia");
        // Chunked request then a pipelined plain request on one connection.
        let raw = b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
                    3;ext=1\r\nabc\r\n0\r\nTrailer: ignored\r\n\r\n\
                    GET /next HTTP/1.1\r\n\r\n"
            .to_vec();
        let mut reader = RequestReader::new(&raw[..], Limits::default());
        assert_eq!(reader.read_request().unwrap().unwrap().body, b"abc");
        assert_eq!(reader.read_request().unwrap().unwrap().target, "/next");
    }

    #[test]
    fn chunked_bodies_enforce_limits_and_syntax() {
        let limits = Limits {
            max_head_bytes: 64,
            max_body_bytes: 8,
        };
        // Accumulated chunk sizes exceed the body cap before the data for
        // the oversized chunk is ever demanded.
        let big = b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n6\r\nabcdef\r\n6\r\n";
        assert!(matches!(
            RequestReader::new(&big[..], limits).read_request(),
            Err(ParseError::BodyTooLarge)
        ));
        // Malformed hex size line.
        assert!(matches!(
            read_one(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n"),
            Err(ParseError::BadRequest(_))
        ));
        // Chunk data not CRLF-terminated.
        assert!(matches!(
            read_one(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabcXX0\r\n\r\n"),
            Err(ParseError::BadRequest(_))
        ));
        // Truncated mid-chunk is an EOF, not a hang.
        assert!(matches!(
            read_one(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nab"),
            Err(ParseError::UnexpectedEof)
        ));
        // Non-chunked transfer encodings stay a typed 501.
        assert!(matches!(
            read_one(b"POST /x HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n"),
            Err(ParseError::Unsupported(_))
        ));
    }

    #[test]
    fn responses_serialize_with_length_and_connection() {
        let mut out = Vec::new();
        Response::json(
            200,
            &crate::json::Json::object(vec![("ok", crate::json::Json::Bool(true))]),
        )
        .write_to(&mut out, true)
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }
}
