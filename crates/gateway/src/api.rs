//! The inference API: model catalog, engine listing, request decoding and
//! response encoding.
//!
//! `POST /v1/infer` accepts a JSON document naming a catalogued model and,
//! optionally, an execution engine:
//!
//! ```json
//! {"model": "cifar10-serve", "engine": "native", "seed": 7,
//!  "regime": "bsa", "ecp_threshold": null, "deadline_ms": 50}
//! ```
//!
//! Only `model` is required. `engine` selects the execution backend (see
//! `GET /v1/engines`; default `simulator`) — or `"auto"`, which lets the
//! runtime's dispatcher pick the cheapest engine whose predicted completion
//! meets the deadline (`native` preferred, `simulator` under pressure);
//! `regime` and `ecp_threshold` override the catalog entry's defaults;
//! `deadline_ms` opts the request into deadline admission (shed up front
//! when the backlog would outlast the deadline). `"stream": true` answers
//! with a chunked NDJSON event stream (one `"step"` event per timestep,
//! then a terminal `"result"` event); `"session": "<id>"` continues a
//! session created on `POST /v1/sessions` from its persisted LIF membrane
//! state; `"timesteps": n` runs a partial prefix of the model's horizon.
//! All three need a concrete engine advertising `supports_streaming`.
//!
//! Errors are machine-readable: every non-2xx body is
//! `{"error": {"code": "<stable_code>", "message": "<human text>",
//! "request_id": <id>}}` — the id is the same one echoed in the
//! `X-Request-Id` header and looked up on `GET /v1/debug/traces/<id>`.

use std::sync::Arc;
use std::time::Duration;

use bishop_bundle::TrainingRegime;
use bishop_core::SimOptions;
use bishop_engine::{EngineName, EngineRegistry, StepEvent};
use bishop_obs::{
    FinishedTrace, ProfileReport, RouterDecision, RouterVerdict, SloStatus, StageStamp,
    TraceContext, TraceSnapshot,
};
use bishop_runtime::{EngineLoadStats, InferenceRequest, InferenceResponse};
use bishop_session::SessionStore;

use crate::json::Json;

pub use bishop_engine::{CatalogEntry, ModelCatalog};

/// A wire-level request failure: a stable machine-readable `code` plus a
/// human-readable message safe to echo back to the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// Stable error code (API: clients branch on it).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
    /// HTTP status the error maps to (`400` for malformed/unknown inputs,
    /// `422` for well-formed requests the chosen engine cannot execute).
    pub status: u16,
}

impl ApiError {
    /// Builds a `400 Bad Request` error.
    pub fn new(code: &'static str, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
            status: 400,
        }
    }

    /// Builds a `422 Unprocessable` error: syntactically valid, but the
    /// requested engine cannot execute the resolved request profile.
    pub fn unprocessable(code: &'static str, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
            status: 422,
        }
    }
}

/// A decoded `/v1/infer` submission: the runtime request plus the optional
/// admission deadline.
#[derive(Debug)]
pub struct InferSubmission {
    /// The runtime inference request (id already assigned by the gateway).
    pub request: InferenceRequest,
    /// Deadline for deadline-based admission, if the client set one.
    pub deadline: Option<Duration>,
    /// Whether the client asked for the `"timings"` breakdown in the
    /// response body (`"trace": true` in the request, or `?trace=1`).
    pub trace_requested: bool,
    /// Whether the client asked for a chunked per-timestep event stream
    /// (`"stream": true`).
    pub stream: bool,
    /// Wire-form session id the request continues (`"session": "<id>"`),
    /// still unresolved — the server leases it against the store.
    pub session: Option<String>,
    /// Explicit timestep count (`"timesteps": n`), for partial execution.
    pub steps: Option<usize>,
}

/// Decodes a `/v1/infer` JSON body into a runtime request, resolving the
/// model against `catalog` and the (optional) engine against `engines`.
///
/// `auto_candidates` is the serving runtime's *configured* `"auto"`
/// preference order (see
/// [`ServerHandle::auto_candidates`](bishop_runtime::ServerHandle::auto_candidates))
/// — the preflight must agree with the dispatcher that will actually route
/// the request, not with the registry default.
pub fn decode_infer(
    body: &Json,
    catalog: &ModelCatalog,
    engines: &EngineRegistry,
    auto_candidates: &[EngineName],
    request_id: u64,
) -> Result<InferSubmission, ApiError> {
    let model_name = body
        .get("model")
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::new("bad_request", "missing required string field \"model\""))?;
    let entry = catalog.get(model_name).ok_or_else(|| {
        let known: Vec<&str> = catalog.entries().iter().map(|e| e.name.as_str()).collect();
        ApiError::new(
            "unknown_model",
            format!("unknown model \"{model_name}\" (catalog: {known:?})"),
        )
    })?;

    let seed = match body.get("seed") {
        None => 0,
        Some(value) => value.as_u64().ok_or_else(|| {
            ApiError::new("bad_request", "\"seed\" must be a non-negative integer")
        })?,
    };

    let regime = match body.get("regime").map(|v| (v, v.as_str())) {
        None => entry.regime,
        Some((_, Some("baseline"))) => TrainingRegime::Baseline,
        Some((_, Some("bsa"))) => TrainingRegime::Bsa,
        Some(_) => {
            return Err(ApiError::new(
                "bad_request",
                "\"regime\" must be \"baseline\" or \"bsa\"",
            ))
        }
    };

    let options = match body.get("ecp_threshold") {
        None => entry.options,
        Some(Json::Null) => SimOptions::baseline(),
        Some(value) => {
            let threshold = value
                .as_u64()
                .filter(|&t| t <= u32::MAX as u64)
                .ok_or_else(|| {
                    ApiError::new(
                        "bad_request",
                        "\"ecp_threshold\" must be a non-negative integer",
                    )
                })?;
            SimOptions::with_ecp(threshold as u32)
        }
    };

    let deadline = match body.get("deadline_ms") {
        None => None,
        Some(value) => Some(Duration::from_millis(value.as_u64().ok_or_else(|| {
            ApiError::new(
                "bad_request",
                "\"deadline_ms\" must be a non-negative integer",
            )
        })?)),
    };

    let trace_requested = match body.get("trace") {
        None => false,
        Some(value) => value
            .as_bool()
            .ok_or_else(|| ApiError::new("bad_request", "\"trace\" must be a boolean"))?,
    };

    let stream = match body.get("stream") {
        None => false,
        Some(value) => value
            .as_bool()
            .ok_or_else(|| ApiError::new("bad_request", "\"stream\" must be a boolean"))?,
    };

    let session = match body.get("session") {
        None => None,
        Some(value) => Some(
            value
                .as_str()
                .ok_or_else(|| ApiError::new("bad_request", "\"session\" must be a string"))?
                .to_string(),
        ),
    };

    let steps = match body.get("timesteps") {
        None => None,
        Some(value) => {
            let steps = value.as_u64().filter(|&t| t >= 1).ok_or_else(|| {
                ApiError::new("bad_request", "\"timesteps\" must be a positive integer")
            })?;
            if steps > entry.config.timesteps as u64 {
                return Err(ApiError::unprocessable(
                    "timesteps_out_of_range",
                    format!(
                        "\"timesteps\" ({steps}) exceeds model \"{}\"'s {}-timestep horizon",
                        entry.name, entry.config.timesteps
                    ),
                ));
            }
            Some(steps as usize)
        }
    };

    // Engine resolution. `"auto"` defers the concrete choice to the
    // runtime's deadline-aware dispatcher; everything else resolves (or
    // defaults) to a registered backend here.
    let engine = match body.get("engine") {
        // Engine-less requests run on the registry's default (the first
        // registered engine), not a hardcoded name — a custom registry
        // without a "simulator" entry still serves them.
        None => EngineName::new(
            engines
                .default_engine()
                .ok_or_else(|| ApiError::new("no_engines", "no execution engines are registered"))?
                .descriptor()
                .name,
        ),
        Some(value) => {
            let name = value
                .as_str()
                .ok_or_else(|| ApiError::new("bad_request", "\"engine\" must be a string"))?;
            if name == bishop_engine::AUTO_ENGINE {
                EngineName::auto()
            } else {
                EngineName::new(
                    engines
                        .get(name)
                        .ok_or_else(|| {
                            ApiError::new(
                                "unknown_engine",
                                format!(
                                    "unknown engine \"{name}\" (registered: {:?}, \
                                     or \"auto\" for deadline-aware autoselection)",
                                    engines.names()
                                ),
                            )
                        })?
                        .descriptor()
                        .name,
                )
            }
        }
    };

    // Capability preflight: any refusal knowable from the request profile
    // alone — ECP on a non-ECP engine, or a model whose own timestep count
    // already exceeds the engine's fold limit — is rejected here, before
    // the request consumes a queue slot, a batcher pass and a worker
    // dispatch. (The batcher caps coalescing at the fold limit, so the
    // only worker-side refusals left are bundle-padding edge cases.) An
    // "auto" request is routable as long as *some* auto-eligible engine
    // supports the profile; the runtime dispatcher skips the rest.
    if engine.is_auto() {
        if !auto_candidates
            .iter()
            .filter_map(|name| engines.get(name.as_str()))
            .any(|e| e.descriptor().supports_model(&entry.config, &options))
        {
            let names: Vec<&str> = auto_candidates.iter().map(EngineName::as_str).collect();
            return Err(ApiError::unprocessable(
                "auto_unroutable",
                format!(
                    "no auto-eligible engine (preference {names:?}) can execute model \
                     \"{}\" with the requested options",
                    entry.name
                ),
            ));
        }
    } else if let Some(backend) = engines.get(engine.as_str()) {
        let descriptor = backend.descriptor();
        if !descriptor.supports_options(&options) {
            return Err(ApiError::unprocessable(
                "ecp_unsupported",
                format!(
                    "engine \"{}\" does not support ECP pruning options \
                     (set \"ecp_threshold\": null or pick an engine from /v1/models)",
                    descriptor.name
                ),
            ));
        }
        if let Some(limit) = descriptor.max_folded_timesteps {
            if entry.config.timesteps > limit {
                return Err(ApiError::unprocessable(
                    "batch_too_large",
                    format!(
                        "model \"{}\" spans {} timesteps, above engine \"{}\"'s \
                         {limit}-folded-timestep capacity",
                        entry.name, entry.config.timesteps, descriptor.name
                    ),
                ));
            }
        }
    }

    // Streaming preflight: streamed, session-bound and partial-timestep
    // requests run the stateful execution path, which needs a concrete
    // engine implementing per-step streaming. Refuse here — before any
    // chunked `200` response header could commit to the wire — so the
    // client always gets a typed error. `"auto"` stays blocking-only: the
    // dispatcher's capability model knows nothing about streaming.
    if stream || session.is_some() || steps.is_some() {
        if engine.is_auto() {
            return Err(ApiError::unprocessable(
                "streaming_unsupported",
                "streamed, session-bound and partial-timestep requests need a concrete \
                 \"engine\" (\"auto\" routing cannot guarantee a streaming-capable backend)",
            ));
        }
        if let Some(backend) = engines.get(engine.as_str()) {
            let descriptor = backend.descriptor();
            if !descriptor.supports_streaming {
                return Err(ApiError::unprocessable(
                    "streaming_unsupported",
                    format!(
                        "engine \"{}\" does not implement streamed stateful execution \
                         (see \"supports_streaming\" on GET /v1/engines)",
                        descriptor.name
                    ),
                ));
            }
        }
    }

    let mut request = InferenceRequest::new(request_id, Arc::clone(entry), seed)
        .with_regime(regime)
        .with_options(options)
        .with_engine(engine);
    if stream {
        request = request.with_streaming();
    }
    if let Some(steps) = steps {
        request = request.with_steps(steps);
    }
    Ok(InferSubmission {
        request,
        deadline,
        trace_requested,
        stream,
        session,
        steps,
    })
}

/// Encodes a runtime response for the `/v1/infer` reply body.
pub fn encode_response(response: &InferenceResponse) -> Json {
    let mut fields = vec![
        ("request_id", Json::from_u64(response.request_id)),
        ("engine", Json::string(response.engine())),
        ("batch_id", Json::from_u64(response.batch_id)),
        ("batch_size", Json::from_u64(response.batch_size as u64)),
        ("worker", Json::from_u64(response.worker as u64)),
        ("latency_seconds", Json::Number(response.latency_seconds)),
        ("energy_mj", Json::Number(response.energy_share_mj())),
        ("cycles", Json::from_u64(response.output.cycles)),
    ];
    if let Some(wall) = response.output.wall_seconds {
        fields.push(("wall_seconds", Json::Number(wall)));
    }
    // Named for what it is: the forward pass ran once for the whole batch
    // (folded config, combined seed), so the prediction describes the batch
    // the request rode in, not the request alone.
    if let Some(prediction) = response.output.prediction {
        fields.push(("batch_prediction", Json::from_u64(prediction as u64)));
    }
    Json::object(fields)
}

/// Encodes the catalog for `GET /v1/models`, including which registered
/// engines support each entry's default options.
pub fn models_json(catalog: &ModelCatalog, engines: &EngineRegistry) -> Json {
    Json::Array(
        catalog
            .entries()
            .iter()
            .map(|e| {
                let supported: Vec<Json> = engines
                    .descriptors()
                    .iter()
                    .filter(|d| d.supports_model(&e.config, &e.options))
                    .map(|d| Json::string(d.name))
                    .collect();
                Json::object(vec![
                    ("name", Json::string(&e.name)),
                    ("dataset", Json::string(format!("{}", e.config.dataset))),
                    ("blocks", Json::from_u64(e.config.blocks as u64)),
                    ("timesteps", Json::from_u64(e.config.timesteps as u64)),
                    ("tokens", Json::from_u64(e.config.tokens as u64)),
                    ("features", Json::from_u64(e.config.features as u64)),
                    ("regime", Json::string(regime_name(e.regime))),
                    (
                        "ecp_threshold",
                        match e.options.ecp_threshold {
                            Some(t) => Json::from_u64(t as u64),
                            None => Json::Null,
                        },
                    ),
                    ("engines", Json::Array(supported)),
                ])
            })
            .collect(),
    )
}

/// Encodes the engine registry for `GET /v1/engines`: each backend's name
/// and capability descriptor, in registration (default-first) order, plus
/// — when the serving runtime provides per-engine load stats — the live
/// scheduling-domain view: queue depth, backlog, calibrated drain rate and
/// observed p50/p95 latency.
pub fn engines_json(engines: &EngineRegistry, load: &[EngineLoadStats]) -> Json {
    Json::Array(
        engines
            .descriptors()
            .iter()
            .map(|d| {
                let mut fields = vec![
                    ("name", Json::string(d.name)),
                    ("substrate", Json::string(d.substrate.label())),
                    ("supports_ecp", Json::Bool(d.supports_ecp)),
                    ("deterministic", Json::Bool(d.deterministic)),
                    ("measures_wall_clock", Json::Bool(d.measures_wall_clock)),
                    ("supports_streaming", Json::Bool(d.supports_streaming)),
                    (
                        "max_folded_timesteps",
                        match d.max_folded_timesteps {
                            Some(t) => Json::from_u64(t as u64),
                            None => Json::Null,
                        },
                    ),
                    (
                        "seed_drain_ops_per_second",
                        Json::Number(d.seed_drain_ops_per_second),
                    ),
                    (
                        "simd_tier",
                        match d.simd_tier {
                            Some(tier) => Json::string(tier),
                            None => Json::Null,
                        },
                    ),
                    ("description", Json::string(d.description)),
                ];
                if let Some(stats) = load.iter().find(|s| s.engine.as_str() == d.name) {
                    fields.extend([
                        ("queue_depth", Json::from_u64(stats.queue_depth as u64)),
                        ("backlog_ops", Json::from_u64(stats.backlog_ops)),
                        ("batches_executed", Json::from_u64(stats.batches_executed)),
                        ("completed", Json::from_u64(stats.completed)),
                        ("failed", Json::from_u64(stats.failed)),
                        (
                            "drain_ops_per_second",
                            Json::Number(stats.drain_ops_per_second),
                        ),
                        (
                            "drain_observations",
                            Json::from_u64(stats.drain_observations),
                        ),
                        ("latency_p50_seconds", Json::Number(stats.latency.p50)),
                        ("latency_p95_seconds", Json::Number(stats.latency.p95)),
                        ("breaker_state", Json::string(stats.breaker.state.label())),
                        (
                            "consecutive_errors",
                            Json::from_u64(stats.breaker.consecutive_errors),
                        ),
                        (
                            "breaker_opened_total",
                            Json::from_u64(stats.breaker.opened_total),
                        ),
                        ("worker_panics", Json::from_u64(stats.worker_panics)),
                        ("retries_attempted", Json::from_u64(stats.retries_attempted)),
                        ("retries_recovered", Json::from_u64(stats.retries_recovered)),
                        ("retries_exhausted", Json::from_u64(stats.retries_exhausted)),
                    ]);
                    if let Some(reopen) = stats.breaker.reopen_seconds {
                        fields.push(("breaker_reopen_seconds", Json::Number(reopen)));
                    }
                }
                Json::object(fields)
            })
            .collect(),
    )
}

fn regime_name(regime: TrainingRegime) -> &'static str {
    match regime {
        TrainingRegime::Baseline => "baseline",
        TrainingRegime::Bsa => "bsa",
    }
}

/// Encodes an error body:
/// `{"error": {"code": ..., "message": ..., "request_id": ...}}`. The
/// request id matches the `X-Request-Id` response header, so a failed
/// request can be looked up on `GET /v1/debug/traces/<id>` and correlated
/// with the structured event log.
pub fn error_body(code: &str, message: &str, request_id: u64) -> Json {
    Json::object(vec![(
        "error",
        Json::object(vec![
            ("code", Json::string(code)),
            ("message", Json::string(message)),
            ("request_id", Json::from_u64(request_id)),
        ]),
    )])
}

/// Encodes one recorded stage span of a trace.
fn stamp_json(stamp: &StageStamp) -> Json {
    Json::object(vec![
        ("stage", Json::string(stamp.stage.label())),
        ("start_seconds", Json::Number(stamp.start_seconds)),
        ("end_seconds", Json::Number(stamp.end_seconds)),
        ("seconds", Json::Number(stamp.seconds())),
    ])
}

/// Encodes a router decision record: the candidates the dispatcher walked
/// (with the predicted completion each was judged on) and the verdict.
fn router_json(decision: &RouterDecision) -> Json {
    let candidates = decision
        .candidates
        .iter()
        .map(|c| {
            let mut fields = vec![
                ("engine", Json::string(&c.engine)),
                ("eligible", Json::Bool(c.eligible)),
            ];
            if let Some(predicted) = c.predicted_seconds {
                fields.push(("predicted_seconds", Json::Number(predicted)));
            }
            if let Some(meets) = c.meets_deadline {
                fields.push(("meets_deadline", Json::Bool(meets)));
            }
            if c.breaker_open {
                fields.push(("breaker_open", Json::Bool(true)));
            }
            Json::object(fields)
        })
        .collect();
    let verdict = match &decision.verdict {
        RouterVerdict::Chosen { engine, degraded } => Json::object(vec![
            (
                "outcome",
                Json::string(if *degraded { "degraded" } else { "chosen" }),
            ),
            ("engine", Json::string(engine)),
        ]),
        RouterVerdict::Shed { reason } => Json::object(vec![
            ("outcome", Json::string("shed")),
            ("reason", Json::string(reason)),
        ]),
    };
    let mut fields = Vec::new();
    if let Some(deadline) = decision.deadline_seconds {
        fields.push(("deadline_seconds", Json::Number(deadline)));
    }
    fields.push(("candidates", Json::Array(candidates)));
    fields.push(("verdict", verdict));
    Json::object(fields)
}

/// Encodes a trace snapshot's shared fields (annotations, stage spans,
/// router record) into `fields`.
fn snapshot_fields(snapshot: &TraceSnapshot, fields: &mut Vec<(&'static str, Json)>) {
    if let Some(model) = &snapshot.model {
        fields.push(("model", Json::string(model)));
    }
    if let Some(engine) = &snapshot.engine {
        fields.push(("engine", Json::string(engine)));
    }
    if let Some(session) = &snapshot.session {
        fields.push(("session", Json::string(session)));
    }
    if let Some(batch_id) = snapshot.batch_id {
        fields.push(("batch_id", Json::from_u64(batch_id)));
    }
    fields.push(("retries", Json::from_u64(snapshot.retries as u64)));
    fields.push((
        "stages",
        Json::Array(snapshot.stamps.iter().map(stamp_json).collect()),
    ));
    if let Some(router) = &snapshot.router {
        fields.push(("router", router_json(router)));
    }
}

/// Encodes the opt-in `"timings"` object carried on a `/v1/infer` response
/// (`?trace=1` or `"trace": true`): the stage spans recorded so far, on the
/// trace's own clock. The `response_write` span is necessarily absent — it
/// ends only after these bytes are on the wire; fetch the finished trace
/// from `GET /v1/debug/traces/<id>` for the complete record.
pub fn timings_json(trace: &TraceContext) -> Json {
    let snapshot = trace.snapshot();
    let mut fields = vec![
        ("request_id", Json::from_u64(snapshot.request_id)),
        ("elapsed_seconds", Json::Number(trace.elapsed_seconds())),
    ];
    snapshot_fields(&snapshot, &mut fields);
    Json::object(fields)
}

/// Encodes one finished trace in full, for `GET /v1/debug/traces/<id>`.
pub fn trace_json(trace: &FinishedTrace) -> Json {
    let mut fields = vec![
        ("request_id", Json::from_u64(trace.snapshot.request_id)),
        ("status", Json::from_u64(trace.status as u64)),
        ("total_seconds", Json::Number(trace.total_seconds)),
    ];
    if let Some(code) = &trace.error_code {
        fields.push(("error_code", Json::string(code)));
    }
    snapshot_fields(&trace.snapshot, &mut fields);
    Json::object(fields)
}

/// Encodes the SLO statuses for `GET /v1/slo`: one object per objective
/// with its compliance, remaining error budget, multi-window burn rates
/// and current alert state.
pub fn slo_json(statuses: &[SloStatus]) -> Json {
    Json::Array(
        statuses
            .iter()
            .map(|s| {
                Json::object(vec![
                    ("name", Json::string(&s.name)),
                    ("kind", Json::string(s.kind)),
                    ("objective", Json::Number(s.objective)),
                    ("window_seconds", Json::Number(s.window_seconds)),
                    ("fast_window_seconds", Json::Number(s.fast_window_seconds)),
                    ("compliance", Json::Number(s.compliance)),
                    ("fast_compliance", Json::Number(s.fast_compliance)),
                    (
                        "error_budget_remaining",
                        Json::Number(s.error_budget_remaining),
                    ),
                    ("burn_rate_fast", Json::Number(s.burn_rate_fast)),
                    ("burn_rate_slow", Json::Number(s.burn_rate_slow)),
                    ("alert", Json::string(s.alert.label())),
                    ("good_events", Json::Number(s.good_events)),
                    ("total_events", Json::Number(s.total_events)),
                ])
            })
            .collect(),
    )
}

/// Encodes the profiler report for `GET /v1/debug/profile`: per
/// engine×kind×stage self-time entries plus the collapsed-stack lines a
/// flame-graph tool folds directly.
pub fn profile_json(report: &ProfileReport) -> Json {
    let entries = report
        .entries
        .iter()
        .map(|e| {
            Json::object(vec![
                ("engine", Json::string(&e.engine)),
                ("kind", Json::string(e.kind)),
                ("stage", Json::string(e.stage)),
                ("samples", Json::from_u64(e.samples)),
                ("seconds", Json::Number(e.seconds)),
                ("fraction", Json::Number(e.fraction)),
            ])
        })
        .collect();
    Json::object(vec![
        ("total_samples", Json::from_u64(report.total_samples)),
        ("total_seconds", Json::Number(report.total_seconds)),
        ("entries", Json::Array(entries)),
        (
            "collapsed",
            Json::Array(report.collapsed().iter().map(Json::string).collect()),
        ),
    ])
}

/// Encodes one finished trace as a listing row, for `GET /v1/debug/traces`.
pub fn trace_summary_json(trace: &FinishedTrace) -> Json {
    let mut fields = vec![
        ("request_id", Json::from_u64(trace.snapshot.request_id)),
        ("status", Json::from_u64(trace.status as u64)),
        ("total_seconds", Json::Number(trace.total_seconds)),
    ];
    if let Some(code) = &trace.error_code {
        fields.push(("error_code", Json::string(code)));
    }
    if let Some(model) = &trace.snapshot.model {
        fields.push(("model", Json::string(model)));
    }
    if let Some(engine) = &trace.snapshot.engine {
        fields.push(("engine", Json::string(engine)));
    }
    if let Some(session) = &trace.snapshot.session {
        fields.push(("session", Json::string(session)));
    }
    Json::object(fields)
}

/// Encodes one streamed progress event as one NDJSON line object of the
/// chunked `/v1/infer` response: `{"event": "step", ...}`.
pub fn step_event_json(request_id: u64, event: &StepEvent) -> Json {
    Json::object(vec![
        ("event", Json::string("step")),
        ("request_id", Json::from_u64(request_id)),
        ("index", Json::from_u64(event.index as u64)),
        ("total", Json::from_u64(event.total as u64)),
        ("unit", Json::string(event.unit)),
        ("spikes", Json::from_u64(event.spikes as u64)),
    ])
}

/// Encodes the session store for `GET /v1/sessions`: the store's bounds
/// plus one row per live session.
pub fn sessions_json(store: &SessionStore) -> Json {
    let config = store.config();
    let stats = store.stats();
    let rows = store
        .snapshot()
        .iter()
        .map(|s| {
            Json::object(vec![
                ("id", Json::string(&s.id)),
                ("model", Json::string(&s.model)),
                ("engine", Json::string(&s.engine)),
                ("seed", Json::from_u64(s.seed)),
                ("timesteps_done", Json::from_u64(s.timesteps_done as u64)),
                ("in_flight", Json::Bool(s.in_flight)),
                ("age_seconds", Json::Number(s.age_seconds)),
                (
                    "ttl_remaining_seconds",
                    Json::Number(s.ttl_remaining_seconds),
                ),
            ])
        })
        .collect();
    Json::object(vec![
        ("capacity", Json::from_u64(config.capacity as u64)),
        ("ttl_seconds", Json::Number(config.ttl.as_secs_f64())),
        ("active", Json::from_u64(stats.active)),
        ("sessions", Json::Array(rows)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use bishop_core::BishopConfig;
    use bishop_engine::{CalibrationCache, ResultCache};

    fn registry() -> EngineRegistry {
        EngineRegistry::serving_default(
            &BishopConfig::default(),
            Arc::new(CalibrationCache::new()),
            Arc::new(ResultCache::new()),
        )
    }

    /// The registry's default auto preference as `EngineName`s — what a
    /// stock `OnlineConfig` would hand `decode_infer`.
    fn auto_names(engines: &EngineRegistry) -> Vec<EngineName> {
        engines
            .auto_candidates()
            .iter()
            .map(|e| EngineName::new(e.descriptor().name))
            .collect()
    }

    /// `decode_infer` with the registry-default auto candidates.
    fn decode(
        body: &Json,
        catalog: &ModelCatalog,
        engines: &EngineRegistry,
        request_id: u64,
    ) -> Result<InferSubmission, ApiError> {
        decode_infer(body, catalog, engines, &auto_names(engines), request_id)
    }

    #[test]
    fn decodes_a_minimal_submission_with_catalog_defaults() {
        let catalog = ModelCatalog::serving_default();
        let body = Json::parse(r#"{"model": "imagenet100-serve"}"#).unwrap();
        let submission = decode(&body, &catalog, &registry(), 41).unwrap();
        assert_eq!(submission.request.id, 41);
        assert_eq!(submission.request.seed, 0);
        assert_eq!(submission.request.regime, TrainingRegime::Bsa);
        assert_eq!(submission.request.options, SimOptions::with_ecp(6));
        assert_eq!(submission.request.engine, EngineName::simulator());
        assert!(submission.deadline.is_none());
        // The request shares the catalog's entry allocation.
        let catalogued = catalog.get("imagenet100-serve").unwrap();
        assert!(Arc::ptr_eq(&submission.request.entry, catalogued));
    }

    #[test]
    fn decodes_overrides_engine_and_deadline() {
        let catalog = ModelCatalog::serving_default();
        let body = Json::parse(
            r#"{"model": "cifar10-serve", "engine": "native", "seed": 9,
                "regime": "baseline", "ecp_threshold": null, "deadline_ms": 25}"#,
        )
        .unwrap();
        let submission = decode(&body, &catalog, &registry(), 1).unwrap();
        assert_eq!(submission.request.seed, 9);
        assert_eq!(submission.request.regime, TrainingRegime::Baseline);
        assert_eq!(submission.request.options, SimOptions::baseline());
        assert_eq!(submission.request.engine, EngineName::native());
        assert_eq!(submission.deadline, Some(Duration::from_millis(25)));
    }

    #[test]
    fn rejects_unknown_models_engines_and_bad_fields() {
        let catalog = ModelCatalog::serving_default();
        let engines = registry();
        for (body, code, needle) in [
            (r#"{}"#, "bad_request", "missing required"),
            (r#"{"model": "nope"}"#, "unknown_model", "unknown model"),
            (r#"{"model": 3}"#, "bad_request", "missing required"),
            (
                r#"{"model": "cifar10-serve", "engine": "tpu"}"#,
                "unknown_engine",
                "unknown engine",
            ),
            (
                r#"{"model": "cifar10-serve", "engine": 4}"#,
                "bad_request",
                "engine",
            ),
            (
                r#"{"model": "cifar10-serve", "seed": -1}"#,
                "bad_request",
                "seed",
            ),
            (
                r#"{"model": "cifar10-serve", "regime": "x"}"#,
                "bad_request",
                "regime",
            ),
            (
                r#"{"model": "cifar10-serve", "ecp_threshold": 1.5}"#,
                "bad_request",
                "ecp_threshold",
            ),
            (
                r#"{"model": "cifar10-serve", "deadline_ms": "soon"}"#,
                "bad_request",
                "deadline_ms",
            ),
        ] {
            let json = Json::parse(body).unwrap();
            let error = decode(&json, &catalog, &engines, 0).unwrap_err();
            assert_eq!(error.code, code, "{body}");
            assert!(error.message.contains(needle), "{body} -> {error:?}");
        }
    }

    #[test]
    fn capability_preflight_rejects_unexecutable_profiles_at_decode() {
        let catalog = ModelCatalog::serving_default();
        let engines = registry();
        // ECP-default model on a non-ECP engine: refused at decode (422,
        // stable code) instead of after admission and worker dispatch.
        let body = Json::parse(r#"{"model": "imagenet100-serve", "engine": "native"}"#).unwrap();
        let error = decode(&body, &catalog, &engines, 0).unwrap_err();
        assert_eq!(error.code, "ecp_unsupported");
        assert_eq!(error.status, 422);
        // Disabling ECP makes the same profile executable.
        let body = Json::parse(
            r#"{"model": "imagenet100-serve", "engine": "native", "ecp_threshold": null}"#,
        )
        .unwrap();
        assert!(decode(&body, &catalog, &engines, 0).is_ok());

        // A model whose own timestep count exceeds the engine's fold limit
        // can never execute there, batched or alone: refused at decode.
        let catalog = catalog.with_model(
            "marathon",
            bishop_model::ModelConfig::new(
                "marathon",
                bishop_model::DatasetKind::Cifar10,
                1,
                2048,
                4,
                16,
                2,
            ),
            TrainingRegime::Bsa,
            SimOptions::baseline(),
        );
        let body = Json::parse(r#"{"model": "marathon", "engine": "native"}"#).unwrap();
        let error = decode(&body, &catalog, &engines, 0).unwrap_err();
        assert_eq!(error.code, "batch_too_large");
        assert_eq!(error.status, 422);
        // The unbounded simulator still takes it.
        let body = Json::parse(r#"{"model": "marathon"}"#).unwrap();
        assert!(decode(&body, &catalog, &engines, 0).is_ok());
    }

    #[test]
    fn engineless_requests_resolve_the_registry_default() {
        let catalog = ModelCatalog::serving_default();
        // A custom registry whose default (first registered) engine is not
        // "simulator": engine-less requests must land on it, not on a
        // hardcoded name the registry does not hold.
        let engines = EngineRegistry::new()
            .with_engine(std::sync::Arc::new(bishop_engine::NativeEngine::new()));
        let body = Json::parse(r#"{"model": "cifar10-serve"}"#).unwrap();
        let submission = decode(&body, &catalog, &engines, 0).unwrap();
        assert_eq!(submission.request.engine.as_str(), "native");
        // An empty registry is a typed failure, not a panic.
        let error = decode(&body, &catalog, &EngineRegistry::new(), 0).unwrap_err();
        assert_eq!(error.code, "no_engines");
    }

    #[test]
    fn catalog_json_lists_models_with_engine_support() {
        let json = models_json(&ModelCatalog::serving_default(), &registry());
        let Json::Array(models) = &json else {
            panic!("expected array")
        };
        assert_eq!(models.len(), 2);
        assert_eq!(
            models[0].get("name").and_then(Json::as_str),
            Some("cifar10-serve")
        );
        // The non-ECP entry is supported everywhere; the ECP entry only by
        // the Bishop simulator.
        let engines_of = |m: &Json| match m.get("engines") {
            Some(Json::Array(items)) => items
                .iter()
                .filter_map(Json::as_str)
                .map(str::to_string)
                .collect::<Vec<_>>(),
            _ => panic!("expected engines array"),
        };
        assert_eq!(
            engines_of(&models[0]),
            ["simulator", "native", "ptb", "gpu"]
        );
        assert_eq!(engines_of(&models[1]), ["simulator"]);

        // A model over the native fold limit drops out of native's support
        // list — /v1/models never advertises an engine the preflight would
        // then refuse.
        let catalog = ModelCatalog::serving_default().with_model(
            "marathon",
            bishop_model::ModelConfig::new(
                "marathon",
                bishop_model::DatasetKind::Cifar10,
                1,
                2048,
                4,
                16,
                2,
            ),
            TrainingRegime::Bsa,
            SimOptions::baseline(),
        );
        let json = models_json(&catalog, &registry());
        let Json::Array(models) = &json else {
            panic!("expected array")
        };
        assert_eq!(engines_of(&models[2]), ["simulator", "ptb", "gpu"]);
    }

    #[test]
    fn engines_json_publishes_descriptors() {
        let json = engines_json(&registry(), &[]);
        let Json::Array(engines) = &json else {
            panic!("expected array")
        };
        assert_eq!(engines.len(), 4);
        assert_eq!(
            engines[0].get("name").and_then(Json::as_str),
            Some("simulator")
        );
        assert_eq!(
            engines[0].get("supports_ecp").and_then(Json::as_bool),
            Some(true)
        );
        assert!(engines[0].get("seed_drain_ops_per_second").is_some());
        // Without runtime load stats the live fields are absent.
        assert!(engines[0].get("queue_depth").is_none());
        let native = &engines[1];
        assert_eq!(native.get("name").and_then(Json::as_str), Some("native"));
        assert_eq!(
            native.get("measures_wall_clock").and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(
            native.get("substrate").and_then(Json::as_str),
            Some("host_cpu")
        );
        // The native engine publishes the SIMD tier its kernels resolved
        // to; pure simulators/analytic models publish null.
        let tier = native.get("simd_tier").and_then(Json::as_str);
        assert!(
            matches!(tier, Some("scalar" | "neon" | "avx2" | "avx512")),
            "unexpected simd_tier {tier:?}"
        );
        assert_eq!(engines[0].get("simd_tier"), Some(&Json::Null));
    }

    #[test]
    fn engines_json_merges_live_scheduling_stats() {
        use bishop_runtime::LatencyPercentiles;
        let load = vec![EngineLoadStats {
            engine: EngineName::native(),
            queue_depth: 3,
            backlog_ops: 99,
            batches_executed: 7,
            completed: 21,
            failed: 1,
            drain_ops_per_second: 1234.5,
            drain_observations: 7,
            latency: LatencyPercentiles {
                p50: 0.001,
                p95: 0.005,
                p99: 0.006,
                mean: 0.002,
                max: 0.006,
            },
            ..EngineLoadStats::default()
        }];
        let json = engines_json(&registry(), &load);
        let Json::Array(engines) = &json else {
            panic!("expected array")
        };
        let native = engines
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("native"))
            .expect("native entry");
        assert_eq!(native.get("queue_depth").and_then(Json::as_u64), Some(3));
        assert_eq!(native.get("completed").and_then(Json::as_u64), Some(21));
        assert_eq!(
            native
                .get("drain_ops_per_second")
                .map(|v| matches!(v, Json::Number(n) if *n == 1234.5)),
            Some(true)
        );
        assert!(native.get("latency_p50_seconds").is_some());
        assert!(native.get("latency_p95_seconds").is_some());
        // The fault-tolerance view rides with the load stats: breaker state,
        // consecutive errors and the retry/panic counters.
        assert_eq!(
            native.get("breaker_state").and_then(Json::as_str),
            Some("closed")
        );
        assert_eq!(
            native.get("consecutive_errors").and_then(Json::as_u64),
            Some(0)
        );
        assert_eq!(native.get("worker_panics").and_then(Json::as_u64), Some(0));
        assert_eq!(
            native.get("retries_attempted").and_then(Json::as_u64),
            Some(0)
        );
        assert!(native.get("breaker_reopen_seconds").is_none());
        // Engines without a load entry keep descriptor-only fields.
        let simulator = engines
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("simulator"))
            .expect("simulator entry");
        assert!(simulator.get("queue_depth").is_none());
    }

    #[test]
    fn auto_engine_decodes_and_preflights_against_candidates() {
        let catalog = ModelCatalog::serving_default();
        let engines = registry();
        // "auto" survives decoding as the auto pseudo-engine: the runtime
        // dispatcher makes the concrete choice at admission.
        let body = Json::parse(r#"{"model": "cifar10-serve", "engine": "auto"}"#).unwrap();
        let submission = decode(&body, &catalog, &engines, 0).unwrap();
        assert!(submission.request.engine.is_auto());
        // An ECP-default model is auto-routable (the simulator candidate
        // supports it), even though native would refuse it.
        let body = Json::parse(r#"{"model": "imagenet100-serve", "engine": "auto"}"#).unwrap();
        assert!(decode(&body, &catalog, &engines, 0).is_ok());
        // With only a non-ECP candidate registered, the same profile is
        // unroutable: typed 422 at decode, before any queue slot.
        let native_only = EngineRegistry::new()
            .with_engine(std::sync::Arc::new(bishop_engine::NativeEngine::new()));
        let error = decode(&body, &catalog, &native_only, 0).unwrap_err();
        assert_eq!(error.code, "auto_unroutable");
        assert_eq!(error.status, 422);

        // The preflight honours the runtime's *configured* candidate list,
        // not the registry default: a server whose auto preference was
        // restricted to native rejects the ECP profile even though the
        // full registry holds an ECP-capable simulator.
        let restricted = [EngineName::native()];
        let error = decode_infer(&body, &catalog, &engines, &restricted, 0).unwrap_err();
        assert_eq!(error.code, "auto_unroutable");
        assert!(error.message.contains("native"), "{}", error.message);
    }

    #[test]
    fn decodes_stream_session_and_timesteps_fields() {
        let catalog = ModelCatalog::serving_default();
        let engines = registry();
        let body = Json::parse(
            r#"{"model": "cifar10-serve", "engine": "native", "stream": true,
                "session": "sess-0-0", "timesteps": 2}"#,
        )
        .unwrap();
        let submission = decode(&body, &catalog, &engines, 3).unwrap();
        assert!(submission.stream);
        assert_eq!(submission.session.as_deref(), Some("sess-0-0"));
        assert_eq!(submission.steps, Some(2));
        assert!(submission.request.streaming);
        assert_eq!(submission.request.steps, Some(2));
        // Plain requests decode with the stateful fields off.
        let body = Json::parse(r#"{"model": "cifar10-serve"}"#).unwrap();
        let submission = decode(&body, &catalog, &engines, 4).unwrap();
        assert!(!submission.stream);
        assert!(submission.session.is_none());
        assert!(submission.steps.is_none());
        assert!(!submission.request.stateful());
        // Malformed stateful fields are typed 400s.
        for body in [
            r#"{"model": "cifar10-serve", "engine": "native", "stream": "yes"}"#,
            r#"{"model": "cifar10-serve", "engine": "native", "session": 7}"#,
            r#"{"model": "cifar10-serve", "engine": "native", "timesteps": 0}"#,
        ] {
            let json = Json::parse(body).unwrap();
            let error = decode(&json, &catalog, &engines, 0).unwrap_err();
            assert_eq!(error.code, "bad_request", "{body}");
        }
        // Timestep counts beyond the model horizon are a 422.
        let body =
            Json::parse(r#"{"model": "cifar10-serve", "engine": "native", "timesteps": 4096}"#)
                .unwrap();
        let error = decode(&body, &catalog, &engines, 0).unwrap_err();
        assert_eq!(error.code, "timesteps_out_of_range");
        assert_eq!(error.status, 422);
    }

    #[test]
    fn streaming_preflight_refuses_auto_and_non_streaming_engines() {
        let catalog = ModelCatalog::serving_default();
        let engines = registry();
        // "auto" cannot guarantee a streaming-capable backend.
        let body =
            Json::parse(r#"{"model": "cifar10-serve", "engine": "auto", "stream": true}"#).unwrap();
        let error = decode(&body, &catalog, &engines, 0).unwrap_err();
        assert_eq!(error.code, "streaming_unsupported");
        assert_eq!(error.status, 422);
        // The baseline engines advertise supports_streaming = false, so a
        // streamed request is refused at decode — before any chunked
        // response header could commit.
        for field in [r#""stream": true"#, r#""session": "sess-0-0""#] {
            let body = Json::parse(&format!(
                r#"{{"model": "cifar10-serve", "engine": "ptb", {field}}}"#
            ))
            .unwrap();
            let error = decode(&body, &catalog, &engines, 0).unwrap_err();
            assert_eq!(error.code, "streaming_unsupported", "{field}");
            assert_eq!(error.status, 422);
        }
        // Both streaming-capable engines accept the same request shape.
        for engine in ["simulator", "native"] {
            let body = Json::parse(&format!(
                r#"{{"model": "cifar10-serve", "engine": "{engine}", "stream": true}}"#
            ))
            .unwrap();
            assert!(decode(&body, &catalog, &engines, 0).is_ok(), "{engine}");
        }
    }

    #[test]
    fn step_events_and_session_listings_encode() {
        let event = StepEvent {
            index: 2,
            total: 6,
            unit: "timestep",
            spikes: 31,
        };
        let json = step_event_json(9, &event);
        assert_eq!(json.get("event").and_then(Json::as_str), Some("step"));
        assert_eq!(json.get("request_id").and_then(Json::as_u64), Some(9));
        assert_eq!(json.get("index").and_then(Json::as_u64), Some(2));
        assert_eq!(json.get("total").and_then(Json::as_u64), Some(6));
        assert_eq!(json.get("unit").and_then(Json::as_str), Some("timestep"));
        assert_eq!(json.get("spikes").and_then(Json::as_u64), Some(31));

        let store = SessionStore::new(bishop_session::SessionStoreConfig::default());
        let id = store.create("cifar10-serve", "native", 7).unwrap();
        let json = sessions_json(&store);
        assert_eq!(json.get("capacity").and_then(Json::as_u64), Some(64));
        assert_eq!(json.get("active").and_then(Json::as_u64), Some(1));
        let Some(Json::Array(rows)) = json.get("sessions") else {
            panic!("expected sessions array");
        };
        assert_eq!(
            rows[0].get("id").and_then(Json::as_str),
            Some(id.to_string().as_str())
        );
        assert_eq!(
            rows[0].get("model").and_then(Json::as_str),
            Some("cifar10-serve")
        );
        assert_eq!(
            rows[0].get("in_flight").and_then(Json::as_bool),
            Some(false)
        );
    }

    #[test]
    fn error_body_nests_code_message_and_request_id() {
        let body = error_body("queue_full", "submission queue full", 77);
        let error = body.get("error").expect("error object");
        assert_eq!(error.get("code").and_then(Json::as_str), Some("queue_full"));
        assert_eq!(
            error.get("message").and_then(Json::as_str),
            Some("submission queue full")
        );
        assert_eq!(error.get("request_id").and_then(Json::as_u64), Some(77));
    }

    #[test]
    fn decode_accepts_and_validates_the_trace_flag() {
        let catalog = ModelCatalog::serving_default();
        let engines = registry();
        let body = Json::parse(r#"{"model": "cifar10-serve"}"#).unwrap();
        assert!(
            !decode(&body, &catalog, &engines, 0)
                .unwrap()
                .trace_requested
        );
        let body = Json::parse(r#"{"model": "cifar10-serve", "trace": true}"#).unwrap();
        assert!(
            decode(&body, &catalog, &engines, 0)
                .unwrap()
                .trace_requested
        );
        let body = Json::parse(r#"{"model": "cifar10-serve", "trace": "yes"}"#).unwrap();
        let error = decode(&body, &catalog, &engines, 0).unwrap_err();
        assert_eq!(error.code, "bad_request");
        assert!(error.message.contains("trace"));
    }

    #[test]
    fn trace_json_includes_stages_and_router_record() {
        use bishop_obs::{RouterCandidate, Stage};
        let trace = TraceContext::new(5);
        trace.set_model("cifar10-serve");
        trace.stamp(Stage::Parse);
        trace.set_router(RouterDecision {
            deadline_seconds: Some(0.05),
            candidates: vec![RouterCandidate {
                engine: "native".to_string(),
                eligible: true,
                predicted_seconds: Some(0.01),
                meets_deadline: Some(true),
                breaker_open: false,
            }],
            verdict: RouterVerdict::Chosen {
                engine: "native".to_string(),
                degraded: false,
            },
        });
        trace.set_engine("native");
        trace.set_batch_id(42);
        trace.stamp(Stage::Router);

        // The in-flight timings view.
        let timings = timings_json(&trace);
        assert_eq!(timings.get("request_id").and_then(Json::as_u64), Some(5));
        assert_eq!(timings.get("engine").and_then(Json::as_str), Some("native"));
        let Some(Json::Array(stages)) = timings.get("stages") else {
            panic!("expected stages array");
        };
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].get("stage").and_then(Json::as_str), Some("parse"));

        // The finished-trace view carries status and the router record.
        let finished = FinishedTrace {
            snapshot: trace.snapshot(),
            total_seconds: trace.elapsed_seconds(),
            status: 200,
            error_code: None,
        };
        let json = trace_json(&finished);
        assert_eq!(json.get("status").and_then(Json::as_u64), Some(200));
        assert_eq!(json.get("batch_id").and_then(Json::as_u64), Some(42));
        let router = json.get("router").expect("router record");
        let verdict = router.get("verdict").expect("verdict");
        assert_eq!(
            verdict.get("outcome").and_then(Json::as_str),
            Some("chosen")
        );
        assert_eq!(verdict.get("engine").and_then(Json::as_str), Some("native"));
        let Some(Json::Array(candidates)) = router.get("candidates") else {
            panic!("expected candidates array");
        };
        assert_eq!(
            candidates[0].get("meets_deadline").and_then(Json::as_bool),
            Some(true)
        );
        // The summary row keeps the lookup keys.
        let summary = trace_summary_json(&finished);
        assert_eq!(summary.get("request_id").and_then(Json::as_u64), Some(5));
        assert_eq!(
            summary.get("model").and_then(Json::as_str),
            Some("cifar10-serve")
        );
    }
}
