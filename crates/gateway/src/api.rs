//! The inference API: model catalog, request decoding and response encoding.
//!
//! `POST /v1/infer` accepts a JSON document naming a catalogued model:
//!
//! ```json
//! {"model": "cifar10-serve", "seed": 7, "regime": "bsa",
//!  "ecp_threshold": 6, "deadline_ms": 50}
//! ```
//!
//! Only `model` is required. `regime` and `ecp_threshold` override the
//! catalog entry's defaults; `deadline_ms` opts the request into deadline
//! admission (shed up front when the backlog would outlast the deadline).

use std::time::Duration;

use bishop_bundle::TrainingRegime;
use bishop_core::SimOptions;
use bishop_model::ModelConfig;
use bishop_runtime::{default_mixed_models, InferenceRequest, InferenceResponse};

use crate::json::Json;

/// One servable model: a name clients submit, plus the defaults requests
/// inherit.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// The name clients reference in `"model"`.
    pub name: String,
    /// Full architecture configuration.
    pub config: ModelConfig,
    /// Default calibrated training regime.
    pub regime: TrainingRegime,
    /// Default simulation options.
    pub options: SimOptions,
}

/// The set of models the gateway serves.
#[derive(Debug, Clone, Default)]
pub struct ModelCatalog {
    entries: Vec<CatalogEntry>,
}

impl ModelCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// The default serving catalog: the runtime's mixed CIFAR-10 /
    /// ImageNet-100 serving models.
    pub fn serving_default() -> Self {
        let mut catalog = Self::new();
        for (config, regime, options) in default_mixed_models() {
            catalog = catalog.with_entry(config.name.clone(), config, regime, options);
        }
        catalog
    }

    /// Adds (or replaces) a model under `name`.
    pub fn with_entry(
        mut self,
        name: impl Into<String>,
        config: ModelConfig,
        regime: TrainingRegime,
        options: SimOptions,
    ) -> Self {
        let name = name.into();
        self.entries.retain(|e| e.name != name);
        self.entries.push(CatalogEntry {
            name,
            config,
            regime,
            options,
        });
        self
    }

    /// Looks up a model by name.
    pub fn get(&self, name: &str) -> Option<&CatalogEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// The catalogued entries, in registration order.
    pub fn entries(&self) -> &[CatalogEntry] {
        &self.entries
    }

    /// Encodes the catalog for `GET /v1/models`.
    pub fn to_json(&self) -> Json {
        Json::Array(
            self.entries
                .iter()
                .map(|e| {
                    Json::object(vec![
                        ("name", Json::string(&e.name)),
                        ("dataset", Json::string(format!("{}", e.config.dataset))),
                        ("blocks", Json::from_u64(e.config.blocks as u64)),
                        ("timesteps", Json::from_u64(e.config.timesteps as u64)),
                        ("tokens", Json::from_u64(e.config.tokens as u64)),
                        ("features", Json::from_u64(e.config.features as u64)),
                        ("regime", Json::string(regime_name(e.regime))),
                        (
                            "ecp_threshold",
                            match e.options.ecp_threshold {
                                Some(t) => Json::from_u64(t as u64),
                                None => Json::Null,
                            },
                        ),
                    ])
                })
                .collect(),
        )
    }
}

fn regime_name(regime: TrainingRegime) -> &'static str {
    match regime {
        TrainingRegime::Baseline => "baseline",
        TrainingRegime::Bsa => "bsa",
    }
}

/// A decoded `/v1/infer` submission: the runtime request plus the optional
/// admission deadline.
#[derive(Debug)]
pub struct InferSubmission {
    /// The runtime inference request (id already assigned by the gateway).
    pub request: InferenceRequest,
    /// Deadline for deadline-based admission, if the client set one.
    pub deadline: Option<Duration>,
}

/// Decodes a `/v1/infer` JSON body into a runtime request. The error string
/// is safe to echo back in a `400` response.
pub fn decode_infer(
    body: &Json,
    catalog: &ModelCatalog,
    request_id: u64,
) -> Result<InferSubmission, String> {
    let model_name = body
        .get("model")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing required string field \"model\"".to_string())?;
    let entry = catalog.get(model_name).ok_or_else(|| {
        let known: Vec<&str> = catalog.entries().iter().map(|e| e.name.as_str()).collect();
        format!("unknown model \"{model_name}\" (catalog: {known:?})")
    })?;

    let seed = match body.get("seed") {
        None => 0,
        Some(value) => value
            .as_u64()
            .ok_or_else(|| "\"seed\" must be a non-negative integer".to_string())?,
    };

    let regime = match body.get("regime").map(|v| (v, v.as_str())) {
        None => entry.regime,
        Some((_, Some("baseline"))) => TrainingRegime::Baseline,
        Some((_, Some("bsa"))) => TrainingRegime::Bsa,
        Some(_) => return Err("\"regime\" must be \"baseline\" or \"bsa\"".to_string()),
    };

    let options = match body.get("ecp_threshold") {
        None => entry.options,
        Some(Json::Null) => SimOptions::baseline(),
        Some(value) => {
            let threshold = value
                .as_u64()
                .filter(|&t| t <= u32::MAX as u64)
                .ok_or_else(|| "\"ecp_threshold\" must be a non-negative integer".to_string())?;
            SimOptions::with_ecp(threshold as u32)
        }
    };

    let deadline = match body.get("deadline_ms") {
        None => None,
        Some(value) => Some(Duration::from_millis(value.as_u64().ok_or_else(|| {
            "\"deadline_ms\" must be a non-negative integer".to_string()
        })?)),
    };

    let request =
        InferenceRequest::new(request_id, entry.config.clone(), regime, seed).with_options(options);
    Ok(InferSubmission { request, deadline })
}

/// Encodes a runtime response for the `/v1/infer` reply body.
pub fn encode_response(response: &InferenceResponse) -> Json {
    Json::object(vec![
        ("request_id", Json::from_u64(response.request_id)),
        ("batch_id", Json::from_u64(response.batch_id)),
        ("batch_size", Json::from_u64(response.batch_size as u64)),
        ("worker", Json::from_u64(response.worker as u64)),
        ("latency_seconds", Json::Number(response.latency_seconds)),
        ("energy_mj", Json::Number(response.energy_share_mj())),
        (
            "simulated_cycles",
            Json::from_u64(response.batch_metrics.total_cycles()),
        ),
    ])
}

/// Encodes an error body: `{"error": "..."}`.
pub fn error_body(message: &str) -> Json {
    Json::object(vec![("error", Json::string(message))])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_a_minimal_submission_with_catalog_defaults() {
        let catalog = ModelCatalog::serving_default();
        let body = Json::parse(r#"{"model": "imagenet100-serve"}"#).unwrap();
        let submission = decode_infer(&body, &catalog, 41).unwrap();
        assert_eq!(submission.request.id, 41);
        assert_eq!(submission.request.seed, 0);
        assert_eq!(submission.request.regime, TrainingRegime::Bsa);
        assert_eq!(submission.request.options, SimOptions::with_ecp(6));
        assert!(submission.deadline.is_none());
    }

    #[test]
    fn decodes_overrides_and_deadline() {
        let catalog = ModelCatalog::serving_default();
        let body = Json::parse(
            r#"{"model": "cifar10-serve", "seed": 9, "regime": "baseline",
                "ecp_threshold": 4, "deadline_ms": 25}"#,
        )
        .unwrap();
        let submission = decode_infer(&body, &catalog, 1).unwrap();
        assert_eq!(submission.request.seed, 9);
        assert_eq!(submission.request.regime, TrainingRegime::Baseline);
        assert_eq!(submission.request.options, SimOptions::with_ecp(4));
        assert_eq!(submission.deadline, Some(Duration::from_millis(25)));
    }

    #[test]
    fn rejects_unknown_models_and_bad_fields() {
        let catalog = ModelCatalog::serving_default();
        for (body, needle) in [
            (r#"{}"#, "missing required"),
            (r#"{"model": "nope"}"#, "unknown model"),
            (r#"{"model": 3}"#, "missing required"),
            (r#"{"model": "cifar10-serve", "seed": -1}"#, "seed"),
            (r#"{"model": "cifar10-serve", "regime": "x"}"#, "regime"),
            (
                r#"{"model": "cifar10-serve", "ecp_threshold": 1.5}"#,
                "ecp_threshold",
            ),
            (
                r#"{"model": "cifar10-serve", "deadline_ms": "soon"}"#,
                "deadline_ms",
            ),
        ] {
            let json = Json::parse(body).unwrap();
            let error = decode_infer(&json, &catalog, 0).unwrap_err();
            assert!(error.contains(needle), "{body} -> {error}");
        }
    }

    #[test]
    fn catalog_json_lists_models() {
        let json = ModelCatalog::serving_default().to_json();
        let Json::Array(models) = &json else {
            panic!("expected array")
        };
        assert_eq!(models.len(), 2);
        assert_eq!(
            models[0].get("name").and_then(Json::as_str),
            Some("cifar10-serve")
        );
    }
}
