//! A hand-rolled JSON encoder/decoder — just enough for the inference API,
//! with zero external dependencies.
//!
//! The decoder is a recursive-descent parser over UTF-8 bytes with a depth
//! limit (hostile inputs cannot blow the stack) and positions in every
//! error. Numbers are `f64` (the JSON data model); object keys keep their
//! insertion order so encoded responses are deterministic.

use std::fmt;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 32;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in insertion order.
    Object(Vec<(String, Json)>),
}

/// A decode error with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.value(0)?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after document"));
        }
        Ok(value)
    }

    /// Encodes the value as compact JSON text.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(n) => encode_number(*n, out),
            Json::String(s) => encode_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(key, out);
                    out.push(':');
                    value.encode_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number that
    /// fits `u64` exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Builds an object from key/value pairs.
    pub fn object(fields: Vec<(&str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Builds a string value.
    pub fn string(value: impl Into<String>) -> Json {
        Json::String(value.into())
    }

    /// Builds a number value from a `u64` (exact up to 2^53).
    pub fn from_u64(value: u64) -> Json {
        Json::Number(value as f64)
    }
}

fn encode_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; encode as null like most lenient emitters.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn encode_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", byte as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{text}'")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits, sign, dot and exponent are ASCII");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error(format!("invalid number '{text}'")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.error("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(byte) if byte < 0x20 => {
                    return Err(self.error("raw control character in string"))
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so this is valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .expect("input was a valid &str");
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("non-ASCII unicode escape"))?;
        let unit =
            u32::from_str_radix(text, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos += 4;
        Ok(unit)
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_inference_request_shape() {
        let doc = r#"{"model": "cifar10-serve", "seed": 7, "ecp_threshold": 6}"#;
        let json = Json::parse(doc).unwrap();
        assert_eq!(
            json.get("model").and_then(Json::as_str),
            Some("cifar10-serve")
        );
        assert_eq!(json.get("seed").and_then(Json::as_u64), Some(7));
        assert_eq!(json.get("ecp_threshold").and_then(Json::as_u64), Some(6));
        assert_eq!(json.get("missing"), None);
    }

    #[test]
    fn round_trips_nested_values() {
        let doc = r#"{"a":[1,2.5,-3],"b":{"c":null,"d":true},"e":"x\"y\\z\n"}"#;
        let json = Json::parse(doc).unwrap();
        let encoded = json.encode();
        assert_eq!(Json::parse(&encoded).unwrap(), json);
    }

    #[test]
    fn encodes_integers_without_fraction() {
        assert_eq!(Json::from_u64(42).encode(), "42");
        assert_eq!(Json::Number(0.5).encode(), "0.5");
        assert_eq!(Json::Number(f64::NAN).encode(), "null");
    }

    #[test]
    fn decodes_escapes_and_surrogate_pairs() {
        let json = Json::parse(r#""Aé😀\t""#).unwrap();
        assert_eq!(json.as_str(), Some("Aé😀\t"));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone surrogate");
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\":1}}",
        ] {
            assert!(Json::parse(doc).is_err(), "accepted {doc:?}");
        }
    }

    #[test]
    fn rejects_hostile_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let error = Json::parse(&deep).unwrap_err();
        assert!(error.message.contains("deep"));
    }

    #[test]
    fn u64_extraction_rejects_fractions_and_negatives() {
        assert_eq!(Json::Number(1.5).as_u64(), None);
        assert_eq!(Json::Number(-1.0).as_u64(), None);
        assert_eq!(Json::Number(7.0).as_u64(), Some(7));
    }
}
