//! # bishop-gateway
//!
//! A **zero-external-dependency HTTP/1.1 + JSON serving gateway** in front
//! of the Bishop online runtime — the layer that turns the accelerator
//! reproduction from offline trace replay into an always-on network
//! service.
//!
//! Everything is hand-rolled on `std`: a [`http`] request parser with
//! incremental reads, size limits, keep-alive and slow-loris timeouts; a
//! [`json`] encoder/decoder; a thread-per-connection acceptor with a
//! concurrency cap and graceful shutdown ([`server`]); the inference API
//! codec and model catalog ([`api`]); and Prometheus text-format
//! observability ([`metrics`]).
//!
//! Endpoints:
//!
//! * `POST /v1/infer` — submit one inference request, optionally naming the
//!   execution `"engine"`; the connection thread parks on the runtime
//!   [`Ticket`](bishop_runtime::Ticket) until the Token-Time-Bundle-aligned
//!   batch it rode in is executed. Overload is shed with `429` (queue full /
//!   deadline unmeetable) carrying a `Retry-After` priced from the shedding
//!   engine's calibrated drain rate, never a hang; engine refusals are `422`
//!   with the engine's stable error code. Pass `"trace": true` (or
//!   `?trace=1`) to get a `"timings"` object of per-stage spans back.
//!   With `"stream": true` the response is `Transfer-Encoding: chunked`
//!   NDJSON: one `{"event": "step", ...}` line per timestep (native) or
//!   simulated layer (simulator) as execution runs, then a terminal
//!   `{"event": "result", ...}` line. Pass `"session": "<id>"` to continue
//!   a parked session's LIF membrane state, `"timesteps": N` to run a
//!   partial horizon; a split sequence is bit-identical to the
//!   single-request path. Chunked *request* bodies are reassembled, too.
//! * `POST /v1/sessions` — claim a persistent session slot pinned to a
//!   `{model, engine, seed}` identity; `GET` lists live sessions, `DELETE
//!   /v1/sessions/<id>` evicts one. Sessions expire after an idle TTL
//!   (`410` on resume) and in-flight sessions refuse concurrent use
//!   (`409`).
//! * `GET /v1/models` — the servable model catalog, with per-entry engine
//!   support.
//! * `GET /v1/engines` — the registered execution backends and their
//!   capability descriptors.
//! * `GET /metrics` — gateway + runtime counters, per-engine/per-stage
//!   latency histograms and router decision counters, Prometheus text format.
//! * `GET /v1/debug/traces` — ring buffer of recent finished traces plus the
//!   slowest-N tier, as summaries.
//! * `GET /v1/debug/traces/<id>` — one finished trace in full: stage spans,
//!   batch id, and the router decision record (candidates considered,
//!   predicted completion vs deadline, verdict).
//! * `GET /healthz` — liveness (`503` once draining).
//!
//! Every `/v1/infer` response carries an `X-Request-Id` header; every
//! non-2xx body is machine-readable and repeats it:
//! `{"error": {"code": "<stable_code>", "message": "...", "request_id": N}}`.
//!
//! ```
//! use bishop_gateway::{Gateway, GatewayConfig};
//! use bishop_runtime::{OnlineConfig, OnlineServer};
//! use std::io::{Read, Write};
//!
//! let runtime = OnlineServer::start(OnlineConfig::default());
//! let gateway = Gateway::start(GatewayConfig::default(), runtime.handle()).unwrap();
//!
//! // Any HTTP client works; here, a raw socket.
//! let mut stream = std::net::TcpStream::connect(gateway.local_addr()).unwrap();
//! let body = r#"{"model": "cifar10-serve", "seed": 1}"#;
//! write!(
//!     stream,
//!     "POST /v1/infer HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
//!     body.len(),
//!     body
//! )
//! .unwrap();
//! let mut reply = String::new();
//! stream.read_to_string(&mut reply).unwrap();
//! assert!(reply.starts_with("HTTP/1.1 200 OK"));
//! assert!(reply.contains("\"latency_seconds\""));
//!
//! gateway.shutdown();
//! runtime.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod http;
pub mod json;
pub mod metrics;
pub mod server;

pub use api::{ApiError, CatalogEntry, InferSubmission, ModelCatalog};
pub use http::{Limits, Request, RequestReader, Response};
pub use json::{Json, JsonError};
pub use metrics::GatewayMetrics;
pub use server::{Gateway, GatewayConfig};
