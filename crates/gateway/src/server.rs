//! The gateway server: TCP acceptor, thread-per-connection handlers,
//! routing, and graceful shutdown.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bishop_obs::{EventLevel, EventValue, Stage, TraceContext};
use bishop_runtime::{Rejection, ServerHandle, Ticket};
use bishop_session::{SessionError, SessionId, SessionLease, SessionStore, SessionStoreConfig};

use crate::api::{
    decode_infer, encode_response, engines_json, error_body, models_json, profile_json,
    sessions_json, slo_json, step_event_json, timings_json, trace_json, trace_summary_json,
    ModelCatalog,
};
use crate::http::{Limits, ParseError, Request, RequestReader, Response};
use crate::json::Json;
use crate::metrics::GatewayMetrics;

/// Configuration of a [`Gateway`].
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Maximum concurrently open connections; excess connections get `503`.
    pub max_connections: u64,
    /// Socket read timeout: a connection stalling mid-request longer than
    /// this gets `408` and is closed (slow-loris defence).
    pub read_timeout: Duration,
    /// HTTP parser size limits.
    pub limits: Limits,
    /// The models this gateway serves.
    pub catalog: ModelCatalog,
    /// Whether `/v1/infer` requests get an end-to-end trace (stage stamps
    /// through the runtime, a row in the trace store, histogram samples).
    /// On by default; the off position is the A/B knob the observability
    /// overhead bench measures. `X-Request-Id` is assigned either way.
    pub trace_requests: bool,
    /// Session-store bounds: slot capacity and idle TTL.
    pub sessions: SessionStoreConfig,
    /// Socket write timeout while a chunked event stream is in flight: a
    /// client draining slower than this is shed (the stream stops, the
    /// session lease is still checked in) so a stalled peer cannot pin a
    /// connection thread for the stream's whole duration.
    pub stream_write_timeout: Duration,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 64,
            read_timeout: Duration::from_secs(5),
            limits: Limits::default(),
            catalog: ModelCatalog::serving_default(),
            trace_requests: true,
            sessions: SessionStoreConfig::default(),
            stream_write_timeout: Duration::from_secs(5),
        }
    }
}

impl GatewayConfig {
    /// Overrides the bind address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Overrides the read timeout.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Overrides the connection cap.
    pub fn with_max_connections(mut self, max: u64) -> Self {
        self.max_connections = max;
        self
    }

    /// Overrides the parser limits.
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// Overrides the model catalog.
    pub fn with_catalog(mut self, catalog: ModelCatalog) -> Self {
        self.catalog = catalog;
        self
    }

    /// Enables or disables per-request tracing (the overhead-bench A/B
    /// knob).
    pub fn with_request_tracing(mut self, trace: bool) -> Self {
        self.trace_requests = trace;
        self
    }

    /// Overrides the session-store bounds (capacity, idle TTL).
    pub fn with_session_store(mut self, sessions: SessionStoreConfig) -> Self {
        self.sessions = sessions;
        self
    }

    /// Overrides the streamed-response write timeout (slow-client shed).
    pub fn with_stream_write_timeout(mut self, timeout: Duration) -> Self {
        self.stream_write_timeout = timeout;
        self
    }
}

/// State shared between the acceptor and every connection thread.
#[derive(Debug)]
struct Shared {
    runtime: ServerHandle,
    catalog: ModelCatalog,
    metrics: GatewayMetrics,
    sessions: Arc<SessionStore>,
    limits: Limits,
    read_timeout: Duration,
    stream_write_timeout: Duration,
    shutting_down: AtomicBool,
    next_request_id: AtomicU64,
    trace_requests: bool,
}

/// A running HTTP gateway in front of a Bishop online runtime.
///
/// Serves `POST /v1/infer`, `GET /v1/models`, `GET /metrics` (Prometheus
/// text format) and `GET /healthz` until [`Gateway::shutdown`].
#[derive(Debug)]
pub struct Gateway {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
}

impl Gateway {
    /// Binds the listener and starts accepting connections. The runtime
    /// handle is where admitted inference requests go.
    pub fn start(config: GatewayConfig, runtime: ServerHandle) -> std::io::Result<Gateway> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let sessions = Arc::new(SessionStore::new(config.sessions));
        // Hand the store to the runtime so the metrics sampler scrapes the
        // session gauge/counters alongside the engine series.
        runtime.register_sessions(Arc::clone(&sessions));
        let shared = Arc::new(Shared {
            runtime,
            catalog: config.catalog,
            metrics: GatewayMetrics::new(),
            sessions,
            limits: config.limits,
            read_timeout: config.read_timeout,
            stream_write_timeout: config.stream_write_timeout,
            shutting_down: AtomicBool::new(false),
            next_request_id: AtomicU64::new(0),
            trace_requests: config.trace_requests,
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            let max_connections = config.max_connections;
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.shutting_down.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if shared.metrics.active_connections() >= max_connections {
                        shared.metrics.connection_rejected();
                        reject_connection(stream, &shared);
                        continue;
                    }
                    shared.metrics.connection_opened();
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || {
                        handle_connection(stream, &shared);
                        shared.metrics.connection_closed();
                    });
                }
            })
        };

        Ok(Gateway {
            local_addr,
            shared,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Gateway-side metrics (HTTP counters). Runtime counters live on the
    /// [`ServerHandle`] passed to [`Gateway::start`].
    pub fn metrics(&self) -> &GatewayMetrics {
        &self.shared.metrics
    }

    /// The session store backing `/v1/sessions` and `"session"`-bound
    /// inference (shared with the runtime's metrics sampler).
    pub fn sessions(&self) -> &Arc<SessionStore> {
        &self.shared.sessions
    }

    /// Graceful shutdown: stop accepting, let in-flight connections finish
    /// their current request (keep-alive connections are told to close),
    /// and join the acceptor.
    pub fn shutdown(mut self) {
        self.shared.shutting_down.store(true, Ordering::Release);
        // Wake the blocking accept with a no-op connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Connection threads exit on their own: the next request either
        // completes (with `Connection: close`) or times out. Wait bounded
        // by the read timeout plus slack.
        let deadline =
            std::time::Instant::now() + self.shared.read_timeout + Duration::from_secs(2);
        while self.shared.metrics.active_connections() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

/// Turns away a connection over the concurrency cap with `503`.
fn reject_connection(mut stream: TcpStream, shared: &Shared) {
    let request_id = shared.next_request_id.fetch_add(1, Ordering::Relaxed);
    let response = Response::json(
        503,
        &error_body("connection_limit", "connection limit reached", request_id),
    )
    .with_header("Retry-After", "1")
    .with_header("X-Request-Id", &request_id.to_string());
    shared.metrics.response(503);
    if response.write_to(&mut stream, false).is_ok() {
        drain_before_close(&stream);
    }
}

/// Lingering close: the peer may still have request bytes in flight that we
/// never read (a rejected upload, a connection-cap 503). Closing with
/// unread data in the receive queue makes the kernel send RST, which can
/// destroy the error response before the client reads it — so shut down our
/// write side and briefly drain the read side first.
fn drain_before_close(stream: &TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut read_half = match stream.try_clone() {
        Ok(half) => half,
        Err(_) => return,
    };
    let _ = read_half.set_read_timeout(Some(Duration::from_millis(250)));
    let mut sink = [0u8; 4096];
    // Bounded drain: up to 256 KiB or until EOF/timeout, whichever first.
    for _ in 0..64 {
        match std::io::Read::read(&mut read_half, &mut sink) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
    }
}

/// Serves one connection until close, error, timeout or shutdown.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(shared.read_timeout)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let mut reader = RequestReader::new(read_half, shared.limits);

    loop {
        match reader.read_request() {
            Ok(Some(request)) => {
                // During shutdown finish this request but close after it.
                let keep_alive =
                    request.keep_alive() && !shared.shutting_down.load(Ordering::Acquire);
                match route(&request, shared) {
                    Routed::Plain(handled) => {
                        shared.metrics.response(handled.response.status);
                        let wrote = handled.response.write_to(&mut writer, keep_alive).is_ok();
                        // The response bytes are on the wire (or the write
                        // failed — either way the request is over): close
                        // the trace. The finish feeds the stage histograms
                        // and the trace store.
                        if let Some(trace) = handled.trace {
                            trace.stamp(Stage::ResponseWrite);
                            shared.runtime.obs().finish(
                                &trace,
                                handled.response.status,
                                handled.error_code.as_deref(),
                            );
                        }
                        if !wrote || !keep_alive {
                            return;
                        }
                    }
                    // A streamed inference: the connection thread owns the
                    // chunked event phase end-to-end.
                    Routed::Stream(plan) => {
                        if !stream_response(&mut writer, plan, keep_alive, shared) {
                            return;
                        }
                    }
                }
            }
            Ok(None) => return, // peer closed cleanly between requests
            Err(error) => {
                // Only errors that owe the client a status are parse/limit
                // failures; idle keep-alive expiry and client aborts are
                // routine and must not inflate the error counter.
                if let Some(status) = error.status() {
                    shared.metrics.parse_error();
                    let (code, message) = match &error {
                        ParseError::BadRequest(m) => ("bad_request", m.as_str()),
                        ParseError::HeadTooLarge => ("head_too_large", "request head too large"),
                        ParseError::BodyTooLarge => ("body_too_large", "request body too large"),
                        ParseError::Unsupported(m) => ("unsupported", m.as_str()),
                        ParseError::BadVersion => ("http_version", "unsupported HTTP version"),
                        ParseError::Timeout { .. } => ("timeout", "timed out reading request"),
                        _ => ("aborted", "request aborted"),
                    };
                    let request_id = shared.next_request_id.fetch_add(1, Ordering::Relaxed);
                    let response = Response::json(status, &error_body(code, message, request_id))
                        .with_header("X-Request-Id", &request_id.to_string());
                    shared.metrics.response(status);
                    if response.write_to(&mut writer, false).is_ok() {
                        // The failed request's remaining bytes were never
                        // read; drain them so closing doesn't RST the
                        // response out from under the client.
                        drain_before_close(&writer);
                    }
                }
                return;
            }
        }
    }
}

/// The outcome of routing one request: the response to write plus what the
/// connection loop must finish *after* the bytes are on the wire — the
/// request's trace (if `/v1/infer` allocated one) and, for error
/// responses, the stable error code the finished trace records.
struct Handled {
    response: Response,
    trace: Option<Arc<TraceContext>>,
    error_code: Option<String>,
}

impl Handled {
    /// An endpoint response with no per-request trace.
    fn untraced(response: Response) -> Self {
        Self {
            response,
            trace: None,
            error_code: None,
        }
    }
}

/// What routing resolved to: a buffered response the connection loop writes
/// whole, or a streamed inference whose chunked event phase the loop runs.
enum Routed {
    /// A complete response, written in one piece.
    Plain(Handled),
    /// An admitted streamed inference: the connection loop drains the
    /// ticket's progress channel into chunked NDJSON events.
    Stream(StreamPlan),
}

/// Everything the connection loop needs to run one chunked event stream.
struct StreamPlan {
    request_id: u64,
    ticket: Ticket,
    lease: Option<SessionLease>,
    /// Wire-form session id, echoed on the terminal `"result"` event.
    session: Option<String>,
    trace: Option<Arc<TraceContext>>,
    want_timings: bool,
}

/// Routes one parsed request to its endpoint.
fn route(request: &Request, shared: &Shared) -> Routed {
    let plain = |handled: Handled| Routed::Plain(handled);
    match (request.method.as_str(), request.path()) {
        ("POST", "/v1/infer") => infer(request, shared),
        ("GET", "/v1/models") => plain(Handled::untraced(Response::json(
            200,
            &models_json(&shared.catalog, shared.runtime.engines()),
        ))),
        ("GET", "/v1/engines") => plain(Handled::untraced(Response::json(
            200,
            &engines_json(shared.runtime.engines(), &shared.runtime.engine_stats()),
        ))),
        ("POST", "/v1/sessions") => plain(create_session(request, shared)),
        ("GET", "/v1/sessions") => {
            // Expire idled sessions first so the listing never shows a
            // session a continuation request would then find expired.
            shared.sessions.sweep();
            plain(Handled::untraced(Response::json(
                200,
                &sessions_json(&shared.sessions),
            )))
        }
        ("DELETE", path) if path.starts_with("/v1/sessions/") => {
            plain(delete_session(path, shared))
        }
        ("GET", "/metrics") => plain(Handled::untraced(Response::text(
            200,
            "text/plain; version=0.0.4",
            shared.metrics.render_prometheus(
                &shared.runtime.stats(),
                shared.runtime.obs(),
                Some(&shared.sessions.stats()),
            ),
        ))),
        ("GET", "/v1/debug/traces") => plain(Handled::untraced(trace_listing(request, shared))),
        ("GET", path) if path.starts_with("/v1/debug/traces/") => {
            plain(Handled::untraced(trace_detail(path, shared)))
        }
        ("GET", "/v1/slo") => {
            let obs = shared.runtime.obs();
            plain(Handled::untraced(Response::json(
                200,
                &slo_json(&obs.slo.evaluate(&obs.timeseries, None)),
            )))
        }
        ("GET", "/v1/debug/profile") => plain(Handled::untraced(Response::json(
            200,
            &profile_json(&shared.runtime.obs().profiler.report()),
        ))),
        ("GET", "/healthz") => plain(Handled::untraced(healthz(shared))),
        (_, "/v1/infer") => plain(method_not_allowed(shared, "POST")),
        (_, "/v1/sessions") => plain(method_not_allowed(shared, "GET, POST")),
        (_, path) if path.starts_with("/v1/sessions/") => {
            plain(method_not_allowed(shared, "DELETE"))
        }
        (_, "/v1/models" | "/v1/engines" | "/metrics" | "/healthz" | "/v1/slo") => {
            plain(method_not_allowed(shared, "GET"))
        }
        (_, path) if path.starts_with("/v1/debug/traces") || path == "/v1/debug/profile" => {
            plain(method_not_allowed(shared, "GET"))
        }
        _ => {
            let request_id = shared.next_request_id.fetch_add(1, Ordering::Relaxed);
            plain(Handled::untraced(
                Response::json(
                    404,
                    &error_body("not_found", "no such endpoint", request_id),
                )
                .with_header("X-Request-Id", &request_id.to_string()),
            ))
        }
    }
}

/// The HTTP status a session-store refusal maps to.
fn session_status(error: &SessionError) -> u16 {
    match error {
        SessionError::NotFound => 404,
        SessionError::Expired => 410,
        SessionError::InFlight => 409,
        SessionError::CapacityExhausted => 503,
    }
}

/// `POST /v1/sessions`: create a persistent session slot pinned to a
/// catalogued model, a streaming-capable engine and an input seed.
fn create_session(request: &Request, shared: &Shared) -> Handled {
    let request_id = shared.next_request_id.fetch_add(1, Ordering::Relaxed);
    let request_id_header = request_id.to_string();
    let fail = |status: u16, code: &str, message: &str| {
        Handled::untraced(
            Response::json(status, &error_body(code, message, request_id))
                .with_header("X-Request-Id", &request_id_header),
        )
    };

    let body = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return fail(400, "bad_request", "body is not UTF-8"),
    };
    let json = match Json::parse(body) {
        Ok(json) => json,
        Err(error) => return fail(400, "bad_request", &error.to_string()),
    };
    let Some(model) = json.get("model").and_then(Json::as_str) else {
        return fail(
            400,
            "bad_request",
            "missing required string field \"model\"",
        );
    };
    let Some(entry) = shared.catalog.get(model) else {
        return fail(400, "unknown_model", &format!("unknown model \"{model}\""));
    };
    let seed = match json.get("seed") {
        None => 0,
        Some(value) => match value.as_u64() {
            Some(seed) => seed,
            None => {
                return fail(
                    400,
                    "bad_request",
                    "\"seed\" must be a non-negative integer",
                )
            }
        },
    };
    let engines = shared.runtime.engines();
    let backend = match json.get("engine").map(|v| v.as_str()) {
        None => match engines.default_engine() {
            Some(backend) => backend,
            None => return fail(400, "no_engines", "no execution engines are registered"),
        },
        Some(Some(name)) => match engines.get(name) {
            Some(backend) => backend,
            None => {
                return fail(
                    400,
                    "unknown_engine",
                    &format!(
                        "unknown engine \"{name}\" (registered: {:?})",
                        engines.names()
                    ),
                )
            }
        },
        Some(None) => return fail(400, "bad_request", "\"engine\" must be a string"),
    };
    let descriptor = backend.descriptor();
    if !descriptor.supports_streaming {
        return fail(
            422,
            "streaming_unsupported",
            &format!(
                "engine \"{}\" does not implement streamed stateful execution, so it \
                 cannot host sessions (see \"supports_streaming\" on GET /v1/engines)",
                descriptor.name
            ),
        );
    }
    if !descriptor.supports_model(&entry.config, &entry.options) {
        return fail(
            422,
            "model_unsupported",
            &format!(
                "engine \"{}\" cannot execute model \"{}\" with its default options",
                descriptor.name, entry.name
            ),
        );
    }
    // Expire idled sessions before trying to claim a slot.
    shared.sessions.sweep();
    match shared.sessions.create(&entry.name, descriptor.name, seed) {
        Ok(id) => {
            let config = shared.sessions.config();
            Handled::untraced(
                Response::json(
                    200,
                    &Json::object(vec![
                        ("id", Json::string(id.to_string())),
                        ("model", Json::string(&entry.name)),
                        ("engine", Json::string(descriptor.name)),
                        ("seed", Json::from_u64(seed)),
                        ("ttl_seconds", Json::Number(config.ttl.as_secs_f64())),
                    ]),
                )
                .with_header("X-Request-Id", &request_id_header),
            )
        }
        Err(error) => fail(session_status(&error), error.code(), &error.to_string()),
    }
}

/// `DELETE /v1/sessions/<id>`: explicit eviction. In-flight sessions are a
/// `409`; stale or unknown ids a `404`.
fn delete_session(path: &str, shared: &Shared) -> Handled {
    let request_id = shared.next_request_id.fetch_add(1, Ordering::Relaxed);
    let request_id_header = request_id.to_string();
    let token = path
        .strip_prefix("/v1/sessions/")
        .expect("caller matched the prefix");
    let Some(id) = SessionId::parse(token) else {
        return Handled::untraced(
            Response::json(
                400,
                &error_body(
                    "bad_request",
                    "session id must look like \"sess-<slot>-<generation>\"",
                    request_id,
                ),
            )
            .with_header("X-Request-Id", &request_id_header),
        );
    };
    match shared.sessions.evict(id) {
        Ok(()) => Handled::untraced(
            Response::json(200, &Json::object(vec![("evicted", Json::string(token))]))
                .with_header("X-Request-Id", &request_id_header),
        ),
        Err(error) => Handled::untraced(
            Response::json(
                session_status(&error),
                &error_body(error.code(), &error.to_string(), request_id),
            )
            .with_header("X-Request-Id", &request_id_header),
        ),
    }
}

/// `GET /healthz`: real readiness, not liveness theatre. `503 draining`
/// while shutting down; `503 unhealthy` when every registered engine's
/// circuit breaker is open (nothing can serve — a load balancer should
/// stop routing here); `200 ok` otherwise, with the per-engine breaker
/// states so a degraded-but-serving instance is visible at a glance.
fn healthz(shared: &Shared) -> Response {
    let draining = shared.shutting_down.load(Ordering::Acquire);
    let engine_stats = shared.runtime.engine_stats();
    let all_open = !engine_stats.is_empty()
        && engine_stats
            .iter()
            .all(|e| e.breaker.state == bishop_runtime::BreakerState::Open);
    let (status, label) = if draining {
        (503, "draining")
    } else if all_open {
        (503, "unhealthy")
    } else {
        (200, "ok")
    };
    let breakers = engine_stats
        .iter()
        .map(|e| {
            Json::object(vec![
                ("engine", Json::string(e.engine.as_str())),
                ("breaker_state", Json::string(e.breaker.state.label())),
            ])
        })
        .collect();
    Response::json(
        status,
        &Json::object(vec![
            ("status", Json::string(label)),
            (
                "queue_depth",
                Json::from_u64(shared.runtime.stats().queue_depth as u64),
            ),
            ("engines", Json::Array(breakers)),
        ]),
    )
}

/// `GET /v1/debug/traces`: the retained recent/slowest listings, optionally
/// narrowed by `?engine=<name>` (the engine the request served on),
/// `?session=<id>` (the session the request continued),
/// `?verdict=<chosen|degraded|shed>` (the router's decision, `"auto"`
/// requests only) and `?min_ms=<float>` (total latency floor). Filters
/// compose; a malformed `min_ms` is a `400`.
fn trace_listing(request: &Request, shared: &Shared) -> Response {
    let min_seconds = match request.query_param("min_ms") {
        Some(raw) => match raw.parse::<f64>() {
            Ok(ms) if ms.is_finite() && ms >= 0.0 => Some(ms / 1000.0),
            _ => {
                let request_id = shared.next_request_id.fetch_add(1, Ordering::Relaxed);
                return Response::json(
                    400,
                    &error_body(
                        "bad_request",
                        "min_ms must be a non-negative number",
                        request_id,
                    ),
                )
                .with_header("X-Request-Id", &request_id.to_string());
            }
        },
        None => None,
    };
    let engine = request.query_param("engine");
    let session = request.query_param("session");
    let verdict = request.query_param("verdict");
    let keep = |trace: &bishop_obs::FinishedTrace| -> bool {
        if let Some(engine) = engine {
            if trace.snapshot.engine.as_deref() != Some(engine) {
                return false;
            }
        }
        if let Some(session) = session {
            if trace.snapshot.session.as_deref() != Some(session) {
                return false;
            }
        }
        if let Some(verdict) = verdict {
            let recorded = trace.snapshot.router.as_ref().map(|r| r.verdict.label());
            if recorded != Some(verdict) {
                return false;
            }
        }
        if let Some(floor) = min_seconds {
            if trace.total_seconds < floor {
                return false;
            }
        }
        true
    };
    let traces = &shared.runtime.obs().traces;
    let rows = |list: Vec<Arc<bishop_obs::FinishedTrace>>| {
        Json::Array(
            list.iter()
                .filter(|t| keep(t))
                .map(|t| trace_summary_json(t))
                .collect(),
        )
    };
    Response::json(
        200,
        &Json::object(vec![
            ("recent", rows(traces.recent())),
            ("slowest", rows(traces.slowest())),
        ]),
    )
}

/// `GET /v1/debug/traces/<id>`: one finished trace in full (stage spans,
/// batch span id, router decision record).
fn trace_detail(path: &str, shared: &Shared) -> Response {
    let request_id = shared.next_request_id.fetch_add(1, Ordering::Relaxed);
    let id = path
        .strip_prefix("/v1/debug/traces/")
        .expect("caller matched the prefix");
    let Ok(id) = id.parse::<u64>() else {
        return Response::json(
            400,
            &error_body("bad_request", "trace id must be an integer", request_id),
        )
        .with_header("X-Request-Id", &request_id.to_string());
    };
    match shared.runtime.obs().traces.find(id) {
        Some(trace) => Response::json(200, &trace_json(&trace)),
        None => Response::json(
            404,
            &error_body(
                "trace_not_found",
                "no retained trace with that request id (retention is bounded)",
                request_id,
            ),
        )
        .with_header("X-Request-Id", &request_id.to_string()),
    }
}

fn method_not_allowed(shared: &Shared, allow: &str) -> Handled {
    let request_id = shared.next_request_id.fetch_add(1, Ordering::Relaxed);
    Handled::untraced(
        Response::json(
            405,
            &error_body("method_not_allowed", "method not allowed", request_id),
        )
        .with_header("Allow", allow)
        .with_header("X-Request-Id", &request_id.to_string()),
    )
}

/// `POST /v1/infer`: allocate the request id and trace, decode, lease the
/// session (if any), admit, then either wait for the ticket (blocking
/// requests) or hand the ticket to the connection loop's chunked event
/// writer (`"stream": true`). Every response — success or failure —
/// carries the id in `X-Request-Id`; failures repeat it in the error body.
fn infer(request: &Request, shared: &Shared) -> Routed {
    let request_id = shared.next_request_id.fetch_add(1, Ordering::Relaxed);
    // The trace is born at the edge so its clock covers the whole request:
    // the stamps the runtime adds later all share this origin.
    let trace = shared
        .trace_requests
        .then(|| Arc::new(TraceContext::new(request_id)));
    let request_id_header = request_id.to_string();
    let fail = |status: u16, code: &str, message: &str| Handled {
        response: Response::json(status, &error_body(code, message, request_id))
            .with_header("X-Request-Id", &request_id_header),
        trace: trace.clone(),
        error_code: Some(code.to_string()),
    };

    let body = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return Routed::Plain(fail(400, "bad_request", "body is not UTF-8")),
    };
    let json = match Json::parse(body) {
        Ok(json) => json,
        Err(error) => return Routed::Plain(fail(400, "bad_request", &error.to_string())),
    };
    let submission = match decode_infer(
        &json,
        &shared.catalog,
        shared.runtime.engines(),
        &shared.runtime.auto_candidates(),
        request_id,
    ) {
        Ok(submission) => submission,
        Err(error) => return Routed::Plain(fail(error.status, error.code, &error.message)),
    };
    let want_timings = submission.trace_requested || request.query_flag("trace", "1");

    let mut runtime_request = submission.request;

    // Session continuation: lease the slot exclusively, pin the request to
    // the session's identity (model, engine, seed) and import its state.
    let mut lease: Option<SessionLease> = None;
    let mut session_wire: Option<String> = None;
    if let Some(token) = &submission.session {
        let Some(id) = SessionId::parse(token) else {
            return Routed::Plain(fail(
                400,
                "bad_request",
                "session id must look like \"sess-<slot>-<generation>\"",
            ));
        };
        let leased = match shared.sessions.begin(id) {
            Ok(leased) => leased,
            Err(error) => {
                return Routed::Plain(fail(
                    session_status(&error),
                    error.code(),
                    &error.to_string(),
                ))
            }
        };
        if leased.model() != runtime_request.entry.name {
            let message = format!(
                "session {token} is pinned to model \"{}\", not \"{}\"",
                leased.model(),
                runtime_request.entry.name
            );
            shared.sessions.abort(leased);
            return Routed::Plain(fail(422, "session_model_mismatch", &message));
        }
        // The engine the session was created on is authoritative: an
        // explicitly conflicting "engine" field is refused; an absent one
        // adopts the session's.
        if json.get("engine").is_some() && leased.engine() != runtime_request.engine.as_str() {
            let message = format!(
                "session {token} is pinned to engine \"{}\", not \"{}\"",
                leased.engine(),
                runtime_request.engine.as_str()
            );
            shared.sessions.abort(leased);
            return Routed::Plain(fail(422, "session_engine_mismatch", &message));
        }
        match shared.runtime.engines().get(leased.engine()) {
            Some(backend) => {
                runtime_request.engine = bishop_engine::EngineName::new(backend.descriptor().name);
            }
            None => {
                let message = format!(
                    "session {token}'s engine \"{}\" is no longer registered",
                    leased.engine()
                );
                shared.sessions.abort(leased);
                return Routed::Plain(fail(422, "unknown_engine", &message));
            }
        }
        // Weight identity: membranes only continue bit-identically under
        // the weights and inputs the session started with, so the
        // session's seed always wins over the request's.
        runtime_request.seed = leased.seed();
        let total = runtime_request.entry.config.timesteps;
        let done = leased.timesteps_done();
        match submission.steps {
            Some(steps) if done + steps > total => {
                let message = format!(
                    "session {token} has {done}/{total} timesteps done; {steps} more would \
                     overrun the model's horizon"
                );
                shared.sessions.abort(leased);
                return Routed::Plain(fail(422, "timesteps_out_of_range", &message));
            }
            Some(_) => {}
            // Default continuation: run the remainder of the horizon.
            None => {
                let remaining = total.saturating_sub(done);
                if remaining == 0 {
                    let message = format!(
                        "session {token} already covers the model's full {total}-timestep \
                         horizon; delete it or create a new session"
                    );
                    shared.sessions.abort(leased);
                    return Routed::Plain(fail(422, "session_complete", &message));
                }
                runtime_request = runtime_request.with_steps(remaining);
            }
        }
        if let Some(state) = leased.state() {
            runtime_request = runtime_request.with_resume(Arc::clone(state));
        }
        session_wire = Some(token.clone());
        lease = Some(leased);
    }

    // What the client *asked* for ("auto" included) — the engine whose
    // predicted backlog drain prices a 429's Retry-After.
    let asked_engine = runtime_request.engine.clone();
    if let Some(trace) = &trace {
        trace.set_model(&runtime_request.entry.name);
        if let Some(wire) = &session_wire {
            trace.set_session(wire);
        }
        trace.stamp(Stage::Parse);
        runtime_request = runtime_request.with_trace(Arc::clone(trace));
    }

    let admitted = match submission.deadline {
        Some(deadline) => shared
            .runtime
            .try_submit_with_deadline(runtime_request, deadline),
        None => shared.runtime.try_submit(runtime_request),
    };
    let ticket = match admitted {
        Ok(ticket) => ticket,
        Err(rejection) => {
            // Nothing was admitted: the session (if leased) keeps its
            // previous state and becomes resumable again.
            if let Some(lease) = lease {
                shared.sessions.abort(lease);
            }
            return Routed::Plain(match rejection {
                // Load-transient sheds: retrying after backoff can succeed.
                // Retry-After is *priced*, not hardcoded: the predicted
                // seconds for the shedding engine's admitted backlog to
                // drain at its calibrated rate (for "auto", the best
                // candidate's), clamped to [1, 60].
                rejection @ (Rejection::QueueFull
                | Rejection::DeadlineUnmeetable
                | Rejection::NoEngineMeetsDeadline) => {
                    let retry_after = shared
                        .runtime
                        .predicted_drain_seconds(&asked_engine)
                        .ceil()
                        .clamp(1.0, 60.0) as u64;
                    let mut handled = fail(429, rejection.code(), &rejection.to_string());
                    handled.response = handled
                        .response
                        .with_header("Retry-After", &retry_after.to_string());
                    handled
                }
                // No auto candidate can execute this request shape at all:
                // the client must change the request, so no Retry-After —
                // 422 like any other capability refusal. (The decode
                // preflight catches this for stock configurations; a
                // runtime whose auto preference was restricted after boot
                // still sheds here.)
                rejection @ Rejection::NoEngineSupportsRequest => {
                    fail(422, rejection.code(), &rejection.to_string())
                }
                // The named engine's circuit breaker is open (or, for
                // "auto", every eligible engine's is): 503, with
                // Retry-After priced from the breaker's next half-open
                // probe window rather than backlog drain.
                rejection @ Rejection::EngineUnavailable => {
                    let retry_after = shared
                        .runtime
                        .breaker_reopen_seconds(&asked_engine)
                        .unwrap_or(1.0)
                        .ceil()
                        .clamp(1.0, 60.0) as u64;
                    let mut handled = fail(503, rejection.code(), &rejection.to_string());
                    handled.response = handled
                        .response
                        .with_header("Retry-After", &retry_after.to_string());
                    handled
                }
                rejection => fail(503, rejection.code(), &rejection.to_string()),
            });
        }
    };

    // Streamed requests hand the admitted ticket to the connection loop:
    // the chunked response is written event-by-event as execution runs.
    if submission.stream {
        return Routed::Stream(StreamPlan {
            request_id,
            ticket,
            lease,
            session: session_wire,
            trace,
            want_timings,
        });
    }

    Routed::Plain(match ticket.wait() {
        Some(Ok(response)) => {
            let mut encoded = encode_response(&response);
            if let Json::Object(fields) = &mut encoded {
                if let Some(wire) = &session_wire {
                    fields.push(("session".to_string(), Json::string(wire)));
                }
                if let Some(state) = &response.session_state {
                    fields.push((
                        "timesteps_done".to_string(),
                        Json::from_u64(state.timesteps_done() as u64),
                    ));
                }
                if want_timings {
                    if let Some(trace) = &trace {
                        fields.push(("timings".to_string(), timings_json(trace)));
                    }
                }
            }
            if let Some(lease) = lease {
                match &response.session_state {
                    Some(state) => shared.sessions.complete(lease, Arc::clone(state)),
                    None => shared.sessions.abort(lease),
                }
            }
            Handled {
                response: Response::json(200, &encoded)
                    .with_header("X-Request-Id", &request_id_header),
                trace,
                error_code: None,
            }
        }
        // A retryable execution fault that outlived the runtime's own
        // retry loop is server health, not the client's request: 503,
        // retry elsewhere/later. Capability refusals stay 422 — the
        // client must change the request profile.
        Some(Err(bishop_runtime::ServeError::Engine(error))) if error.retryable() => {
            if let Some(lease) = lease {
                shared.sessions.abort(lease);
            }
            let mut handled = fail(503, error.code(), &error.to_string());
            handled.response = handled.response.with_header("Retry-After", "1");
            handled
        }
        Some(Err(error)) => {
            if let Some(lease) = lease {
                shared.sessions.abort(lease);
            }
            fail(422, error.code(), &error.to_string())
        }
        None => {
            if let Some(lease) = lease {
                shared.sessions.abort(lease);
            }
            fail(503, "shutting_down", "server shut down mid-request")
        }
    })
}

/// Runs the chunked event phase of one streamed inference: per-step NDJSON
/// events as execution progresses, then a terminal `"result"` (or in-band
/// `"error"`) event and the `0\r\n\r\n` terminator. Returns whether the
/// connection can stay open for another request.
///
/// A client draining slower than the stream write timeout (or gone) is
/// *shed*: writes stop, a `stream_client_shed` event is logged, but the
/// progress channel keeps draining and the ticket is still waited on, so
/// the session lease always checks back in.
fn stream_response(
    writer: &mut TcpStream,
    plan: StreamPlan,
    keep_alive: bool,
    shared: &Shared,
) -> bool {
    let StreamPlan {
        request_id,
        ticket,
        lease,
        session,
        trace,
        want_timings,
    } = plan;
    shared.metrics.response(200);
    let head = format!(
        "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\
         Content-Type: application/x-ndjson\r\nConnection: {}\r\n\
         X-Request-Id: {request_id}\r\n\r\n",
        if keep_alive { "keep-alive" } else { "close" }
    );
    let _ = writer.set_write_timeout(Some(shared.stream_write_timeout));
    let mut healthy = writer
        .write_all(head.as_bytes())
        .and_then(|()| writer.flush())
        .is_ok();
    if let Some(progress) = ticket.progress() {
        let mut delivered = 0u64;
        // recv() until the worker drops its sender at completion.
        while let Ok(event) = progress.recv() {
            if !healthy {
                continue;
            }
            let mut line = step_event_json(request_id, &event).encode();
            line.push('\n');
            if write_chunk(writer, line.as_bytes()).is_ok() {
                delivered += 1;
            } else {
                healthy = false;
                shared.runtime.obs().events.emit(
                    EventLevel::Warn,
                    "stream_client_shed",
                    &[
                        ("request_id", EventValue::U64(request_id)),
                        ("events_delivered", EventValue::U64(delivered)),
                    ],
                );
            }
        }
    }
    if let Some(trace) = &trace {
        trace.stamp(Stage::StreamWrite);
    }

    let (terminal, error_code) = match ticket.wait() {
        Some(Ok(response)) => {
            let mut encoded = encode_response(&response);
            if let Json::Object(fields) = &mut encoded {
                fields.insert(0, ("event".to_string(), Json::string("result")));
                if let Some(wire) = &session {
                    fields.push(("session".to_string(), Json::string(wire)));
                }
                if let Some(state) = &response.session_state {
                    fields.push((
                        "timesteps_done".to_string(),
                        Json::from_u64(state.timesteps_done() as u64),
                    ));
                }
                if let Some(logits) = &response.logits {
                    fields.push((
                        "logits".to_string(),
                        Json::Array(logits.iter().map(|&v| Json::Number(v as f64)).collect()),
                    ));
                }
                if want_timings {
                    if let Some(trace) = &trace {
                        fields.push(("timings".to_string(), timings_json(trace)));
                    }
                }
            }
            if let Some(lease) = lease {
                match &response.session_state {
                    Some(state) => shared.sessions.complete(lease, Arc::clone(state)),
                    None => shared.sessions.abort(lease),
                }
            }
            (encoded, None)
        }
        // The chunked 200 header is already on the wire, so a late typed
        // refusal arrives in-band as a terminal error event. The decode
        // preflight makes this path rare (it catches every refusal knowable
        // from the request profile); this is defence-in-depth.
        Some(Err(error)) => {
            if let Some(lease) = lease {
                shared.sessions.abort(lease);
            }
            let code = error.code();
            (
                Json::object(vec![
                    ("event", Json::string("error")),
                    ("request_id", Json::from_u64(request_id)),
                    ("code", Json::string(code)),
                    ("message", Json::string(error.to_string())),
                ]),
                Some(code.to_string()),
            )
        }
        None => {
            if let Some(lease) = lease {
                shared.sessions.abort(lease);
            }
            (
                Json::object(vec![
                    ("event", Json::string("error")),
                    ("request_id", Json::from_u64(request_id)),
                    ("code", Json::string("shutting_down")),
                    ("message", Json::string("server shut down mid-request")),
                ]),
                Some("shutting_down".to_string()),
            )
        }
    };
    if healthy {
        let mut line = terminal.encode();
        line.push('\n');
        healthy = write_chunk(writer, line.as_bytes())
            .and_then(|()| writer.write_all(b"0\r\n\r\n"))
            .and_then(|()| writer.flush())
            .is_ok();
    }
    let _ = writer.set_write_timeout(None);
    if let Some(trace) = trace {
        trace.stamp(Stage::ResponseWrite);
        shared
            .runtime
            .obs()
            .finish(&trace, 200, error_code.as_deref());
    }
    healthy && keep_alive
}

/// Writes one HTTP/1.1 chunk (`<hex size>\r\n<data>\r\n`) and flushes, so
/// streamed events reach the client as they happen.
fn write_chunk(writer: &mut impl Write, data: &[u8]) -> std::io::Result<()> {
    write!(writer, "{:x}\r\n", data.len())?;
    writer.write_all(data)?;
    writer.write_all(b"\r\n")?;
    writer.flush()
}
