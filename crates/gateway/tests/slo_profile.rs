//! The temporal-observability endpoints end to end: `GET /v1/slo` serving
//! the declarative objectives with live compliance/burn numbers, `GET
//! /v1/debug/profile` serving the sampling profiler's self-time report and
//! collapsed stacks, the `bishop_slo_*` / `bishop_profile_seconds_total`
//! families on `/metrics`, and the `engine=` / `verdict=` / `min_ms=`
//! filters on the trace listing.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use bishop_gateway::{Gateway, GatewayConfig, Json};
use bishop_runtime::{BatchPolicy, OnlineConfig, OnlineServer, RuntimeConfig, SamplerConfig};

/// The running stack under test, with a fast sampler so the temporal layer
/// fills within milliseconds instead of seconds.
struct Stack {
    runtime: OnlineServer,
    gateway: Gateway,
}

impl Stack {
    fn boot() -> Stack {
        let runtime = OnlineServer::start(
            OnlineConfig::new(RuntimeConfig::new(1, BatchPolicy::new(4)))
                .with_batch_timeout(Some(Duration::from_millis(5)))
                .with_sampler(
                    SamplerConfig::default()
                        .with_intervals(Duration::from_millis(1), Duration::from_millis(20)),
                ),
        );
        let gateway =
            Gateway::start(GatewayConfig::default(), runtime.handle()).expect("bind ephemeral");
        Stack { runtime, gateway }
    }

    fn addr(&self) -> SocketAddr {
        self.gateway.local_addr()
    }

    fn finish(self) {
        self.gateway.shutdown();
        self.runtime.shutdown();
    }
}

/// Sends raw bytes, reads until EOF, returns (status, full response text).
fn raw_roundtrip(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw).expect("send");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read reply");
    let status = reply
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {reply:?}"));
    (status, reply)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    raw_roundtrip(
        addr,
        format!("GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

fn request(addr: SocketAddr, method: &str, path: &str) -> (u16, String) {
    raw_roundtrip(
        addr,
        format!("{method} {path} HTTP/1.1\r\nContent-Length: 0\r\nConnection: close\r\n\r\n")
            .as_bytes(),
    )
}

fn infer(addr: SocketAddr, body: &str) -> (u16, String) {
    raw_roundtrip(
        addr,
        format!(
            "POST /v1/infer HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

/// The parsed JSON body of a response.
fn body_json(reply: &str) -> Json {
    let body = reply
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .unwrap_or("");
    Json::parse(body).unwrap_or_else(|e| panic!("unparsable body {e}: {body:?}"))
}

#[test]
fn slo_endpoint_serves_the_stock_objectives_and_metrics_carry_the_families() {
    let stack = Stack::boot();
    let addr = stack.addr();
    // Let the sampler's first scrape establish the zero baseline before
    // traffic, so every finished request lands in the window deltas.
    std::thread::sleep(Duration::from_millis(50));
    for seed in 0..8 {
        let (status, reply) = infer(
            addr,
            &format!("{{\"model\": \"cifar10-serve\", \"seed\": {seed}}}"),
        );
        assert_eq!(status, 200, "{reply}");
    }
    // Two metrics intervals so the sampler has scraped the finished
    // requests into the store before the objectives are read.
    std::thread::sleep(Duration::from_millis(60));

    let (status, reply) = get(addr, "/v1/slo");
    assert_eq!(status, 200, "{reply}");
    let Json::Array(objectives) = body_json(&reply) else {
        panic!("/v1/slo must serve an array: {reply}");
    };
    let names: Vec<&str> = objectives
        .iter()
        .map(|o| o.get("name").and_then(Json::as_str).expect("name"))
        .collect();
    assert_eq!(
        names,
        ["availability", "shed_rate", "execute_p95"],
        "{reply}"
    );
    let availability = &objectives[0];
    assert_eq!(
        availability.get("alert").and_then(Json::as_str),
        Some("ok"),
        "healthy traffic must not burn: {reply}"
    );
    assert_eq!(
        availability.get("compliance").and_then(Json::as_f64),
        Some(1.0),
        "{reply}"
    );
    assert_eq!(
        availability
            .get("error_budget_remaining")
            .and_then(Json::as_f64),
        Some(1.0),
        "{reply}"
    );
    assert!(
        availability
            .get("total_events")
            .and_then(Json::as_f64)
            .is_some_and(|t| t >= 8.0),
        "the sampler must have scraped the finished requests: {reply}"
    );

    let (status, scrape) = get(addr, "/metrics");
    assert_eq!(status, 200);
    for family in [
        "# TYPE bishop_slo_objective gauge",
        "# TYPE bishop_slo_error_budget_remaining gauge",
        "# TYPE bishop_slo_burn_rate gauge",
        "bishop_slo_compliance{slo=\"availability\"}",
        "bishop_slo_burn_rate{slo=\"availability\",window=\"fast\"}",
        "# TYPE bishop_profile_seconds_total counter",
    ] {
        assert!(scrape.contains(family), "missing {family:?} in {scrape}");
    }

    stack.finish();
}

#[test]
fn profile_endpoint_serves_self_time_entries_and_collapsed_stacks() {
    let stack = Stack::boot();
    let addr = stack.addr();
    for seed in 0..4 {
        let (status, reply) = infer(
            addr,
            &format!("{{\"model\": \"cifar10-serve\", \"seed\": {seed}}}"),
        );
        assert_eq!(status, 200, "{reply}");
    }
    // Let the 1 ms profile cadence accumulate a meaningful sample count.
    std::thread::sleep(Duration::from_millis(50));

    let (status, reply) = get(addr, "/v1/debug/profile");
    assert_eq!(status, 200, "{reply}");
    let report = body_json(&reply);
    assert!(
        report
            .get("total_samples")
            .and_then(Json::as_u64)
            .is_some_and(|n| n > 0),
        "the always-on profiler must have samples: {reply}"
    );
    assert!(
        report
            .get("total_seconds")
            .and_then(Json::as_f64)
            .is_some_and(|s| s > 0.0),
        "{reply}"
    );
    let Some(Json::Array(entries)) = report.get("entries") else {
        panic!("profile without entries: {reply}");
    };
    let simulator_worker = entries
        .iter()
        .find(|e| {
            e.get("engine").and_then(Json::as_str) == Some("simulator")
                && e.get("kind").and_then(Json::as_str) == Some("worker")
        })
        .unwrap_or_else(|| panic!("no simulator worker entry: {reply}"));
    assert!(
        simulator_worker
            .get("fraction")
            .and_then(Json::as_f64)
            .is_some_and(|f| (0.0..=1.0).contains(&f)),
        "{reply}"
    );
    let Some(Json::Array(collapsed)) = report.get("collapsed") else {
        panic!("profile without collapsed stacks: {reply}");
    };
    assert!(
        collapsed.iter().any(|line| {
            line.as_str()
                .is_some_and(|l| l.starts_with("simulator/worker;"))
        }),
        "collapsed lines must fold engine/kind;stage: {reply}"
    );

    stack.finish();
}

#[test]
fn trace_listing_filters_narrow_by_engine_verdict_and_latency() {
    let stack = Stack::boot();
    let addr = stack.addr();
    // Four explicit simulator requests and two auto requests (the router
    // records a verdict only for "auto").
    for seed in 0..4 {
        let (status, reply) = infer(
            addr,
            &format!("{{\"model\": \"cifar10-serve\", \"seed\": {seed}}}"),
        );
        assert_eq!(status, 200, "{reply}");
    }
    for seed in 0..2 {
        let (status, reply) = infer(
            addr,
            &format!("{{\"model\": \"cifar10-serve\", \"seed\": {seed}, \"engine\": \"auto\"}}"),
        );
        assert_eq!(status, 200, "{reply}");
    }

    let recent_count = |reply: &str| -> usize {
        let Some(Json::Array(rows)) = body_json(reply).get("recent").cloned() else {
            panic!("listing without recent: {reply}");
        };
        rows.len()
    };

    let (status, unfiltered) = get(addr, "/v1/debug/traces");
    assert_eq!(status, 200);
    let total = recent_count(&unfiltered);
    assert_eq!(total, 6, "{unfiltered}");

    // engine=: only rows served on that engine survive.
    let (status, filtered) = get(addr, "/v1/debug/traces?engine=simulator");
    assert_eq!(status, 200);
    let simulator_rows = recent_count(&filtered);
    assert!(
        simulator_rows >= 4,
        "explicit simulator traffic must survive its own filter: {filtered}"
    );
    let Some(Json::Array(rows)) = body_json(&filtered).get("recent").cloned() else {
        unreachable!()
    };
    for row in rows {
        assert_eq!(
            row.get("engine").and_then(Json::as_str),
            Some("simulator"),
            "{filtered}"
        );
    }

    // verdict=: auto traffic's router verdicts; nothing was shed here.
    let (status, chosen) = get(addr, "/v1/debug/traces?verdict=chosen");
    assert_eq!(status, 200);
    let (status, degraded) = get(addr, "/v1/debug/traces?verdict=degraded");
    assert_eq!(status, 200);
    assert_eq!(
        recent_count(&chosen) + recent_count(&degraded),
        2,
        "each auto request recorded exactly one verdict: {chosen} {degraded}"
    );
    let (status, shed) = get(addr, "/v1/debug/traces?verdict=shed");
    assert_eq!(status, 200);
    assert_eq!(recent_count(&shed), 0, "{shed}");

    // min_ms=: zero keeps everything, an absurd floor keeps nothing, and
    // filters compose.
    let (status, all) = get(addr, "/v1/debug/traces?min_ms=0");
    assert_eq!(status, 200);
    assert_eq!(recent_count(&all), total);
    let (status, none) = get(addr, "/v1/debug/traces?min_ms=9999999");
    assert_eq!(status, 200);
    assert_eq!(recent_count(&none), 0, "{none}");
    let (status, composed) = get(addr, "/v1/debug/traces?engine=simulator&min_ms=0");
    assert_eq!(status, 200);
    assert_eq!(recent_count(&composed), simulator_rows);

    // A malformed floor is the client's error, stably coded.
    let (status, bad) = get(addr, "/v1/debug/traces?min_ms=abc");
    assert_eq!(status, 400, "{bad}");
    assert_eq!(
        body_json(&bad)
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("bad_request"),
        "{bad}"
    );

    // The new endpoints are GET-only.
    let (status, reply) = request(addr, "POST", "/v1/slo");
    assert_eq!(status, 405, "{reply}");
    let (status, reply) = request(addr, "POST", "/v1/debug/profile");
    assert_eq!(status, 405, "{reply}");

    stack.finish();
}
