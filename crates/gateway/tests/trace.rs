//! End-to-end request tracing: unique `X-Request-Id`s under concurrent
//! keep-alive load, monotone non-overlapping stage spans in the opt-in
//! `"timings"` object, batch-mates sharing a batch span id, trace-ring
//! retention tiers, the router decision record on a shed request's trace,
//! and Prometheus text-format conformance of the whole `/metrics` scrape.

use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use bishop_gateway::{Gateway, GatewayConfig, Json};
use bishop_obs::{ObsConfig, ObsHub};
use bishop_runtime::{BatchPolicy, OnlineConfig, OnlineServer, RuntimeConfig};

/// The running stack under test.
struct Stack {
    runtime: OnlineServer,
    gateway: Gateway,
}

impl Stack {
    fn boot(online: OnlineConfig, gateway: GatewayConfig) -> Stack {
        let runtime = OnlineServer::start(online);
        let gateway = Gateway::start(gateway, runtime.handle()).expect("bind ephemeral port");
        Stack { runtime, gateway }
    }

    fn default() -> Stack {
        Self::boot(
            OnlineConfig::new(RuntimeConfig::new(2, BatchPolicy::new(4)))
                .with_batch_timeout(Some(Duration::from_millis(10))),
            GatewayConfig::default(),
        )
    }

    fn addr(&self) -> SocketAddr {
        self.gateway.local_addr()
    }

    fn finish(self) -> bishop_runtime::OnlineStats {
        self.gateway.shutdown();
        self.runtime.shutdown()
    }
}

/// Sends raw bytes, reads until EOF, returns (status, full response text).
fn raw_roundtrip(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw).expect("send");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read reply");
    (parse_status(&reply), reply)
}

fn parse_status(reply: &str) -> u16 {
    reply
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {reply:?}"))
}

/// The value of `name: ...` in the response head, if present.
fn header_value<'a>(reply: &'a str, name: &str) -> Option<&'a str> {
    let head = reply.split("\r\n\r\n").next().unwrap_or(reply);
    head.lines()
        .find_map(|line| line.strip_prefix(&format!("{name}: ")))
}

/// The parsed JSON body of a response.
fn body_json(reply: &str) -> Json {
    let body = reply
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .unwrap_or("");
    Json::parse(body).unwrap_or_else(|e| panic!("unparsable body {e}: {body:?}"))
}

fn infer_raw(body: &str, path: &str, close: bool) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nContent-Length: {}\r\n{}\r\n{body}",
        body.len(),
        if close { "Connection: close\r\n" } else { "" },
    )
    .into_bytes()
}

/// Reads exactly one keep-alive response (head + declared body) off a stream.
fn read_one_response(stream: &mut TcpStream) -> (u16, String) {
    let mut buffer = Vec::new();
    let mut chunk = [0u8; 1024];
    let (head_end, body_len) = loop {
        let n = stream.read(&mut chunk).expect("read response");
        assert!(n > 0, "peer closed before a full response");
        buffer.extend_from_slice(&chunk[..n]);
        if let Some(end) = buffer.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = std::str::from_utf8(&buffer[..end]).expect("UTF-8 head");
            let body_len = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .map(|v| v.parse::<usize>().unwrap())
                .unwrap_or(0);
            break (end, body_len);
        }
    };
    while buffer.len() < head_end + 4 + body_len {
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "peer closed mid-body");
        buffer.extend_from_slice(&chunk[..n]);
    }
    let text = String::from_utf8(buffer[..head_end + 4 + body_len].to_vec()).unwrap();
    let status = parse_status(&text);
    (status, text)
}

/// Pulls the `"timings"` object's stage spans as (label, start, end) triples.
fn stages_of(timings: &Json) -> Vec<(String, f64, f64)> {
    let Some(Json::Array(stages)) = timings.get("stages") else {
        panic!("timings without a stages array: {timings:?}");
    };
    stages
        .iter()
        .map(|stamp| {
            (
                stamp
                    .get("stage")
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string(),
                stamp.get("start_seconds").and_then(Json::as_f64).unwrap(),
                stamp.get("end_seconds").and_then(Json::as_f64).unwrap(),
            )
        })
        .collect()
}

#[test]
fn concurrent_traced_clients_get_unique_ids_and_monotone_stage_spans() {
    let stack = Stack::default();
    let addr = stack.addr();
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 3;

    let workers: Vec<_> = (0..CLIENTS)
        .map(|client| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                let engine = if client % 2 == 0 {
                    "simulator"
                } else {
                    "native"
                };
                let mut seen = Vec::new();
                for i in 0..PER_CLIENT {
                    let body = format!(
                        "{{\"model\": \"cifar10-serve\", \"seed\": {}, \
                         \"engine\": \"{engine}\", \"trace\": true}}",
                        (client * PER_CLIENT + i) % 3
                    );
                    stream
                        .write_all(&infer_raw(&body, "/v1/infer", false))
                        .expect("send");
                    let (status, reply) = read_one_response(&mut stream);
                    assert_eq!(status, 200, "{reply}");
                    seen.push((engine.to_string(), reply));
                }
                seen
            })
        })
        .collect();

    let mut ids = HashSet::new();
    for worker in workers {
        for (engine, reply) in worker.join().expect("client thread") {
            let header_id: u64 = header_value(&reply, "X-Request-Id")
                .expect("X-Request-Id on every /v1/infer response")
                .parse()
                .expect("numeric request id");
            assert!(ids.insert(header_id), "duplicate request id {header_id}");

            let body = body_json(&reply);
            let timings = body.get("timings").expect("timings when trace: true");
            assert_eq!(
                timings.get("request_id").and_then(Json::as_u64),
                Some(header_id),
                "timings id must match the X-Request-Id header"
            );
            assert_eq!(
                timings.get("engine").and_then(Json::as_str),
                Some(engine.as_str())
            );

            // The stage sequence is the request path in order; spans are
            // monotone and non-overlapping (each starts where the previous
            // ended). response_write is absent by construction — it ends
            // only after these bytes hit the wire.
            let stages = stages_of(timings);
            let labels: Vec<&str> = stages.iter().map(|(l, _, _)| l.as_str()).collect();
            assert_eq!(
                labels,
                [
                    "parse",
                    "router",
                    "admission",
                    "queue_wait",
                    "batch_formation",
                    "engine_execute",
                ],
                "{reply}"
            );
            let mut previous_end = 0.0_f64;
            for (label, start, end) in &stages {
                assert!(
                    *start >= previous_end - 1e-9,
                    "stage {label} starts ({start}) before the previous span ended \
                     ({previous_end})"
                );
                assert!(*end >= *start, "stage {label} ends before it starts");
                previous_end = *end;
            }
        }
    }
    assert_eq!(ids.len(), CLIENTS * PER_CLIENT);

    let stats = stack.finish();
    assert_eq!(stats.completed, (CLIENTS * PER_CLIENT) as u64);
}

#[test]
fn batch_mates_share_a_batch_span_id() {
    let stack = Stack::default();
    let addr = stack.addr();
    const REQUESTS: usize = 8;

    let workers: Vec<_> = (0..REQUESTS)
        .map(|i| {
            std::thread::spawn(move || {
                let body = format!(
                    "{{\"model\": \"cifar10-serve\", \"seed\": {}, \
                     \"engine\": \"simulator\", \"trace\": true}}",
                    i % 3
                );
                let (status, reply) = raw_roundtrip(addr, &infer_raw(&body, "/v1/infer", true));
                assert_eq!(status, 200, "{reply}");
                body_json(&reply)
                    .get("timings")
                    .and_then(|t| t.get("batch_id"))
                    .and_then(Json::as_u64)
                    .expect("executed request's timings carry its batch id")
            })
        })
        .collect();

    let batch_ids: Vec<u64> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .collect();
    let distinct: HashSet<u64> = batch_ids.iter().copied().collect();
    assert!(
        distinct.len() < REQUESTS,
        "concurrent compatible requests must coalesce: {REQUESTS} requests \
         produced {} distinct batch ids",
        distinct.len()
    );

    let stats = stack.finish();
    assert_eq!(stats.completed, REQUESTS as u64);
    assert_eq!(stats.batches_executed as usize, distinct.len());
}

#[test]
fn trace_ring_keeps_recent_and_slowest_tiers() {
    // A deliberately tiny retention (2 recent, 2 slowest) so eviction is
    // exercised by a handful of requests.
    let obs = Arc::new(ObsHub::new(ObsConfig::default().with_trace_retention(2, 2)));
    let stack = Stack::boot(
        OnlineConfig::new(RuntimeConfig::new(1, BatchPolicy::new(2))).with_obs(Arc::clone(&obs)),
        GatewayConfig::default(),
    );
    let addr = stack.addr();

    const REQUESTS: usize = 5;
    let mut issued = Vec::new();
    for seed in 0..REQUESTS {
        let body = format!("{{\"model\": \"cifar10-serve\", \"seed\": {seed}}}");
        let (status, reply) = raw_roundtrip(addr, &infer_raw(&body, "/v1/infer", true));
        assert_eq!(status, 200, "{reply}");
        issued.push(
            header_value(&reply, "X-Request-Id")
                .expect("request id header")
                .parse::<u64>()
                .unwrap(),
        );
    }

    let (status, reply) = raw_roundtrip(
        addr,
        b"GET /v1/debug/traces HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200, "{reply}");
    let listing = body_json(&reply);
    let tier_ids = |tier: &str| -> Vec<u64> {
        let Some(Json::Array(rows)) = listing.get(tier) else {
            panic!("missing {tier} tier in {reply}");
        };
        rows.iter()
            .map(|row| row.get("request_id").and_then(Json::as_u64).unwrap())
            .collect()
    };

    // The recent ring holds exactly the last two finished requests; the
    // slowest tier is full too, and may retain ids the ring has evicted.
    let recent = tier_ids("recent");
    assert_eq!(recent.len(), 2, "{reply}");
    for id in &issued[REQUESTS - 2..] {
        assert!(recent.contains(id), "recent tier lost {id}: {reply}");
    }
    let slowest = tier_ids("slowest");
    assert_eq!(slowest.len(), 2, "{reply}");

    // A retained trace is fetchable in full; a fully evicted one is a
    // machine-readable 404.
    let (status, reply) = raw_roundtrip(
        addr,
        format!(
            "GET /v1/debug/traces/{} HTTP/1.1\r\nConnection: close\r\n\r\n",
            recent[0]
        )
        .as_bytes(),
    );
    assert_eq!(status, 200, "{reply}");
    assert!(reply.contains("\"stages\""), "{reply}");

    let evicted: Vec<u64> = issued
        .iter()
        .copied()
        .filter(|id| !recent.contains(id) && !slowest.contains(id))
        .collect();
    assert!(!evicted.is_empty(), "5 traces cannot fit 2+2 retention");
    let (status, reply) = raw_roundtrip(
        addr,
        format!(
            "GET /v1/debug/traces/{} HTTP/1.1\r\nConnection: close\r\n\r\n",
            evicted[0]
        )
        .as_bytes(),
    );
    assert_eq!(status, 404, "{reply}");
    assert!(reply.contains("\"code\":\"trace_not_found\""), "{reply}");

    stack.finish();
}

#[test]
fn shed_request_trace_records_the_router_decision() {
    // Both auto candidates crawl at 1 op/s: a 10 ms deadline is unmeetable,
    // the shed is a 429 with a drain-priced Retry-After, and the trace keeps
    // the full router decision record for postmortem inspection.
    let stack = Stack::boot(
        OnlineConfig::new(RuntimeConfig::new(1, BatchPolicy::new(2))).with_drain_rate(1.0),
        GatewayConfig::default(),
    );
    let addr = stack.addr();

    let body = r#"{"model": "cifar10-serve", "engine": "auto", "deadline_ms": 10}"#;
    let (status, reply) = raw_roundtrip(addr, &infer_raw(body, "/v1/infer", true));
    assert_eq!(status, 429, "{reply}");
    let request_id: u64 = header_value(&reply, "X-Request-Id")
        .expect("sheds carry the request id header too")
        .parse()
        .unwrap();
    let retry_after: u64 = header_value(&reply, "Retry-After")
        .expect("429 must carry Retry-After")
        .parse()
        .expect("Retry-After is whole seconds");
    assert!((1..=60).contains(&retry_after), "{reply}");
    let error = body_json(&reply);
    let error = error.get("error").expect("machine-readable shed body");
    assert_eq!(
        error.get("code").and_then(Json::as_str),
        Some("no_engine_meets_deadline")
    );
    assert_eq!(
        error.get("request_id").and_then(Json::as_u64),
        Some(request_id)
    );

    // The shed request's finished trace shows exactly why: every candidate
    // considered, the completion each was predicted to make, and the verdict.
    let (status, reply) = raw_roundtrip(
        addr,
        format!("GET /v1/debug/traces/{request_id} HTTP/1.1\r\nConnection: close\r\n\r\n")
            .as_bytes(),
    );
    assert_eq!(status, 200, "{reply}");
    let trace = body_json(&reply);
    assert_eq!(trace.get("status").and_then(Json::as_u64), Some(429));
    assert_eq!(
        trace.get("error_code").and_then(Json::as_str),
        Some("no_engine_meets_deadline")
    );
    let router = trace.get("router").expect("router record on the trace");
    assert_eq!(
        router.get("deadline_seconds").and_then(Json::as_f64),
        Some(0.01)
    );
    let Some(Json::Array(candidates)) = router.get("candidates") else {
        panic!("router record without candidates: {reply}");
    };
    assert!(!candidates.is_empty(), "{reply}");
    for candidate in candidates {
        assert_eq!(
            candidate.get("eligible").and_then(Json::as_bool),
            Some(true)
        );
        assert!(
            candidate
                .get("predicted_seconds")
                .and_then(Json::as_f64)
                .unwrap()
                > 0.01
        );
        assert_eq!(
            candidate.get("meets_deadline").and_then(Json::as_bool),
            Some(false)
        );
    }
    let verdict = router.get("verdict").expect("verdict on the record");
    assert_eq!(verdict.get("outcome").and_then(Json::as_str), Some("shed"));
    assert_eq!(
        verdict.get("reason").and_then(Json::as_str),
        Some("no_engine_meets_deadline")
    );

    let stats = stack.finish();
    assert_eq!(stats.completed, 0);
}

#[test]
fn metrics_scrape_is_prometheus_text_format_conformant() {
    let stack = Stack::default();
    let addr = stack.addr();

    // Populate every family: two engines, one auto-routed decision.
    for body in [
        r#"{"model": "cifar10-serve", "seed": 1, "engine": "simulator"}"#,
        r#"{"model": "cifar10-serve", "seed": 2, "engine": "native"}"#,
        r#"{"model": "cifar10-serve", "seed": 3, "engine": "auto"}"#,
    ] {
        let (status, reply) = raw_roundtrip(addr, &infer_raw(body, "/v1/infer", true));
        assert_eq!(status, 200, "{reply}");
    }

    let (status, reply) =
        raw_roundtrip(addr, b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert_eq!(status, 200);
    assert_eq!(
        header_value(&reply, "Content-Type"),
        Some("text/plain; version=0.0.4")
    );
    let scrape = reply.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");

    // A parser-style walk over the whole exposition: every family announces
    // HELP then TYPE exactly once, all of a family's series sit in one
    // contiguous block, every sample belongs to a declared family and its
    // value is a number.
    let mut helped: HashSet<String> = HashSet::new();
    let mut families: HashMap<String, String> = HashMap::new();
    let mut closed: HashSet<String> = HashSet::new();
    let mut current: Option<String> = None;
    let mut samples = 0usize;
    for line in scrape.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap().to_string();
            assert!(helped.insert(name.clone()), "duplicate HELP for {name}");
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().unwrap().to_string();
            let kind = parts
                .next()
                .unwrap_or_else(|| panic!("TYPE without a kind: {line}"));
            assert!(
                ["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind),
                "unknown TYPE kind {kind}"
            );
            assert!(helped.contains(&name), "TYPE before HELP for {name}");
            assert!(
                families.insert(name.clone(), kind.to_string()).is_none(),
                "duplicate TYPE for {name}"
            );
            if let Some(previous) = current.replace(name.clone()) {
                closed.insert(previous);
            }
            assert!(
                !closed.contains(&name),
                "family {name} re-opened after others"
            );
        } else {
            assert!(!line.starts_with('#'), "unexpected comment form: {line}");
            let name_end = line
                .find(['{', ' '])
                .unwrap_or_else(|| panic!("unparsable sample line: {line}"));
            let sample = &line[..name_end];
            // Histogram samples use the family name plus a reserved suffix.
            let family = if families.contains_key(sample) {
                sample.to_string()
            } else {
                let base = ["_bucket", "_sum", "_count"]
                    .iter()
                    .find_map(|suffix| sample.strip_suffix(suffix))
                    .unwrap_or_else(|| panic!("sample {sample} has no declared family"));
                assert_eq!(
                    families.get(base).map(String::as_str),
                    Some("histogram"),
                    "suffixed sample {sample} outside a histogram family"
                );
                base.to_string()
            };
            assert_eq!(
                Some(family.as_str()),
                current.as_deref(),
                "sample {sample} outside its family's contiguous block"
            );
            let value = line.rsplit(' ').next().unwrap();
            value
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("non-numeric sample value: {line}"));
            samples += 1;
        }
    }
    assert!(samples > 0, "empty scrape");
    for name in helped {
        assert!(families.contains_key(&name), "HELP without TYPE for {name}");
    }

    // Histogram internal consistency: per series, the +Inf bucket equals the
    // count sample with the same labels.
    let mut inf_buckets: HashMap<String, f64> = HashMap::new();
    let mut counts: HashMap<String, f64> = HashMap::new();
    for line in scrape.lines() {
        if let Some(rest) = line.strip_prefix("bishop_stage_seconds_bucket{") {
            if let Some((labels, value)) = rest.split_once("} ") {
                if let Some(series) = labels.strip_suffix(",le=\"+Inf\"") {
                    inf_buckets.insert(series.to_string(), value.parse().unwrap());
                }
            }
        } else if let Some(rest) = line.strip_prefix("bishop_stage_seconds_count{") {
            if let Some((labels, value)) = rest.split_once("} ") {
                counts.insert(labels.to_string(), value.parse().unwrap());
            }
        }
    }
    assert!(
        !inf_buckets.is_empty(),
        "no stage histogram series in scrape"
    );
    assert_eq!(
        inf_buckets, counts,
        "+Inf bucket must equal _count per series"
    );

    stack.finish();
}
