//! Streamed serving and session continuation through the full HTTP stack:
//! chunked NDJSON step events, `POST/GET/DELETE /v1/sessions`, split-request
//! determinism against the single-request path, chunked request bodies, and
//! the session/stream observability surfaces.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use bishop_gateway::{Gateway, GatewayConfig, Json, ModelCatalog};
use bishop_model::{DatasetKind, ModelConfig};
use bishop_runtime::{BatchPolicy, OnlineConfig, OnlineServer, RuntimeConfig};
use bishop_session::{SessionId, SessionStoreConfig};

/// The running stack under test.
struct Stack {
    runtime: OnlineServer,
    gateway: Gateway,
}

impl Stack {
    fn boot(online: OnlineConfig, gateway: GatewayConfig) -> Stack {
        let runtime = OnlineServer::start(online);
        let gateway = Gateway::start(gateway, runtime.handle()).expect("bind ephemeral port");
        Stack { runtime, gateway }
    }

    /// Default runtime plus a deliberately tiny extra model so native
    /// streaming runs in milliseconds.
    fn default() -> Stack {
        Self::with_gateway(GatewayConfig::default().with_catalog(mini_catalog()))
    }

    fn with_gateway(gateway: GatewayConfig) -> Stack {
        Self::boot(
            OnlineConfig::new(RuntimeConfig::new(2, BatchPolicy::new(4)))
                .with_batch_timeout(Some(Duration::from_millis(10))),
            gateway,
        )
    }

    fn addr(&self) -> SocketAddr {
        self.gateway.local_addr()
    }

    fn finish(self) {
        self.gateway.shutdown();
        self.runtime.shutdown();
    }
}

fn mini_catalog() -> ModelCatalog {
    ModelCatalog::serving_default().with_model(
        "stream-mini",
        ModelConfig::new("stream-mini", DatasetKind::Cifar10, 1, 4, 8, 16, 2),
        bishop_bundle::TrainingRegime::Bsa,
        bishop_core::SimOptions::baseline(),
    )
}

fn post(path: &str, body: &str, close: bool) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nContent-Length: {}\r\n{}\r\n{body}",
        body.len(),
        if close { "Connection: close\r\n" } else { "" },
    )
    .into_bytes()
}

fn get(path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n").into_bytes()
}

fn delete(path: &str) -> Vec<u8> {
    format!("DELETE {path} HTTP/1.1\r\nConnection: close\r\n\r\n").into_bytes()
}

/// Sends raw bytes, reads until EOF, returns (status, full response text).
fn raw_roundtrip(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw).expect("send");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read reply");
    (parse_status(&reply), reply)
}

fn parse_status(reply: &str) -> u16 {
    reply
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {reply:?}"))
}

/// Parses the JSON body of a plain (Content-Length) response.
fn body_json(reply: &str) -> Json {
    let body = reply.split_once("\r\n\r\n").expect("response body").1;
    Json::parse(body).unwrap_or_else(|e| panic!("bad body JSON ({e}): {body:?}"))
}

/// De-chunks the body of a `Transfer-Encoding: chunked` response and parses
/// each NDJSON line. Panics if the terminating 0-chunk is missing.
fn dechunk_events(reply: &str) -> Vec<Json> {
    assert!(
        reply.contains("Transfer-Encoding: chunked"),
        "expected a chunked response, got: {reply:?}"
    );
    let raw = reply
        .split_once("\r\n\r\n")
        .expect("chunked body")
        .1
        .as_bytes();
    let mut payload = Vec::new();
    let mut pos = 0;
    loop {
        let line_end = raw[pos..]
            .windows(2)
            .position(|w| w == b"\r\n")
            .map(|i| pos + i)
            .expect("chunk size line");
        let size_text = std::str::from_utf8(&raw[pos..line_end]).expect("UTF-8 size line");
        let size = usize::from_str_radix(size_text.trim(), 16)
            .unwrap_or_else(|_| panic!("bad chunk size {size_text:?}"));
        pos = line_end + 2;
        if size == 0 {
            break;
        }
        payload.extend_from_slice(&raw[pos..pos + size]);
        pos += size + 2;
    }
    let text = String::from_utf8(payload).expect("UTF-8 NDJSON payload");
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad event JSON ({e}): {l:?}")))
        .collect()
}

/// Submits a streamed inference and returns (step events, terminal event).
fn stream_infer(addr: SocketAddr, body: &str) -> (Vec<Json>, Json) {
    let (status, reply) = raw_roundtrip(addr, &post("/v1/infer", body, true));
    assert_eq!(status, 200, "{reply}");
    let mut events = dechunk_events(&reply);
    assert!(!events.is_empty(), "stream carried no events: {reply}");
    let terminal = events.pop().expect("terminal event");
    (events, terminal)
}

fn event_kind(event: &Json) -> &str {
    event
        .get("event")
        .and_then(Json::as_str)
        .expect("every NDJSON line carries an \"event\" discriminator")
}

#[test]
fn streamed_native_infer_delivers_step_events_then_the_result() {
    let stack = Stack::default();
    let (steps, terminal) = stream_infer(
        stack.addr(),
        r#"{"model": "stream-mini", "engine": "native", "seed": 1, "stream": true}"#,
    );

    // Step events land on the wire before the terminal result is written,
    // so a client sees progress before execution completes.
    assert_eq!(steps.len(), 4, "one event per timestep");
    for (i, event) in steps.iter().enumerate() {
        assert_eq!(event_kind(event), "step");
        assert_eq!(event.get("index").and_then(Json::as_u64), Some(i as u64));
        assert_eq!(event.get("total").and_then(Json::as_u64), Some(4));
        assert_eq!(
            event.get("unit").and_then(Json::as_str),
            Some("timestep"),
            "native progress unit is the timestep"
        );
    }
    assert_eq!(event_kind(&terminal), "result");
    assert_eq!(
        terminal.get("engine").and_then(Json::as_str),
        Some("native")
    );
    assert_eq!(
        terminal.get("timesteps_done").and_then(Json::as_u64),
        Some(4)
    );
    let logits = match terminal.get("logits") {
        Some(Json::Array(values)) => values,
        other => panic!("native results carry logits, got {other:?}"),
    };
    assert_eq!(logits.len(), DatasetKind::Cifar10.classes());
    stack.finish();
}

#[test]
fn streamed_simulator_infer_reports_per_layer_progress() {
    let stack = Stack::default();
    let (steps, terminal) = stream_infer(
        stack.addr(),
        r#"{"model": "stream-mini", "engine": "simulator", "seed": 2, "stream": true}"#,
    );
    assert!(!steps.is_empty(), "simulator streams layer progress");
    assert!(steps
        .iter()
        .all(|e| e.get("unit").and_then(Json::as_str) == Some("layer")));
    assert_eq!(event_kind(&terminal), "result");
    assert!(terminal.get("cycles").and_then(Json::as_u64).is_some());
    assert!(terminal.get("energy_mj").and_then(Json::as_f64).is_some());
    stack.finish();
}

#[test]
fn streamed_responses_preserve_keep_alive() {
    let stack = Stack::default();
    let mut stream = TcpStream::connect(stack.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(&post(
            "/v1/infer",
            r#"{"model": "stream-mini", "engine": "native", "seed": 3, "stream": true}"#,
            false,
        ))
        .expect("send streamed");
    // Read one full chunked response (through its 0-chunk terminator).
    let mut buffer = Vec::new();
    let mut chunk = [0u8; 4096];
    while !buffer.windows(7).any(|w| w == b"\r\n0\r\n\r\n") {
        let n = stream.read(&mut chunk).expect("read stream");
        assert!(n > 0, "peer closed mid-stream");
        buffer.extend_from_slice(&chunk[..n]);
    }
    let reply = String::from_utf8(buffer).expect("UTF-8 reply");
    let events = dechunk_events(&reply);
    assert_eq!(event_kind(events.last().unwrap()), "result");

    // The connection is still usable for a second, plain request.
    stream
        .write_all(&post(
            "/v1/infer",
            r#"{"model": "stream-mini", "seed": 4}"#,
            true,
        ))
        .expect("send follow-up");
    let mut follow_up = String::new();
    stream
        .read_to_string(&mut follow_up)
        .expect("read follow-up");
    assert_eq!(parse_status(&follow_up), 200, "{follow_up}");
    stack.finish();
}

/// The tentpole determinism guarantee, end to end over HTTP: a 4-timestep
/// native inference split into two session-continued requests produces
/// bit-identical logits to the single-request path.
#[test]
fn session_split_is_bit_identical_to_a_single_request_on_native() {
    let stack = Stack::default();
    let addr = stack.addr();

    let (_, single) = stream_infer(
        addr,
        r#"{"model": "stream-mini", "engine": "native", "seed": 7, "stream": true}"#,
    );
    let single_logits = single.get("logits").expect("native logits").encode();

    let (status, reply) = raw_roundtrip(
        addr,
        &post(
            "/v1/sessions",
            r#"{"model": "stream-mini", "engine": "native", "seed": 7}"#,
            true,
        ),
    );
    assert_eq!(status, 200, "{reply}");
    let id = body_json(&reply)
        .get("id")
        .and_then(Json::as_str)
        .expect("session id")
        .to_string();

    // First half: a *non-streamed* continuation (covers the blocking
    // session path). The session's seed wins — none is sent here.
    let (status, reply) = raw_roundtrip(
        addr,
        &post(
            "/v1/infer",
            &format!(r#"{{"model": "stream-mini", "session": "{id}", "timesteps": 2}}"#),
            true,
        ),
    );
    assert_eq!(status, 200, "{reply}");
    let first = body_json(&reply);
    assert_eq!(first.get("session").and_then(Json::as_str), Some(&id[..]));
    assert_eq!(first.get("timesteps_done").and_then(Json::as_u64), Some(2));

    // Second half: streamed, default step count (the remaining horizon).
    let (steps, second) = stream_infer(
        addr,
        &format!(r#"{{"model": "stream-mini", "session": "{id}", "stream": true}}"#),
    );
    // Event indices continue the absolute timestep count across requests.
    assert_eq!(
        steps.first().unwrap().get("index").and_then(Json::as_u64),
        Some(2)
    );
    assert_eq!(
        steps.last().unwrap().get("index").and_then(Json::as_u64),
        Some(3)
    );
    assert_eq!(second.get("timesteps_done").and_then(Json::as_u64), Some(4));
    let split_logits = second.get("logits").expect("native logits").encode();
    assert_eq!(
        split_logits, single_logits,
        "two-request continuation diverged from the single-request path"
    );

    // The horizon is now fully consumed: a further default continuation is
    // refused typed.
    let (status, reply) = raw_roundtrip(
        addr,
        &post(
            "/v1/infer",
            &format!(r#"{{"model": "stream-mini", "session": "{id}"}}"#),
            true,
        ),
    );
    assert_eq!(status, 422, "{reply}");
    assert!(reply.contains("session_complete"), "{reply}");
    stack.finish();
}

#[test]
fn session_split_is_bit_identical_to_a_single_request_on_the_simulator() {
    let stack = Stack::default();
    let addr = stack.addr();

    let (_, single) = stream_infer(
        addr,
        r#"{"model": "cifar10-serve", "engine": "simulator", "seed": 5, "stream": true}"#,
    );

    let (status, reply) = raw_roundtrip(
        addr,
        &post(
            "/v1/sessions",
            r#"{"model": "cifar10-serve", "seed": 5}"#,
            true,
        ),
    );
    assert_eq!(status, 200, "{reply}");
    let created = body_json(&reply);
    // The default engine hosts the session when none is named.
    assert_eq!(
        created.get("engine").and_then(Json::as_str),
        Some("simulator")
    );
    let id = created
        .get("id")
        .and_then(Json::as_str)
        .expect("session id")
        .to_string();

    let (_, first) = stream_infer(
        addr,
        &format!(
            r#"{{"model": "cifar10-serve", "session": "{id}", "timesteps": 3, "stream": true}}"#
        ),
    );
    assert_eq!(first.get("timesteps_done").and_then(Json::as_u64), Some(3));
    let (_, second) = stream_infer(
        addr,
        &format!(r#"{{"model": "cifar10-serve", "session": "{id}", "stream": true}}"#),
    );
    assert_eq!(second.get("timesteps_done").and_then(Json::as_u64), Some(4));
    for field in ["cycles", "energy_mj"] {
        assert_eq!(
            second.get(field).map(Json::encode),
            single.get(field).map(Json::encode),
            "simulated {field} diverged across the split"
        );
    }
    stack.finish();
}

#[test]
fn session_crud_lifecycle_over_http() {
    let stack = Stack::default();
    let addr = stack.addr();

    // Unknown models and non-streaming engines are refused at creation.
    let (status, reply) = raw_roundtrip(addr, &post("/v1/sessions", r#"{"model": "nope"}"#, true));
    assert_eq!(status, 400, "{reply}");
    assert!(reply.contains("unknown_model"));
    let (status, reply) = raw_roundtrip(
        addr,
        &post(
            "/v1/sessions",
            r#"{"model": "cifar10-serve", "engine": "ptb"}"#,
            true,
        ),
    );
    assert_eq!(status, 422, "{reply}");
    assert!(reply.contains("streaming_unsupported"));

    let (status, reply) = raw_roundtrip(
        addr,
        &post(
            "/v1/sessions",
            r#"{"model": "cifar10-serve", "engine": "native", "seed": 9}"#,
            true,
        ),
    );
    assert_eq!(status, 200, "{reply}");
    let id = body_json(&reply)
        .get("id")
        .and_then(Json::as_str)
        .expect("session id")
        .to_string();
    assert!(id.starts_with("sess-"), "wire id format: {id}");

    let (status, reply) = raw_roundtrip(addr, &get("/v1/sessions"));
    assert_eq!(status, 200, "{reply}");
    let listing = body_json(&reply);
    assert_eq!(listing.get("active").and_then(Json::as_u64), Some(1));
    let sessions = match listing.get("sessions") {
        Some(Json::Array(rows)) => rows,
        other => panic!("sessions listing: {other:?}"),
    };
    assert_eq!(sessions[0].get("id").and_then(Json::as_str), Some(&id[..]));
    assert_eq!(
        sessions[0].get("engine").and_then(Json::as_str),
        Some("native")
    );
    assert_eq!(
        sessions[0].get("in_flight").and_then(Json::as_bool),
        Some(false)
    );

    // A session pinned to native refuses an explicitly conflicting engine.
    let (status, reply) = raw_roundtrip(
        addr,
        &post(
            "/v1/infer",
            &format!(r#"{{"model": "cifar10-serve", "session": "{id}", "engine": "simulator"}}"#),
            true,
        ),
    );
    assert_eq!(status, 422, "{reply}");
    assert!(reply.contains("session_engine_mismatch"));
    // ... and a different model entirely.
    let (status, reply) = raw_roundtrip(
        addr,
        &post(
            "/v1/infer",
            &format!(r#"{{"model": "imagenet100-serve", "session": "{id}"}}"#),
            true,
        ),
    );
    assert_eq!(status, 422, "{reply}");
    assert!(reply.contains("session_model_mismatch"));

    let (status, reply) = raw_roundtrip(addr, &delete(&format!("/v1/sessions/{id}")));
    assert_eq!(status, 200, "{reply}");
    assert!(reply.contains("evicted"));
    // The id is generation-counted: once evicted it never resolves again.
    let (status, reply) = raw_roundtrip(addr, &delete(&format!("/v1/sessions/{id}")));
    assert_eq!(status, 404, "{reply}");
    assert!(reply.contains("session_not_found"));
    let (status, reply) = raw_roundtrip(
        addr,
        &post(
            "/v1/infer",
            &format!(r#"{{"model": "cifar10-serve", "session": "{id}"}}"#),
            true,
        ),
    );
    assert_eq!(status, 404, "{reply}");
    stack.finish();
}

#[test]
fn in_flight_sessions_refuse_concurrent_resume_and_eviction() {
    let stack = Stack::default();
    let addr = stack.addr();
    let store = std::sync::Arc::clone(stack.gateway.sessions());
    let id = store
        .create("cifar10-serve", "simulator", 1)
        .expect("slot available");
    let lease = store.begin(id).expect("lease");

    let (status, reply) = raw_roundtrip(addr, &delete(&format!("/v1/sessions/{id}")));
    assert_eq!(status, 409, "{reply}");
    assert!(reply.contains("session_in_flight"));
    let (status, reply) = raw_roundtrip(
        addr,
        &post(
            "/v1/infer",
            &format!(r#"{{"model": "cifar10-serve", "session": "{id}"}}"#),
            true,
        ),
    );
    assert_eq!(status, 409, "{reply}");

    // Aborting the lease parks the session again; eviction now succeeds.
    store.abort(lease);
    let (status, reply) = raw_roundtrip(addr, &delete(&format!("/v1/sessions/{id}")));
    assert_eq!(status, 200, "{reply}");
    stack.finish();
}

#[test]
fn idle_sessions_expire_into_410_gone() {
    let stack = Stack::with_gateway(GatewayConfig::default().with_session_store(
        SessionStoreConfig {
            capacity: 4,
            ttl: Duration::from_millis(40),
        },
    ));
    let addr = stack.addr();
    let (status, reply) = raw_roundtrip(
        addr,
        &post("/v1/sessions", r#"{"model": "cifar10-serve"}"#, true),
    );
    assert_eq!(status, 200, "{reply}");
    let id = body_json(&reply)
        .get("id")
        .and_then(Json::as_str)
        .expect("session id")
        .to_string();

    std::thread::sleep(Duration::from_millis(80));
    let (status, reply) = raw_roundtrip(
        addr,
        &post(
            "/v1/infer",
            &format!(r#"{{"model": "cifar10-serve", "session": "{id}"}}"#),
            true,
        ),
    );
    assert_eq!(status, 410, "{reply}");
    assert!(reply.contains("session_expired"));

    let (status, reply) = raw_roundtrip(addr, &get("/v1/sessions"));
    assert_eq!(status, 200, "{reply}");
    assert_eq!(
        body_json(&reply).get("active").and_then(Json::as_u64),
        Some(0)
    );
    let (status, metrics) = raw_roundtrip(addr, &get("/metrics"));
    assert_eq!(status, 200);
    assert!(
        metrics.contains("bishop_sessions_evicted_total{reason=\"ttl\"} 1"),
        "{metrics}"
    );
    stack.finish();
}

/// A chunked *request* body reaches the runtime like any other: the parser
/// reassembles it before `/v1/infer` decoding.
#[test]
fn chunked_request_bodies_are_reassembled_end_to_end() {
    let stack = Stack::default();
    let body = r#"{"model": "stream-mini", "seed": 6}"#;
    let (head, tail) = body.split_at(12);
    let raw = format!(
        "POST /v1/infer HTTP/1.1\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n\
         {:x}\r\n{head}\r\n{:x}\r\n{tail}\r\n0\r\n\r\n",
        head.len(),
        tail.len(),
    );
    let (status, reply) = raw_roundtrip(stack.addr(), raw.as_bytes());
    assert_eq!(status, 200, "{reply}");
    assert!(reply.contains("\"latency_seconds\""));
    stack.finish();
}

#[test]
fn trace_listing_filters_by_session_id() {
    let stack = Stack::default();
    let addr = stack.addr();
    let (status, reply) = raw_roundtrip(
        addr,
        &post(
            "/v1/sessions",
            r#"{"model": "stream-mini", "engine": "native"}"#,
            true,
        ),
    );
    assert_eq!(status, 200, "{reply}");
    let id = body_json(&reply)
        .get("id")
        .and_then(Json::as_str)
        .expect("session id")
        .to_string();

    // One session-tagged request, one plain one.
    let (status, _) = raw_roundtrip(
        addr,
        &post(
            "/v1/infer",
            &format!(r#"{{"model": "stream-mini", "session": "{id}", "timesteps": 1}}"#),
            true,
        ),
    );
    assert_eq!(status, 200);
    let (status, _) = raw_roundtrip(
        addr,
        &post("/v1/infer", r#"{"model": "stream-mini", "seed": 8}"#, true),
    );
    assert_eq!(status, 200);

    // Traces are finished just after the response hits the wire; poll
    // briefly rather than racing it.
    let mut rows = Vec::new();
    for _ in 0..50 {
        let (status, reply) = raw_roundtrip(addr, &get(&format!("/v1/debug/traces?session={id}")));
        assert_eq!(status, 200, "{reply}");
        match body_json(&reply).get("recent") {
            Some(Json::Array(recent)) if !recent.is_empty() => {
                rows = recent.clone();
                break;
            }
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    assert_eq!(rows.len(), 1, "only the session-tagged trace matches");
    assert_eq!(rows[0].get("session").and_then(Json::as_str), Some(&id[..]));
    stack.finish();
}

#[test]
fn metrics_expose_stream_and_session_families() {
    let stack = Stack::default();
    let addr = stack.addr();
    let (steps, _) = stream_infer(
        addr,
        r#"{"model": "stream-mini", "engine": "native", "seed": 1, "stream": true}"#,
    );
    assert!(!steps.is_empty());
    let (status, reply) = raw_roundtrip(
        addr,
        &post("/v1/sessions", r#"{"model": "stream-mini"}"#, true),
    );
    assert_eq!(status, 200, "{reply}");
    let id = body_json(&reply)
        .get("id")
        .and_then(Json::as_str)
        .expect("session id")
        .to_string();
    let (status, metrics) = raw_roundtrip(addr, &get("/metrics"));
    assert_eq!(status, 200);
    assert!(
        metrics.contains("bishop_stream_events_total{engine=\"native\"} 4"),
        "{metrics}"
    );
    assert!(metrics.contains("bishop_sessions_active 1"), "{metrics}");
    assert!(
        metrics.contains("bishop_sessions_evicted_total{reason=\"explicit\"} 0"),
        "{metrics}"
    );
    let (status, _) = raw_roundtrip(addr, &delete(&format!("/v1/sessions/{id}")));
    assert_eq!(status, 200);
    let (_, metrics) = raw_roundtrip(addr, &get("/metrics"));
    assert!(metrics.contains("bishop_sessions_active 0"), "{metrics}");
    assert!(
        metrics.contains("bishop_sessions_evicted_total{reason=\"explicit\"} 1"),
        "{metrics}"
    );
    stack.finish();
}

/// Refusals knowable from the request profile arrive as plain typed 422s —
/// never after a chunked 200 header has committed.
#[test]
fn streaming_preflight_refuses_before_headers_commit() {
    let stack = Stack::default();
    let addr = stack.addr();
    for body in [
        // Baseline engines have no streaming path.
        r#"{"model": "cifar10-serve", "engine": "ptb", "stream": true}"#,
        // "auto" cannot pin the engine identity a stream/session needs.
        r#"{"model": "cifar10-serve", "engine": "auto", "stream": true}"#,
    ] {
        let (status, reply) = raw_roundtrip(addr, &post("/v1/infer", body, true));
        assert_eq!(status, 422, "{reply}");
        assert!(reply.contains("streaming_unsupported"), "{reply}");
        assert!(
            !reply.contains("Transfer-Encoding"),
            "refusal must be a plain response: {reply}"
        );
    }
    // Overrunning the model horizon is caught at decode, too.
    let (status, reply) = raw_roundtrip(
        addr,
        &post(
            "/v1/infer",
            r#"{"model": "stream-mini", "engine": "native", "timesteps": 9, "stream": true}"#,
            true,
        ),
    );
    assert_eq!(status, 422, "{reply}");
    assert!(reply.contains("timesteps_out_of_range"), "{reply}");
    let sid = {
        let store = stack.gateway.sessions();
        store.create("stream-mini", "native", 1).expect("slot")
    };
    // Bad wire ids never reach the store.
    let (status, reply) = raw_roundtrip(
        addr,
        &post(
            "/v1/infer",
            r#"{"model": "stream-mini", "session": "not-a-session"}"#,
            true,
        ),
    );
    assert_eq!(status, 400, "{reply}");
    let _ = SessionId::parse(&sid.to_string()).expect("wire id round-trips");
    stack.finish();
}
