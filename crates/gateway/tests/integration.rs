//! End-to-end gateway integration: boot the full runtime + gateway stack on
//! an ephemeral port and drive it with raw-socket clients — well-formed,
//! malformed, oversized, overloading and slow-loris — asserting status
//! codes, keep-alive behaviour and a clean shutdown.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use bishop_gateway::{Gateway, GatewayConfig, Limits};
use bishop_runtime::{BatchPolicy, OnlineConfig, OnlineServer, RuntimeConfig};

/// The running stack under test.
struct Stack {
    runtime: OnlineServer,
    gateway: Gateway,
}

impl Stack {
    fn boot(online: OnlineConfig, gateway: GatewayConfig) -> Stack {
        let runtime = OnlineServer::start(online);
        let gateway = Gateway::start(gateway, runtime.handle()).expect("bind ephemeral port");
        Stack { runtime, gateway }
    }

    fn default() -> Stack {
        // A 10 ms batching window: long enough that concurrently-submitted
        // compatible requests reliably coalesce even on a loaded CI box,
        // short enough to keep the suite quick.
        Self::boot(
            OnlineConfig::new(RuntimeConfig::new(2, BatchPolicy::new(4)))
                .with_batch_timeout(Some(Duration::from_millis(10))),
            GatewayConfig::default(),
        )
    }

    fn addr(&self) -> SocketAddr {
        self.gateway.local_addr()
    }

    fn finish(self) -> bishop_runtime::OnlineStats {
        self.gateway.shutdown();
        self.runtime.shutdown()
    }
}

/// Sends raw bytes, reads until EOF, returns (status, full response text).
fn raw_roundtrip(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw).expect("send");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read reply");
    (parse_status(&reply), reply)
}

fn parse_status(reply: &str) -> u16 {
    reply
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {reply:?}"))
}

fn infer_bytes(model: &str, seed: u64, close: bool) -> Vec<u8> {
    let body = format!("{{\"model\": \"{model}\", \"seed\": {seed}}}");
    format!(
        "POST /v1/infer HTTP/1.1\r\nContent-Length: {}\r\n{}\r\n{}",
        body.len(),
        if close { "Connection: close\r\n" } else { "" },
        body
    )
    .into_bytes()
}

/// Reads exactly one keep-alive response (head + declared body) off a stream.
fn read_one_response(stream: &mut TcpStream) -> (u16, String) {
    let mut buffer = Vec::new();
    let mut chunk = [0u8; 1024];
    let (head_end, body_len) = loop {
        let n = stream.read(&mut chunk).expect("read response");
        assert!(n > 0, "peer closed before a full response");
        buffer.extend_from_slice(&chunk[..n]);
        if let Some(end) = buffer.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = std::str::from_utf8(&buffer[..end]).expect("UTF-8 head");
            let body_len = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .map(|v| v.parse::<usize>().unwrap())
                .unwrap_or(0);
            break (end, body_len);
        }
    };
    while buffer.len() < head_end + 4 + body_len {
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "peer closed mid-body");
        buffer.extend_from_slice(&chunk[..n]);
    }
    let text = String::from_utf8(buffer[..head_end + 4 + body_len].to_vec()).unwrap();
    let status = parse_status(&text);
    (status, text)
}

#[test]
fn well_formed_infer_round_trips() {
    let stack = Stack::default();
    let (status, reply) = raw_roundtrip(stack.addr(), &infer_bytes("cifar10-serve", 3, true));
    assert_eq!(status, 200, "{reply}");
    assert!(reply.contains("\"request_id\""));
    assert!(reply.contains("\"latency_seconds\""));
    assert!(reply.contains("\"batch_size\""));
    let stats = stack.finish();
    assert_eq!(stats.completed, 1);
}

#[test]
fn concurrent_keep_alive_clients_all_get_responses() {
    let stack = Stack::default();
    let addr = stack.addr();
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 4;

    let workers: Vec<_> = (0..CLIENTS)
        .map(|client| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                for i in 0..PER_CLIENT {
                    let model = if client % 2 == 0 {
                        "cifar10-serve"
                    } else {
                        "imagenet100-serve"
                    };
                    stream
                        .write_all(&infer_bytes(
                            model,
                            (client * PER_CLIENT + i) as u64 % 3,
                            false,
                        ))
                        .expect("send");
                    let (status, reply) = read_one_response(&mut stream);
                    assert_eq!(status, 200, "{reply}");
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread");
    }

    let stats = stack.finish();
    assert_eq!(stats.completed, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(stats.admission.total(), 0, "no shedding at this load");
    assert!(
        stats.batches_executed < stats.completed,
        "concurrent compatible requests must coalesce into shared batches \
         ({} batches for {} requests)",
        stats.batches_executed,
        stats.completed,
    );
}

#[test]
fn engines_endpoint_lists_backends_and_requests_select_them() {
    let stack = Stack::default();
    let addr = stack.addr();

    // GET /v1/engines publishes every registered backend's descriptor.
    let (status, reply) = raw_roundtrip(
        addr,
        b"GET /v1/engines HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200, "{reply}");
    for needle in [
        "\"simulator\"",
        "\"native\"",
        "\"ptb\"",
        "\"gpu\"",
        "\"supports_ecp\"",
        "\"deterministic\"",
        "\"measures_wall_clock\"",
        "\"host_cpu\"",
    ] {
        assert!(reply.contains(needle), "missing {needle} in {reply}");
    }

    // /v1/models reports per-entry engine support: the ECP-default entry is
    // simulator-only, the baseline-options entry runs everywhere.
    let (status, models) = raw_roundtrip(
        addr,
        b"GET /v1/models HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    assert!(models.contains("\"engines\":[\"simulator\",\"native\",\"ptb\",\"gpu\"]"));
    assert!(models.contains("\"engines\":[\"simulator\"]"));

    // An inference naming the native engine really executes on the CPU:
    // the response carries the engine name, a measured wall-clock and a
    // real prediction.
    let body = r#"{"model": "cifar10-serve", "seed": 3, "engine": "native"}"#;
    let raw = format!(
        "POST /v1/infer HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let (status, reply) = raw_roundtrip(addr, raw.as_bytes());
    assert_eq!(status, 200, "{reply}");
    assert!(reply.contains("\"engine\":\"native\""), "{reply}");
    assert!(reply.contains("\"wall_seconds\""), "{reply}");
    assert!(reply.contains("\"batch_prediction\""), "{reply}");

    // The same model on the baseline engines answers too (A/B serving).
    for engine in ["ptb", "gpu"] {
        let body =
            format!("{{\"model\": \"cifar10-serve\", \"seed\": 3, \"engine\": \"{engine}\"}}");
        let raw = format!(
            "POST /v1/infer HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        let (status, reply) = raw_roundtrip(addr, raw.as_bytes());
        assert_eq!(status, 200, "{reply}");
        assert!(
            reply.contains(&format!("\"engine\":\"{engine}\"")),
            "{reply}"
        );
    }

    let stats = stack.finish();
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.failed, 0);
}

#[test]
fn auto_engine_routes_over_the_wire_and_engines_report_load() {
    let stack = Stack::default();
    let addr = stack.addr();

    // "engine": "auto" with no deadline resolves on the preferred concrete
    // engine (native for a profile native supports) — the response names
    // the engine that actually executed.
    let body = r#"{"model": "cifar10-serve", "seed": 5, "engine": "auto"}"#;
    let raw = format!(
        "POST /v1/infer HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let (status, reply) = raw_roundtrip(addr, raw.as_bytes());
    assert_eq!(status, 200, "{reply}");
    assert!(reply.contains("\"engine\":\"native\""), "{reply}");

    // An ECP-default model on auto degrades to the simulator (native has
    // no ECP path) instead of failing.
    let body = r#"{"model": "imagenet100-serve", "seed": 5, "engine": "auto"}"#;
    let raw = format!(
        "POST /v1/infer HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let (status, reply) = raw_roundtrip(addr, raw.as_bytes());
    assert_eq!(status, 200, "{reply}");
    assert!(reply.contains("\"engine\":\"simulator\""), "{reply}");

    // GET /v1/engines now reports the live per-engine scheduling view:
    // calibrated drain rates, queue depths, observed latency percentiles.
    let (status, engines) = raw_roundtrip(
        addr,
        b"GET /v1/engines HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    for needle in [
        "\"seed_drain_ops_per_second\"",
        "\"drain_ops_per_second\"",
        "\"queue_depth\"",
        "\"latency_p50_seconds\"",
        "\"latency_p95_seconds\"",
        "\"completed\":1",
    ] {
        assert!(engines.contains(needle), "missing {needle} in {engines}");
    }

    // /metrics carries the per-engine labeled series.
    let (status, metrics) =
        raw_roundtrip(addr, b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert_eq!(status, 200);
    for needle in [
        "bishop_runtime_queue_depth{engine=\"native\"}",
        "bishop_runtime_batches_total{engine=\"simulator\"} 1",
        "bishop_runtime_batches_total{engine=\"native\"} 1",
        "bishop_runtime_drain_ops_per_second{engine=\"simulator\"}",
        "bishop_stage_seconds_count{engine=\"native\",stage=\"engine_execute\"}",
        "bishop_router_decisions_total{engine=",
    ] {
        assert!(metrics.contains(needle), "missing {needle} in {metrics}");
    }

    let stats = stack.finish();
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.failed, 0);
}

#[test]
fn auto_with_unmeetable_deadline_sheds_429_with_a_stable_code() {
    // Both auto candidates crawl at 1 op/s: any deadline is unmeetable and
    // the shed is an explicit, machine-readable 429 — never a hang.
    let stack = Stack::boot(
        OnlineConfig::new(RuntimeConfig::new(1, BatchPolicy::new(2))).with_drain_rate(1.0),
        GatewayConfig::default(),
    );
    let body = r#"{"model": "cifar10-serve", "engine": "auto", "deadline_ms": 10}"#;
    let raw = format!(
        "POST /v1/infer HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let (status, reply) = raw_roundtrip(stack.addr(), raw.as_bytes());
    assert_eq!(status, 429, "{reply}");
    assert!(
        reply.contains("\"code\":\"no_engine_meets_deadline\""),
        "{reply}"
    );
    assert!(reply.contains("Retry-After"));
    let stats = stack.finish();
    assert_eq!(stats.admission.no_engine, 1);
}

#[test]
fn engine_refusals_and_unknown_engines_get_machine_readable_codes() {
    let stack = Stack::default();
    let addr = stack.addr();

    // Unknown engine: rejected at decode with a stable code, 400.
    let body = r#"{"model": "cifar10-serve", "engine": "tpu"}"#;
    let raw = format!(
        "POST /v1/infer HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let (status, reply) = raw_roundtrip(addr, raw.as_bytes());
    assert_eq!(status, 400, "{reply}");
    assert!(reply.contains("\"code\":\"unknown_engine\""), "{reply}");

    // The ImageNet entry defaults to ECP; the native engine has no ECP
    // path. The capability preflight rejects the request at decode time —
    // 422 with the engine's stable code, before it ever consumes a queue
    // slot or a worker dispatch.
    let body = r#"{"model": "imagenet100-serve", "engine": "native"}"#;
    let raw = format!(
        "POST /v1/infer HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let (status, reply) = raw_roundtrip(addr, raw.as_bytes());
    assert_eq!(status, 422, "{reply}");
    assert!(reply.contains("\"code\":\"ecp_unsupported\""), "{reply}");

    // Overriding ECP off routes the same model through natively.
    let body = r#"{"model": "imagenet100-serve", "engine": "native", "ecp_threshold": null}"#;
    let raw = format!(
        "POST /v1/infer HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let (status, reply) = raw_roundtrip(addr, raw.as_bytes());
    assert_eq!(status, 200, "{reply}");

    // Every error body is the nested machine-readable shape.
    let (status, reply) = raw_roundtrip(addr, b"GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert_eq!(status, 404);
    assert!(
        reply.contains("\"error\":{\"code\":\"not_found\""),
        "{reply}"
    );

    let stats = stack.finish();
    // The preflighted refusal never reached the runtime: only the
    // ECP-disabled retry was admitted and served. (Batch-dependent
    // refusals that must pass the worker are covered by the runtime's
    // engine-error tests.)
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.submitted, 1);
    assert_eq!(stats.completed, 1);
}

#[test]
fn malformed_requests_get_400_and_correct_statuses() {
    let stack = Stack::default();
    let addr = stack.addr();

    // Garbage request line.
    let (status, _) = raw_roundtrip(addr, b"THIS IS NOT HTTP\r\n\r\n");
    assert_eq!(status, 400);
    // Unparsable JSON body.
    let bad = b"POST /v1/infer HTTP/1.1\r\nContent-Length: 9\r\nConnection: close\r\n\r\nnot json!";
    assert_eq!(raw_roundtrip(addr, bad).0, 400);
    // Unknown model.
    let (status, reply) = raw_roundtrip(addr, &infer_bytes("no-such-model", 0, true));
    assert_eq!(status, 400);
    assert!(reply.contains("unknown model"));
    // Unknown path and wrong method.
    assert_eq!(
        raw_roundtrip(addr, b"GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n").0,
        404
    );
    assert_eq!(
        raw_roundtrip(addr, b"GET /v1/infer HTTP/1.1\r\nConnection: close\r\n\r\n").0,
        405
    );
    // Unsupported HTTP version.
    assert_eq!(raw_roundtrip(addr, b"GET /healthz HTTP/3.0\r\n\r\n").0, 505);

    stack.finish();
}

#[test]
fn oversized_requests_are_rejected_before_buffering() {
    let stack = Stack::boot(
        OnlineConfig::new(RuntimeConfig::new(1, BatchPolicy::new(2))),
        GatewayConfig::default().with_limits(Limits {
            max_head_bytes: 512,
            max_body_bytes: 256,
        }),
    );
    let addr = stack.addr();

    // Declared body over the limit: rejected from the Content-Length alone.
    let huge = format!(
        "POST /v1/infer HTTP/1.1\r\nContent-Length: 100000\r\n\r\n{}",
        "x".repeat(512)
    );
    assert_eq!(raw_roundtrip(addr, huge.as_bytes()).0, 413);

    // Head over the limit.
    let long_target = format!("GET /{} HTTP/1.1\r\n\r\n", "y".repeat(2048));
    assert_eq!(raw_roundtrip(addr, long_target.as_bytes()).0, 431);

    stack.finish();
}

#[test]
fn slow_loris_connections_time_out_with_408() {
    let stack = Stack::boot(
        OnlineConfig::new(RuntimeConfig::new(1, BatchPolicy::new(2))),
        GatewayConfig::default().with_read_timeout(Duration::from_millis(150)),
    );
    let mut stream = TcpStream::connect(stack.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Trickle half a request head, then stall past the read timeout.
    stream
        .write_all(b"POST /v1/infer HTTP/1.1\r\nConte")
        .unwrap();
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("server response");
    assert_eq!(parse_status(&reply), 408, "{reply}");
    stack.finish();
}

#[test]
fn overload_sheds_with_429_instead_of_hanging() {
    // max_pending 0: admission sheds every inference immediately.
    let stack = Stack::boot(
        OnlineConfig::new(RuntimeConfig::new(1, BatchPolicy::new(2))).with_max_pending(0),
        GatewayConfig::default(),
    );
    let addr = stack.addr();
    for seed in 0..4 {
        let (status, reply) = raw_roundtrip(addr, &infer_bytes("cifar10-serve", seed, true));
        assert_eq!(status, 429, "{reply}");
        assert!(reply.contains("Retry-After"));
    }
    // Health and metrics still answer under overload.
    let (status, _) = raw_roundtrip(addr, b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert_eq!(status, 200);
    let (status, metrics) =
        raw_roundtrip(addr, b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert_eq!(status, 200);
    assert!(metrics.contains("bishop_runtime_requests_shed_total{reason=\"queue_full\"} 4"));
    assert!(metrics.contains("bishop_gateway_http_responses_total{status=\"429\"} 4"));

    let stats = stack.finish();
    assert_eq!(stats.admission.queue_full, 4);
    assert_eq!(stats.completed, 0);
}

#[test]
fn keep_alive_serves_multiple_requests_on_one_connection() {
    let stack = Stack::default();
    let mut stream = TcpStream::connect(stack.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    for seed in 0..3 {
        stream
            .write_all(&infer_bytes("cifar10-serve", seed, false))
            .unwrap();
        let (status, _) = read_one_response(&mut stream);
        assert_eq!(status, 200);
    }
    // A GET on the same connection still works.
    stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
    let (status, reply) = read_one_response(&mut stream);
    assert_eq!(status, 200, "{reply}");
    assert!(reply.contains("\"status\":\"ok\""));

    let stats = stack.finish();
    assert_eq!(stats.completed, 3);
}

#[test]
fn deadline_requests_shed_when_backlog_outlasts_them() {
    // A crawling drain estimate: the first admitted request makes every
    // later deadline submission unmeetable until it completes.
    let stack = Stack::boot(
        OnlineConfig::new(RuntimeConfig::new(1, BatchPolicy::new(8)))
            .with_batch_timeout(Some(Duration::from_millis(100)))
            .with_drain_rate(1.0),
        GatewayConfig::default(),
    );
    let addr = stack.addr();

    let background = std::thread::spawn(move || {
        let body = r#"{"model": "cifar10-serve", "seed": 1}"#;
        let raw = format!(
            "POST /v1/infer HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        raw_roundtrip(addr, raw.as_bytes())
    });
    // Wait until the background request is admitted (visible as queue depth).
    for _ in 0..200 {
        let (_, metrics) =
            raw_roundtrip(addr, b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
        if metrics.contains("bishop_runtime_queue_depth 1") {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }

    let body = r#"{"model": "cifar10-serve", "seed": 2, "deadline_ms": 1}"#;
    let raw = format!(
        "POST /v1/infer HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let (status, reply) = raw_roundtrip(addr, raw.as_bytes());
    assert_eq!(status, 429, "{reply}");
    assert!(reply.contains("deadline"));

    assert_eq!(background.join().unwrap().0, 200);
    stack.finish();
}

#[test]
fn graceful_shutdown_closes_cleanly() {
    let stack = Stack::default();
    let addr = stack.addr();
    // Prove the stack served traffic before shutting down.
    assert_eq!(
        raw_roundtrip(addr, &infer_bytes("cifar10-serve", 1, true)).0,
        200
    );

    let stats = stack.finish();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.queue_depth, 0);

    // The listener is gone: connecting now fails, or an accepted-but-orphaned
    // connection yields no response.
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut stream) => {
            stream
                .set_read_timeout(Some(Duration::from_millis(500)))
                .unwrap();
            let _ = stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
            let mut buffer = [0u8; 64];
            assert!(
                matches!(stream.read(&mut buffer), Ok(0) | Err(_)),
                "no handler should answer after shutdown"
            );
        }
    }
}
