//! Property tests for the gateway's hand-rolled JSON codec: randomized
//! encode→decode round-trips over the full value space, plus directed
//! depth-limit and surrogate-pair edge cases.

use bishop_gateway::Json;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates one arbitrary JSON value. `depth` bounds recursion; `size`
/// bounds container fan-out so cases stay fast.
fn arbitrary_json(rng: &mut StdRng, depth: usize) -> Json {
    let choice = if depth == 0 {
        rng.gen_range(0..4)
    } else {
        rng.gen_range(0..6)
    };
    match choice {
        0 => Json::Null,
        1 => Json::Bool(rng.gen_bool(0.5)),
        2 => {
            // Mix integers (exact) and dyadic fractions (exact in both f64
            // and decimal) so equality after re-parsing is well-defined.
            if rng.gen_bool(0.5) {
                Json::Number(rng.gen_range(-1_000_000i64..1_000_000) as f64)
            } else {
                Json::Number(rng.gen_range(-1_000_000i64..1_000_000) as f64 / 64.0)
            }
        }
        3 => Json::String(arbitrary_string(rng)),
        4 => Json::Array(
            (0..rng.gen_range(0..5))
                .map(|_| arbitrary_json(rng, depth - 1))
                .collect(),
        ),
        _ => Json::Object(
            (0..rng.gen_range(0..5))
                .map(|i| {
                    (
                        format!("{}{i}", arbitrary_string(rng)),
                        arbitrary_json(rng, depth - 1),
                    )
                })
                .collect(),
        ),
    }
}

/// Strings exercising escapes, control characters, non-ASCII and astral
/// (surrogate-pair-encoded) scalars.
fn arbitrary_string(rng: &mut StdRng) -> String {
    const POOL: &[char] = &[
        'a',
        'Z',
        '0',
        ' ',
        '"',
        '\\',
        '/',
        '\n',
        '\r',
        '\t',
        '\u{8}',
        '\u{c}',
        '\u{1}',
        '\u{1f}',
        'é',
        'ß',
        '“',
        '€',
        '美',
        '\u{10000}',
        '😀',
        '𝔘',
        '\u{10FFFF}',
    ];
    (0..rng.gen_range(0..12))
        .map(|_| POOL[rng.gen_range(0..POOL.len())])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_then_parse_round_trips(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let value = arbitrary_json(&mut rng, 4);
        let encoded = value.encode();
        let reparsed = Json::parse(&encoded)
            .unwrap_or_else(|e| panic!("own encoding must parse: {e} in {encoded:?}"));
        prop_assert_eq!(&reparsed, &value);
        // And the encoder is deterministic: a second trip is a fixpoint.
        prop_assert_eq!(reparsed.encode(), encoded);
    }

    #[test]
    fn parser_never_panics_on_mutated_documents(seed in any::<u64>(), cut in 0usize..64) {
        // Valid documents with a byte chopped out / truncated: must return
        // Ok or Err, never panic, and trailing garbage must be rejected.
        let mut rng = StdRng::seed_from_u64(seed);
        let encoded = arbitrary_json(&mut rng, 3).encode();
        let bytes = encoded.as_bytes();
        let cut = cut % encoded.len().max(1);
        let truncated = String::from_utf8_lossy(&bytes[..cut]).into_owned();
        let _ = Json::parse(&truncated);
        let with_garbage = format!("{encoded} x");
        prop_assert!(Json::parse(&with_garbage).is_err(), "trailing garbage accepted");
    }

    #[test]
    fn astral_strings_survive_escaped_and_raw(units in (0u32..0x10FFFF, 0u32..0x10FFFF)) {
        // Any two scalar values (surrogate range remapped) round-trip both
        // raw and through \uXXXX\uYYYY surrogate-pair escapes.
        let fix = |u: u32| char::from_u32(u).unwrap_or('\u{FFFD}');
        let text: String = [fix(units.0), fix(units.1)].iter().collect();
        let value = Json::String(text.clone());
        let raw = Json::parse(&value.encode()).unwrap();
        prop_assert_eq!(raw.as_str(), Some(text.as_str()));

        // Escaped form: encode each char as UTF-16 units.
        let mut escaped = String::from("\"");
        for c in text.chars() {
            let mut units = [0u16; 2];
            for unit in c.encode_utf16(&mut units) {
                escaped.push_str(&format!("\\u{:04x}", unit));
            }
        }
        escaped.push('"');
        let unescaped = Json::parse(&escaped).unwrap();
        prop_assert_eq!(unescaped.as_str(), Some(text.as_str()));
    }
}

#[test]
fn depth_limit_is_exact_on_both_sides() {
    // MAX_DEPTH is 32: a document nested exactly that deep parses, one
    // level deeper is rejected — for arrays, objects and mixed nesting.
    let nested_arrays = |n: usize| "[".repeat(n) + "1" + &"]".repeat(n);
    assert!(Json::parse(&nested_arrays(32)).is_ok());
    assert!(Json::parse(&nested_arrays(33)).is_err());

    let nested_objects = |n: usize| {
        let mut doc = String::new();
        for _ in 0..n {
            doc.push_str("{\"k\":");
        }
        doc.push('1');
        doc.push_str(&"}".repeat(n));
        doc
    };
    assert!(Json::parse(&nested_objects(32)).is_ok());
    assert!(Json::parse(&nested_objects(33)).is_err());

    let mixed = "[{\"k\":".repeat(17) + "null" + &"}]".repeat(17);
    assert!(Json::parse(&mixed).is_err(), "34 levels of mixed nesting");
}

#[test]
fn surrogate_pair_edge_cases() {
    // The exact boundaries of the surrogate-pair algebra.
    for (doc, expect) in [
        (r#""𐀀""#, Some('\u{10000}')),  // lowest astral scalar
        (r#""􏿿""#, Some('\u{10FFFF}')), // highest scalar
        (r#""😀""#, Some('😀')),        // everyday emoji
        (r#""\ud800""#, None),          // lone high surrogate
        (r#""\udc00""#, None),          // lone low surrogate
        (r#""\ud800A""#, None),         // high followed by BMP
        (r#""\ud800\ud800""#, None),    // high followed by high
        (r#""\udfff\udfff""#, None),    // low first
        (r#""\ud800\udc""#, None),      // truncated low escape
        (r#""\ud800x""#, None),         // high then raw char
    ] {
        match expect {
            Some(c) => {
                let parsed = Json::parse(doc).unwrap_or_else(|e| panic!("{doc} must parse: {e}"));
                assert_eq!(parsed.as_str(), Some(c.to_string().as_str()), "{doc}");
            }
            None => assert!(Json::parse(doc).is_err(), "{doc} must be rejected"),
        }
    }
    // BMP escapes that are *not* surrogates parse alone.
    assert_eq!(
        Json::parse(r#""퟿""#).unwrap().as_str(),
        Some("\u{D7FF}\u{E000}")
    );
}

#[test]
fn encoder_escapes_control_characters_round_trip() {
    let value = Json::String("\u{0}\u{1}\u{1f}\"\\\n\r\t".to_string());
    let encoded = value.encode();
    // No raw control bytes may appear in the encoding.
    assert!(
        encoded.chars().all(|c| c >= ' '),
        "raw control in {encoded:?}"
    );
    assert_eq!(Json::parse(&encoded).unwrap(), value);
}
