//! On-chip SRAM buffer models (global buffers and core-local buffers).

use crate::energy::EnergyModel;

/// A single- or double-buffered on-chip SRAM.
#[derive(Debug, Clone, PartialEq)]
pub struct SramBuffer {
    /// Human-readable name, e.g. `"weight GLB"`.
    pub name: String,
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Read/write port width in bits.
    pub port_bits: usize,
    /// Whether the buffer is ping-pong (double) buffered; if so only half the
    /// capacity is usable per phase while the other half is being filled.
    pub double_buffered: bool,
}

impl SramBuffer {
    /// The paper's 144 KB weight global buffer with 512-bit ports.
    pub fn weight_glb() -> Self {
        Self {
            name: "weight GLB".to_string(),
            capacity_bytes: 144 * 1024,
            port_bits: 512,
            double_buffered: true,
        }
    }

    /// One of the paper's 12 KB spike TT-bundle global buffers (two of these
    /// form the ping-pong pair GLB0/GLB1).
    pub fn spike_ttb_glb() -> Self {
        Self {
            name: "spike TTB GLB".to_string(),
            capacity_bytes: 12 * 1024,
            port_bits: 512,
            double_buffered: true,
        }
    }

    /// A core-local operand buffer.
    pub fn local_buffer(name: &str, capacity_bytes: usize) -> Self {
        Self {
            name: name.to_string(),
            capacity_bytes,
            port_bits: 256,
            double_buffered: false,
        }
    }

    /// Usable capacity per phase (half the physical capacity when
    /// double-buffered).
    pub fn usable_bytes(&self) -> usize {
        if self.double_buffered {
            self.capacity_bytes / 2
        } else {
            self.capacity_bytes
        }
    }

    /// Whether a working set of `bytes` fits in the usable capacity.
    pub fn fits(&self, bytes: usize) -> bool {
        bytes <= self.usable_bytes()
    }

    /// Number of port cycles needed to stream `bytes` through this buffer.
    pub fn access_cycles(&self, bytes: u64) -> u64 {
        let bytes_per_cycle = (self.port_bits / 8) as u64;
        bytes.div_ceil(bytes_per_cycle.max(1))
    }

    /// Number of tiles a working set of `total_bytes` must be split into to
    /// fit the usable capacity.
    pub fn tiles_needed(&self, total_bytes: u64) -> u64 {
        (total_bytes)
            .div_ceil(self.usable_bytes().max(1) as u64)
            .max(1)
    }

    /// Read energy for `bytes` in picojoules.
    pub fn read_energy_pj(&self, bytes: u64, energy: &EnergyModel) -> f64 {
        bytes as f64 * energy.glb_read_pj_per_byte
    }

    /// Write energy for `bytes` in picojoules.
    pub fn write_energy_pj(&self, bytes: u64, energy: &EnergyModel) -> f64 {
        bytes as f64 * energy.glb_write_pj_per_byte
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_buffer_sizes() {
        assert_eq!(SramBuffer::weight_glb().capacity_bytes, 147_456);
        assert_eq!(SramBuffer::spike_ttb_glb().capacity_bytes, 12_288);
        assert_eq!(SramBuffer::weight_glb().port_bits, 512);
    }

    #[test]
    fn double_buffering_halves_usable_capacity() {
        let glb = SramBuffer::weight_glb();
        assert_eq!(glb.usable_bytes(), 72 * 1024);
        assert!(glb.fits(70 * 1024));
        assert!(!glb.fits(80 * 1024));
        let local = SramBuffer::local_buffer("acc", 4096);
        assert_eq!(local.usable_bytes(), 4096);
    }

    #[test]
    fn access_cycles_respect_port_width() {
        let glb = SramBuffer::weight_glb();
        // 512-bit port = 64 bytes per cycle.
        assert_eq!(glb.access_cycles(64), 1);
        assert_eq!(glb.access_cycles(65), 2);
        assert_eq!(glb.access_cycles(0), 0);
    }

    #[test]
    fn tiling_covers_large_working_sets() {
        let glb = SramBuffer::spike_ttb_glb();
        assert_eq!(glb.tiles_needed(1), 1);
        assert_eq!(glb.tiles_needed(6 * 1024), 1);
        assert_eq!(glb.tiles_needed(12 * 1024), 2);
        assert_eq!(glb.tiles_needed(0), 1);
    }

    #[test]
    fn energy_scales_with_bytes() {
        let glb = SramBuffer::weight_glb();
        let energy = EnergyModel::bishop_28nm();
        assert!(glb.write_energy_pj(100, &energy) > glb.read_energy_pj(100, &energy));
        assert_eq!(glb.read_energy_pj(0, &energy), 0.0);
    }
}
