//! Per-event energy table for a 28 nm implementation at 500 MHz.

/// Energy cost (in picojoules) of the primitive events the accelerator
/// simulators count.
///
/// The absolute values are representative 28 nm numbers (8-bit MAC ≈ 0.2 pJ,
/// on-chip SRAM ≈ 1 pJ/byte, DRAM ≈ 160 pJ/byte); what matters for the
/// reproduction is that their *ratios* match the regime the paper's CACTI +
/// synthesis flow produces: DRAM ≫ GLB ≫ local buffer ≫ register/ALU, and
/// multi-bit multiply ≫ accumulate ≈ select/AND.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// DRAM access energy per byte.
    pub dram_pj_per_byte: f64,
    /// Global-buffer (large SRAM) read energy per byte.
    pub glb_read_pj_per_byte: f64,
    /// Global-buffer write energy per byte.
    pub glb_write_pj_per_byte: f64,
    /// Core-local buffer (small SRAM / register file) access energy per byte.
    pub local_pj_per_byte: f64,
    /// Pipeline/PE register access energy per byte.
    pub register_pj_per_byte: f64,
    /// 8-bit multiply-accumulate (used by the GPU/PTB attention baseline and
    /// any multi-bit × multi-bit arithmetic).
    pub mac8_pj: f64,
    /// Multi-bit accumulate (add) — the arithmetic of a "select accumulate".
    pub accumulate_pj: f64,
    /// Single AND gate evaluation (attention core mode 1).
    pub and_pj: f64,
    /// Multiplexer select (dense core SAC operand gating).
    pub mux_pj: f64,
    /// LIF neuron update (accumulate + compare + conditional reset).
    pub lif_update_pj: f64,
    /// Static/idle energy per core-cycle per PE (captures clock tree +
    /// leakage at 28 nm, 500 MHz).
    pub pe_idle_pj_per_cycle: f64,
}

impl EnergyModel {
    /// The calibrated 28 nm / 500 MHz table used throughout the evaluation.
    pub fn bishop_28nm() -> Self {
        Self {
            dram_pj_per_byte: 24.0,
            glb_read_pj_per_byte: 2.0,
            glb_write_pj_per_byte: 2.3,
            local_pj_per_byte: 0.35,
            register_pj_per_byte: 0.08,
            mac8_pj: 0.23,
            accumulate_pj: 0.032,
            and_pj: 0.004,
            mux_pj: 0.006,
            lif_update_pj: 0.08,
            pe_idle_pj_per_cycle: 0.01,
        }
    }

    /// Energy of a "select accumulate" (SAC) operation: operand gating plus
    /// an accumulate — the dense-core / attention-core mode-2 primitive.
    pub fn sac_pj(&self) -> f64 {
        self.mux_pj + self.accumulate_pj
    }

    /// Energy of an "AND accumulate" (AAC) operation: the attention-core
    /// mode-1 primitive.
    pub fn aac_pj(&self) -> f64 {
        self.and_pj + self.accumulate_pj
    }

    /// How much cheaper a SAC is than an 8-bit MAC (the multiplier-less
    /// advantage the spike-driven formulation buys).
    pub fn sac_vs_mac_ratio(&self) -> f64 {
        self.mac8_pj / self.sac_pj()
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::bishop_28nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_ordering_holds() {
        let e = EnergyModel::bishop_28nm();
        assert!(e.dram_pj_per_byte > e.glb_read_pj_per_byte * 10.0);
        assert!(e.glb_read_pj_per_byte > e.local_pj_per_byte);
        assert!(e.local_pj_per_byte > e.register_pj_per_byte);
    }

    #[test]
    fn spike_primitives_are_cheaper_than_macs() {
        let e = EnergyModel::bishop_28nm();
        assert!(e.sac_pj() < e.mac8_pj);
        assert!(e.aac_pj() < e.sac_pj() + 1e-9);
        assert!(e.sac_vs_mac_ratio() > 3.0);
    }

    #[test]
    fn default_is_the_28nm_table() {
        assert_eq!(EnergyModel::default(), EnergyModel::bishop_28nm());
    }

    #[test]
    fn all_energies_are_positive() {
        let e = EnergyModel::bishop_28nm();
        for value in [
            e.dram_pj_per_byte,
            e.glb_read_pj_per_byte,
            e.glb_write_pj_per_byte,
            e.local_pj_per_byte,
            e.register_pj_per_byte,
            e.mac8_pj,
            e.accumulate_pj,
            e.and_pj,
            e.mux_pj,
            e.lif_update_pj,
            e.pe_idle_pj_per_cycle,
        ] {
            assert!(value > 0.0);
        }
    }
}
