//! Off-chip DRAM model (DDR4-2400, as configured in §6.1 of the paper).

use crate::energy::EnergyModel;

/// Bandwidth/energy model of the off-chip memory.
#[derive(Debug, Clone, PartialEq)]
pub struct DramModel {
    /// Peak sustained bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Active power draw in watts (used for idle/background accounting).
    pub power_watts: f64,
    /// Minimum burst granularity in bytes; transfers are rounded up to it.
    pub burst_bytes: usize,
}

impl DramModel {
    /// The paper's configuration: DDR4-2400 with 76.8 GB/s of bandwidth and
    /// 323.9 mW of power at a 500 MHz core clock.
    pub fn ddr4_2400() -> Self {
        Self {
            bandwidth_bytes_per_sec: 76.8e9,
            power_watts: 0.3239,
            burst_bytes: 64,
        }
    }

    /// Rounds a transfer size up to the burst granularity.
    pub fn burst_aligned(&self, bytes: u64) -> u64 {
        let burst = self.burst_bytes as u64;
        bytes.div_ceil(burst) * burst
    }

    /// Time in seconds to move `bytes` (burst aligned) at peak bandwidth.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        self.burst_aligned(bytes) as f64 / self.bandwidth_bytes_per_sec
    }

    /// Core-clock cycles (at `clock_hz`) the transfer occupies the DRAM
    /// channel.
    pub fn transfer_cycles(&self, bytes: u64, clock_hz: f64) -> u64 {
        (self.transfer_seconds(bytes) * clock_hz).ceil() as u64
    }

    /// Access energy of the transfer in picojoules.
    pub fn transfer_energy_pj(&self, bytes: u64, energy: &EnergyModel) -> f64 {
        self.burst_aligned(bytes) as f64 * energy.dram_pj_per_byte
    }
}

impl Default for DramModel {
    fn default() -> Self {
        Self::ddr4_2400()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr4_constants_match_the_paper() {
        let dram = DramModel::ddr4_2400();
        assert_eq!(dram.bandwidth_bytes_per_sec, 76.8e9);
        assert!((dram.power_watts - 0.3239).abs() < 1e-9);
    }

    #[test]
    fn burst_alignment_rounds_up() {
        let dram = DramModel::ddr4_2400();
        assert_eq!(dram.burst_aligned(1), 64);
        assert_eq!(dram.burst_aligned(64), 64);
        assert_eq!(dram.burst_aligned(65), 128);
        assert_eq!(dram.burst_aligned(0), 0);
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let dram = DramModel::ddr4_2400();
        let one = dram.transfer_seconds(1 << 20);
        let two = dram.transfer_seconds(2 << 20);
        assert!((two / one - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cycles_use_the_core_clock() {
        let dram = DramModel::ddr4_2400();
        let cycles = dram.transfer_cycles(76_800, 500e6);
        // 76.8 kB at 76.8 GB/s = 1 µs = 500 cycles at 500 MHz.
        assert_eq!(cycles, 500);
    }

    #[test]
    fn energy_uses_the_energy_table() {
        let dram = DramModel::ddr4_2400();
        let energy = EnergyModel::bishop_28nm();
        let pj = dram.transfer_energy_pj(128, &energy);
        assert!((pj - 128.0 * energy.dram_pj_per_byte).abs() < 1e-9);
    }
}
