//! # bishop-memsys
//!
//! Memory-system and technology models shared by the Bishop and PTB
//! accelerator simulators: a 28 nm per-event energy table, a DDR4 DRAM
//! bandwidth/energy model, SRAM global-buffer models (the paper's 144 KB
//! weight GLB and 2 × 12 KB ping-pong spike TTB GLBs), a traffic accountant
//! for the three-level hierarchy, and the area/power breakdown constants of
//! the synthesized design (Fig. 17 of the paper).
//!
//! The paper derives its energy numbers from CACTI 7.0 and a commercial
//! 28 nm synthesis; this crate substitutes those tools with a constants table
//! calibrated so that the modelled accelerator reproduces the published
//! aggregate area (2.96 mm²) and peak power (627 mW) — see `DESIGN.md`.
//!
//! ```
//! use bishop_memsys::{DramModel, EnergyModel};
//!
//! let dram = DramModel::ddr4_2400();
//! let energy = EnergyModel::bishop_28nm();
//! // Streaming 1 MiB from DRAM at 76.8 GB/s takes ~13.65 µs.
//! let seconds = dram.transfer_seconds(1 << 20);
//! assert!((seconds - 1.365e-5).abs() < 1e-6);
//! assert!(energy.dram_pj_per_byte > energy.glb_read_pj_per_byte);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod dram;
pub mod energy;
pub mod hierarchy;
pub mod sram;

pub use area::{AreaPowerBreakdown, ComponentBudget, HardwareUnit};
pub use dram::DramModel;
pub use energy::EnergyModel;
pub use hierarchy::{MemoryHierarchy, MemoryTraffic};
pub use sram::SramBuffer;
