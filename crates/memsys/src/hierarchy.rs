//! The three-level memory hierarchy (DRAM → GLBs → core-local buffers) and
//! its traffic accounting.

use crate::dram::DramModel;
use crate::energy::EnergyModel;
use crate::sram::SramBuffer;

/// Byte counts moved at each level of the hierarchy during (part of) a
/// simulation. Simulators accumulate one of these per layer and convert it to
/// energy at the end.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MemoryTraffic {
    /// Bytes read from DRAM.
    pub dram_read_bytes: u64,
    /// Bytes written to DRAM.
    pub dram_write_bytes: u64,
    /// Bytes read from the global buffers.
    pub glb_read_bytes: u64,
    /// Bytes written to the global buffers.
    pub glb_write_bytes: u64,
    /// Bytes read from core-local buffers.
    pub local_read_bytes: u64,
    /// Bytes written to core-local buffers.
    pub local_write_bytes: u64,
    /// Bytes moved through PE registers.
    pub register_bytes: u64,
}

impl MemoryTraffic {
    /// An empty traffic record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Elementwise sum of two traffic records.
    pub fn add(&self, other: &MemoryTraffic) -> MemoryTraffic {
        MemoryTraffic {
            dram_read_bytes: self.dram_read_bytes + other.dram_read_bytes,
            dram_write_bytes: self.dram_write_bytes + other.dram_write_bytes,
            glb_read_bytes: self.glb_read_bytes + other.glb_read_bytes,
            glb_write_bytes: self.glb_write_bytes + other.glb_write_bytes,
            local_read_bytes: self.local_read_bytes + other.local_read_bytes,
            local_write_bytes: self.local_write_bytes + other.local_write_bytes,
            register_bytes: self.register_bytes + other.register_bytes,
        }
    }

    /// Accumulates `other` into `self`.
    pub fn accumulate(&mut self, other: &MemoryTraffic) {
        *self = self.add(other);
    }

    /// Total bytes that cross the off-chip boundary.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// Total bytes that touch the global buffers.
    pub fn glb_bytes(&self) -> u64 {
        self.glb_read_bytes + self.glb_write_bytes
    }

    /// Access energy of all recorded traffic in picojoules.
    pub fn energy_pj(&self, energy: &EnergyModel) -> f64 {
        self.dram_bytes() as f64 * energy.dram_pj_per_byte
            + self.glb_read_bytes as f64 * energy.glb_read_pj_per_byte
            + self.glb_write_bytes as f64 * energy.glb_write_pj_per_byte
            + (self.local_read_bytes + self.local_write_bytes) as f64 * energy.local_pj_per_byte
            + self.register_bytes as f64 * energy.register_pj_per_byte
    }
}

/// The hierarchy configuration used by both accelerators: one DRAM channel,
/// a weight GLB, and a ping-pong pair of spike TTB GLBs.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryHierarchy {
    /// Off-chip DRAM.
    pub dram: DramModel,
    /// Multi-bit weight global buffer.
    pub weight_glb: SramBuffer,
    /// Ping-pong spike TT-bundle global buffer 0.
    pub spike_glb0: SramBuffer,
    /// Ping-pong spike TT-bundle global buffer 1.
    pub spike_glb1: SramBuffer,
}

impl MemoryHierarchy {
    /// The paper's configuration (§6.1).
    pub fn bishop_default() -> Self {
        Self {
            dram: DramModel::ddr4_2400(),
            weight_glb: SramBuffer::weight_glb(),
            spike_glb0: SramBuffer::spike_ttb_glb(),
            spike_glb1: SramBuffer::spike_ttb_glb(),
        }
    }

    /// Total on-chip SRAM capacity in bytes.
    pub fn total_sram_bytes(&self) -> usize {
        self.weight_glb.capacity_bytes
            + self.spike_glb0.capacity_bytes
            + self.spike_glb1.capacity_bytes
    }

    /// Cycles to bring `bytes` of weights from DRAM into the weight GLB and
    /// stream them to the cores, assuming double buffering overlaps the DRAM
    /// fill with compute: the visible cost is the larger of the DRAM transfer
    /// and the GLB streaming.
    pub fn weight_load_cycles(&self, bytes: u64, clock_hz: f64) -> u64 {
        let dram_cycles = self.dram.transfer_cycles(bytes, clock_hz);
        let glb_cycles = self.weight_glb.access_cycles(bytes);
        dram_cycles.max(glb_cycles)
    }

    /// Cycles to stream `bytes` of spike data through a spike GLB.
    pub fn spike_stream_cycles(&self, bytes: u64) -> u64 {
        self.spike_glb0.access_cycles(bytes)
    }
}

impl Default for MemoryHierarchy {
    fn default() -> Self {
        Self::bishop_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_addition_is_elementwise() {
        let a = MemoryTraffic {
            dram_read_bytes: 10,
            glb_read_bytes: 5,
            register_bytes: 1,
            ..MemoryTraffic::new()
        };
        let b = MemoryTraffic {
            dram_read_bytes: 3,
            dram_write_bytes: 7,
            glb_write_bytes: 2,
            ..MemoryTraffic::new()
        };
        let sum = a.add(&b);
        assert_eq!(sum.dram_read_bytes, 13);
        assert_eq!(sum.dram_write_bytes, 7);
        assert_eq!(sum.glb_read_bytes, 5);
        assert_eq!(sum.glb_write_bytes, 2);
        assert_eq!(sum.dram_bytes(), 20);
        assert_eq!(sum.glb_bytes(), 7);

        let mut acc = a;
        acc.accumulate(&b);
        assert_eq!(acc, sum);
    }

    #[test]
    fn energy_is_dominated_by_dram_for_equal_byte_counts() {
        let energy = EnergyModel::bishop_28nm();
        let dram_heavy = MemoryTraffic {
            dram_read_bytes: 1000,
            ..MemoryTraffic::new()
        };
        let glb_heavy = MemoryTraffic {
            glb_read_bytes: 1000,
            ..MemoryTraffic::new()
        };
        assert!(dram_heavy.energy_pj(&energy) > 10.0 * glb_heavy.energy_pj(&energy));
    }

    #[test]
    fn default_hierarchy_matches_paper_capacities() {
        let hierarchy = MemoryHierarchy::bishop_default();
        assert_eq!(hierarchy.total_sram_bytes(), (144 + 12 + 12) * 1024);
    }

    #[test]
    fn weight_load_overlaps_dram_and_glb() {
        let hierarchy = MemoryHierarchy::bishop_default();
        let cycles = hierarchy.weight_load_cycles(64 * 1024, 500e6);
        let dram_only = hierarchy.dram.transfer_cycles(64 * 1024, 500e6);
        let glb_only = hierarchy.weight_glb.access_cycles(64 * 1024);
        assert_eq!(cycles, dram_only.max(glb_only));
    }

    #[test]
    fn empty_traffic_has_zero_energy() {
        assert_eq!(
            MemoryTraffic::new().energy_pj(&EnergyModel::bishop_28nm()),
            0.0
        );
    }
}
