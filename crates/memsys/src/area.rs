//! Area and peak-power breakdown of the synthesized designs (Fig. 17 and
//! §6.1/§6.6 of the paper).

/// The hardware units whose area/power the paper breaks out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HardwareUnit {
    /// TT-Bundle sparse core (SIGMA-like).
    SparseCore,
    /// TT-Bundle dense core (output-stationary systolic array).
    DenseCore,
    /// TT-Bundle attention core.
    AttentionCore,
    /// Spike generator array.
    SpikeGenerator,
    /// Global buffers (weight GLB + spike TTB GLBs).
    GlobalBuffers,
    /// Everything else (stratifier, control, NoC glue).
    Other,
}

impl HardwareUnit {
    /// All units in presentation order.
    pub fn all() -> [HardwareUnit; 6] {
        [
            HardwareUnit::SparseCore,
            HardwareUnit::DenseCore,
            HardwareUnit::AttentionCore,
            HardwareUnit::SpikeGenerator,
            HardwareUnit::GlobalBuffers,
            HardwareUnit::Other,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            HardwareUnit::SparseCore => "TTB sparse core",
            HardwareUnit::DenseCore => "TTB dense core",
            HardwareUnit::AttentionCore => "TTB attention core",
            HardwareUnit::SpikeGenerator => "spike generator",
            HardwareUnit::GlobalBuffers => "global buffers",
            HardwareUnit::Other => "control / other",
        }
    }
}

/// Area and peak power of one hardware unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentBudget {
    /// Which unit this budget describes.
    pub unit: HardwareUnit,
    /// Silicon area in mm².
    pub area_mm2: f64,
    /// Peak power in milliwatts.
    pub power_mw: f64,
}

/// The full area/power breakdown of an accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaPowerBreakdown {
    components: Vec<ComponentBudget>,
}

impl AreaPowerBreakdown {
    /// The synthesized Bishop breakdown reported in Fig. 17: 2.96 mm² and
    /// 627 mW total.
    pub fn bishop_28nm() -> Self {
        let components = vec![
            ComponentBudget {
                unit: HardwareUnit::SparseCore,
                area_mm2: 0.38,
                power_mw: 72.2,
            },
            ComponentBudget {
                unit: HardwareUnit::DenseCore,
                area_mm2: 0.92,
                power_mw: 246.1,
            },
            ComponentBudget {
                unit: HardwareUnit::AttentionCore,
                area_mm2: 1.06,
                power_mw: 242.51,
            },
            ComponentBudget {
                unit: HardwareUnit::SpikeGenerator,
                area_mm2: 0.09,
                power_mw: 18.1,
            },
            ComponentBudget {
                unit: HardwareUnit::GlobalBuffers,
                area_mm2: 0.495,
                power_mw: 48.3,
            },
            // Remainder so the total area hits the published 2.96 mm²; the
            // published per-unit powers already sum to ≈627 mW (the paper's
            // rounded peak), so the control logic is assigned a small
            // representative budget.
            ComponentBudget {
                unit: HardwareUnit::Other,
                area_mm2: 2.96 - (0.38 + 0.92 + 1.06 + 0.09 + 0.495),
                power_mw: 0.5,
            },
        ];
        Self { components }
    }

    /// The synthesized PTB baseline: 2.80 mm², 606.9 mW, dominated by a
    /// single homogeneous systolic core plus buffers.
    pub fn ptb_28nm() -> Self {
        let components = vec![
            ComponentBudget {
                unit: HardwareUnit::DenseCore,
                area_mm2: 2.10,
                power_mw: 500.0,
            },
            ComponentBudget {
                unit: HardwareUnit::SpikeGenerator,
                area_mm2: 0.09,
                power_mw: 18.1,
            },
            ComponentBudget {
                unit: HardwareUnit::GlobalBuffers,
                area_mm2: 0.495,
                power_mw: 48.3,
            },
            ComponentBudget {
                unit: HardwareUnit::Other,
                area_mm2: 2.80 - (2.10 + 0.09 + 0.495),
                power_mw: 606.9 - (500.0 + 18.1 + 48.3),
            },
        ];
        Self { components }
    }

    /// Component budgets in presentation order.
    pub fn components(&self) -> &[ComponentBudget] {
        &self.components
    }

    /// Budget of a specific unit, if present.
    pub fn component(&self, unit: HardwareUnit) -> Option<&ComponentBudget> {
        self.components.iter().find(|c| c.unit == unit)
    }

    /// Total die area in mm².
    pub fn total_area_mm2(&self) -> f64 {
        self.components.iter().map(|c| c.area_mm2).sum()
    }

    /// Total peak power in milliwatts.
    pub fn total_power_mw(&self) -> f64 {
        self.components.iter().map(|c| c.power_mw).sum()
    }

    /// Area fraction of a unit.
    pub fn area_fraction(&self, unit: HardwareUnit) -> f64 {
        self.component(unit)
            .map(|c| c.area_mm2 / self.total_area_mm2())
            .unwrap_or(0.0)
    }

    /// Power fraction of a unit.
    pub fn power_fraction(&self, unit: HardwareUnit) -> f64 {
        self.component(unit)
            .map(|c| c.power_mw / self.total_power_mw())
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bishop_totals_match_the_paper() {
        let b = AreaPowerBreakdown::bishop_28nm();
        assert!((b.total_area_mm2() - 2.96).abs() < 1e-9);
        assert!((b.total_power_mw() - 627.0).abs() < 1.0);
    }

    #[test]
    fn ptb_totals_match_the_paper() {
        let p = AreaPowerBreakdown::ptb_28nm();
        assert!((p.total_area_mm2() - 2.80).abs() < 1e-9);
        assert!((p.total_power_mw() - 606.9).abs() < 1e-9);
    }

    #[test]
    fn bishop_fractions_match_fig17() {
        let b = AreaPowerBreakdown::bishop_28nm();
        assert!((b.power_fraction(HardwareUnit::DenseCore) - 0.392).abs() < 0.01);
        assert!((b.power_fraction(HardwareUnit::AttentionCore) - 0.387).abs() < 0.01);
        assert!((b.power_fraction(HardwareUnit::SparseCore) - 0.115).abs() < 0.01);
        assert!((b.area_fraction(HardwareUnit::AttentionCore) - 0.36).abs() < 0.01);
        assert!((b.area_fraction(HardwareUnit::GlobalBuffers) - 0.167).abs() < 0.01);
    }

    #[test]
    fn three_cores_consume_most_of_the_budget() {
        let b = AreaPowerBreakdown::bishop_28nm();
        let core_power = b.power_fraction(HardwareUnit::SparseCore)
            + b.power_fraction(HardwareUnit::DenseCore)
            + b.power_fraction(HardwareUnit::AttentionCore);
        let core_area = b.area_fraction(HardwareUnit::SparseCore)
            + b.area_fraction(HardwareUnit::DenseCore)
            + b.area_fraction(HardwareUnit::AttentionCore);
        // "Nearly 90% of the total power and 80% of the chip area are
        // consumed by the three major cores."
        assert!(core_power > 0.85);
        assert!(core_area > 0.75);
    }

    #[test]
    fn all_components_are_positive_and_unique() {
        for breakdown in [
            AreaPowerBreakdown::bishop_28nm(),
            AreaPowerBreakdown::ptb_28nm(),
        ] {
            let mut seen = std::collections::HashSet::new();
            for c in breakdown.components() {
                assert!(c.area_mm2 > 0.0, "{} area must be positive", c.unit.name());
                assert!(c.power_mw > 0.0, "{} power must be positive", c.unit.name());
                assert!(seen.insert(c.unit), "duplicate unit {:?}", c.unit);
            }
        }
    }

    #[test]
    fn bishop_and_ptb_have_similar_budgets() {
        // The comparison is iso-resource: similar area and power.
        let b = AreaPowerBreakdown::bishop_28nm();
        let p = AreaPowerBreakdown::ptb_28nm();
        assert!((b.total_area_mm2() / p.total_area_mm2() - 1.0).abs() < 0.1);
        assert!((b.total_power_mw() / p.total_power_mw() - 1.0).abs() < 0.1);
    }

    #[test]
    fn unit_names_are_distinct() {
        let names: std::collections::HashSet<_> =
            HardwareUnit::all().iter().map(|u| u.name()).collect();
        assert_eq!(names.len(), 6);
    }
}
