//! Fig. 15 — impact of the stratification threshold (dense-to-sparse split
//! ratio) on energy, latency, and EDP for Model 3 (ImageNet-100).

use bishop_baseline::{PtbConfig, PtbSimulator};
use bishop_bundle::TrainingRegime;
use bishop_core::{BishopConfig, BishopSimulator, SimOptions, StratifyPolicy};
use bishop_model::ModelConfig;

use crate::report::{energy_mj, latency, ratio, Table};
use crate::workloads::{build_workload, ExperimentScale};

/// One stratification strategy evaluated by the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct StratificationPoint {
    /// Strategy label.
    pub label: String,
    /// End-to-end latency in seconds.
    pub latency_seconds: f64,
    /// End-to-end energy in millijoules.
    pub energy_mj: f64,
    /// Energy-delay product in joule-seconds.
    pub edp: f64,
    /// EDP improvement over PTB.
    pub edp_vs_ptb: f64,
}

/// The dense-feature-fraction targets swept (plus the balanced policy and the
/// two all-one-core extremes).
pub const DENSE_FRACTIONS: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];

/// Runs the sweep on Model 3.
pub fn run(scale: ExperimentScale) -> Vec<StratificationPoint> {
    let config = scale.scale_config(&ModelConfig::model3_imagenet100());
    let workload = build_workload(&config, TrainingRegime::Baseline, 15);
    let ptb = PtbSimulator::new(PtbConfig::default()).simulate(&workload);

    let mut points = Vec::new();
    let mut evaluate = |label: String, policy: StratifyPolicy| {
        let run = BishopSimulator::new(BishopConfig::default().with_stratify(policy))
            .simulate(&workload, &SimOptions::baseline());
        points.push(StratificationPoint {
            label,
            latency_seconds: run.total_latency_seconds(),
            energy_mj: run.total_energy_mj(),
            edp: run.edp(),
            edp_vs_ptb: ptb.edp() / run.edp(),
        });
    };

    evaluate("balanced (per-layer)".to_string(), StratifyPolicy::Balanced);
    for fraction in DENSE_FRACTIONS {
        evaluate(
            format!("{:.0}% of features dense", fraction * 100.0),
            StratifyPolicy::TargetDenseFraction(fraction),
        );
    }
    evaluate("all dense".to_string(), StratifyPolicy::AllDense);
    evaluate("all sparse".to_string(), StratifyPolicy::AllSparse);
    points
}

/// Renders the experiment as markdown.
pub fn report(scale: ExperimentScale) -> String {
    let mut table = Table::new(
        "Fig. 15 — stratification strategy vs energy / latency / EDP (Model 3)",
        &["Strategy", "Latency", "Energy", "EDP (J·s)", "EDP vs PTB"],
    );
    for point in run(scale) {
        table.push_row(vec![
            point.label.clone(),
            latency(point.latency_seconds),
            energy_mj(point.energy_mj),
            format!("{:.3e}", point.edp),
            ratio(point.edp_vs_ptb),
        ]);
    }
    table.push_note(
        "Paper: a near-balanced split achieves a 2.49x EDP improvement over PTB; strong \
         imbalance degrades Bishop's EDP by up to 1.65x.",
    );
    table.to_markdown()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_policy_achieves_the_best_or_near_best_edp() {
        let points = run(ExperimentScale::Quick);
        let balanced = points
            .iter()
            .find(|p| p.label.starts_with("balanced"))
            .unwrap();
        let best = points.iter().map(|p| p.edp).fold(f64::INFINITY, f64::min);
        assert!(
            balanced.edp <= best * 1.2,
            "balanced EDP {} should be within 20% of the best {}",
            balanced.edp,
            best
        );
    }

    #[test]
    fn extreme_imbalance_is_worse_than_balanced() {
        let points = run(ExperimentScale::Quick);
        let balanced = points
            .iter()
            .find(|p| p.label.starts_with("balanced"))
            .unwrap();
        let all_sparse = points.iter().find(|p| p.label == "all sparse").unwrap();
        assert!(
            all_sparse.edp >= balanced.edp,
            "routing everything to the sparse core should not beat the balanced split"
        );
    }

    #[test]
    fn balanced_bishop_beats_ptb_on_edp() {
        let points = run(ExperimentScale::Quick);
        let balanced = points
            .iter()
            .find(|p| p.label.starts_with("balanced"))
            .unwrap();
        assert!(
            balanced.edp_vs_ptb > 1.0,
            "balanced Bishop should improve EDP over PTB, got {}",
            balanced.edp_vs_ptb
        );
    }
}
