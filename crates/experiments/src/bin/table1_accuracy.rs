//! Regenerates the paper artefact implemented by `bishop_experiments::table1_accuracy`.
fn main() {
    print!("{}", bishop_experiments::table1_accuracy::report());
}
