//! Regenerates the paper artefact implemented by `bishop_experiments::fig17_breakdown`.
fn main() {
    print!("{}", bishop_experiments::fig17_breakdown::report());
}
