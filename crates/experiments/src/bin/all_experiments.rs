//! Runs every experiment of the Bishop reproduction and prints the combined
//! markdown report (pass `--quick` for the reduced-scale configurations).
use bishop_experiments::ExperimentScale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        ExperimentScale::Quick
    } else {
        ExperimentScale::Full
    };
    print!("{}", bishop_experiments::full_report(scale));
}
