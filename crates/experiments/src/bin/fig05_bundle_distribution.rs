//! Regenerates the paper artefact implemented by `bishop_experiments::fig05_bundle_distribution`.
use bishop_experiments::ExperimentScale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        ExperimentScale::Quick
    } else {
        ExperimentScale::Full
    };
    print!(
        "{}",
        bishop_experiments::fig05_bundle_distribution::report(scale)
    );
}
