//! Regenerates the paper artefact implemented by `bishop_experiments::table2_models`.
fn main() {
    print!("{}", bishop_experiments::table2_models::report());
}
