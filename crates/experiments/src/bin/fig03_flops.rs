//! Regenerates the paper artefact implemented by `bishop_experiments::fig03_flops`.
fn main() {
    print!("{}", bishop_experiments::fig03_flops::report());
}
