//! Regenerates the paper artefact implemented by `bishop_experiments::fig15_stratification`.
use bishop_experiments::ExperimentScale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        ExperimentScale::Quick
    } else {
        ExperimentScale::Full
    };
    print!(
        "{}",
        bishop_experiments::fig15_stratification::report(scale)
    );
}
