//! Regenerates the paper artefact implemented by `bishop_experiments::fig12_13_end_to_end`.
use bishop_experiments::ExperimentScale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        ExperimentScale::Quick
    } else {
        ExperimentScale::Full
    };
    print!("{}", bishop_experiments::fig12_13_end_to_end::report(scale));
}
