//! §6.2–§6.4 headline numbers: average speedup/energy gains over the
//! baselines, the ECP pruning statistics, the heterogeneity ablation, and the
//! Fig. 1 contribution breakdown.

use bishop_bundle::{ecp, BundleShape, EcpConfig, TrainingRegime};
use bishop_core::{BishopConfig, BishopSimulator, SimOptions, StratifyPolicy};
use bishop_model::ModelConfig;

use crate::fig12_13_end_to_end::{evaluate_variants, VariantResults};
use crate::paper;
use crate::report::{percent, ratio, Table};
use crate::workloads::{build_workload, paper_ecp_threshold, ExperimentScale};

/// Aggregated headline metrics of the reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadlineSummary {
    /// Per-model variant results.
    pub per_model: Vec<VariantResults>,
    /// Mean speedup of Bishop+BSA+ECP over PTB.
    pub average_speedup_vs_ptb: f64,
    /// Mean energy improvement of Bishop+BSA+ECP over PTB.
    pub average_energy_vs_ptb: f64,
    /// Mean speedup of Bishop over the edge GPU.
    pub average_speedup_vs_gpu: f64,
    /// Mean fraction of Q bundle rows pruned at the paper thresholds.
    pub average_q_pruned: f64,
    /// Mean fraction of K bundle rows pruned at the paper thresholds.
    pub average_k_pruned: f64,
    /// Heterogeneity ablation: speedup of the balanced split over all-dense.
    pub heterogeneity_speedup: f64,
    /// Heterogeneity ablation: energy saving of the balanced split.
    pub heterogeneity_energy_saving: f64,
}

/// Computes the headline summary at the given scale.
pub fn run(scale: ExperimentScale) -> HeadlineSummary {
    let per_model: Vec<VariantResults> = scale
        .paper_models()
        .iter()
        .map(|config| evaluate_variants(config, 2025))
        .collect();
    let n = per_model.len() as f64;
    let average_speedup_vs_ptb = per_model
        .iter()
        .map(|r| r.bsa_ecp_speedup_vs_ptb())
        .sum::<f64>()
        / n;
    let average_energy_vs_ptb = per_model
        .iter()
        .map(|r| r.bsa_ecp_energy_vs_ptb())
        .sum::<f64>()
        / n;
    let average_speedup_vs_gpu = per_model
        .iter()
        .map(|r| r.bishop_speedup_vs_gpu())
        .sum::<f64>()
        / n;

    // §6.3: average Q/K pruning at the paper's thresholds over the BSA
    // workloads of Models 1–4.
    let bundle = BundleShape::default();
    let mut q_pruned = 0.0;
    let mut k_pruned = 0.0;
    let mut counted = 0usize;
    for config in [
        ModelConfig::model1_cifar10(),
        ModelConfig::model2_cifar100(),
        ModelConfig::model3_imagenet100(),
        ModelConfig::model4_dvs_gesture(),
    ] {
        let config = scale.scale_config(&config);
        let workload = build_workload(&config, TrainingRegime::Bsa, 99);
        let theta = paper_ecp_threshold(&config);
        for layer in workload.attention_layers() {
            let result = ecp::apply(
                &layer.q,
                &layer.k,
                &layer.v,
                EcpConfig::uniform(theta, bundle),
            );
            q_pruned += 1.0 - result.q_retention();
            k_pruned += 1.0 - result.k_retention();
            counted += 1;
        }
    }
    let average_q_pruned = q_pruned / counted as f64;
    let average_k_pruned = k_pruned / counted as f64;

    // §6.4 heterogeneity ablation on Model 3 (no BSA/ECP): balanced
    // stratification vs forcing everything onto the dense core.
    let model3 = scale.scale_config(&ModelConfig::model3_imagenet100());
    let workload = build_workload(&model3, TrainingRegime::Baseline, 7);
    let balanced =
        BishopSimulator::new(BishopConfig::default()).simulate(&workload, &SimOptions::baseline());
    let all_dense =
        BishopSimulator::new(BishopConfig::default().with_stratify(StratifyPolicy::AllDense))
            .simulate(&workload, &SimOptions::baseline());

    HeadlineSummary {
        per_model,
        average_speedup_vs_ptb,
        average_energy_vs_ptb,
        average_speedup_vs_gpu,
        average_q_pruned,
        average_k_pruned,
        heterogeneity_speedup: all_dense.total_latency_seconds() / balanced.total_latency_seconds(),
        heterogeneity_energy_saving: all_dense.total_energy_pj() / balanced.total_energy_pj(),
    }
}

/// Renders the headline report as markdown.
pub fn report(scale: ExperimentScale) -> String {
    let summary = run(scale);
    let mut table = Table::new(
        "Headline comparison (paper §6.2–§6.4 vs measured)",
        &["Metric", "Paper", "Measured"],
    );
    table.push_row(vec![
        "Average speedup over PTB (Bishop+BSA+ECP)".to_string(),
        ratio(paper::PAPER_AVERAGE_SPEEDUP_VS_PTB),
        ratio(summary.average_speedup_vs_ptb),
    ]);
    table.push_row(vec![
        "Average energy improvement over PTB (Bishop+BSA+ECP)".to_string(),
        ratio(paper::PAPER_AVERAGE_ENERGY_VS_PTB),
        ratio(summary.average_energy_vs_ptb),
    ]);
    table.push_row(vec![
        "Average speedup over edge GPU (Bishop)".to_string(),
        ratio(paper::PAPER_AVERAGE_SPEEDUP_VS_GPU),
        ratio(summary.average_speedup_vs_gpu),
    ]);
    table.push_row(vec![
        "Average Q tokens pruned by ECP".to_string(),
        percent(paper::ecp::AVERAGE_Q_PRUNED),
        percent(summary.average_q_pruned),
    ]);
    table.push_row(vec![
        "Average K tokens pruned by ECP".to_string(),
        percent(paper::ecp::AVERAGE_K_PRUNED),
        percent(summary.average_k_pruned),
    ]);
    table.push_row(vec![
        "Heterogeneity speedup (split vs all-dense, Model 3)".to_string(),
        ratio(paper::heterogeneity::SPEEDUP),
        ratio(summary.heterogeneity_speedup),
    ]);
    table.push_row(vec![
        "Heterogeneity energy saving (Model 3)".to_string(),
        ratio(paper::heterogeneity::ENERGY_SAVING),
        ratio(summary.heterogeneity_energy_saving),
    ]);

    let mut per_model = Table::new(
        "Per-model speedups over PTB (paper vs measured)",
        &[
            "Model",
            "Bishop (paper)",
            "Bishop (measured)",
            "+BSA (paper)",
            "+BSA (measured)",
            "+BSA+ECP (paper)",
            "+BSA+ECP (measured)",
        ],
    );
    for (index, result) in summary.per_model.iter().enumerate() {
        let paper_row = &paper::PAPER_SPEEDUPS[index.min(paper::PAPER_SPEEDUPS.len() - 1)];
        per_model.push_row(vec![
            result.config.name.clone(),
            ratio(paper_row.bishop_vs_ptb),
            ratio(result.bishop_speedup_vs_ptb()),
            ratio(paper_row.bishop_bsa_vs_ptb),
            ratio(result.bsa_speedup_vs_ptb()),
            ratio(paper_row.bishop_bsa_ecp_vs_ptb),
            ratio(result.bsa_ecp_speedup_vs_ptb()),
        ]);
    }
    format!("{}\n{}", table.to_markdown(), per_model.to_markdown())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_trends_match_the_paper_shape() {
        let summary = run(ExperimentScale::Quick);
        assert!(summary.average_speedup_vs_ptb > 1.5);
        assert!(summary.average_energy_vs_ptb > 1.2);
        assert!(summary.average_speedup_vs_gpu > 10.0);
        assert!(summary.heterogeneity_speedup >= 1.0);
        assert!(summary.heterogeneity_energy_saving >= 0.9);
        assert!(summary.average_q_pruned > 0.0 && summary.average_q_pruned < 1.0);
        assert!(summary.average_k_pruned >= summary.average_q_pruned * 0.5);
    }

    #[test]
    fn report_contains_paper_and_measured_columns() {
        let text = report(ExperimentScale::Quick);
        assert!(text.contains("Paper"));
        assert!(text.contains("Measured"));
        assert!(text.contains("5.91x"));
    }
}
