//! # bishop-experiments
//!
//! The experiment harness that regenerates every table and figure of the
//! Bishop paper's evaluation (§6). Each module corresponds to one artefact
//! and exposes
//!
//! * a structured `run(...)` entry point returning the measured rows, and
//! * a `report()` function producing a self-contained markdown report that
//!   also lists the paper-reported values for comparison.
//!
//! Binaries: `cargo run --release -p bishop-experiments --bin <experiment>`
//! (one binary per table/figure) or `--bin all_experiments` for everything.
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`table1_accuracy`] | Table 1 — ANN vs SNN accuracy survey |
//! | [`table2_models`] | Table 2 — evaluated model architectures |
//! | [`fig03_flops`] | Fig. 3 — FLOPs breakdown |
//! | [`fig05_bundle_distribution`] | Fig. 5 — active-bundle distribution w/ and w/o BSA |
//! | [`fig06_stratified_density`] | Fig. 6 — stratified workload densities |
//! | [`fig11_layerwise`] | Fig. 11 — layer-wise latency/energy vs PTB |
//! | [`fig12_13_end_to_end`] | Fig. 12/13 — end-to-end latency and energy |
//! | [`fig14_ecp_sweep`] | Fig. 14 — accuracy / efficiency vs ECP threshold |
//! | [`fig15_stratification`] | Fig. 15 — stratification-threshold sweep |
//! | [`fig16_bundle_volume`] | Fig. 16 — TTB bundle-volume sweep |
//! | [`fig17_breakdown`] | Fig. 17 — area/power breakdown |
//! | [`headline`] | §6.2–6.4 headline speedup/energy/heterogeneity numbers |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig03_flops;
pub mod fig05_bundle_distribution;
pub mod fig06_stratified_density;
pub mod fig11_layerwise;
pub mod fig12_13_end_to_end;
pub mod fig14_ecp_sweep;
pub mod fig15_stratification;
pub mod fig16_bundle_volume;
pub mod fig17_breakdown;
pub mod headline;
pub mod paper;
pub mod report;
pub mod table1_accuracy;
pub mod table2_models;
pub mod workloads;

pub use report::Table;
pub use workloads::{build_workload, ExperimentScale};

/// Runs every experiment and concatenates the reports (the `all_experiments`
/// binary and `EXPERIMENTS.md` generator).
pub fn full_report(scale: ExperimentScale) -> String {
    let mut sections = vec![
        table1_accuracy::report(),
        table2_models::report(),
        fig03_flops::report(),
        fig05_bundle_distribution::report(scale),
        fig06_stratified_density::report(scale),
        fig11_layerwise::report(scale),
        fig12_13_end_to_end::report(scale),
        fig14_ecp_sweep::report(scale),
        fig15_stratification::report(scale),
        fig16_bundle_volume::report(scale),
        fig17_breakdown::report(),
        headline::report(scale),
    ];
    sections.insert(
        0,
        format!(
            "# Bishop reproduction — experiment report ({:?} scale)\n",
            scale
        ),
    );
    sections.join("\n")
}
