//! Fig. 12 / Fig. 13 — end-to-end normalized latency and energy of the edge
//! GPU, PTB, Bishop, Bishop+BSA and Bishop+BSA+ECP across Models 1–5.

use bishop_baseline::{EdgeGpuModel, GpuRunSummary, PtbConfig, PtbSimulator};
use bishop_bundle::TrainingRegime;
use bishop_core::{BishopConfig, BishopSimulator, RunMetrics, SimOptions};
use bishop_model::ModelConfig;

use crate::paper::PAPER_SPEEDUPS;
use crate::report::{energy_mj, latency, ratio, Table};
use crate::workloads::{build_workload, paper_ecp_threshold, ExperimentScale};

/// End-to-end results of every accelerator variant for one model.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantResults {
    /// The (possibly scaled) model configuration.
    pub config: ModelConfig,
    /// Edge GPU roofline result.
    pub gpu: GpuRunSummary,
    /// PTB on the baseline-trained workload.
    pub ptb: RunMetrics,
    /// Bishop (hardware only) on the baseline-trained workload.
    pub bishop: RunMetrics,
    /// Bishop on the BSA-trained workload.
    pub bishop_bsa: RunMetrics,
    /// Bishop on the BSA-trained workload with ECP at the paper's threshold.
    pub bishop_bsa_ecp: RunMetrics,
}

impl VariantResults {
    /// Speedup of plain Bishop over PTB.
    pub fn bishop_speedup_vs_ptb(&self) -> f64 {
        self.bishop.speedup_vs(&self.ptb)
    }

    /// Speedup of Bishop+BSA over PTB.
    pub fn bsa_speedup_vs_ptb(&self) -> f64 {
        self.bishop_bsa.speedup_vs(&self.ptb)
    }

    /// Speedup of Bishop+BSA+ECP over PTB.
    pub fn bsa_ecp_speedup_vs_ptb(&self) -> f64 {
        self.bishop_bsa_ecp.speedup_vs(&self.ptb)
    }

    /// Speedup of plain Bishop over the edge GPU.
    pub fn bishop_speedup_vs_gpu(&self) -> f64 {
        self.gpu.latency_seconds / self.bishop.total_latency_seconds()
    }

    /// Energy improvement of plain Bishop over PTB.
    pub fn bishop_energy_vs_ptb(&self) -> f64 {
        self.bishop.energy_improvement_vs(&self.ptb)
    }

    /// Energy improvement of Bishop+BSA+ECP over PTB.
    pub fn bsa_ecp_energy_vs_ptb(&self) -> f64 {
        self.bishop_bsa_ecp.energy_improvement_vs(&self.ptb)
    }
}

/// Evaluates all accelerator variants for one model configuration.
pub fn evaluate_variants(config: &ModelConfig, seed: u64) -> VariantResults {
    let baseline_workload = build_workload(config, TrainingRegime::Baseline, seed);
    let bsa_workload = build_workload(config, TrainingRegime::Bsa, seed);

    let gpu = EdgeGpuModel::jetson_nano().simulate(config);
    let ptb = PtbSimulator::new(PtbConfig::default()).simulate(&baseline_workload);
    let bishop_sim = BishopSimulator::new(BishopConfig::default());
    let bishop = bishop_sim.simulate(&baseline_workload, &SimOptions::baseline());
    let bishop_bsa = bishop_sim.simulate(&bsa_workload, &SimOptions::baseline());
    let bishop_bsa_ecp = bishop_sim.simulate(
        &bsa_workload,
        &SimOptions::with_ecp(paper_ecp_threshold(config)),
    );

    VariantResults {
        config: config.clone(),
        gpu,
        ptb,
        bishop,
        bishop_bsa,
        bishop_bsa_ecp,
    }
}

/// Evaluates all five paper models at the given scale.
pub fn run(scale: ExperimentScale) -> Vec<VariantResults> {
    scale
        .paper_models()
        .iter()
        .map(|config| evaluate_variants(config, 2025))
        .collect()
}

/// Renders the Fig. 12 (latency) and Fig. 13 (energy) tables as markdown.
pub fn report(scale: ExperimentScale) -> String {
    let results = run(scale);

    let mut fig12 = Table::new(
        "Fig. 12 — end-to-end latency (absolute and speedups over baselines)",
        &[
            "Model",
            "GPU latency",
            "PTB latency",
            "Bishop latency",
            "Bishop vs GPU",
            "Bishop vs PTB",
            "+BSA vs PTB",
            "+BSA+ECP vs PTB",
            "Paper (+BSA+ECP vs PTB)",
        ],
    );
    let mut fig13 = Table::new(
        "Fig. 13 — end-to-end energy (absolute and improvements over baselines)",
        &[
            "Model",
            "GPU energy",
            "PTB energy",
            "Bishop energy",
            "Bishop vs PTB",
            "+BSA vs PTB",
            "+BSA+ECP vs PTB",
        ],
    );

    for (index, r) in results.iter().enumerate() {
        let paper = PAPER_SPEEDUPS
            .get(index)
            .map(|p| ratio(p.bishop_bsa_ecp_vs_ptb))
            .unwrap_or_else(|| "-".to_string());
        fig12.push_row(vec![
            r.config.name.clone(),
            latency(r.gpu.latency_seconds),
            latency(r.ptb.total_latency_seconds()),
            latency(r.bishop.total_latency_seconds()),
            ratio(r.bishop_speedup_vs_gpu()),
            ratio(r.bishop_speedup_vs_ptb()),
            ratio(r.bsa_speedup_vs_ptb()),
            ratio(r.bsa_ecp_speedup_vs_ptb()),
            paper,
        ]);
        fig13.push_row(vec![
            r.config.name.clone(),
            energy_mj(r.gpu.energy_mj),
            energy_mj(r.ptb.total_energy_mj()),
            energy_mj(r.bishop.total_energy_mj()),
            ratio(r.bishop_energy_vs_ptb()),
            ratio(r.bishop_bsa.energy_improvement_vs(&r.ptb)),
            ratio(r.bsa_ecp_energy_vs_ptb()),
        ]);
    }
    fig12.push_note(
        "Paper per-model speedups of Bishop/+BSA/+BSA+ECP over PTB: 4.68/6.37/6.71 (M1), \
         3.95/4.90/5.14 (M2), 5.17/6.34/7.73 (M3), 3.30/3.81/4.06 (M4), 1.43/1.92/4.0 (M5).",
    );
    fig13.push_note("Paper average energy-efficiency improvement over PTB: 6.11x.");
    format!("{}\n{}", fig12.to_markdown(), fig13.to_markdown())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_results() -> Vec<VariantResults> {
        // Two representative models keep the debug-mode test fast.
        let models = [
            ModelConfig::model1_cifar10(),
            ModelConfig::model3_imagenet100(),
        ];
        models
            .iter()
            .map(|m| evaluate_variants(&ExperimentScale::Quick.scale_config(m), 5))
            .collect()
    }

    #[test]
    fn ordering_gpu_slowest_then_ptb_then_bishop_variants() {
        for r in quick_results() {
            assert!(
                r.gpu.latency_seconds > r.ptb.total_latency_seconds(),
                "{}: GPU should be the slowest",
                r.config.name
            );
            assert!(r.bishop_speedup_vs_ptb() > 1.0, "{}", r.config.name);
            assert!(
                r.bsa_speedup_vs_ptb() >= r.bishop_speedup_vs_ptb() * 0.95,
                "{}: BSA should not slow Bishop down",
                r.config.name
            );
            assert!(
                r.bsa_ecp_speedup_vs_ptb() >= r.bsa_speedup_vs_ptb() * 0.98,
                "{}: ECP should not slow Bishop+BSA down",
                r.config.name
            );
        }
    }

    #[test]
    fn energy_improvements_follow_the_same_trend() {
        for r in quick_results() {
            assert!(r.bishop_energy_vs_ptb() > 1.0, "{}", r.config.name);
            assert!(
                r.bsa_ecp_energy_vs_ptb() >= r.bishop_energy_vs_ptb() * 0.95,
                "{}",
                r.config.name
            );
        }
    }

    #[test]
    fn speedups_are_in_a_plausible_range() {
        for r in quick_results() {
            let speedup = r.bsa_ecp_speedup_vs_ptb();
            assert!(
                speedup > 1.0 && speedup < 100.0,
                "{}: implausible speedup {speedup}",
                r.config.name
            );
            let vs_gpu = r.bishop_speedup_vs_gpu();
            assert!(
                vs_gpu > 10.0,
                "{}: Bishop should be orders of magnitude faster than the edge GPU ({vs_gpu})",
                r.config.name
            );
        }
    }
}
