//! Fig. 14 — accuracy vs. energy efficiency and speedup of the spiking
//! self-attention layers under different ECP pruning thresholds.

use bishop_bundle::{ecp, BundleShape, EcpConfig, TrainingRegime};
use bishop_core::{AttentionCoreModel, BishopConfig};
use bishop_memsys::EnergyModel;
use bishop_model::ModelConfig;
use bishop_train::{
    accuracy_under_pruning, SpikePatternDataset, SpikingClassifier, Trainer, TrainingConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::{percent, ratio, Table};
use crate::workloads::{build_workload, ExperimentScale};

/// One point of the hardware-side sweep for one model.
#[derive(Debug, Clone, PartialEq)]
pub struct EcpHardwarePoint {
    /// Model name.
    pub model: String,
    /// Pruning threshold `θp`.
    pub threshold: u32,
    /// Fraction of Q bundle rows retained.
    pub q_retention: f64,
    /// Fraction of K bundle rows retained.
    pub k_retention: f64,
    /// Speedup of the SSA layers relative to `θp = 0`.
    pub ssa_speedup: f64,
    /// Energy-efficiency improvement of the SSA layers relative to `θp = 0`.
    pub ssa_energy_improvement: f64,
}

/// Thresholds swept (the paper sweeps a comparable range).
pub const THRESHOLDS: [u32; 7] = [0, 2, 4, 6, 8, 12, 16];

/// Models shown in Fig. 14.
fn fig14_models() -> Vec<ModelConfig> {
    vec![
        ModelConfig::model1_cifar10(),
        ModelConfig::model2_cifar100(),
        ModelConfig::model3_imagenet100(),
        ModelConfig::model4_dvs_gesture(),
    ]
}

/// Runs the hardware-side threshold sweep.
pub fn run_hardware(scale: ExperimentScale) -> Vec<EcpHardwarePoint> {
    let core = AttentionCoreModel::new(&BishopConfig::default());
    let energy = EnergyModel::bishop_28nm();
    let bundle = BundleShape::default();
    let mut rows = Vec::new();

    for config in fig14_models() {
        let config = scale.scale_config(&config);
        let workload = build_workload(&config, TrainingRegime::Bsa, 77);

        // Reference cost at θp = 0 (no pruning).
        let mut reference_cycles = 0u64;
        let mut reference_energy = 0.0f64;
        for layer in workload.attention_layers() {
            let cost = core.process(layer, None, &energy);
            reference_cycles += cost.cost.compute_cycles;
            reference_energy += cost.cost.compute_energy_pj + cost.cost.traffic.energy_pj(&energy);
        }

        for &threshold in &THRESHOLDS {
            let mut cycles = 0u64;
            let mut total_energy = 0.0f64;
            let mut q_retention = 0.0;
            let mut k_retention = 0.0;
            let mut layers = 0usize;
            for layer in workload.attention_layers() {
                let result = (threshold > 0).then(|| {
                    ecp::apply(
                        &layer.q,
                        &layer.k,
                        &layer.v,
                        EcpConfig::uniform(threshold, bundle),
                    )
                });
                let cost = core.process(layer, result.as_ref(), &energy);
                cycles += cost.cost.compute_cycles;
                total_energy += cost.cost.compute_energy_pj + cost.cost.traffic.energy_pj(&energy);
                q_retention += result.as_ref().map_or(1.0, |r| r.q_retention());
                k_retention += result.as_ref().map_or(1.0, |r| r.k_retention());
                layers += 1;
            }
            rows.push(EcpHardwarePoint {
                model: config.name.clone(),
                threshold,
                q_retention: q_retention / layers as f64,
                k_retention: k_retention / layers as f64,
                ssa_speedup: reference_cycles as f64 / cycles.max(1) as f64,
                ssa_energy_improvement: reference_energy / total_energy.max(1e-9),
            });
        }
    }
    rows
}

/// Runs the accuracy proxy: a spiking classifier trained on the synthetic
/// task is evaluated with bundle-row pruning at each threshold.
pub fn run_accuracy_proxy() -> Vec<bishop_train::EcpSweepPoint> {
    let mut rng = StdRng::seed_from_u64(33);
    let dataset = SpikePatternDataset::generate(4, 30, 4, 8, 24, 0.05, &mut rng);
    let mut model = SpikingClassifier::random(24, 32, 4, &mut rng);
    Trainer::new(TrainingConfig {
        epochs: 10,
        learning_rate: 0.08,
        ..TrainingConfig::default()
    })
    .train(&mut model, &dataset, &mut rng);
    accuracy_under_pruning(&model, &dataset.test, &THRESHOLDS, BundleShape::default())
}

/// Renders the experiment as markdown.
pub fn report(scale: ExperimentScale) -> String {
    let mut hardware = Table::new(
        "Fig. 14 — SSA-layer efficiency vs ECP pruning threshold",
        &[
            "Model",
            "θp",
            "Q retained",
            "K retained",
            "SSA speedup",
            "SSA energy improvement",
        ],
    );
    for row in run_hardware(scale) {
        hardware.push_row(vec![
            row.model.clone(),
            row.threshold.to_string(),
            percent(row.q_retention),
            percent(row.k_retention),
            ratio(row.ssa_speedup),
            ratio(row.ssa_energy_improvement),
        ]);
    }
    hardware.push_note(
        "Paper: at the chosen thresholds the SSA layers see up to 170x speedup (DVS-Gesture) \
         and on average only 15.5% of the attention computation remains.",
    );

    let mut accuracy = Table::new(
        "Fig. 14 (accuracy axis) — synthetic-task accuracy under bundle-row pruning",
        &["θp", "Accuracy", "Δ vs unpruned"],
    );
    for point in run_accuracy_proxy() {
        accuracy.push_row(vec![
            point.threshold.to_string(),
            percent(point.accuracy),
            format!("{:+.1} pp", point.accuracy_delta() * 100.0),
        ]);
    }
    accuracy.push_note(
        "Accuracy proxy measured on the bishop-train synthetic task (the paper's CIFAR/DVS \
         accuracies require the original datasets); moderate thresholds preserve accuracy, \
         extreme thresholds destroy it.",
    );
    format!("{}\n{}", hardware.to_markdown(), accuracy.to_markdown())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retention_decreases_and_speedup_increases_with_threshold() {
        let rows = run_hardware(ExperimentScale::Quick);
        for model in ["Model 1", "Model 3"] {
            let series: Vec<&EcpHardwarePoint> =
                rows.iter().filter(|r| r.model.starts_with(model)).collect();
            assert!(!series.is_empty());
            for pair in series.windows(2) {
                assert!(
                    pair[1].q_retention <= pair[0].q_retention + 1e-9,
                    "{model}: Q retention should not increase with θp"
                );
                assert!(
                    pair[1].ssa_speedup + 1e-9 >= pair[0].ssa_speedup,
                    "{model}: speedup should not decrease with θp"
                );
            }
        }
    }

    #[test]
    fn zero_threshold_is_the_reference_point() {
        let rows = run_hardware(ExperimentScale::Quick);
        for row in rows.iter().filter(|r| r.threshold == 0) {
            assert!((row.ssa_speedup - 1.0).abs() < 1e-9);
            assert!((row.q_retention - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sparser_datasets_prune_more_aggressively() {
        let rows = run_hardware(ExperimentScale::Quick);
        let at = |model: &str, theta: u32| {
            rows.iter()
                .find(|r| r.model.starts_with(model) && r.threshold == theta)
                .unwrap()
        };
        // DVS-Gesture (Model 4) is far sparser than CIFAR-10 (Model 1), so at
        // the same threshold it retains fewer Q rows.
        assert!(at("Model 4", 8).q_retention <= at("Model 1", 8).q_retention + 1e-9);
    }
}
