//! Fig. 17 — area and peak-power breakdown of the synthesized Bishop
//! accelerator.

use bishop_memsys::AreaPowerBreakdown;

use crate::report::{percent, Table};

/// Builds the breakdown table.
pub fn run() -> Table {
    let breakdown = AreaPowerBreakdown::bishop_28nm();
    let mut table = Table::new(
        "Fig. 17 — Bishop area and peak-power breakdown (28 nm, 500 MHz)",
        &[
            "Unit",
            "Area (mm²)",
            "Area share",
            "Power (mW)",
            "Power share",
        ],
    );
    for component in breakdown.components() {
        table.push_row(vec![
            component.unit.name().to_string(),
            format!("{:.3}", component.area_mm2),
            percent(breakdown.area_fraction(component.unit)),
            format!("{:.1}", component.power_mw),
            percent(breakdown.power_fraction(component.unit)),
        ]);
    }
    table.push_row(vec![
        "TOTAL".to_string(),
        format!("{:.2}", breakdown.total_area_mm2()),
        "100.0%".to_string(),
        format!("{:.1}", breakdown.total_power_mw()),
        "100.0%".to_string(),
    ]);
    let ptb = AreaPowerBreakdown::ptb_28nm();
    table.push_note(format!(
        "PTB baseline for the iso-resource comparison: {:.2} mm², {:.1} mW.",
        ptb.total_area_mm2(),
        ptb.total_power_mw()
    ));
    table.push_note(
        "Paper: dense core 0.92 mm²/246.1 mW, attention core 1.06 mm²/242.5 mW, sparse core \
         0.38 mm²/72.2 mW, spike generator 0.09 mm²/18.1 mW, GLBs 0.495 mm²/48.3 mW; total \
         2.96 mm² / 627 mW.",
    );
    table
}

/// Renders the experiment as markdown.
pub fn report() -> String {
    run().to_markdown()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bishop_memsys::HardwareUnit;

    #[test]
    fn table_covers_every_unit_plus_total() {
        let table = run();
        assert_eq!(table.len(), HardwareUnit::all().len() + 1);
        let md = table.to_markdown();
        assert!(md.contains("TTB attention core"));
        assert!(md.contains("TOTAL"));
        assert!(md.contains("2.96"));
    }
}
