//! Workload construction shared by the experiments.

use bishop_bundle::{DatasetCalibration, TrainingRegime};
use bishop_model::workload::SyntheticTraceSpec;
use bishop_model::{ModelConfig, ModelWorkload};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How large an experiment run should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExperimentScale {
    /// The paper's full model configurations (Table 2). Use for the
    /// release-mode binaries and benches.
    Full,
    /// Reduced configurations (fewer blocks/timesteps) for fast debug-mode
    /// test runs; workload statistics are preserved, absolute magnitudes are
    /// smaller.
    Quick,
}

impl ExperimentScale {
    /// Scales a paper model configuration according to the chosen scale.
    pub fn scale_config(&self, config: &ModelConfig) -> ModelConfig {
        match self {
            ExperimentScale::Full => config.clone(),
            ExperimentScale::Quick => {
                let blocks = config.blocks.min(2);
                let timesteps = config.timesteps.min(4);
                let tokens = config.tokens.min(64);
                let features = config.features.min(128);
                let heads = config.heads.min(4);
                ModelConfig::new(
                    format!("{} (quick)", config.name),
                    config.dataset,
                    blocks,
                    timesteps,
                    tokens,
                    features,
                    heads,
                )
            }
        }
    }

    /// The five paper models at this scale.
    pub fn paper_models(&self) -> Vec<ModelConfig> {
        ModelConfig::paper_models()
            .iter()
            .map(|m| self.scale_config(m))
            .collect()
    }
}

/// Builds a calibrated synthetic workload for `config` under the given
/// training regime, with a deterministic seed derived from the model name.
pub fn build_workload(config: &ModelConfig, regime: TrainingRegime, seed: u64) -> ModelWorkload {
    let calibration = DatasetCalibration::for_model(config);
    let spec: &SyntheticTraceSpec = calibration.spec(regime);
    let mut rng = StdRng::seed_from_u64(seed ^ hash_name(&config.name));
    ModelWorkload::synthetic(config, spec, &mut rng)
}

/// The paper's ECP pruning threshold for a model's dataset.
pub fn paper_ecp_threshold(config: &ModelConfig) -> u32 {
    DatasetCalibration::for_model(config).ecp_threshold
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf29ce484222325u64, |acc, b| {
        (acc ^ u64::from(b)).wrapping_mul(0x100000001b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bishop_model::DatasetKind;

    #[test]
    fn quick_scale_shrinks_models() {
        let full = ModelConfig::model3_imagenet100();
        let quick = ExperimentScale::Quick.scale_config(&full);
        assert!(quick.blocks <= 2);
        assert!(quick.tokens <= 64);
        assert_eq!(quick.dataset, DatasetKind::ImageNet100);
        let same = ExperimentScale::Full.scale_config(&full);
        assert_eq!(same, full);
    }

    #[test]
    fn paper_models_cover_all_five() {
        assert_eq!(ExperimentScale::Quick.paper_models().len(), 5);
        assert_eq!(ExperimentScale::Full.paper_models().len(), 5);
    }

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let config = ExperimentScale::Quick.scale_config(&ModelConfig::model1_cifar10());
        let a = build_workload(&config, TrainingRegime::Baseline, 7);
        let b = build_workload(&config, TrainingRegime::Baseline, 7);
        assert_eq!(a, b);
        let c = build_workload(&config, TrainingRegime::Baseline, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn bsa_workloads_are_sparser() {
        let config = ExperimentScale::Quick.scale_config(&ModelConfig::model1_cifar10());
        let baseline = build_workload(&config, TrainingRegime::Baseline, 1);
        let bsa = build_workload(&config, TrainingRegime::Bsa, 1);
        assert!(bsa.mean_projection_density() < baseline.mean_projection_density());
    }

    #[test]
    fn ecp_thresholds_match_paper() {
        assert_eq!(paper_ecp_threshold(&ModelConfig::model1_cifar10()), 6);
        assert_eq!(paper_ecp_threshold(&ModelConfig::model4_dvs_gesture()), 10);
    }
}
