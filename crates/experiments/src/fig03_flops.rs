//! Fig. 3 — FLOPs breakdown of spiking transformers with different token and
//! feature sizes.
//!
//! The paper profiles an ImageNet-trained spiking transformer at token counts
//! N ∈ {128, 256} and several feature widths and reports that the attention +
//! MLP blocks account for 66.5 %–91.0 % of the total FLOPs, motivating the
//! accelerator's focus on those blocks.

use bishop_model::profile::WorkloadProfile;

use crate::report::{percent, Table};

/// The `(tokens, features)` points profiled (mirroring the six bars of
/// Fig. 3).
pub const SWEEP: [(usize, usize); 6] = [
    (128, 128),
    (128, 256),
    (128, 384),
    (256, 128),
    (256, 256),
    (256, 384),
];

/// Profiles every sweep point (8 blocks, 4 timesteps, ImageNet geometry).
pub fn run() -> Table {
    let mut table = Table::new(
        "Fig. 3 — FLOPs breakdown (attention / MLP / projection / other)",
        &[
            "Tokens N",
            "Features D",
            "Attention",
            "MLP",
            "Projection",
            "Attention + MLP",
        ],
    );
    for (tokens, features) in SWEEP {
        let profile = WorkloadProfile::of_shape(4, tokens, features, 8);
        table.push_row(vec![
            tokens.to_string(),
            features.to_string(),
            percent(profile.attention_fraction()),
            percent(profile.mlp_fraction()),
            percent(profile.projection_fraction()),
            percent(profile.attention_plus_mlp_fraction()),
        ]);
    }
    table.push_note(
        "Paper: the cumulative attention + MLP share ranges from 66.5% to 91.0% and the \
         dominance of attention grows with N.",
    );
    table
}

/// Renders the experiment as markdown.
pub fn report() -> String {
    run().to_markdown()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attention_plus_mlp_dominates_across_the_sweep() {
        for (tokens, features) in SWEEP {
            let profile = WorkloadProfile::of_shape(4, tokens, features, 8);
            let share = profile.attention_plus_mlp_fraction();
            assert!(
                share > 0.60,
                "attention+MLP share {share} too small for N={tokens}, D={features}"
            );
        }
    }

    #[test]
    fn attention_share_grows_with_token_count() {
        let small = WorkloadProfile::of_shape(4, 128, 128, 8).attention_fraction();
        let large = WorkloadProfile::of_shape(4, 256, 128, 8).attention_fraction();
        assert!(large > small);
    }

    #[test]
    fn table_has_six_rows() {
        assert_eq!(run().len(), 6);
    }
}
