//! Paper-reported reference values, used so every experiment report can show
//! "paper vs. measured" side by side (and so `EXPERIMENTS.md` can be
//! generated mechanically).

/// Headline speedups of Bishop variants over the edge GPU and PTB (§6.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperSpeedups {
    /// Dataset / model label.
    pub model: &'static str,
    /// Bishop (HW only) speedup over the edge GPU.
    pub bishop_vs_gpu: f64,
    /// Bishop (HW only) speedup over PTB.
    pub bishop_vs_ptb: f64,
    /// Bishop+BSA speedup over PTB.
    pub bishop_bsa_vs_ptb: f64,
    /// Bishop+BSA+ECP speedup over PTB.
    pub bishop_bsa_ecp_vs_ptb: f64,
}

/// The per-model speedups reported in §6.2.
pub const PAPER_SPEEDUPS: [PaperSpeedups; 5] = [
    PaperSpeedups {
        model: "Model 1 (CIFAR10)",
        bishop_vs_gpu: 173.9,
        bishop_vs_ptb: 4.68,
        bishop_bsa_vs_ptb: 6.37,
        bishop_bsa_ecp_vs_ptb: 6.71,
    },
    PaperSpeedups {
        model: "Model 2 (CIFAR100)",
        bishop_vs_gpu: 156.0,
        bishop_vs_ptb: 3.95,
        bishop_bsa_vs_ptb: 4.90,
        bishop_bsa_ecp_vs_ptb: 5.14,
    },
    PaperSpeedups {
        model: "Model 3 (ImageNet-100)",
        bishop_vs_gpu: 317.6,
        bishop_vs_ptb: 5.17,
        bishop_bsa_vs_ptb: 6.34,
        bishop_bsa_ecp_vs_ptb: 7.73,
    },
    PaperSpeedups {
        model: "Model 4 (DVS-Gesture)",
        bishop_vs_gpu: 221.0,
        bishop_vs_ptb: 3.30,
        bishop_bsa_vs_ptb: 3.81,
        bishop_bsa_ecp_vs_ptb: 4.06,
    },
    PaperSpeedups {
        model: "Model 5 (Google SC)",
        bishop_vs_gpu: 72.2,
        bishop_vs_ptb: 1.43,
        bishop_bsa_vs_ptb: 1.92,
        bishop_bsa_ecp_vs_ptb: 4.0,
    },
];

/// Average speedup of Bishop over PTB reported in the abstract/§6.2.
pub const PAPER_AVERAGE_SPEEDUP_VS_PTB: f64 = 5.91;
/// Average energy-efficiency improvement over PTB (abstract/§6.2).
pub const PAPER_AVERAGE_ENERGY_VS_PTB: f64 = 6.11;
/// Average speedup over the edge GPU (§6.2).
pub const PAPER_AVERAGE_SPEEDUP_VS_GPU: f64 = 299.0;

/// §6.4 heterogeneity ablation on ImageNet-100 (no BSA/ECP).
pub mod heterogeneity {
    /// Dense-core latency of a single-image inference (ms).
    pub const DENSE_CORE_LATENCY_MS: f64 = 1.16;
    /// Sparse-core latency (ms), running concurrently with the dense core.
    pub const SPARSE_CORE_LATENCY_MS: f64 = 0.53;
    /// Latency when everything is processed by the dense core (ms).
    pub const ALL_DENSE_LATENCY_MS: f64 = 1.83;
    /// Speedup from heterogeneity.
    pub const SPEEDUP: f64 = 1.39;
    /// Energy saving from heterogeneity.
    pub const ENERGY_SAVING: f64 = 1.57;
    /// Attention-core latency reduction range vs PTB.
    pub const ATTENTION_LATENCY_REDUCTION: (f64, f64) = (10.7, 23.3);
    /// Attention-core energy saving range vs PTB.
    pub const ATTENTION_ENERGY_SAVING: (f64, f64) = (1.39, 1.96);
}

/// §6.3 ECP retention/пerformance statistics at the paper's thresholds.
pub mod ecp {
    /// Average fraction of spiking Q tokens pruned away.
    pub const AVERAGE_Q_PRUNED: f64 = 0.5171;
    /// Average fraction of spiking K tokens pruned away.
    pub const AVERAGE_K_PRUNED: f64 = 0.6777;
    /// Average fraction of the attention computation that remains.
    pub const AVERAGE_COMPUTE_REMAINING: f64 = 0.155;
    /// Average energy reduction of the self-attention layers.
    pub const AVERAGE_ENERGY_REDUCTION: f64 = 0.8376;
    /// Average latency reduction of the self-attention layers.
    pub const AVERAGE_LATENCY_REDUCTION: f64 = 0.4392;
    /// ImageNet-100: fraction of Q tokens retained.
    pub const IMAGENET_Q_RETAINED: f64 = 0.107;
    /// ImageNet-100: fraction of K tokens retained.
    pub const IMAGENET_K_RETAINED: f64 = 0.097;
}

/// Fig. 1 contribution-by-contribution improvements over PTB.
pub mod contributions {
    /// TT-bundling + heterogeneous cores: (energy, speedup).
    pub const BUNDLING_HETEROGENEOUS: (f64, f64) = (2.66, 4.27);
    /// BSA training: (energy, speedup).
    pub const BSA: (f64, f64) = (1.33, 1.25);
    /// ECP pruning: (energy, speedup).
    pub const ECP: (f64, f64) = (1.72, 1.38);
}

/// Fig. 15: EDP improvement of the balanced stratification vs PTB, and the
/// worst-case degradation from imbalance.
pub mod stratification {
    /// EDP improvement over PTB at the balanced operating point.
    pub const BALANCED_EDP_IMPROVEMENT: f64 = 2.49;
    /// EDP degradation factor for a strongly imbalanced split.
    pub const IMBALANCE_DEGRADATION: f64 = 1.65;
}

/// Table 1 accuracy survey (literature values reproduced verbatim).
pub const TABLE1_ROWS: [(&str, &str, f64); 12] = [
    ("CIFAR10", "ANN ResNet-19", 94.97),
    ("CIFAR10", "ANN Transformer", 96.73),
    ("CIFAR10", "SNN ResNet-19", 92.92),
    ("CIFAR10", "Spiking Transformer", 95.19),
    ("CIFAR100", "ANN Transformer", 81.02),
    ("CIFAR100", "Spiking Transformer", 77.86),
    ("DVS-Gesture", "ANN 12-layer CNN", 94.59),
    ("DVS-Gesture", "Spiking Transformer", 98.3),
    ("ImageNet", "ANN Transformer", 80.8),
    ("ImageNet", "Spiking Transformer", 73.38),
    ("Google SC", "AttentionRNN", 93.9),
    ("Google SC", "Spiking Transformer", 95.11),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_are_consistent_with_per_model_numbers() {
        let mean: f64 = PAPER_SPEEDUPS.iter().map(|s| s.bishop_vs_ptb).sum::<f64>()
            / PAPER_SPEEDUPS.len() as f64;
        // The paper's 5.91x average includes the BSA/ECP variants; the raw
        // Bishop mean is lower but in the same regime.
        assert!(mean > 3.0 && mean < PAPER_AVERAGE_SPEEDUP_VS_PTB);
    }

    #[test]
    fn contribution_product_approximates_the_headline_energy_gain() {
        let product =
            contributions::BUNDLING_HETEROGENEOUS.0 * contributions::BSA.0 * contributions::ECP.0;
        assert!((product - PAPER_AVERAGE_ENERGY_VS_PTB).abs() < 0.3);
    }

    #[test]
    fn table1_has_spiking_transformer_rows_for_every_dataset() {
        for dataset in [
            "CIFAR10",
            "CIFAR100",
            "DVS-Gesture",
            "ImageNet",
            "Google SC",
        ] {
            assert!(TABLE1_ROWS
                .iter()
                .any(|(d, model, _)| *d == dataset && model.contains("Spiking Transformer")));
        }
    }
}
