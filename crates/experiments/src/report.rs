//! Minimal table/report formatting helpers (markdown output).

use std::fmt::Write as _;

/// A simple titled table rendered as GitHub-flavoured markdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table title (rendered as a heading).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each row should have `headers.len()` cells).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes rendered under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells but the table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Appends a note shown under the table.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        if !self.notes.is_empty() {
            let _ = writeln!(out);
            for note in &self.notes {
                let _ = writeln!(out, "> {note}");
            }
        }
        out
    }
}

/// Formats a ratio as `N.NNx`.
pub fn ratio(value: f64) -> String {
    format!("{value:.2}x")
}

/// Formats a fraction as a percentage with one decimal.
pub fn percent(value: f64) -> String {
    format!("{:.1}%", value * 100.0)
}

/// Formats a latency in seconds using an appropriate unit.
pub fn latency(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else {
        format!("{:.1} us", seconds * 1e6)
    }
}

/// Formats an energy in millijoules using an appropriate unit.
pub fn energy_mj(mj: f64) -> String {
    if mj >= 1.0 {
        format!("{mj:.3} mJ")
    } else {
        format!("{:.2} uJ", mj * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_has_header_separator_and_rows() {
        let mut table = Table::new("Demo", &["a", "b"]);
        table.push_row(vec!["1".into(), "2".into()]);
        table.push_note("a note");
        let md = table.to_markdown();
        assert!(md.contains("## Demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("> a note"));
        assert_eq!(table.len(), 1);
        assert!(!table.is_empty());
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn mismatched_row_is_rejected() {
        let mut table = Table::new("Demo", &["a", "b"]);
        table.push_row(vec!["1".into()]);
    }

    #[test]
    fn formatters_pick_sensible_units() {
        assert_eq!(ratio(5.912), "5.91x");
        assert_eq!(percent(0.1234), "12.3%");
        assert_eq!(latency(0.0025), "2.500 ms");
        assert_eq!(latency(2.0), "2.000 s");
        assert_eq!(latency(5e-6), "5.0 us");
        assert_eq!(energy_mj(0.5), "0.50 uJ".replace("0.50", "500.00"));
        assert_eq!(energy_mj(2.0), "2.000 mJ");
    }
}
