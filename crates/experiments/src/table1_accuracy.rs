//! Table 1 — accuracy comparison of ANNs, conventional SNNs and spiking
//! transformers.
//!
//! The accuracy figures for the published models are literature values quoted
//! by the paper; they cannot be re-measured without the original datasets and
//! training stack. What this reproduction *can* measure is the accuracy of
//! the spiking classifier trained by `bishop-train` on the synthetic
//! spike-pattern task, with and without the BSA loss — demonstrating that the
//! training pipeline that feeds the accelerator evaluation actually learns.

use bishop_train::{SpikePatternDataset, SpikingClassifier, Trainer, TrainingConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::paper::TABLE1_ROWS;
use crate::report::{percent, Table};

/// Builds the literature table plus the measured synthetic-task rows.
pub fn run() -> Table {
    let mut table = Table::new(
        "Table 1 — ANN vs SNN accuracy (literature values + measured synthetic task)",
        &["Workload", "Model", "Accuracy"],
    );
    for (dataset, model, accuracy) in TABLE1_ROWS {
        table.push_row(vec![
            dataset.to_string(),
            model.to_string(),
            format!("{accuracy:.2}% (paper)"),
        ]);
    }

    // Measured: the reproduction's own training pipeline on the synthetic
    // spike-pattern task (baseline and BSA-regularised).
    let mut rng = StdRng::seed_from_u64(2025);
    let dataset = SpikePatternDataset::generate(4, 40, 4, 8, 24, 0.05, &mut rng);
    let mut baseline_model = SpikingClassifier::random(24, 32, 4, &mut rng);
    let baseline = Trainer::new(TrainingConfig {
        epochs: 12,
        learning_rate: 0.08,
        ..TrainingConfig::default()
    })
    .train(&mut baseline_model, &dataset, &mut rng);
    let mut bsa_model = SpikingClassifier::random(24, 32, 4, &mut rng);
    let bsa = Trainer::new(TrainingConfig {
        epochs: 12,
        learning_rate: 0.08,
        bsa_lambda: 0.01,
        ..TrainingConfig::default()
    })
    .train(&mut bsa_model, &dataset, &mut rng);

    table.push_row(vec![
        "Synthetic spike patterns".to_string(),
        "bishop-train spiking classifier".to_string(),
        format!("{} (measured)", percent(baseline.test_accuracy)),
    ]);
    table.push_row(vec![
        "Synthetic spike patterns".to_string(),
        "bishop-train spiking classifier + BSA".to_string(),
        format!(
            "{} (measured, TTB density {})",
            percent(bsa.test_accuracy),
            percent(bsa.hidden_ttb_density)
        ),
    ]);
    table.push_note(
        "Literature rows are quoted from the paper (Table 1); the CIFAR/ImageNet/DVS training \
         stack is substituted by the synthetic task per DESIGN.md.",
    );
    table
}

/// Renders the experiment as markdown.
pub fn report() -> String {
    run().to_markdown()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_contains_literature_and_measured_rows() {
        let table = run();
        assert!(table.len() >= TABLE1_ROWS.len() + 2);
        let md = table.to_markdown();
        assert!(md.contains("Spiking Transformer"));
        assert!(md.contains("measured"));
    }
}
