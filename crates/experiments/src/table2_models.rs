//! Table 2 — the spiking transformer architectures used by the evaluation.

use bishop_model::ModelConfig;

use crate::report::Table;

/// Builds the model-architecture table.
pub fn run() -> Table {
    let mut table = Table::new(
        "Table 2 — spiking transformer architectures",
        &[
            "Model",
            "Dataset",
            "Blocks (B)",
            "Timesteps (T)",
            "Tokens (N)",
            "Features (D)",
            "Heads",
            "Encoder params",
        ],
    );
    for config in ModelConfig::paper_models() {
        table.push_row(vec![
            config.name.clone(),
            config.dataset.to_string(),
            config.blocks.to_string(),
            config.timesteps.to_string(),
            config.tokens.to_string(),
            config.features.to_string(),
            config.heads.to_string(),
            format!("{:.1} M", config.encoder_parameter_count() as f64 / 1e6),
        ]);
    }
    table
}

/// Renders the experiment as markdown.
pub fn report() -> String {
    run().to_markdown()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper_configurations() {
        let table = run();
        assert_eq!(table.len(), 5);
        let md = table.to_markdown();
        assert!(md.contains("| Model 3 | ImageNet-100 | 8 | 4 | 196 | 128 |"));
        assert!(md.contains("| Model 1 | CIFAR10 | 4 | 10 | 64 | 384 |"));
    }
}
