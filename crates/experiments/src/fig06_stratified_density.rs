//! Fig. 6 — spiking activity of the output-projection layer of Model 1
//! before/after stratification and before/after BSA.
//!
//! The paper reports, for the 3rd encoder block's output projection:
//! without BSA the workload has 6.34 % spike density and 11.16 % TTB density;
//! the stratified "up" (sparse) part has 1.28 % / 8.58 % and the "down"
//! (dense) part 23.89 % / 75.50 %. With BSA the overall densities drop to
//! 2.75 % / 5.22 %.

use bishop_bundle::{BundleShape, BundleSparsityStats, TrainingRegime};
use bishop_bundle::{StratifiedWorkload, Stratifier};
use bishop_model::ModelConfig;
use bishop_spiketensor::SpikeTensor;

use crate::report::{percent, Table};
use crate::workloads::{build_workload, ExperimentScale};

/// Densities of one (possibly stratified) workload slice.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceDensity {
    /// Which slice this row describes.
    pub label: String,
    /// Spike-level density.
    pub spike_density: f64,
    /// Bundle-level (TTB) density.
    pub ttb_density: f64,
}

fn measure(label: &str, tensor: &SpikeTensor, bundle: BundleShape) -> SliceDensity {
    let stats = BundleSparsityStats::measure(tensor, bundle);
    SliceDensity {
        label: label.to_string(),
        spike_density: stats.spike_density,
        ttb_density: stats.ttb_density,
    }
}

/// Extracts the sub-tensor containing only the listed feature columns (the
/// density of a stratified slice is measured over its own features, as in the
/// paper's figure).
fn select_features(tensor: &SpikeTensor, features: &[usize]) -> SpikeTensor {
    let shape = tensor.shape();
    let sub_shape = shape.with_features(features.len().max(1));
    SpikeTensor::from_fn(sub_shape, |t, n, d| {
        features
            .get(d)
            .is_some_and(|&source| tensor.get(t, n, source))
    })
}

fn stratify(
    tensor: &SpikeTensor,
    bundle: BundleShape,
) -> (StratifiedWorkload, SpikeTensor, SpikeTensor) {
    let threshold = Stratifier::threshold_for_dense_fraction(tensor, bundle, 0.5);
    let split = Stratifier::new(threshold).stratify(tensor, bundle);
    let dense = select_features(tensor, &split.dense_features);
    let sparse = select_features(tensor, &split.sparse_features);
    (split, dense, sparse)
}

/// Measures the original, stratified-sparse and stratified-dense densities of
/// the output-projection input of the last block of Model 1, for both
/// training regimes.
pub fn run(scale: ExperimentScale) -> Vec<SliceDensity> {
    let config = scale.scale_config(&ModelConfig::model1_cifar10());
    let bundle = BundleShape::default();
    let mut rows = Vec::new();
    for regime in [TrainingRegime::Baseline, TrainingRegime::Bsa] {
        let workload = build_workload(&config, regime, 101);
        let projection = workload
            .projection_layers()
            .filter(|p| p.label.ends_with(".P2"))
            .last()
            .expect("workload has an output projection");
        let tensor = &projection.input;
        let tag = match regime {
            TrainingRegime::Baseline => "w/o BSA",
            TrainingRegime::Bsa => "with BSA",
        };
        rows.push(measure(&format!("original ({tag})"), tensor, bundle));
        let (_, dense, sparse) = stratify(tensor, bundle);
        rows.push(measure(
            &format!("stratified sparse ({tag})"),
            &sparse,
            bundle,
        ));
        rows.push(measure(
            &format!("stratified dense ({tag})"),
            &dense,
            bundle,
        ));
    }
    rows
}

/// Renders the experiment as markdown.
pub fn report(scale: ExperimentScale) -> String {
    let mut table = Table::new(
        "Fig. 6 — output-projection activity, original vs stratified vs BSA (Model 1)",
        &["Slice", "Spike density", "TTB density"],
    );
    for row in run(scale) {
        table.push_row(vec![
            row.label.clone(),
            percent(row.spike_density),
            percent(row.ttb_density),
        ]);
    }
    table.push_note(
        "Paper: 6.34%/11.16% original, 1.28%/8.58% stratified-sparse, 23.89%/75.50% \
         stratified-dense; 2.75%/5.22% original with BSA.",
    );
    table.to_markdown()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find<'a>(rows: &'a [SliceDensity], label: &str) -> &'a SliceDensity {
        rows.iter().find(|r| r.label.contains(label)).unwrap()
    }

    #[test]
    fn stratification_separates_dense_and_sparse_parts() {
        let rows = run(ExperimentScale::Quick);
        let original = find(&rows, "original (w/o BSA)");
        let sparse = find(&rows, "stratified sparse (w/o BSA)");
        let dense = find(&rows, "stratified dense (w/o BSA)");
        assert!(sparse.spike_density < original.spike_density);
        assert!(dense.spike_density > original.spike_density);
        assert!(dense.ttb_density > sparse.ttb_density);
    }

    #[test]
    fn bsa_reduces_both_density_measures() {
        let rows = run(ExperimentScale::Quick);
        let baseline = find(&rows, "original (w/o BSA)");
        let bsa = find(&rows, "original (with BSA)");
        assert!(bsa.spike_density < baseline.spike_density);
        assert!(bsa.ttb_density < baseline.ttb_density);
    }

    #[test]
    fn ttb_density_is_at_least_spike_density() {
        for row in run(ExperimentScale::Quick) {
            assert!(row.ttb_density + 1e-12 >= row.spike_density, "{row:?}");
        }
    }
}
