//! Fig. 16 — sensitivity of latency and energy to the Token-Time-Bundle
//! volume `(BSt, BSn)` for Model 3 (ImageNet-100).

use bishop_bundle::{BundleShape, TrainingRegime};
use bishop_core::{BishopConfig, BishopSimulator, SimOptions};
use bishop_model::ModelConfig;

use crate::report::{energy_mj, latency, Table};
use crate::workloads::{build_workload, ExperimentScale};

/// Result of simulating one bundle shape.
#[derive(Debug, Clone, PartialEq)]
pub struct BundleVolumePoint {
    /// The bundle shape `(BSt, BSn)`.
    pub bundle: BundleShape,
    /// Bundle volume `BSt · BSn`.
    pub volume: usize,
    /// End-to-end latency in seconds.
    pub latency_seconds: f64,
    /// End-to-end energy in millijoules.
    pub energy_mj: f64,
    /// Latency of the attention layers only (cycles).
    pub attention_cycles: u64,
    /// Latency of the projection/MLP layers only (cycles).
    pub projection_cycles: u64,
}

/// The `(BSt, BSn)` grid swept (volumes from 2 to 56, matching the paper's
/// range including the degenerate small shapes and the oversized (4, 14)).
pub const BUNDLE_SHAPES: [(usize, usize); 9] = [
    (1, 2),
    (2, 1),
    (2, 2),
    (2, 4),
    (4, 2),
    (2, 8),
    (4, 4),
    (4, 8),
    (4, 14),
];

/// Runs the sweep.
pub fn run(scale: ExperimentScale) -> Vec<BundleVolumePoint> {
    let config = scale.scale_config(&ModelConfig::model3_imagenet100());
    let workload = build_workload(&config, TrainingRegime::Baseline, 23);

    BUNDLE_SHAPES
        .iter()
        .map(|&(bst, bsn)| {
            let bundle = BundleShape::new(bst, bsn);
            let simulator = BishopSimulator::new(BishopConfig::default().with_bundle(bundle));
            let run = simulator.simulate(&workload, &SimOptions::baseline());
            let attention_cycles = run.cycles_for_group("ATN");
            let projection_cycles = run.total_cycles() - attention_cycles;
            BundleVolumePoint {
                bundle,
                volume: bundle.volume(),
                latency_seconds: run.total_latency_seconds(),
                energy_mj: run.total_energy_mj(),
                attention_cycles,
                projection_cycles,
            }
        })
        .collect()
}

/// Renders the experiment as markdown.
pub fn report(scale: ExperimentScale) -> String {
    let mut table = Table::new(
        "Fig. 16 — TTB bundle-volume sensitivity (Model 3)",
        &[
            "(BSt, BSn)",
            "Volume",
            "Latency",
            "Energy",
            "Attention cycles",
            "Projection/MLP cycles",
        ],
    );
    for point in run(scale) {
        table.push_row(vec![
            format!("({}, {})", point.bundle.timesteps, point.bundle.tokens),
            point.volume.to_string(),
            latency(point.latency_seconds),
            energy_mj(point.energy_mj),
            point.attention_cycles.to_string(),
            point.projection_cycles.to_string(),
        ]);
    }
    table.push_note(
        "Paper: bundle volumes between 4 and 8 are near-optimal; very small volumes lose \
         weight/key reuse, very large volumes waste work on idle positions inside bundles.",
    );
    table.to_markdown()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_shapes() {
        let points = run(ExperimentScale::Quick);
        assert_eq!(points.len(), BUNDLE_SHAPES.len());
    }

    #[test]
    fn sweet_spot_volumes_beat_oversized_bundles() {
        let points = run(ExperimentScale::Quick);
        let best_mid = points
            .iter()
            .filter(|p| p.volume >= 4 && p.volume <= 8)
            .map(|p| p.energy_mj)
            .fold(f64::INFINITY, f64::min);
        let oversized = points
            .iter()
            .find(|p| p.volume >= 56)
            .expect("sweep includes an oversized bundle");
        assert!(
            best_mid <= oversized.energy_mj * 1.05,
            "a 4-8 volume bundle ({best_mid}) should not lose to the oversized bundle ({})",
            oversized.energy_mj
        );
    }

    #[test]
    fn latency_and_energy_are_positive_everywhere() {
        for point in run(ExperimentScale::Quick) {
            assert!(point.latency_seconds > 0.0);
            assert!(point.energy_mj > 0.0);
            assert!(point.attention_cycles > 0);
            assert!(point.projection_cycles > 0);
        }
    }
}
