//! Fig. 5 — distribution of active Token-Time Bundles across input features
//! for spiking queries/keys, with and without BSA training.
//!
//! The paper visualises, for Model 1 (CIFAR-10), how many active bundles each
//! feature of the spiking Q/K tensors has in the 4th encoder block. BSA both
//! reduces the total number of active bundles and pushes a much larger
//! fraction of features to have *no* active bundle at all
//! (9.3 % → 52.2 % for Q).

use bishop_bundle::{BundleShape, BundleSparsityStats, TrainingRegime};
use bishop_model::ModelConfig;

use crate::report::{percent, Table};
use crate::workloads::{build_workload, ExperimentScale};

/// Measured statistics of one tensor's bundle distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct BundleDistribution {
    /// "Q" or "K".
    pub tensor: &'static str,
    /// Training regime the trace represents.
    pub regime: TrainingRegime,
    /// Fraction of features with zero active bundles.
    pub silent_feature_fraction: f64,
    /// Overall TTB density.
    pub ttb_density: f64,
    /// Histogram (10 bins) of the per-feature active-bundle counts, as
    /// feature fractions.
    pub histogram: Vec<f64>,
}

/// Measures the Q and K bundle distributions of the last block of Model 1 at
/// the given scale, for both training regimes.
pub fn run(scale: ExperimentScale) -> Vec<BundleDistribution> {
    let config = scale.scale_config(&ModelConfig::model1_cifar10());
    let bundle = BundleShape::default();
    let mut results = Vec::new();
    for regime in [TrainingRegime::Baseline, TrainingRegime::Bsa] {
        let workload = build_workload(&config, regime, 42);
        let attention = workload
            .attention_layers()
            .last()
            .expect("workload has attention layers");
        for (tensor, data) in [("Q", &attention.q), ("K", &attention.k)] {
            let stats = BundleSparsityStats::measure(data, bundle);
            results.push(BundleDistribution {
                tensor,
                regime,
                silent_feature_fraction: stats.silent_feature_fraction,
                ttb_density: stats.ttb_density,
                histogram: stats.feature_histogram(10),
            });
        }
    }
    results
}

/// Renders the experiment as markdown.
pub fn report(scale: ExperimentScale) -> String {
    let mut table = Table::new(
        "Fig. 5 — active-bundle distribution of spiking Q/K (Model 1)",
        &[
            "Tensor",
            "Training",
            "Silent features",
            "TTB density",
            "Features in lowest histogram bin",
        ],
    );
    for row in run(scale) {
        table.push_row(vec![
            row.tensor.to_string(),
            format!("{:?}", row.regime),
            percent(row.silent_feature_fraction),
            percent(row.ttb_density),
            percent(row.histogram[0]),
        ]);
    }
    table.push_note(
        "Paper (Model 1, Q): silent-feature fraction grows from 9.3% to 52.2% with BSA; \
         the bulk of features shift into the low-active-bundle bins.",
    );
    table.to_markdown()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bsa_increases_silent_features_and_reduces_bundle_density() {
        let rows = run(ExperimentScale::Quick);
        let find = |tensor: &str, regime: TrainingRegime| {
            rows.iter()
                .find(|r| r.tensor == tensor && r.regime == regime)
                .unwrap()
                .clone()
        };
        for tensor in ["Q", "K"] {
            let baseline = find(tensor, TrainingRegime::Baseline);
            let bsa = find(tensor, TrainingRegime::Bsa);
            assert!(
                bsa.silent_feature_fraction > baseline.silent_feature_fraction,
                "{tensor}: BSA should silence more features"
            );
            assert!(
                bsa.ttb_density < baseline.ttb_density,
                "{tensor}: BSA should reduce TTB density"
            );
        }
    }

    #[test]
    fn histograms_are_distributions() {
        for row in run(ExperimentScale::Quick) {
            let sum: f64 = row.histogram.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn report_mentions_both_regimes() {
        let text = report(ExperimentScale::Quick);
        assert!(text.contains("Baseline"));
        assert!(text.contains("Bsa"));
    }
}
