//! Fig. 11 — layer-wise normalized latency and energy of Bishop vs PTB.
//!
//! The paper plots, for Models 1–4, the latency and energy of every layer
//! (P1 = Q/K/V projection, ATN = spiking attention, P2 = output projection,
//! MLP) of every encoder block, normalized by the first projection layer of
//! the first block on Bishop. Bishop's advantage is largest on the attention
//! layers (dedicated AAC core) and grows with the attention share of the
//! model.

use bishop_baseline::{PtbConfig, PtbSimulator};
use bishop_bundle::TrainingRegime;
use bishop_core::{BishopConfig, BishopSimulator, RunMetrics, SimOptions};
use bishop_model::ModelConfig;

use crate::report::Table;
use crate::workloads::{build_workload, ExperimentScale};

/// One layer row of the figure.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerRow {
    /// Model name.
    pub model: String,
    /// Encoder block index.
    pub block: usize,
    /// Layer group (`P1`/`ATN`/`P2`/`MLP`).
    pub group: &'static str,
    /// PTB latency normalized by Bishop's first P1 layer.
    pub ptb_latency: f64,
    /// Bishop latency normalized the same way.
    pub bishop_latency: f64,
    /// PTB energy normalized by Bishop's first P1 layer.
    pub ptb_energy: f64,
    /// Bishop energy normalized the same way.
    pub bishop_energy: f64,
}

/// The four models shown in Fig. 11.
fn fig11_models() -> Vec<ModelConfig> {
    vec![
        ModelConfig::model1_cifar10(),
        ModelConfig::model2_cifar100(),
        ModelConfig::model3_imagenet100(),
        ModelConfig::model4_dvs_gesture(),
    ]
}

fn normalise(run: &RunMetrics, reference_cycles: f64, reference_energy: f64) -> Vec<(f64, f64)> {
    run.layers
        .iter()
        .map(|l| {
            (
                l.latency_cycles as f64 / reference_cycles,
                l.total_energy_pj() / reference_energy,
            )
        })
        .collect()
}

/// Simulates the layer-wise comparison for every Fig. 11 model.
pub fn run(scale: ExperimentScale) -> Vec<LayerRow> {
    let bishop = BishopSimulator::new(BishopConfig::default());
    let ptb = PtbSimulator::new(PtbConfig::default());
    let mut rows = Vec::new();
    for config in fig11_models() {
        let config = scale.scale_config(&config);
        let workload = build_workload(&config, TrainingRegime::Baseline, 7);
        let bishop_run = bishop.simulate(&workload, &SimOptions::baseline());
        let ptb_run = ptb.simulate(&workload);

        let reference = &bishop_run.layers[0];
        let reference_cycles = reference.latency_cycles as f64;
        let reference_energy = reference.total_energy_pj();
        let bishop_norm = normalise(&bishop_run, reference_cycles, reference_energy);
        let ptb_norm = normalise(&ptb_run, reference_cycles, reference_energy);

        for (index, layer) in bishop_run.layers.iter().enumerate() {
            rows.push(LayerRow {
                model: config.name.clone(),
                block: layer.block,
                group: layer.group,
                ptb_latency: ptb_norm[index].0,
                bishop_latency: bishop_norm[index].0,
                ptb_energy: ptb_norm[index].1,
                bishop_energy: bishop_norm[index].1,
            });
        }
    }
    rows
}

/// Renders the experiment as markdown.
pub fn report(scale: ExperimentScale) -> String {
    let mut table = Table::new(
        "Fig. 11 — layer-wise normalized latency and energy (PTB vs Bishop)",
        &[
            "Model",
            "Block",
            "Layer",
            "PTB latency",
            "Bishop latency",
            "PTB energy",
            "Bishop energy",
        ],
    );
    for row in run(scale) {
        table.push_row(vec![
            row.model.clone(),
            row.block.to_string(),
            row.group.to_string(),
            format!("{:.2}", row.ptb_latency),
            format!("{:.2}", row.bishop_latency),
            format!("{:.2}", row.ptb_energy),
            format!("{:.2}", row.bishop_energy),
        ]);
    }
    table.push_note(
        "All values are normalized by the first Q/K/V projection layer of the first block \
         executed on Bishop, matching the paper's normalization.",
    );
    table.to_markdown()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bishop_beats_ptb_on_most_layers() {
        let rows = run(ExperimentScale::Quick);
        assert!(!rows.is_empty());
        let faster = rows
            .iter()
            .filter(|r| r.bishop_latency <= r.ptb_latency + 1e-9)
            .count();
        assert!(
            faster * 10 >= rows.len() * 7,
            "Bishop should be at least as fast as PTB on >=70% of layers ({faster}/{})",
            rows.len()
        );
    }

    #[test]
    fn attention_layers_show_a_large_gap() {
        let rows = run(ExperimentScale::Quick);
        let mean_ratio = |group: &str, metric: fn(&LayerRow) -> (f64, f64)| {
            let selected: Vec<&LayerRow> = rows.iter().filter(|r| r.group == group).collect();
            selected
                .iter()
                .map(|r| {
                    let (ptb, bishop) = metric(r);
                    ptb / bishop.max(1e-9)
                })
                .sum::<f64>()
                / selected.len() as f64
        };
        let latency = |r: &LayerRow| (r.ptb_latency, r.bishop_latency);
        let energy = |r: &LayerRow| (r.ptb_energy, r.bishop_energy);
        // The dedicated AAC core gives the attention layers a large latency
        // advantage (paper: 10.7x–23.3x) and the largest *energy* advantage
        // of any layer group (multiplier-free vs multi-bit MACs).
        assert!(
            mean_ratio("ATN", latency) > 5.0,
            "attention-layer latency advantage should be large"
        );
        assert!(
            mean_ratio("ATN", energy) > mean_ratio("MLP", energy),
            "the attention core should give the biggest per-layer energy gain"
        );
    }

    #[test]
    fn normalization_reference_is_one() {
        let rows = run(ExperimentScale::Quick);
        let first = &rows[0];
        assert_eq!(first.group, "P1");
        assert!((first.bishop_latency - 1.0).abs() < 1e-9);
        assert!((first.bishop_energy - 1.0).abs() < 1e-9);
    }
}
