//! Residual encoder blocks (SSA block + MLP block).

use bishop_neuron::LifConfig;
use bishop_spiketensor::SpikeTensor;
use rand::Rng;

use crate::mlp::{MlpOutput, SpikingMlp};
use crate::parallel::ComputePool;
use crate::ssa::{SpikingSelfAttention, SsaOutput};

/// All activations produced by one encoder block forward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct EncoderOutput {
    /// Intermediate tensors of the spiking self-attention block.
    pub ssa: SsaOutput,
    /// Spike tensor entering the MLP block (attention output merged with the
    /// residual path).
    pub mlp_input: SpikeTensor,
    /// Intermediate tensors of the MLP block.
    pub mlp: MlpOutput,
    /// Block output (MLP output merged with its residual path).
    pub output: SpikeTensor,
}

/// One residual encoder block: multi-head spiking self-attention followed by
/// a spiking MLP, each with a residual connection.
///
/// Residuals between *binary* spike tensors are merged with an elementwise
/// OR. (Spikformer-style models add membrane potentials instead; the OR
/// merge keeps every inter-layer tensor binary, which is the property the
/// Bishop hardware — and the SSA formulation in Eq. 7/8 the paper adopts —
/// relies on. The difference does not affect workload statistics, which is
/// what the accelerator evaluation consumes.)
#[derive(Debug, Clone, PartialEq)]
pub struct EncoderBlock {
    ssa: SpikingSelfAttention,
    mlp: SpikingMlp,
}

impl EncoderBlock {
    /// Creates an encoder block with random weights.
    pub fn random<R: Rng>(
        features: usize,
        heads: usize,
        mlp_hidden: usize,
        scale_shift: u32,
        lif: LifConfig,
        rng: &mut R,
    ) -> Self {
        Self {
            ssa: SpikingSelfAttention::random(features, heads, scale_shift, lif, rng),
            mlp: SpikingMlp::random(features, mlp_hidden, lif, rng),
        }
    }

    /// The block's attention sub-module.
    pub fn ssa(&self) -> &SpikingSelfAttention {
        &self.ssa
    }

    /// The block's MLP sub-module.
    pub fn mlp(&self) -> &SpikingMlp {
        &self.mlp
    }

    /// Forward pass with residual merging.
    pub fn forward(&self, input: &SpikeTensor) -> EncoderOutput {
        self.forward_with(input, &ComputePool::sequential())
    }

    /// Pool-parallel [`EncoderBlock::forward`]; bit-identical at any pool
    /// width.
    pub fn forward_with(&self, input: &SpikeTensor, pool: &ComputePool) -> EncoderOutput {
        let ssa = self.ssa.forward_with(input, pool);
        let mlp_input = input
            .or(&ssa.output)
            .expect("SSA output shape matches its input shape");
        let mlp = self.mlp.forward_with(&mlp_input, pool);
        let output = mlp_input
            .or(&mlp.output)
            .expect("MLP output shape matches its input shape");
        EncoderOutput {
            ssa,
            mlp_input,
            mlp,
            output,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bishop_spiketensor::TensorShape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn block() -> EncoderBlock {
        let mut rng = StdRng::seed_from_u64(21);
        EncoderBlock::random(8, 2, 16, 1, LifConfig::default(), &mut rng)
    }

    #[test]
    fn forward_preserves_activation_shape() {
        let shape = TensorShape::new(2, 6, 8);
        let x = SpikeTensor::from_fn(shape, |t, n, d| (t + n + d) % 3 == 0);
        let out = block().forward(&x);
        assert_eq!(out.output.shape(), shape);
        assert_eq!(out.mlp_input.shape(), shape);
        assert_eq!(out.mlp.hidden.shape(), TensorShape::new(2, 6, 16));
    }

    #[test]
    fn residual_or_never_loses_input_spikes() {
        let shape = TensorShape::new(2, 5, 8);
        let x = SpikeTensor::from_fn(shape, |t, n, d| (t * 7 + n * 3 + d) % 4 == 0);
        let out = block().forward(&x);
        // Every input spike must still be present in the block output because
        // the residual path ORs it through both merges.
        for (t, n, d) in x.iter_active() {
            assert!(out.output.get(t, n, d), "residual lost spike ({t},{n},{d})");
        }
    }

    #[test]
    fn zero_input_produces_zero_output() {
        let x = SpikeTensor::zeros(TensorShape::new(2, 4, 8));
        let out = block().forward(&x);
        assert_eq!(out.output.count_ones(), 0);
        assert_eq!(out.ssa.q.count_ones(), 0);
    }

    #[test]
    fn accessors_expose_submodules() {
        let b = block();
        assert_eq!(b.ssa().heads(), 2);
        assert_eq!(b.mlp().hidden(), 16);
    }
}
