//! Spiking MLP blocks.

use bishop_neuron::LifConfig;
use bishop_spiketensor::SpikeTensor;
use rand::Rng;

use crate::parallel::ComputePool;
use crate::projection::SpikingLinear;

/// The spiking MLP block of an encoder: two spiking linear layers with an
/// expansion ratio (`D → r·D → D`), each followed by its LIF stage.
///
/// Complexity is `O(T · N · D · r·D)` per layer — together with the Q/K/V/O
/// projections these are the layers the Bishop dense/sparse TTB cores
/// process.
#[derive(Debug, Clone, PartialEq)]
pub struct SpikingMlp {
    fc1: SpikingLinear,
    fc2: SpikingLinear,
}

/// Intermediate and final activations of an MLP forward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpOutput {
    /// Hidden-layer spikes, `T × N × (r·D)`.
    pub hidden: SpikeTensor,
    /// Output spikes, `T × N × D`.
    pub output: SpikeTensor,
}

impl SpikingMlp {
    /// Creates an MLP block with random weights.
    pub fn random<R: Rng>(features: usize, hidden: usize, lif: LifConfig, rng: &mut R) -> Self {
        let scale1 = 1.0 / (features as f32).sqrt();
        let scale2 = 1.0 / (hidden as f32).sqrt();
        Self {
            fc1: SpikingLinear::random(features, hidden, scale1, lif, rng),
            fc2: SpikingLinear::random(hidden, features, scale2, lif, rng),
        }
    }

    /// Creates an MLP block from explicit layers.
    ///
    /// # Panics
    ///
    /// Panics if the layer widths do not chain (`fc1` output ≠ `fc2` input).
    pub fn from_layers(fc1: SpikingLinear, fc2: SpikingLinear) -> Self {
        assert_eq!(
            fc1.out_features(),
            fc2.in_features(),
            "fc1 output width must equal fc2 input width"
        );
        Self { fc1, fc2 }
    }

    /// Embedding feature dimension `D`.
    pub fn features(&self) -> usize {
        self.fc1.in_features()
    }

    /// Hidden dimension `r·D`.
    pub fn hidden(&self) -> usize {
        self.fc1.out_features()
    }

    /// First linear layer.
    pub fn fc1(&self) -> &SpikingLinear {
        &self.fc1
    }

    /// Second linear layer.
    pub fn fc2(&self) -> &SpikingLinear {
        &self.fc2
    }

    /// Forward pass returning both the hidden and output spike tensors.
    pub fn forward(&self, input: &SpikeTensor) -> MlpOutput {
        self.forward_with(input, &ComputePool::sequential())
    }

    /// Pool-parallel [`SpikingMlp::forward`]; bit-identical at any pool
    /// width.
    pub fn forward_with(&self, input: &SpikeTensor, pool: &ComputePool) -> MlpOutput {
        let hidden = self.fc1.forward_with(input, pool);
        let output = self.fc2.forward_with(&hidden, pool);
        MlpOutput { hidden, output }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bishop_spiketensor::{DenseMatrix, TensorShape};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes_follow_expansion_ratio() {
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = SpikingMlp::random(8, 32, LifConfig::default(), &mut rng);
        let x = SpikeTensor::from_fn(TensorShape::new(2, 4, 8), |_, n, d| (n + d) % 2 == 0);
        let out = mlp.forward(&x);
        assert_eq!(out.hidden.shape(), TensorShape::new(2, 4, 32));
        assert_eq!(out.output.shape(), TensorShape::new(2, 4, 8));
        assert_eq!(mlp.features(), 8);
        assert_eq!(mlp.hidden(), 32);
    }

    #[test]
    fn zero_input_stays_zero() {
        let mut rng = StdRng::seed_from_u64(4);
        let mlp = SpikingMlp::random(4, 16, LifConfig::default(), &mut rng);
        let x = SpikeTensor::zeros(TensorShape::new(3, 3, 4));
        let out = mlp.forward(&x);
        assert_eq!(out.hidden.count_ones(), 0);
        assert_eq!(out.output.count_ones(), 0);
    }

    #[test]
    fn from_layers_validates_widths() {
        let fc1 = SpikingLinear::from_weight(DenseMatrix::zeros(4, 8), LifConfig::default());
        let fc2 = SpikingLinear::from_weight(DenseMatrix::zeros(8, 4), LifConfig::default());
        let mlp = SpikingMlp::from_layers(fc1, fc2);
        assert_eq!(mlp.hidden(), 8);
    }

    #[test]
    #[should_panic(expected = "fc1 output width")]
    fn from_layers_rejects_mismatched_widths() {
        let fc1 = SpikingLinear::from_weight(DenseMatrix::zeros(4, 8), LifConfig::default());
        let fc2 = SpikingLinear::from_weight(DenseMatrix::zeros(9, 4), LifConfig::default());
        SpikingMlp::from_layers(fc1, fc2);
    }

    #[test]
    fn saturating_weights_fire_everything() {
        let fc1 = SpikingLinear::from_weight(
            DenseMatrix::from_fn(2, 4, |_, _| 2.0),
            LifConfig::default(),
        );
        let fc2 = SpikingLinear::from_weight(
            DenseMatrix::from_fn(4, 2, |_, _| 2.0),
            LifConfig::default(),
        );
        let mlp = SpikingMlp::from_layers(fc1, fc2);
        let x = SpikeTensor::ones(TensorShape::new(1, 2, 2));
        let out = mlp.forward(&x);
        assert_eq!(out.output.density(), 1.0);
    }
}
