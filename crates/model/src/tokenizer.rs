//! Spiking tokenizer: turns an analog (or event-based) input into the first
//! `T × N × D` spike tensor of the transformer.
//!
//! The paper's tokenizer is a small spiking convolutional stem
//! (complexity `O(T·H·W·C²·K²)`, §2.2); it is not a bottleneck and not a
//! target of the accelerator, so this reproduction models it at the token
//! granularity: the input is presented as an `N × P` matrix of patch feature
//! vectors (one row per token), which a spiking linear layer projects to the
//! embedding dimension `D` at every timestep, with persistent LIF state
//! across timesteps.

use bishop_neuron::{lif_over_time, LifConfig};
use bishop_spiketensor::{DenseMatrix, SpikeTensor};
use rand::Rng;

/// Spiking tokenizer mapping patch features to embedded spike tokens.
#[derive(Debug, Clone, PartialEq)]
pub struct SpikingTokenizer {
    weight: DenseMatrix,
    lif: LifConfig,
    timesteps: usize,
}

impl SpikingTokenizer {
    /// Creates a tokenizer with random projection weights.
    pub fn random<R: Rng>(
        patch_features: usize,
        embed_features: usize,
        timesteps: usize,
        lif: LifConfig,
        rng: &mut R,
    ) -> Self {
        assert!(timesteps > 0, "tokenizer needs at least one timestep");
        let scale = 1.0 / (patch_features as f32).sqrt();
        Self {
            weight: DenseMatrix::random_uniform(patch_features, embed_features, scale, rng),
            lif,
            timesteps,
        }
    }

    /// Creates a tokenizer from an explicit weight matrix.
    pub fn from_weight(weight: DenseMatrix, timesteps: usize, lif: LifConfig) -> Self {
        assert!(timesteps > 0, "tokenizer needs at least one timestep");
        Self {
            weight,
            lif,
            timesteps,
        }
    }

    /// Patch feature dimension expected per token.
    pub fn patch_features(&self) -> usize {
        self.weight.rows()
    }

    /// Output embedding dimension `D`.
    pub fn embed_features(&self) -> usize {
        self.weight.cols()
    }

    /// Number of timesteps of the produced spike tensor.
    pub fn timesteps(&self) -> usize {
        self.timesteps
    }

    /// The projection weight matrix (`P × D`).
    pub fn weight(&self) -> &DenseMatrix {
        &self.weight
    }

    /// The LIF configuration of the tokenizer's spike generator.
    pub fn lif_config(&self) -> LifConfig {
        self.lif
    }

    /// Tokenises the `N × P` patch matrix into a `T × N × D` spike tensor.
    ///
    /// The analog patch features drive the membrane charge identically at
    /// every timestep (direct encoding); LIF state persists across timesteps
    /// so weakly driven positions fire sparsely and strongly driven positions
    /// fire at a high rate — the standard behaviour of direct-encoded SNNs.
    ///
    /// # Panics
    ///
    /// Panics if the patch feature count differs from the tokenizer's
    /// expected width.
    pub fn tokenize(&self, patches: &DenseMatrix) -> SpikeTensor {
        assert_eq!(
            patches.cols(),
            self.patch_features(),
            "patch width {} does not match tokenizer input width {}",
            patches.cols(),
            self.patch_features()
        );
        let charge = patches.matmul(&self.weight);
        let per_step: Vec<DenseMatrix> = (0..self.timesteps).map(|_| charge.clone()).collect();
        lif_over_time(&per_step, self.lif)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bishop_spiketensor::TensorShape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tokenize_produces_expected_shape() {
        let mut rng = StdRng::seed_from_u64(17);
        let tokenizer = SpikingTokenizer::random(12, 8, 4, LifConfig::default(), &mut rng);
        let patches = DenseMatrix::random_uniform(10, 12, 1.0, &mut rng);
        let spikes = tokenizer.tokenize(&patches);
        assert_eq!(spikes.shape(), TensorShape::new(4, 10, 8));
    }

    #[test]
    fn stronger_patches_fire_at_a_higher_rate() {
        let weight = DenseMatrix::identity(2);
        let tokenizer = SpikingTokenizer::from_weight(weight, 10, LifConfig::default());
        // Token 0 drives feature 0 with 1.5/step, token 1 drives feature 1
        // with 0.3/step.
        let patches = DenseMatrix::from_rows(&[vec![1.5, 0.0], vec![0.0, 0.3]]);
        let spikes = tokenizer.tokenize(&patches);
        let strong_rate = (0..10).filter(|&t| spikes.get(t, 0, 0)).count();
        let weak_rate = (0..10).filter(|&t| spikes.get(t, 1, 1)).count();
        assert!(strong_rate > weak_rate);
        assert!(weak_rate >= 1, "weak input should still fire occasionally");
    }

    #[test]
    fn zero_patches_produce_no_spikes() {
        let tokenizer =
            SpikingTokenizer::from_weight(DenseMatrix::identity(3), 5, LifConfig::default());
        let spikes = tokenizer.tokenize(&DenseMatrix::zeros(4, 3));
        assert_eq!(spikes.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "does not match tokenizer input width")]
    fn mismatched_patch_width_rejected() {
        let tokenizer =
            SpikingTokenizer::from_weight(DenseMatrix::identity(3), 5, LifConfig::default());
        tokenizer.tokenize(&DenseMatrix::zeros(4, 2));
    }

    #[test]
    fn accessors_report_dimensions() {
        let tokenizer =
            SpikingTokenizer::from_weight(DenseMatrix::zeros(6, 9), 3, LifConfig::default());
        assert_eq!(tokenizer.patch_features(), 6);
        assert_eq!(tokenizer.embed_features(), 9);
        assert_eq!(tokenizer.timesteps(), 3);
    }
}
