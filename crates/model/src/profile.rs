//! Analytic computational-complexity profiling (Fig. 3 / §2.2 of the paper).
//!
//! The profiler counts the floating-point-equivalent operations of every
//! component of a spiking transformer inference, reproducing the FLOPs
//! breakdown that motivates targeting the attention and MLP blocks:
//!
//! * MLP + projection layers: `O(T·N·D²)`
//! * attention layers: `O(T·N²·D)`
//! * LIF layers: `O(T·N·D)`
//! * tokenizer: `O(T·H·W·C²·K²)`

use crate::config::{DatasetKind, ModelConfig};

/// Input geometry used to estimate tokenizer cost for each dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputGeometry {
    /// Input height in pixels (or spectrogram frames).
    pub height: usize,
    /// Input width in pixels (or mel bins).
    pub width: usize,
    /// Input channels.
    pub channels: usize,
    /// Convolutional kernel size of the tokenizer stem.
    pub kernel: usize,
}

impl InputGeometry {
    /// Canonical geometry of each evaluation dataset.
    pub fn for_dataset(dataset: DatasetKind) -> Self {
        match dataset {
            DatasetKind::Cifar10 | DatasetKind::Cifar100 => Self {
                height: 32,
                width: 32,
                channels: 3,
                kernel: 3,
            },
            DatasetKind::ImageNet100 => Self {
                height: 224,
                width: 224,
                channels: 3,
                kernel: 3,
            },
            DatasetKind::DvsGesture => Self {
                height: 128,
                width: 128,
                channels: 2,
                kernel: 3,
            },
            DatasetKind::GoogleSpeechCommands => Self {
                height: 101,
                width: 40,
                channels: 1,
                kernel: 3,
            },
        }
    }
}

/// FLOP counts of each component of one model inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadProfile {
    /// Q/K/V and output projection layers across all blocks.
    pub projection_flops: u64,
    /// MLP layers across all blocks.
    pub mlp_flops: u64,
    /// Spiking attention layers (`S = Q·Kᵀ` and `Y = S·V`) across all blocks.
    pub attention_flops: u64,
    /// LIF neuron updates across all blocks.
    pub lif_flops: u64,
    /// Tokenizer stem.
    pub tokenizer_flops: u64,
    /// Classification head.
    pub head_flops: u64,
}

impl WorkloadProfile {
    /// Profiles a model configuration.
    pub fn of(config: &ModelConfig) -> Self {
        let t = config.timesteps as u64;
        let n = config.tokens as u64;
        let d = config.features as u64;
        let hidden = config.mlp_hidden() as u64;
        let blocks = config.blocks as u64;
        let geometry = InputGeometry::for_dataset(config.dataset);

        // One multiply-accumulate = 2 FLOPs.
        let projection_flops = blocks * 4 * 2 * t * n * d * d;
        let mlp_flops = blocks * 2 * 2 * t * n * d * hidden;
        let attention_flops = blocks * 2 * 2 * t * n * n * d;
        // Each LIF update is ~3 ops (accumulate, compare, reset); applied to
        // Q/K/V, attention output, and the two MLP stages per block.
        let lif_stages = 6;
        let lif_flops = blocks * lif_stages * 3 * t * n * d;
        let tokenizer_flops = 2
            * t
            * geometry.height as u64
            * geometry.width as u64
            * (geometry.channels as u64).pow(2)
            * (geometry.kernel as u64).pow(2);
        let head_flops = 2 * d * config.dataset.classes() as u64;

        Self {
            projection_flops,
            mlp_flops,
            attention_flops,
            lif_flops,
            tokenizer_flops,
            head_flops,
        }
    }

    /// Profiles a hypothetical configuration with explicit `(T, N, D)` and
    /// block count, keeping the ImageNet input geometry. Used for the Fig. 3
    /// sweep over token/feature sizes.
    pub fn of_shape(timesteps: usize, tokens: usize, features: usize, blocks: usize) -> Self {
        let config = ModelConfig::new(
            format!("profile-N{tokens}-D{features}"),
            DatasetKind::ImageNet100,
            blocks,
            timesteps,
            tokens,
            features,
            1,
        );
        Self::of(&config)
    }

    /// Total FLOPs of one inference.
    pub fn total(&self) -> u64 {
        self.projection_flops
            + self.mlp_flops
            + self.attention_flops
            + self.lif_flops
            + self.tokenizer_flops
            + self.head_flops
    }

    /// Fraction of FLOPs spent in attention layers.
    pub fn attention_fraction(&self) -> f64 {
        self.attention_flops as f64 / self.total() as f64
    }

    /// Fraction of FLOPs spent in MLP layers.
    pub fn mlp_fraction(&self) -> f64 {
        self.mlp_flops as f64 / self.total() as f64
    }

    /// Fraction of FLOPs spent in projection layers.
    pub fn projection_fraction(&self) -> f64 {
        self.projection_flops as f64 / self.total() as f64
    }

    /// Combined attention + MLP fraction — the 66.5 %–91.0 % range reported
    /// in Fig. 3 for the ImageNet-scale configurations.
    pub fn attention_plus_mlp_fraction(&self) -> f64 {
        self.attention_fraction() + self.mlp_fraction()
    }

    /// Named component breakdown in a stable order (for reports).
    pub fn breakdown(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("attention", self.attention_flops),
            ("mlp", self.mlp_flops),
            ("projection", self.projection_flops),
            ("lif", self.lif_flops),
            ("tokenizer", self.tokenizer_flops),
            ("head", self.head_flops),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attention_dominates_when_tokens_exceed_features() {
        let profile = WorkloadProfile::of(&ModelConfig::model3_imagenet100());
        assert!(profile.attention_fraction() > profile.projection_fraction() / 4.0);
        // N=196 > D=128 so attention cost > a single projection layer's cost.
        assert!(profile.attention_flops > profile.projection_flops / 4);
    }

    #[test]
    fn mlp_dominates_when_features_exceed_tokens() {
        let profile = WorkloadProfile::of(&ModelConfig::model1_cifar10());
        assert!(profile.mlp_fraction() > profile.attention_fraction());
    }

    #[test]
    fn fig3_range_attention_plus_mlp_dominate() {
        // Fig. 3: across ImageNet-scale configurations the attention + MLP
        // share ranges from ~66.5 % to ~91 %.
        for (n, d) in [(128, 256), (196, 128), (256, 128), (256, 256)] {
            let profile = WorkloadProfile::of_shape(4, n, d, 8);
            let share = profile.attention_plus_mlp_fraction();
            assert!(
                share > 0.6 && share < 0.99,
                "attention+MLP share {share} out of expected range for N={n}, D={d}"
            );
        }
    }

    #[test]
    fn attention_share_grows_with_token_count() {
        let small_n = WorkloadProfile::of_shape(4, 128, 128, 8);
        let large_n = WorkloadProfile::of_shape(4, 256, 128, 8);
        assert!(large_n.attention_fraction() > small_n.attention_fraction());
    }

    #[test]
    fn projection_flops_formula() {
        let config = ModelConfig::new("p", DatasetKind::Cifar10, 2, 3, 5, 8, 1);
        let profile = WorkloadProfile::of(&config);
        assert_eq!(profile.projection_flops, 2 * 4 * 2 * 3 * 5 * 8 * 8);
        assert_eq!(profile.mlp_flops, 2 * 2 * 2 * 3 * 5 * 8 * 32);
        assert_eq!(profile.attention_flops, 2 * 2 * 2 * 3 * 5 * 5 * 8);
    }

    #[test]
    fn total_is_sum_of_breakdown() {
        let profile = WorkloadProfile::of(&ModelConfig::model5_google_sc());
        let sum: u64 = profile.breakdown().iter().map(|(_, v)| v).sum();
        assert_eq!(profile.total(), sum);
    }

    #[test]
    fn tokenizer_is_not_dominant() {
        for config in ModelConfig::paper_models() {
            let profile = WorkloadProfile::of(&config);
            assert!(
                (profile.tokenizer_flops as f64) < 0.5 * profile.total() as f64,
                "tokenizer should not dominate for {}",
                config.name
            );
        }
    }

    #[test]
    fn geometry_lookup_covers_all_datasets() {
        for dataset in DatasetKind::all() {
            let g = InputGeometry::for_dataset(dataset);
            assert!(g.height > 0 && g.width > 0 && g.channels > 0 && g.kernel > 0);
        }
    }
}
