//! The complete spiking transformer: tokenizer, encoder blocks, and
//! classification head, with activation-trace capture.

use bishop_neuron::LifConfig;
use bishop_spiketensor::{DenseMatrix, SpikeTensor};
use rand::Rng;

use crate::config::ModelConfig;
use crate::encoder::EncoderBlock;
use crate::parallel::ComputePool;
use crate::tokenizer::SpikingTokenizer;
use crate::workload::{
    score_bits_for, AttentionWorkload, LayerKind, LayerWorkload, ModelWorkload, ProjectionWorkload,
};

/// Result of one end-to-end inference: class logits plus the captured
/// per-layer workload (the activation trace the accelerator simulators run).
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceResult {
    /// Per-class logits (average firing rate of the pooled representation
    /// through the classifier).
    pub logits: Vec<f32>,
    /// Index of the highest logit.
    pub prediction: usize,
    /// The captured per-layer workload of this inference.
    pub workload: ModelWorkload,
    /// Final encoder output spikes.
    pub final_spikes: SpikeTensor,
}

/// A complete spiking vision/speech transformer (Fig. 2 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct SpikingTransformer {
    config: ModelConfig,
    tokenizer: SpikingTokenizer,
    blocks: Vec<EncoderBlock>,
    classifier: DenseMatrix,
}

impl SpikingTransformer {
    /// Builds a transformer with random weights for the given configuration.
    ///
    /// `patch_features` is the per-token input feature width the tokenizer
    /// expects (e.g. `4·4·3 = 48` for CIFAR with 4×4 patches).
    pub fn random<R: Rng>(
        config: &ModelConfig,
        patch_features: usize,
        classes: usize,
        rng: &mut R,
    ) -> Self {
        let lif = LifConfig::default();
        let tokenizer =
            SpikingTokenizer::random(patch_features, config.features, config.timesteps, lif, rng);
        let blocks = (0..config.blocks)
            .map(|_| {
                EncoderBlock::random(
                    config.features,
                    config.heads,
                    config.mlp_hidden(),
                    config.scale_shift,
                    lif,
                    rng,
                )
            })
            .collect();
        let classifier = DenseMatrix::random_uniform(
            config.features,
            classes,
            1.0 / (config.features as f32).sqrt(),
            rng,
        );
        Self {
            config: config.clone(),
            tokenizer,
            blocks,
            classifier,
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classifier.cols()
    }

    /// The tokenizer stage.
    pub fn tokenizer(&self) -> &SpikingTokenizer {
        &self.tokenizer
    }

    /// The encoder blocks.
    pub fn blocks(&self) -> &[EncoderBlock] {
        &self.blocks
    }

    /// The classification head (`D × classes`).
    pub fn classifier(&self) -> &DenseMatrix {
        &self.classifier
    }

    /// Global-average-pools a spike tensor over time and tokens into a
    /// per-feature firing-rate vector.
    pub fn pool(spikes: &SpikeTensor) -> Vec<f32> {
        let shape = spikes.shape();
        let denom = (shape.timesteps * shape.tokens) as f32;
        spikes
            .per_feature_counts()
            .iter()
            .map(|&c| c as f32 / denom)
            .collect()
    }

    /// Runs inference on an `N × P` patch matrix and captures the per-layer
    /// workload.
    ///
    /// # Panics
    ///
    /// Panics if the patch matrix has the wrong number of tokens or features.
    pub fn infer(&self, patches: &DenseMatrix) -> InferenceResult {
        self.infer_with(patches, &ComputePool::sequential())
    }

    /// Pool-parallel [`SpikingTransformer::infer`]: the per-layer compute
    /// (projection timesteps, attention score/select timesteps, MLP
    /// timesteps) fans out across the pool while the layer-to-layer dataflow
    /// stays sequential. Bit-for-bit identical to `infer` at any pool width.
    ///
    /// # Panics
    ///
    /// Panics if the patch matrix has the wrong number of tokens or features.
    pub fn infer_with(&self, patches: &DenseMatrix, pool: &ComputePool) -> InferenceResult {
        assert_eq!(
            patches.rows(),
            self.config.tokens,
            "expected {} tokens, got {}",
            self.config.tokens,
            patches.rows()
        );
        let mut workload = ModelWorkload::new(self.config.clone());
        let mut x = self.tokenizer.tokenize(patches);

        for (block_index, block) in self.blocks.iter().enumerate() {
            // P1: Q/K/V projection operates on the block input.
            workload.push(LayerWorkload::Projection(ProjectionWorkload {
                block: block_index,
                kind: LayerKind::QkvProjection,
                label: format!("block{block_index}.P1"),
                input: x.clone(),
                output_features: 3 * self.config.features,
                weight_bits: self.config.weight_bits,
            }));

            let out = block.forward_with(&x, pool);

            workload.push(LayerWorkload::Attention(AttentionWorkload {
                block: block_index,
                label: format!("block{block_index}.ATN"),
                q: out.ssa.q.clone(),
                k: out.ssa.k.clone(),
                v: out.ssa.v.clone(),
                heads: self.config.heads,
                score_bits: score_bits_for(&self.config),
            }));

            workload.push(LayerWorkload::Projection(ProjectionWorkload {
                block: block_index,
                kind: LayerKind::OutputProjection,
                label: format!("block{block_index}.P2"),
                input: out.ssa.o_temp.clone(),
                output_features: self.config.features,
                weight_bits: self.config.weight_bits,
            }));

            workload.push(LayerWorkload::Projection(ProjectionWorkload {
                block: block_index,
                kind: LayerKind::MlpFc1,
                label: format!("block{block_index}.MLP.fc1"),
                input: out.mlp_input.clone(),
                output_features: self.config.mlp_hidden(),
                weight_bits: self.config.weight_bits,
            }));

            workload.push(LayerWorkload::Projection(ProjectionWorkload {
                block: block_index,
                kind: LayerKind::MlpFc2,
                label: format!("block{block_index}.MLP.fc2"),
                input: out.mlp.hidden.clone(),
                output_features: self.config.features,
                weight_bits: self.config.weight_bits,
            }));

            x = out.output;
        }

        let pooled = Self::pool(&x);
        let pooled_matrix = DenseMatrix::from_rows(&[pooled]);
        let logits_matrix = pooled_matrix.matmul(&self.classifier);
        let logits: Vec<f32> = logits_matrix.row(0).to_vec();
        let prediction = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("logits are finite"))
            .map(|(i, _)| i)
            .unwrap_or(0);

        InferenceResult {
            logits,
            prediction,
            workload,
            final_spikes: x,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetKind;
    use bishop_spiketensor::TensorShape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model() -> (ModelConfig, SpikingTransformer) {
        let config = ModelConfig::new("tiny", DatasetKind::Cifar10, 2, 3, 8, 16, 2);
        let mut rng = StdRng::seed_from_u64(99);
        let model = SpikingTransformer::random(&config, 12, 10, &mut rng);
        (config, model)
    }

    #[test]
    fn inference_produces_logits_and_workload() {
        let (config, model) = tiny_model();
        let mut rng = StdRng::seed_from_u64(100);
        let patches = DenseMatrix::random_uniform(config.tokens, 12, 1.0, &mut rng);
        let result = model.infer(&patches);
        assert_eq!(result.logits.len(), 10);
        assert!(result.prediction < 10);
        assert_eq!(result.workload.layers().len(), 5 * config.blocks);
        assert_eq!(result.final_spikes.shape(), TensorShape::new(3, 8, 16));
    }

    #[test]
    fn captured_workload_matches_model_dimensions() {
        let (config, model) = tiny_model();
        let mut rng = StdRng::seed_from_u64(101);
        let patches = DenseMatrix::random_uniform(config.tokens, 12, 1.0, &mut rng);
        let result = model.infer(&patches);
        for p in result.workload.projection_layers() {
            assert_eq!(p.input.shape().tokens, config.tokens);
            assert_eq!(p.input.shape().timesteps, config.timesteps);
        }
        for a in result.workload.attention_layers() {
            assert_eq!(a.shape(), config.activation_shape());
            assert_eq!(a.heads, config.heads);
        }
    }

    #[test]
    fn pooling_is_mean_firing_rate() {
        let spikes = SpikeTensor::from_fn(TensorShape::new(2, 2, 3), |_, _, d| d == 0);
        let pooled = SpikingTransformer::pool(&spikes);
        assert_eq!(pooled, vec![1.0, 0.0, 0.0]);
    }

    #[test]
    fn inference_is_deterministic() {
        let (config, model) = tiny_model();
        let mut rng = StdRng::seed_from_u64(102);
        let patches = DenseMatrix::random_uniform(config.tokens, 12, 1.0, &mut rng);
        let a = model.infer(&patches);
        let b = model.infer(&patches);
        assert_eq!(a.logits, b.logits);
        assert_eq!(a.prediction, b.prediction);
    }

    #[test]
    #[should_panic(expected = "expected 8 tokens")]
    fn wrong_token_count_is_rejected() {
        let (_, model) = tiny_model();
        let patches = DenseMatrix::zeros(4, 12);
        model.infer(&patches);
    }

    #[test]
    fn accessors_expose_structure() {
        let (config, model) = tiny_model();
        assert_eq!(model.blocks().len(), config.blocks);
        assert_eq!(model.classes(), 10);
        assert_eq!(model.tokenizer().embed_features(), config.features);
        assert_eq!(model.config().name, "tiny");
    }
}
