//! Timestep-by-timestep execution of a [`SpikingTransformer`] with
//! exportable LIF state — the model-layer half of streamed, stateful
//! serving.
//!
//! [`SpikingTransformer::infer`] runs the whole `T`-timestep tensor pass in
//! one call and drops every membrane potential at the end. The
//! [`TransformerStepper`] runs the *same arithmetic in the same order* one
//! timestep at a time: all cross-timestep coupling in the model flows
//! through LIF membrane potentials (the attention scores, value mixing and
//! residual ORs are timestep-local), so stepping with persistent
//! [`LifLayer`] state is **bit-identical** to the full-tensor pass — the
//! differential tests below pin that property.
//!
//! Between requests the stepper's state can be exported as a
//! [`ModelState`] (per-layer membrane potentials plus the accumulated
//! spike-count history the pooled classifier readout needs) and resumed
//! later — possibly on a different worker — with
//! [`TransformerStepper::resume`]. A session split across requests
//! therefore produces exactly the logits of one long request.

use bishop_neuron::LifLayer;
use bishop_spiketensor::{DenseMatrix, SpikeTensor, TensorShape};

use crate::parallel::ComputePool;
use crate::projection::{spike_matmul, spike_matmul_with};
use crate::ssa::{select_accumulate, SpikingSelfAttention};
use crate::transformer::SpikingTransformer;

/// Exported LIF membrane state of one encoder block (one vector per spike
/// generator, flattened `token`-major exactly as [`LifLayer`] steps them).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockState {
    /// Q-projection LIF membranes (`N·D`).
    pub wq: Vec<f32>,
    /// K-projection LIF membranes (`N·D`).
    pub wk: Vec<f32>,
    /// V-projection LIF membranes (`N·D`).
    pub wv: Vec<f32>,
    /// Attention-output (`O_temp`, Eq. 7) LIF membranes (`N·D`).
    pub o_temp: Vec<f32>,
    /// Output-projection LIF membranes (`N·D`).
    pub wo: Vec<f32>,
    /// MLP fc1 LIF membranes (`N·(r·D)`).
    pub fc1: Vec<f32>,
    /// MLP fc2 LIF membranes (`N·D`).
    pub fc2: Vec<f32>,
}

/// A parked model execution: every LIF membrane potential plus the
/// accumulated spike history the pooled classifier readout depends on.
///
/// This is the snapshot a session slot stores between requests. It is a
/// pure value (no handles into the model), so it can be checked into a
/// store, moved across workers, and resumed against any transformer with
/// the same architecture and weights.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelState {
    /// Tokenizer spike-generator membranes (`N·D`).
    pub tokenizer: Vec<f32>,
    /// Per-encoder-block LIF membranes.
    pub blocks: Vec<BlockState>,
    /// Per-feature spike counts of the final encoder output, summed over
    /// every executed timestep — the integer numerators of the pooled
    /// firing-rate readout (kept exact so a split run reproduces the
    /// single-run logits bit for bit).
    pub pooled_counts: Vec<u64>,
    /// Timesteps executed so far.
    pub timesteps_done: usize,
}

impl ModelState {
    /// Timesteps this state has accumulated.
    pub fn timesteps_done(&self) -> usize {
        self.timesteps_done
    }
}

/// What one executed timestep produced.
#[derive(Debug, Clone, PartialEq)]
pub struct StepOutcome {
    /// Index of the executed timestep (0-based, counting from the start of
    /// the session — a resumed stepper continues the count).
    pub timestep: usize,
    /// Spike count of the final encoder output plane at this timestep.
    pub spikes: usize,
}

/// The classifier readout over everything executed so far.
#[derive(Debug, Clone, PartialEq)]
pub struct PooledReadout {
    /// Per-class logits (mean pooled firing rate through the classifier).
    pub logits: Vec<f32>,
    /// Index of the highest logit.
    pub prediction: usize,
}

/// Per-block LIF layers of a live stepper.
#[derive(Debug)]
struct BlockLayers {
    wq: LifLayer,
    wk: LifLayer,
    wv: LifLayer,
    o_temp: LifLayer,
    wo: LifLayer,
    fc1: LifLayer,
    fc2: LifLayer,
}

/// Executes a [`SpikingTransformer`] one timestep at a time with
/// persistent, exportable LIF state.
#[derive(Debug)]
pub struct TransformerStepper<'a> {
    model: &'a SpikingTransformer,
    /// Tokenizer synaptic charge `patches · W` (`N × D`), fixed across
    /// timesteps under direct encoding.
    charge: DenseMatrix,
    tokenizer: LifLayer,
    blocks: Vec<BlockLayers>,
    pooled_counts: Vec<u64>,
    timesteps_done: usize,
    pool: ComputePool,
}

impl<'a> TransformerStepper<'a> {
    /// Starts a fresh execution (all membranes at the reset potential) for
    /// the given `N × P` patch input.
    ///
    /// # Panics
    ///
    /// Panics if the patch matrix has the wrong number of tokens or
    /// features for the model.
    pub fn new(model: &'a SpikingTransformer, patches: &DenseMatrix) -> Self {
        let config = model.config();
        assert_eq!(
            patches.rows(),
            config.tokens,
            "expected {} tokens, got {}",
            config.tokens,
            patches.rows()
        );
        let charge = patches.matmul(model.tokenizer().weight());
        let units = config.tokens * config.features;
        let hidden_units = config.tokens * config.mlp_hidden();
        let blocks = model
            .blocks()
            .iter()
            .map(|block| {
                let ssa = block.ssa();
                let mlp = block.mlp();
                BlockLayers {
                    wq: LifLayer::new(units, ssa.wq().lif_config()),
                    wk: LifLayer::new(units, ssa.wk().lif_config()),
                    wv: LifLayer::new(units, ssa.wv().lif_config()),
                    // Eq. 7: the O_temp LIF stage shares the Q projection's
                    // neuron configuration (matching `SpikingSelfAttention`).
                    o_temp: LifLayer::new(units, ssa.wq().lif_config()),
                    wo: LifLayer::new(units, ssa.wo().lif_config()),
                    fc1: LifLayer::new(hidden_units, mlp.fc1().lif_config()),
                    fc2: LifLayer::new(units, mlp.fc2().lif_config()),
                }
            })
            .collect();
        Self {
            model,
            charge,
            tokenizer: LifLayer::new(units, model.tokenizer().lif_config()),
            blocks,
            pooled_counts: vec![0; config.features],
            timesteps_done: 0,
            pool: ComputePool::sequential(),
        }
    }

    /// Attaches a compute pool: the Q/K/V integrations, the per-head
    /// score/select stage, and the projection matmuls of each step fan out
    /// across it. Stepping stays bit-for-bit identical to the sequential
    /// stepper (and therefore to the full-tensor pass) at any pool width.
    #[must_use]
    pub fn with_pool(mut self, pool: ComputePool) -> Self {
        self.pool = pool;
        self
    }

    /// Resumes a parked execution from an exported [`ModelState`].
    ///
    /// The patch input must be the same one the exporting stepper ran on
    /// (sessions pin their input seed for exactly this reason); the state's
    /// layer widths must match the model architecture.
    ///
    /// # Panics
    ///
    /// Panics if the state's dimensions do not match the model.
    pub fn resume(model: &'a SpikingTransformer, patches: &DenseMatrix, state: ModelState) -> Self {
        let config = model.config();
        let units = config.tokens * config.features;
        let hidden_units = config.tokens * config.mlp_hidden();
        assert_eq!(
            state.blocks.len(),
            model.blocks().len(),
            "state has {} block snapshots for a {}-block model",
            state.blocks.len(),
            model.blocks().len()
        );
        assert_eq!(
            state.tokenizer.len(),
            units,
            "tokenizer state width does not match the model"
        );
        assert_eq!(
            state.pooled_counts.len(),
            config.features,
            "pooled-count width does not match the model"
        );
        let mut stepper = Self::new(model, patches);
        stepper.tokenizer =
            LifLayer::from_potentials(model.tokenizer().lif_config(), state.tokenizer);
        for ((layers, snapshot), block) in stepper
            .blocks
            .iter_mut()
            .zip(state.blocks)
            .zip(model.blocks())
        {
            let ssa = block.ssa();
            let mlp = block.mlp();
            assert!(
                snapshot.wq.len() == units
                    && snapshot.wk.len() == units
                    && snapshot.wv.len() == units
                    && snapshot.o_temp.len() == units
                    && snapshot.wo.len() == units
                    && snapshot.fc1.len() == hidden_units
                    && snapshot.fc2.len() == units,
                "block state widths do not match the model"
            );
            layers.wq = LifLayer::from_potentials(ssa.wq().lif_config(), snapshot.wq);
            layers.wk = LifLayer::from_potentials(ssa.wk().lif_config(), snapshot.wk);
            layers.wv = LifLayer::from_potentials(ssa.wv().lif_config(), snapshot.wv);
            layers.o_temp = LifLayer::from_potentials(ssa.wq().lif_config(), snapshot.o_temp);
            layers.wo = LifLayer::from_potentials(ssa.wo().lif_config(), snapshot.wo);
            layers.fc1 = LifLayer::from_potentials(mlp.fc1().lif_config(), snapshot.fc1);
            layers.fc2 = LifLayer::from_potentials(mlp.fc2().lif_config(), snapshot.fc2);
        }
        stepper.pooled_counts = state.pooled_counts;
        stepper.timesteps_done = state.timesteps_done;
        stepper
    }

    /// Timesteps executed so far (including any resumed history).
    pub fn timesteps_done(&self) -> usize {
        self.timesteps_done
    }

    /// Executes one timestep through every layer, updating all membrane
    /// state and the pooled spike history.
    pub fn step(&mut self) -> StepOutcome {
        let config = self.model.config();
        let (tokens, features) = (config.tokens, config.features);
        let mut x = step_lif(&mut self.tokenizer, &self.charge);

        for (block, layers) in self.model.blocks().iter().zip(self.blocks.iter_mut()) {
            let ssa = block.ssa();
            let mlp = block.mlp();
            // The three Q/K/V synaptic integrations read the same input and
            // are independent, so they fan out as a triple; the LIF steps
            // stay on the caller (they mutate per-layer membrane state).
            let weights = [ssa.wq().weight(), ssa.wk().weight(), ssa.wv().weight()];
            let mut qkv = self
                .pool
                .run(3, |i| spike_matmul(&x, 0, weights[i]))
                .into_iter();
            let q = step_lif(&mut layers.wq, &qkv.next().expect("three integrations"));
            let k = step_lif(&mut layers.wk, &qkv.next().expect("three integrations"));
            let v = step_lif(&mut layers.wv, &qkv.next().expect("three integrations"));

            // One timestep of multi-head attention via the shared
            // score/select-accumulate kernels, accumulated in exactly the
            // order of `SpikingSelfAttention::forward` so the f32 sums match
            // the full-tensor pass bit for bit. Heads write disjoint feature
            // columns, so the parallel path computes per-head planes and
            // copies their exact bits into place.
            let head_dim = features / ssa.heads();
            let scale = 2.0_f32.powi(-(ssa.scale_shift() as i32));
            let mut head_output = DenseMatrix::zeros(tokens, features);
            if self.pool.is_parallel() {
                let partials = self.pool.run(ssa.heads(), |h| {
                    let d0 = h * head_dim;
                    let d1 = d0 + head_dim;
                    let s = SpikingSelfAttention::attention_scores_in(&q, &k, 0, d0, d1);
                    let mut partial = DenseMatrix::zeros(tokens, features);
                    select_accumulate(&mut partial, &s, scale, &v, 0, d0, d1);
                    partial
                });
                for (h, partial) in partials.iter().enumerate() {
                    let d0 = h * head_dim;
                    let d1 = d0 + head_dim;
                    for i in 0..tokens {
                        head_output.row_mut(i)[d0..d1].copy_from_slice(&partial.row(i)[d0..d1]);
                    }
                }
            } else {
                for h in 0..ssa.heads() {
                    let d0 = h * head_dim;
                    let d1 = d0 + head_dim;
                    let s = SpikingSelfAttention::attention_scores_in(&q, &k, 0, d0, d1);
                    select_accumulate(&mut head_output, &s, scale, &v, 0, d0, d1);
                }
            }
            let o_temp = step_lif(&mut layers.o_temp, &head_output);
            let ssa_out = step_lif(
                &mut layers.wo,
                &spike_matmul_with(&o_temp, 0, ssa.wo().weight(), &self.pool),
            );
            let mlp_input = x
                .or(&ssa_out)
                .expect("SSA output shape matches its input shape");
            let hidden = step_lif(
                &mut layers.fc1,
                &spike_matmul_with(&mlp_input, 0, mlp.fc1().weight(), &self.pool),
            );
            let mlp_out = step_lif(
                &mut layers.fc2,
                &spike_matmul_with(&hidden, 0, mlp.fc2().weight(), &self.pool),
            );
            x = mlp_input
                .or(&mlp_out)
                .expect("MLP output shape matches its input shape");
        }

        let spikes = x.count_ones();
        for (slot, count) in self.pooled_counts.iter_mut().zip(x.per_feature_counts()) {
            *slot += count as u64;
        }
        self.timesteps_done += 1;
        StepOutcome {
            timestep: self.timesteps_done - 1,
            spikes,
        }
    }

    /// Exports the full LIF state and pooled history (the stepper remains
    /// usable).
    pub fn export(&self) -> ModelState {
        ModelState {
            tokenizer: self.tokenizer.membrane_potentials().to_vec(),
            blocks: self
                .blocks
                .iter()
                .map(|layers| BlockState {
                    wq: layers.wq.membrane_potentials().to_vec(),
                    wk: layers.wk.membrane_potentials().to_vec(),
                    wv: layers.wv.membrane_potentials().to_vec(),
                    o_temp: layers.o_temp.membrane_potentials().to_vec(),
                    wo: layers.wo.membrane_potentials().to_vec(),
                    fc1: layers.fc1.membrane_potentials().to_vec(),
                    fc2: layers.fc2.membrane_potentials().to_vec(),
                })
                .collect(),
            pooled_counts: self.pooled_counts.clone(),
            timesteps_done: self.timesteps_done,
        }
    }

    /// The classifier readout over every timestep executed so far: the
    /// pooled mean firing rate through the classification head, exactly as
    /// [`SpikingTransformer::infer`] computes it over a full tensor.
    ///
    /// # Panics
    ///
    /// Panics if no timestep has been executed yet.
    pub fn finish(&self) -> PooledReadout {
        assert!(
            self.timesteps_done > 0,
            "readout needs at least one executed timestep"
        );
        let config = self.model.config();
        let denom = (self.timesteps_done * config.tokens) as f32;
        let pooled: Vec<f32> = self
            .pooled_counts
            .iter()
            .map(|&c| c as f32 / denom)
            .collect();
        let pooled_matrix = DenseMatrix::from_rows(&[pooled]);
        let logits_matrix = pooled_matrix.matmul(self.model.classifier());
        let logits: Vec<f32> = logits_matrix.row(0).to_vec();
        let prediction = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("logits are finite"))
            .map(|(i, _)| i)
            .unwrap_or(0);
        PooledReadout { logits, prediction }
    }
}

/// Steps one LIF layer on a dense `N × D` synaptic-integration plane and
/// packs the firing vector into a 1-timestep spike tensor. Flattening is
/// token-major, matching `lif_over_time`'s neuron layout exactly.
fn step_lif(layer: &mut LifLayer, integration: &DenseMatrix) -> SpikeTensor {
    let (tokens, features) = (integration.rows(), integration.cols());
    let mut flat = vec![0.0f32; tokens * features];
    for n in 0..tokens {
        for d in 0..features {
            flat[n * features + d] = integration.get(n, d);
        }
    }
    let fired = layer.step(&flat);
    let mut plane = SpikeTensor::zeros(TensorShape::new(1, tokens, features));
    for n in 0..tokens {
        for d in 0..features {
            if fired[n * features + d] {
                plane.set(0, n, d, true);
            }
        }
    }
    plane
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetKind, ModelConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model_and_patches(seed: u64) -> (SpikingTransformer, DenseMatrix) {
        let config = ModelConfig::new("stepper", DatasetKind::Cifar10, 2, 4, 8, 16, 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let model = SpikingTransformer::random(&config, 16, 10, &mut rng);
        let patches = DenseMatrix::random_uniform(config.tokens, 16, 1.0, &mut rng);
        (model, patches)
    }

    #[test]
    fn stepping_matches_full_tensor_inference_bit_for_bit() {
        let (model, patches) = model_and_patches(41);
        let reference = model.infer(&patches);
        let mut stepper = TransformerStepper::new(&model, &patches);
        let timesteps = model.config().timesteps;
        let mut spikes_per_step = Vec::new();
        for t in 0..timesteps {
            let outcome = stepper.step();
            assert_eq!(outcome.timestep, t);
            spikes_per_step.push(outcome.spikes);
        }
        let readout = stepper.finish();
        assert_eq!(
            readout.logits, reference.logits,
            "logits must be bit-identical"
        );
        assert_eq!(readout.prediction, reference.prediction);
        // The per-step spike counts are the per-timestep slices of the full
        // pass's final encoder output.
        let final_spikes = &reference.final_spikes;
        for (t, &spikes) in spikes_per_step.iter().enumerate() {
            let shape = final_spikes.shape();
            let expected = (0..shape.tokens)
                .map(|n| final_spikes.row_words(t, n).count_ones())
                .sum::<usize>();
            assert_eq!(spikes, expected, "timestep {t} spike count");
        }
    }

    #[test]
    fn export_resume_split_is_bit_identical_to_one_long_run() {
        let (model, patches) = model_and_patches(42);
        let timesteps = model.config().timesteps;

        let mut single = TransformerStepper::new(&model, &patches);
        for _ in 0..timesteps {
            single.step();
        }

        // Split after every possible prefix length, including resuming the
        // export of a zero-step stepper.
        for split in 0..timesteps {
            let mut first = TransformerStepper::new(&model, &patches);
            for _ in 0..split {
                first.step();
            }
            let parked = first.export();
            assert_eq!(parked.timesteps_done, split);
            let mut second = TransformerStepper::resume(&model, &patches, parked);
            for _ in split..timesteps {
                second.step();
            }
            assert_eq!(second.timesteps_done(), timesteps);
            assert_eq!(
                second.finish(),
                single.finish(),
                "split at {split} diverged from the single run"
            );
            assert_eq!(second.export(), single.export());
        }
    }

    #[test]
    fn resumed_state_matches_full_inference_too() {
        let (model, patches) = model_and_patches(43);
        let reference = model.infer(&patches);
        let mut first = TransformerStepper::new(&model, &patches);
        first.step();
        first.step();
        let mut second = TransformerStepper::resume(&model, &patches, first.export());
        second.step();
        second.step();
        assert_eq!(second.finish().logits, reference.logits);
    }

    #[test]
    #[should_panic(expected = "expected 8 tokens")]
    fn wrong_patch_tokens_are_rejected() {
        let (model, _) = model_and_patches(44);
        TransformerStepper::new(&model, &DenseMatrix::zeros(3, 16));
    }

    #[test]
    #[should_panic(expected = "block state widths")]
    fn mismatched_state_is_rejected() {
        let (model, patches) = model_and_patches(45);
        let mut state = TransformerStepper::new(&model, &patches).export();
        state.blocks[0].wq.pop();
        TransformerStepper::resume(&model, &patches, state);
    }

    #[test]
    #[should_panic(expected = "at least one executed timestep")]
    fn readout_requires_progress() {
        let (model, patches) = model_and_patches(46);
        TransformerStepper::new(&model, &patches).finish();
    }
}
