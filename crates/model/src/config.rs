//! Model architecture configurations (Table 2 of the paper).

use std::fmt;

use bishop_spiketensor::TensorShape;

/// The dataset a spiking transformer model targets.
///
/// Only the *workload shape and statistics* of the datasets matter to the
/// accelerator evaluation; the datasets themselves are substituted by
/// synthetic generators (see `DESIGN.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// CIFAR-10 (32×32 static images, 10 classes).
    Cifar10,
    /// CIFAR-100 (32×32 static images, 100 classes).
    Cifar100,
    /// ImageNet-100 (224×224 static images, 100 classes).
    ImageNet100,
    /// DVS-Gesture-128 (128×128 event streams, 11 classes).
    DvsGesture,
    /// Google Speech Commands V2 (1 s audio snippets, 35 keywords).
    GoogleSpeechCommands,
}

impl DatasetKind {
    /// All datasets used in the paper's evaluation, in Model 1..5 order.
    pub fn all() -> [DatasetKind; 5] {
        [
            DatasetKind::Cifar10,
            DatasetKind::Cifar100,
            DatasetKind::ImageNet100,
            DatasetKind::DvsGesture,
            DatasetKind::GoogleSpeechCommands,
        ]
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        match self {
            DatasetKind::Cifar10 => 10,
            DatasetKind::Cifar100 => 100,
            DatasetKind::ImageNet100 => 100,
            DatasetKind::DvsGesture => 11,
            DatasetKind::GoogleSpeechCommands => 35,
        }
    }

    /// Whether the input is natively event-based (spiking) rather than a
    /// static frame.
    pub fn is_event_based(&self) -> bool {
        matches!(self, DatasetKind::DvsGesture)
    }
}

impl fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DatasetKind::Cifar10 => "CIFAR10",
            DatasetKind::Cifar100 => "CIFAR100",
            DatasetKind::ImageNet100 => "ImageNet-100",
            DatasetKind::DvsGesture => "DVS-Gesture",
            DatasetKind::GoogleSpeechCommands => "Google SC",
        };
        f.write_str(name)
    }
}

/// Architecture hyper-parameters of a spiking transformer (Table 2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelConfig {
    /// Human-readable model name ("Model 1" … "Model 5" for the paper's
    /// configurations).
    pub name: String,
    /// Target dataset.
    pub dataset: DatasetKind,
    /// Number of encoder blocks `L` (the paper's `B` column).
    pub blocks: usize,
    /// Number of timesteps `T`.
    pub timesteps: usize,
    /// Number of tokens `N`.
    pub tokens: usize,
    /// Embedding feature dimension `D`.
    pub features: usize,
    /// Number of attention heads `H`.
    pub heads: usize,
    /// MLP hidden expansion ratio (hidden dim = ratio × D).
    pub mlp_ratio: usize,
    /// Weight precision in bits (the paper assumes multi-bit, typically
    /// 8-bit, weights).
    pub weight_bits: usize,
    /// log2 of the power-of-two attention scaling factor `s` in Eq. 6
    /// (`score * 2^-scale_shift`), implemented as a bit shift in hardware.
    pub scale_shift: u32,
}

impl ModelConfig {
    /// Builds a custom configuration.
    ///
    /// # Panics
    ///
    /// Panics if any structural dimension is zero or `heads` does not divide
    /// `features`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        dataset: DatasetKind,
        blocks: usize,
        timesteps: usize,
        tokens: usize,
        features: usize,
        heads: usize,
    ) -> Self {
        assert!(
            blocks > 0 && timesteps > 0 && tokens > 0 && features > 0 && heads > 0,
            "model dimensions must be non-zero"
        );
        assert_eq!(
            features % heads,
            0,
            "feature dimension {features} must be divisible by {heads} heads"
        );
        Self {
            name: name.into(),
            dataset,
            blocks,
            timesteps,
            tokens,
            features,
            heads,
            mlp_ratio: 4,
            weight_bits: 8,
            scale_shift: (features / heads).ilog2() / 2,
        }
    }

    /// Model 1: CIFAR-10 — 4 blocks, T=10, N=64, D=384.
    pub fn model1_cifar10() -> Self {
        Self::new("Model 1", DatasetKind::Cifar10, 4, 10, 64, 384, 8)
    }

    /// Model 2: CIFAR-100 — 4 blocks, T=8, N=64, D=384.
    pub fn model2_cifar100() -> Self {
        Self::new("Model 2", DatasetKind::Cifar100, 4, 8, 64, 384, 8)
    }

    /// Model 3: ImageNet-100 — 8 blocks, T=4, N=196, D=128.
    pub fn model3_imagenet100() -> Self {
        Self::new("Model 3", DatasetKind::ImageNet100, 8, 4, 196, 128, 8)
    }

    /// Model 4: DVS-Gesture — 2 blocks, T=20, N=64, D=128.
    pub fn model4_dvs_gesture() -> Self {
        Self::new("Model 4", DatasetKind::DvsGesture, 2, 20, 64, 128, 8)
    }

    /// Model 5: Google Speech Commands — 4 blocks, T=8, N=256, D=384.
    pub fn model5_google_sc() -> Self {
        Self::new(
            "Model 5",
            DatasetKind::GoogleSpeechCommands,
            4,
            8,
            256,
            384,
            8,
        )
    }

    /// The five paper configurations in order (Table 2).
    pub fn paper_models() -> Vec<ModelConfig> {
        vec![
            Self::model1_cifar10(),
            Self::model2_cifar100(),
            Self::model3_imagenet100(),
            Self::model4_dvs_gesture(),
            Self::model5_google_sc(),
        ]
    }

    /// Overrides the model name (used by derived configurations, e.g. the
    /// serving runtime's batched variants).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Overrides the token count `N`, keeping every other hyper-parameter.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is zero.
    pub fn with_tokens(mut self, tokens: usize) -> Self {
        assert!(tokens > 0, "token count must be non-zero");
        self.tokens = tokens;
        self
    }

    /// Overrides the timestep count `T`, keeping every other hyper-parameter.
    ///
    /// The serving runtime folds the batch dimension into the timestep axis:
    /// spiking self-attention is computed independently per timestep
    /// (`S_t = Q_t·K_tᵀ`), so `B` requests of `T` timesteps are exactly one
    /// workload of `B·T` timesteps — every layer's operation count is linear
    /// in `T`, while per-layer weight streaming and pipeline overhead are
    /// paid once per batch. A batched workload is therefore described by the
    /// same configuration with a scaled timestep count (rounded up to the
    /// Token-Time-Bundle timestep multiple).
    ///
    /// # Panics
    ///
    /// Panics if `timesteps` is zero.
    pub fn with_timesteps(mut self, timesteps: usize) -> Self {
        assert!(timesteps > 0, "timestep count must be non-zero");
        self.timesteps = timesteps;
        self
    }

    /// Overrides the MLP expansion ratio.
    pub fn with_mlp_ratio(mut self, ratio: usize) -> Self {
        assert!(ratio > 0, "MLP ratio must be non-zero");
        self.mlp_ratio = ratio;
        self
    }

    /// Overrides the weight precision.
    pub fn with_weight_bits(mut self, bits: usize) -> Self {
        assert!(bits > 0 && bits <= 32, "weight bits must be in 1..=32");
        self.weight_bits = bits;
        self
    }

    /// Shape of the activation tensors flowing between blocks.
    pub fn activation_shape(&self) -> TensorShape {
        TensorShape::new(self.timesteps, self.tokens, self.features)
    }

    /// Feature dimension of a single attention head.
    pub fn head_features(&self) -> usize {
        self.features / self.heads
    }

    /// MLP hidden dimension.
    pub fn mlp_hidden(&self) -> usize {
        self.mlp_ratio * self.features
    }

    /// Whether attention complexity dominates the MLP/projection complexity
    /// (the paper's `N ≫ D` vs `D ≫ N` discussion in §2.2).
    pub fn attention_dominated(&self) -> bool {
        self.tokens > self.features
    }

    /// Total number of weight parameters in MLP + projection layers across
    /// all blocks (tokenizer and classifier head excluded).
    pub fn encoder_parameter_count(&self) -> usize {
        let d = self.features;
        let per_block_projections = 4 * d * d;
        let per_block_mlp = 2 * d * self.mlp_hidden();
        self.blocks * (per_block_projections + per_block_mlp)
    }
}

impl fmt::Display for ModelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}: B={}, T={}, N={}, D={}, H={})",
            self.name,
            self.dataset,
            self.blocks,
            self.timesteps,
            self.tokens,
            self.features,
            self.heads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shapes_match_paper() {
        let m1 = ModelConfig::model1_cifar10();
        assert_eq!(
            (m1.blocks, m1.timesteps, m1.tokens, m1.features),
            (4, 10, 64, 384)
        );
        let m2 = ModelConfig::model2_cifar100();
        assert_eq!(
            (m2.blocks, m2.timesteps, m2.tokens, m2.features),
            (4, 8, 64, 384)
        );
        let m3 = ModelConfig::model3_imagenet100();
        assert_eq!(
            (m3.blocks, m3.timesteps, m3.tokens, m3.features),
            (8, 4, 196, 128)
        );
        let m4 = ModelConfig::model4_dvs_gesture();
        assert_eq!(
            (m4.blocks, m4.timesteps, m4.tokens, m4.features),
            (2, 20, 64, 128)
        );
        let m5 = ModelConfig::model5_google_sc();
        assert_eq!(
            (m5.blocks, m5.timesteps, m5.tokens, m5.features),
            (4, 8, 256, 384)
        );
    }

    #[test]
    fn attention_domination_matches_shape() {
        // D >> N for CIFAR models, so MLP/projection dominate.
        assert!(!ModelConfig::model1_cifar10().attention_dominated());
        // N > D for ImageNet-100, so attention dominates.
        assert!(ModelConfig::model3_imagenet100().attention_dominated());
    }

    #[test]
    fn head_features_divide_evenly() {
        for model in ModelConfig::paper_models() {
            assert_eq!(model.head_features() * model.heads, model.features);
        }
    }

    #[test]
    fn activation_shape_matches_dimensions() {
        let m = ModelConfig::model3_imagenet100();
        let shape = m.activation_shape();
        assert_eq!(shape.timesteps, 4);
        assert_eq!(shape.tokens, 196);
        assert_eq!(shape.features, 128);
    }

    #[test]
    fn parameter_count_formula() {
        let m = ModelConfig::model4_dvs_gesture();
        // 2 blocks x (4*128*128 + 2*128*512)
        assert_eq!(
            m.encoder_parameter_count(),
            2 * (4 * 128 * 128 + 2 * 128 * 512)
        );
    }

    #[test]
    fn builders_override_fields() {
        let m = ModelConfig::model1_cifar10()
            .with_mlp_ratio(2)
            .with_weight_bits(4);
        assert_eq!(m.mlp_hidden(), 768);
        assert_eq!(m.weight_bits, 4);
    }

    #[test]
    fn dataset_metadata() {
        assert_eq!(DatasetKind::Cifar100.classes(), 100);
        assert!(DatasetKind::DvsGesture.is_event_based());
        assert!(!DatasetKind::Cifar10.is_event_based());
        assert_eq!(DatasetKind::all().len(), 5);
        assert_eq!(format!("{}", DatasetKind::ImageNet100), "ImageNet-100");
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn heads_must_divide_features() {
        ModelConfig::new("bad", DatasetKind::Cifar10, 1, 1, 4, 10, 3);
    }

    #[test]
    fn display_contains_key_dimensions() {
        let text = format!("{}", ModelConfig::model5_google_sc());
        assert!(text.contains("N=256"));
        assert!(text.contains("Google SC"));
    }
}
