//! Multi-head Spiking Self-Attention (SSA), Eq. 3–8 of the paper.

use bishop_neuron::{lif_over_time, LifConfig};
use bishop_spiketensor::words::simd;
use bishop_spiketensor::{DenseMatrix, SpikeTensor, TensorShape};
use rand::Rng;

use crate::parallel::ComputePool;
use crate::projection::SpikingLinear;

/// The SSA `S·V` select-accumulate for one head and one timestep:
/// `head_output[i, d0+d] += S[i, j]·scale` for every token pair `(i, j)`
/// with a non-zero scaled score and every set bit `d` of V's `(t, j)` head
/// sub-row.
///
/// The V sub-row's logical words are materialised once per `j` and each
/// destination row then takes one spike-masked SIMD `masked_add` — blend
/// semantics, so lanes whose V bit is clear keep their exact bit pattern and
/// the result stays bit-for-bit identical to
/// [`select_accumulate_reference`].
///
/// # Panics
///
/// Panics if `s` is not `tokens × tokens` or the feature range is out of
/// bounds for `v`.
pub fn select_accumulate(
    head_output: &mut DenseMatrix,
    s: &DenseMatrix,
    scale: f32,
    v: &SpikeTensor,
    t: usize,
    d0: usize,
    d1: usize,
) {
    let tokens = v.shape().tokens;
    assert_eq!(s.rows(), tokens, "score rows must equal token count");
    assert_eq!(s.cols(), tokens, "score cols must equal token count");
    let kernels = simd::active();
    let mut v_bits: Vec<u64> = Vec::with_capacity((d1 - d0).div_ceil(64));
    for j in 0..tokens {
        let v_row = v.row_feature_slice(t, j, d0, d1);
        v_bits.clear();
        v_bits.extend((0..v_row.word_count()).map(|i| v_row.word(i)));
        if v_bits.iter().all(|&w| w == 0) {
            continue;
        }
        for i in 0..tokens {
            let weight = s.get(i, j) * scale;
            if weight == 0.0 {
                continue;
            }
            kernels.masked_add(&mut head_output.row_mut(i)[d0..d1], &v_bits, weight);
        }
    }
}

/// Scalar reference implementation of [`select_accumulate`] (per-set-bit
/// accumulation), kept for differential testing of the spike-masked SIMD
/// kernel.
pub fn select_accumulate_reference(
    head_output: &mut DenseMatrix,
    s: &DenseMatrix,
    scale: f32,
    v: &SpikeTensor,
    t: usize,
    d0: usize,
    d1: usize,
) {
    let tokens = v.shape().tokens;
    assert_eq!(s.rows(), tokens, "score rows must equal token count");
    assert_eq!(s.cols(), tokens, "score cols must equal token count");
    for j in 0..tokens {
        let v_row = v.row_feature_slice(t, j, d0, d1);
        if v_row.count_ones() == 0 {
            continue;
        }
        for i in 0..tokens {
            let weight = s.get(i, j) * scale;
            if weight == 0.0 {
                continue;
            }
            for d in v_row.iter_set_bits() {
                head_output.add_assign(i, d0 + d, weight);
            }
        }
    }
}

/// Output bundle of an SSA block forward pass.
///
/// Besides the block output it exposes the intermediate binary tensors the
/// accelerator operates on (Q/K/V, the spiking attention output before the
/// final projection), because those are exactly the operands the Bishop
/// attention core loads, the ECP algorithm prunes, and the workload builder
/// captures.
#[derive(Debug, Clone, PartialEq)]
pub struct SsaOutput {
    /// Spiking queries (all heads concatenated), `T × N × D`.
    pub q: SpikeTensor,
    /// Spiking keys, `T × N × D`.
    pub k: SpikeTensor,
    /// Spiking values, `T × N × D`.
    pub v: SpikeTensor,
    /// Binary attention activations `O_temp = LIF(concat(S·V))`, `T × N × D`
    /// (Eq. 7).
    pub o_temp: SpikeTensor,
    /// Block output after the final projection `W_O` and its LIF stage,
    /// `T × N × D`.
    pub output: SpikeTensor,
    /// Integer attention score matrices, indexed `[head][timestep]`, each
    /// `N × N`. Scores are *unscaled* accumulations of AND operations; the
    /// power-of-two scaling is applied when computing `Y`.
    pub scores: Vec<Vec<DenseMatrix>>,
}

impl SsaOutput {
    /// Maximum attention score observed across all heads/timesteps; bounded
    /// by the per-head feature count because Q/K are binary (this is the
    /// property ECP's error bound builds on).
    pub fn max_score(&self) -> f32 {
        self.scores
            .iter()
            .flatten()
            .map(|m| m.as_slice().iter().cloned().fold(0.0, f32::max))
            .fold(0.0, f32::max)
    }
}

/// A multi-head spiking self-attention block.
///
/// The computation follows Eq. 3–8: Q/K/V are produced by spiking linear
/// layers; per head and per timestep the integer score matrix `S = Q·Kᵀ` is
/// computed from binary operands (AND + accumulate in hardware), scaled by a
/// power of two, multiplied with the binary `V` (select + accumulate), the
/// head outputs are concatenated and passed through an LIF layer *before*
/// the final projection `W_O` (the re-ordering relative to Spikformer that
/// keeps the final projection multiplication-free).
#[derive(Debug, Clone, PartialEq)]
pub struct SpikingSelfAttention {
    heads: usize,
    scale_shift: u32,
    wq: SpikingLinear,
    wk: SpikingLinear,
    wv: SpikingLinear,
    wo: SpikingLinear,
}

impl SpikingSelfAttention {
    /// Creates an SSA block with random weights.
    ///
    /// # Panics
    ///
    /// Panics if `heads` does not divide `features`.
    pub fn random<R: Rng>(
        features: usize,
        heads: usize,
        scale_shift: u32,
        lif: LifConfig,
        rng: &mut R,
    ) -> Self {
        assert!(
            heads > 0 && features.is_multiple_of(heads),
            "heads must divide features"
        );
        let scale = 1.0 / (features as f32).sqrt();
        Self {
            heads,
            scale_shift,
            wq: SpikingLinear::random(features, features, scale, lif, rng),
            wk: SpikingLinear::random(features, features, scale, lif, rng),
            wv: SpikingLinear::random(features, features, scale, lif, rng),
            wo: SpikingLinear::random(features, features, scale, lif, rng),
        }
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// The power-of-two scaling exponent applied to attention scores.
    pub fn scale_shift(&self) -> u32 {
        self.scale_shift
    }

    /// The Q projection layer.
    pub fn wq(&self) -> &SpikingLinear {
        &self.wq
    }

    /// The K projection layer.
    pub fn wk(&self) -> &SpikingLinear {
        &self.wk
    }

    /// The V projection layer.
    pub fn wv(&self) -> &SpikingLinear {
        &self.wv
    }

    /// The output projection layer.
    pub fn wo(&self) -> &SpikingLinear {
        &self.wo
    }

    /// Computes the integer attention scores `S = Q·Kᵀ` for one head and one
    /// timestep from binary operands.
    ///
    /// Word-parallel: each score is an AND + popcount over the packed
    /// feature-row words of the Q and K tokens (~64 feature positions per
    /// instruction). Bit-for-bit identical to
    /// [`SpikingSelfAttention::attention_scores_reference`].
    pub fn attention_scores(q: &SpikeTensor, k: &SpikeTensor, t: usize) -> DenseMatrix {
        assert_eq!(q.shape(), k.shape(), "Q and K must have identical shapes");
        let shape = q.shape();
        Self::attention_scores_in(q, k, t, 0, shape.features)
    }

    /// Word-parallel attention scores restricted to the feature range
    /// `d_start..d_end` (one head's features), without materialising head
    /// slices: operand rows are zero-copy [`bishop_spiketensor::RowBits`]
    /// sub-row views.
    pub fn attention_scores_in(
        q: &SpikeTensor,
        k: &SpikeTensor,
        t: usize,
        d_start: usize,
        d_end: usize,
    ) -> DenseMatrix {
        assert_eq!(q.shape(), k.shape(), "Q and K must have identical shapes");
        let tokens = q.shape().tokens;
        let q_rows: Vec<_> = (0..tokens)
            .map(|i| q.row_feature_slice(t, i, d_start, d_end))
            .collect();
        let k_rows: Vec<_> = (0..tokens)
            .map(|j| k.row_feature_slice(t, j, d_start, d_end))
            .collect();
        let mut s = DenseMatrix::zeros(tokens, tokens);

        // Word-aligned feature range (the whole-tensor case whenever
        // `D % 64 == 0`): every row pairs with every other row, so hoist
        // the logical-word assembly and the dispatch-table lookup out of
        // the `tokens²` pair loop and AND+popcount the raw packed words.
        let q_aligned: Option<Vec<&[u64]>> = q_rows.iter().map(|r| r.aligned_words()).collect();
        let k_aligned: Option<Vec<&[u64]>> = k_rows.iter().map(|r| r.aligned_words()).collect();
        if let (Some(q_words), Some(k_words)) = (q_aligned, k_aligned) {
            let kernels = simd::active();
            let long = (d_end - d_start) / 64 >= simd::DISPATCH_MIN_WORDS;
            for (i, qi) in q_words.iter().enumerate() {
                let out_row = s.row_mut(i);
                for (j, kj) in k_words.iter().enumerate() {
                    let overlap = if long {
                        kernels.and_popcount(qi, kj) as u32
                    } else {
                        qi.iter()
                            .zip(kj.iter())
                            .map(|(a, b)| (a & b).count_ones())
                            .sum()
                    };
                    if overlap > 0 {
                        out_row[j] = overlap as f32;
                    }
                }
            }
            return s;
        }

        for (i, q_row) in q_rows.iter().enumerate() {
            let out_row = s.row_mut(i);
            for (j, k_row) in k_rows.iter().enumerate() {
                let overlap = q_row.dot(k_row);
                if overlap > 0 {
                    out_row[j] = overlap as f32;
                }
            }
        }
        s
    }

    /// Scalar reference implementation of
    /// [`SpikingSelfAttention::attention_scores`], kept for differential
    /// testing and the before/after kernel benchmarks.
    pub fn attention_scores_reference(q: &SpikeTensor, k: &SpikeTensor, t: usize) -> DenseMatrix {
        assert_eq!(q.shape(), k.shape(), "Q and K must have identical shapes");
        let shape = q.shape();
        let mut s = DenseMatrix::zeros(shape.tokens, shape.tokens);
        for i in 0..shape.tokens {
            for j in 0..shape.tokens {
                let mut acc = 0.0;
                for d in 0..shape.features {
                    // Binary AND of q[i,d] and k[j,d], accumulated.
                    if q.get(t, i, d) && k.get(t, j, d) {
                        acc += 1.0;
                    }
                }
                s.set(i, j, acc);
            }
        }
        s
    }

    /// Full forward pass of the SSA block.
    pub fn forward(&self, x: &SpikeTensor) -> SsaOutput {
        self.forward_with(x, &ComputePool::sequential())
    }

    /// Pool-parallel [`SpikingSelfAttention::forward`].
    ///
    /// The score + select-accumulate stage fans out over *timesteps*: each
    /// task computes every head's `S` matrix (ascending head order) and the
    /// full concatenated head-output plane for its timestep. Heads write
    /// disjoint feature columns and timesteps are independent before the
    /// `O_temp` LIF stage, so any pool width produces bit-for-bit the same
    /// activations as the sequential pass.
    pub fn forward_with(&self, x: &SpikeTensor, pool: &ComputePool) -> SsaOutput {
        let shape = x.shape();
        let q = self.wq.forward_with(x, pool);
        let k = self.wk.forward_with(x, pool);
        let v = self.wv.forward_with(x, pool);

        let head_dim = shape.features / self.heads;
        let scale = 2.0_f32.powi(-(self.scale_shift as i32));
        let heads = self.heads;

        let per_timestep = pool.run(shape.timesteps, |t| {
            // Synaptic input to the O_temp LIF layer: concatenated head
            // outputs for this timestep.
            let mut head_output = DenseMatrix::zeros(shape.tokens, shape.features);
            let mut timestep_scores = Vec::with_capacity(heads);
            for h in 0..heads {
                let d0 = h * head_dim;
                let d1 = d0 + head_dim;
                // Q/K/V head sub-rows are zero-copy word views; no
                // head_slice copies on the hot path.
                let s = Self::attention_scores_in(&q, &k, t, d0, d1);
                // Y[t] = (S · s) · V[t]  — V is binary, so this is the
                // spike-masked select-accumulate kernel.
                select_accumulate(&mut head_output, &s, scale, &v, t, d0, d1);
                timestep_scores.push(s);
            }
            (timestep_scores, head_output)
        });

        let mut scores: Vec<Vec<DenseMatrix>> = (0..heads)
            .map(|_| Vec::with_capacity(shape.timesteps))
            .collect();
        let mut head_outputs: Vec<DenseMatrix> = Vec::with_capacity(shape.timesteps);
        for (timestep_scores, head_output) in per_timestep {
            for (h, s) in timestep_scores.into_iter().enumerate() {
                scores[h].push(s);
            }
            head_outputs.push(head_output);
        }

        // Eq. 7: LIF over the concatenated head outputs.
        let o_temp = lif_over_time(&head_outputs, self.wq.lif_config());
        // Eq. 8 + re-binarisation by the next stage's spike generator.
        let output = self.wo.forward_with(&o_temp, pool);

        SsaOutput {
            q,
            k,
            v,
            o_temp,
            output,
            scores,
        }
    }

    /// Shape of the activations this block expects, given a token count and
    /// timestep count.
    pub fn expected_shape(&self, timesteps: usize, tokens: usize) -> TensorShape {
        TensorShape::new(timesteps, tokens, self.wq.in_features())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn block(features: usize, heads: usize) -> SpikingSelfAttention {
        let mut rng = StdRng::seed_from_u64(5);
        SpikingSelfAttention::random(features, heads, 2, LifConfig::default(), &mut rng)
    }

    #[test]
    fn attention_scores_count_common_active_features() {
        let shape = TensorShape::new(1, 2, 4);
        let q = SpikeTensor::from_fn(shape, |_, n, d| n == 0 && d < 3);
        let k = SpikeTensor::from_fn(shape, |_, n, d| n == 1 && d >= 1);
        let s = SpikingSelfAttention::attention_scores(&q, &k, 0);
        // q token 0 active on {0,1,2}; k token 1 active on {1,2,3} -> overlap 2.
        assert_eq!(s.get(0, 1), 2.0);
        assert_eq!(s.get(0, 0), 0.0);
        assert_eq!(s.get(1, 0), 0.0);
        assert_eq!(s.get(1, 1), 0.0);
    }

    #[test]
    fn scores_are_bounded_by_head_features() {
        let ssa = block(16, 4);
        let shape = TensorShape::new(2, 6, 16);
        let x = SpikeTensor::ones(shape);
        let out = ssa.forward(&x);
        // Per-head feature count is 4, so no score can exceed 4.
        assert!(out.max_score() <= 4.0);
    }

    #[test]
    fn forward_shapes_are_consistent() {
        let ssa = block(8, 2);
        let shape = TensorShape::new(3, 5, 8);
        let x = SpikeTensor::from_fn(shape, |t, n, d| (t + n + d) % 2 == 0);
        let out = ssa.forward(&x);
        assert_eq!(out.q.shape(), shape);
        assert_eq!(out.k.shape(), shape);
        assert_eq!(out.v.shape(), shape);
        assert_eq!(out.o_temp.shape(), shape);
        assert_eq!(out.output.shape(), shape);
        assert_eq!(out.scores.len(), 2);
        assert_eq!(out.scores[0].len(), 3);
        assert_eq!(out.scores[0][0].rows(), 5);
    }

    #[test]
    fn empty_input_produces_empty_attention() {
        let ssa = block(8, 2);
        let x = SpikeTensor::zeros(TensorShape::new(2, 4, 8));
        let out = ssa.forward(&x);
        assert_eq!(out.q.count_ones(), 0);
        assert_eq!(out.k.count_ones(), 0);
        assert_eq!(out.o_temp.count_ones(), 0);
        assert_eq!(out.max_score(), 0.0);
    }

    #[test]
    fn all_outputs_are_binary_tensors() {
        // By construction SpikeTensor is binary; this checks the densities
        // are sane (not everything fires).
        let ssa = block(16, 4);
        let shape = TensorShape::new(2, 8, 16);
        let x = SpikeTensor::from_fn(shape, |t, n, d| (t * 31 + n * 17 + d * 7) % 5 == 0);
        let out = ssa.forward(&x);
        assert!(out.output.density() <= 1.0);
        assert!(out.q.density() <= 1.0);
    }

    #[test]
    fn expected_shape_uses_projection_width() {
        let ssa = block(8, 2);
        assert_eq!(ssa.expected_shape(4, 10), TensorShape::new(4, 10, 8));
        assert_eq!(ssa.heads(), 2);
        assert_eq!(ssa.scale_shift(), 2);
    }

    #[test]
    #[should_panic(expected = "heads must divide features")]
    fn heads_must_divide_features() {
        let mut rng = StdRng::seed_from_u64(1);
        SpikingSelfAttention::random(10, 3, 1, LifConfig::default(), &mut rng);
    }
}
