//! Intra-batch compute pool: fans independent units of work (timesteps,
//! heads, token-row chunks) across OS threads with a deterministic,
//! index-ordered fan-in.
//!
//! The pool is deliberately minimal — scoped `std` threads, no external
//! dependencies, no work stealing. Each [`ComputePool::run`] call splits the
//! task index range into at most `width` contiguous chunks; chunk 0 runs
//! inline on the calling thread and the rest on scoped worker threads.
//! Results are written into per-task slots by index, so the returned vector
//! is always in task order regardless of which thread finished first: a
//! parallel run is **bit-for-bit identical** to a sequential one provided
//! each task is independent (the caller's contract).
//!
//! With `width <= 1` (the default on single-core hosts) every `run` executes
//! inline with no thread machinery at all, so enabling the pool on a small
//! box is behaviourally free.

use std::num::NonZeroUsize;
use std::sync::Arc;

/// Observer hook for pool worker activity.
///
/// The engine/runtime layer attaches one probe per pool lane so the worker
/// profiler can attribute fan-out self-time (busy vs idle) to the compute
/// pool; the model crate itself knows nothing about metrics.
pub trait WorkerProbe: Send + Sync {
    /// Called when the lane starts executing a chunk.
    fn busy(&self);
    /// Called when the lane finishes its chunk.
    fn idle(&self);
}

/// A fixed-width compute pool for intra-batch parallelism.
///
/// `width` is the maximum number of concurrently executing chunks,
/// *including* the calling thread. `ComputePool::new(0)` auto-sizes to the
/// host's available parallelism.
///
/// ```
/// use bishop_model::ComputePool;
///
/// let pool = ComputePool::new(4);
/// let squares = pool.run(10, |i| i * i);
/// assert_eq!(squares, (0..10).map(|i| i * i).collect::<Vec<_>>());
/// ```
#[derive(Clone)]
pub struct ComputePool {
    width: usize,
    probes: Vec<Arc<dyn WorkerProbe>>,
}

impl std::fmt::Debug for ComputePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComputePool")
            .field("width", &self.width)
            .field("probes", &self.probes.len())
            .finish()
    }
}

impl Default for ComputePool {
    fn default() -> Self {
        Self::sequential()
    }
}

impl ComputePool {
    /// Creates a pool with the given width. `0` auto-sizes to
    /// [`std::thread::available_parallelism`] (1 if unavailable).
    pub fn new(width: usize) -> Self {
        let width = if width == 0 {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            width
        };
        Self {
            width,
            probes: Vec::new(),
        }
    }

    /// A width-1 pool: every [`ComputePool::run`] executes inline.
    pub fn sequential() -> Self {
        Self {
            width: 1,
            probes: Vec::new(),
        }
    }

    /// Attaches observer probes, one per pool lane (`probes[lane]` covers
    /// chunk `lane`; extra probes are ignored, missing ones mean the lane is
    /// unobserved).
    #[must_use]
    pub fn with_probes(mut self, probes: Vec<Arc<dyn WorkerProbe>>) -> Self {
        self.probes = probes;
        self
    }

    /// Maximum number of concurrent chunks (including the caller).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Whether a `run` can actually fan out (width > 1).
    pub fn is_parallel(&self) -> bool {
        self.width > 1
    }

    /// Runs `f(0..tasks)` and returns the results in task order.
    ///
    /// Tasks are split into at most `width` contiguous chunks; chunk 0 runs
    /// on the calling thread, the rest on scoped threads. The fan-in is
    /// deterministic: result `i` is always `f(i)`, so for independent tasks
    /// the output is identical to `(0..tasks).map(f).collect()`.
    pub fn run<T, F>(&self, tasks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.width <= 1 || tasks <= 1 {
            return (0..tasks).map(f).collect();
        }
        let workers = self.width.min(tasks);
        let base = tasks / workers;
        let extra = tasks % workers;

        let mut slots: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
        // Carve the slot vector into one disjoint mutable slice per chunk so
        // each worker writes its own range without synchronisation.
        let mut chunks: Vec<(usize, &mut [Option<T>])> = Vec::with_capacity(workers);
        let mut rest = slots.as_mut_slice();
        let mut start = 0;
        for w in 0..workers {
            let len = base + usize::from(w < extra);
            let (head, tail) = rest.split_at_mut(len);
            chunks.push((start, head));
            start += len;
            rest = tail;
        }

        let f = &f;
        let probes = &self.probes;
        std::thread::scope(|scope| {
            let mut chunk_iter = chunks.into_iter();
            let (start0, head0) = chunk_iter.next().expect("workers >= 1");
            for (lane, (start, chunk)) in chunk_iter.enumerate() {
                let lane = lane + 1;
                scope.spawn(move || {
                    let probe = probes.get(lane);
                    if let Some(p) = probe {
                        p.busy();
                    }
                    for (offset, slot) in chunk.iter_mut().enumerate() {
                        *slot = Some(f(start + offset));
                    }
                    if let Some(p) = probe {
                        p.idle();
                    }
                });
            }
            // Chunk 0 runs on the caller; the scope joins the rest.
            let probe = probes.first();
            if let Some(p) = probe {
                p.busy();
            }
            for (offset, slot) in head0.iter_mut().enumerate() {
                *slot = Some(f(start0 + offset));
            }
            if let Some(p) = probe {
                p.idle();
            }
        });

        slots
            .into_iter()
            .map(|slot| slot.expect("every task slot is filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn sequential_pool_runs_inline_in_order() {
        let pool = ComputePool::sequential();
        assert_eq!(pool.width(), 1);
        assert!(!pool.is_parallel());
        let out = pool.run(5, |i| i * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn auto_width_resolves_to_host_parallelism() {
        let pool = ComputePool::new(0);
        assert!(pool.width() >= 1);
    }

    #[test]
    fn parallel_results_are_index_ordered() {
        let pool = ComputePool::new(4);
        let out = pool.run(13, |i| i * i);
        assert_eq!(out, (0..13).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential_for_all_task_counts() {
        let seq = ComputePool::sequential();
        for width in [2, 3, 8] {
            let par = ComputePool::new(width);
            for tasks in 0..20 {
                assert_eq!(
                    par.run(tasks, |i| i * 3 + 1),
                    seq.run(tasks, |i| i * 3 + 1),
                    "width={width} tasks={tasks}"
                );
            }
        }
    }

    #[test]
    fn zero_and_one_task_runs_are_trivial() {
        let pool = ComputePool::new(8);
        assert!(pool.run(0, |i| i).is_empty());
        assert_eq!(pool.run(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let pool = ComputePool::new(3);
        let counter = AtomicUsize::new(0);
        let out = pool.run(17, |i| {
            counter.fetch_add(1, Ordering::SeqCst);
            i
        });
        assert_eq!(counter.load(Ordering::SeqCst), 17);
        assert_eq!(out, (0..17).collect::<Vec<_>>());
    }

    struct CountingProbe {
        busy: AtomicUsize,
        idle: AtomicUsize,
    }

    impl WorkerProbe for CountingProbe {
        fn busy(&self) {
            self.busy.fetch_add(1, Ordering::SeqCst);
        }
        fn idle(&self) {
            self.idle.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn probes_observe_each_parallel_lane() {
        let probes: Vec<Arc<CountingProbe>> = (0..3)
            .map(|_| {
                Arc::new(CountingProbe {
                    busy: AtomicUsize::new(0),
                    idle: AtomicUsize::new(0),
                })
            })
            .collect();
        let as_dyn: Vec<Arc<dyn WorkerProbe>> = probes
            .iter()
            .map(|p| Arc::clone(p) as Arc<dyn WorkerProbe>)
            .collect();
        let pool = ComputePool::new(3).with_probes(as_dyn);
        pool.run(9, |i| i);
        for probe in &probes {
            assert_eq!(probe.busy.load(Ordering::SeqCst), 1);
            assert_eq!(probe.idle.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn probes_are_silent_on_inline_runs() {
        let probe = Arc::new(CountingProbe {
            busy: AtomicUsize::new(0),
            idle: AtomicUsize::new(0),
        });
        let pool =
            ComputePool::new(4).with_probes(vec![Arc::clone(&probe) as Arc<dyn WorkerProbe>]);
        pool.run(1, |i| i); // single task -> inline path, no probe activity
        assert_eq!(probe.busy.load(Ordering::SeqCst), 0);
        assert_eq!(probe.idle.load(Ordering::SeqCst), 0);
    }
}
