//! Layer-by-layer workload descriptions consumed by the accelerator models.
//!
//! A [`ModelWorkload`] is the bridge between the algorithm side (functional
//! spiking transformer execution, or statistically calibrated synthetic
//! traces) and the hardware side (the Bishop and PTB simulators). Each entry
//! carries the binary input operands and the weight geometry of one layer —
//! exactly the information the paper's analytic architecture model traces.

use bishop_spiketensor::{SpikeTensor, TensorShape};
use rand::Rng;

use bishop_spiketensor::{SpikeTraceGenerator, TraceProfile};

use crate::config::ModelConfig;

/// Which stage of an encoder block a layer belongs to.
///
/// The labels mirror Fig. 11 of the paper: `P1` is the Q/K/V projection,
/// `ATN` the spiking self-attention layer, `P2` the attention output
/// projection, and `MLP` the two MLP linear layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Q/K/V linear projections (grouped, `D → 3D`).
    QkvProjection,
    /// The spiking attention computation (`S = Q·Kᵀ`, `Y = S·V`).
    Attention,
    /// Attention output projection `W_O` (`D → D`).
    OutputProjection,
    /// First MLP linear layer (`D → r·D`).
    MlpFc1,
    /// Second MLP linear layer (`r·D → D`).
    MlpFc2,
}

impl LayerKind {
    /// The grouping label used in the paper's per-layer figures
    /// (`P1`/`ATN`/`P2`/`MLP`).
    pub fn group_label(&self) -> &'static str {
        match self {
            LayerKind::QkvProjection => "P1",
            LayerKind::Attention => "ATN",
            LayerKind::OutputProjection => "P2",
            LayerKind::MlpFc1 | LayerKind::MlpFc2 => "MLP",
        }
    }

    /// Whether this layer is executed on the dense/sparse TTB cores (true)
    /// or on the attention core (false).
    pub fn is_projection_like(&self) -> bool {
        !matches!(self, LayerKind::Attention)
    }
}

/// A matrix-multiply-shaped layer (projection or MLP): binary input spikes ×
/// multi-bit weights.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectionWorkload {
    /// Encoder block index this layer belongs to.
    pub block: usize,
    /// Stage within the block.
    pub kind: LayerKind,
    /// Human-readable label, e.g. `"block2.P1"`.
    pub label: String,
    /// Binary input activations, `T × N × D_in`.
    pub input: SpikeTensor,
    /// Output feature count `D_out` (weight matrix is `D_in × D_out`).
    pub output_features: usize,
    /// Weight precision in bits.
    pub weight_bits: usize,
}

impl ProjectionWorkload {
    /// Input feature count `D_in`.
    pub fn input_features(&self) -> usize {
        self.input.shape().features
    }

    /// Number of synaptic accumulation operations if no sparsity is
    /// exploited: `T · N · D_in · D_out`.
    pub fn dense_ops(&self) -> u64 {
        let s = self.input.shape();
        (s.timesteps * s.tokens * s.features) as u64 * self.output_features as u64
    }

    /// Number of accumulations when zero input spikes are skipped:
    /// `nnz(input) · D_out`.
    pub fn spike_ops(&self) -> u64 {
        self.input.count_ones() as u64 * self.output_features as u64
    }

    /// Size in bytes of the layer's weight matrix.
    pub fn weight_bytes(&self) -> u64 {
        (self.input_features() * self.output_features * self.weight_bits) as u64 / 8
    }
}

/// A spiking self-attention layer workload: the binary Q/K/V operands of all
/// heads of one block.
#[derive(Debug, Clone, PartialEq)]
pub struct AttentionWorkload {
    /// Encoder block index.
    pub block: usize,
    /// Human-readable label, e.g. `"block2.ATN"`.
    pub label: String,
    /// Spiking queries, `T × N × D`.
    pub q: SpikeTensor,
    /// Spiking keys, `T × N × D`.
    pub k: SpikeTensor,
    /// Spiking values, `T × N × D`.
    pub v: SpikeTensor,
    /// Number of attention heads.
    pub heads: usize,
    /// Bit width of the integer attention scores (6–10 bits in the paper).
    pub score_bits: usize,
}

impl AttentionWorkload {
    /// Activation shape shared by Q, K and V.
    pub fn shape(&self) -> TensorShape {
        self.q.shape()
    }

    /// AND-accumulate operations to compute `S = Q·Kᵀ` densely:
    /// `T · N² · D` (summed over heads, since head dims add up to `D`).
    pub fn score_ops(&self) -> u64 {
        let s = self.shape();
        (s.timesteps * s.tokens * s.tokens * s.features) as u64
    }

    /// Select-accumulate operations to compute `Y = S·V` densely:
    /// also `T · N² · D`.
    pub fn output_ops(&self) -> u64 {
        self.score_ops()
    }

    /// Total dense attention operations.
    pub fn dense_ops(&self) -> u64 {
        self.score_ops() + self.output_ops()
    }
}

/// One layer of a model workload.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerWorkload {
    /// Projection/MLP layer executed on the dense/sparse TTB cores.
    Projection(ProjectionWorkload),
    /// Attention layer executed on the TTB attention core.
    Attention(AttentionWorkload),
}

impl LayerWorkload {
    /// The encoder block the layer belongs to.
    pub fn block(&self) -> usize {
        match self {
            LayerWorkload::Projection(p) => p.block,
            LayerWorkload::Attention(a) => a.block,
        }
    }

    /// The layer's stage kind.
    pub fn kind(&self) -> LayerKind {
        match self {
            LayerWorkload::Projection(p) => p.kind,
            LayerWorkload::Attention(_) => LayerKind::Attention,
        }
    }

    /// The layer's label.
    pub fn label(&self) -> &str {
        match self {
            LayerWorkload::Projection(p) => &p.label,
            LayerWorkload::Attention(a) => &a.label,
        }
    }

    /// Dense operation count of the layer (no sparsity exploited).
    pub fn dense_ops(&self) -> u64 {
        match self {
            LayerWorkload::Projection(p) => p.dense_ops(),
            LayerWorkload::Attention(a) => a.dense_ops(),
        }
    }
}

/// Statistical description used to synthesise a [`ModelWorkload`] without
/// running (or training) the functional model. The densities come from the
/// per-dataset calibration tables in `bishop-bundle::calibrate`.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticTraceSpec {
    /// Firing density of encoder-block inputs (MLP/projection inputs).
    pub input_density: f64,
    /// Firing density of the spiking queries.
    pub q_density: f64,
    /// Firing density of the spiking keys.
    pub k_density: f64,
    /// Firing density of the spiking values.
    pub v_density: f64,
    /// Firing density of the MLP hidden activations.
    pub hidden_density: f64,
    /// Per-feature density spread (0 = uniform; 2–3 = heavy tailed).
    pub feature_spread: f64,
    /// Fraction of completely silent features.
    pub silent_fraction: f64,
    /// Spatiotemporal clustering `(timesteps, tokens, boost)` applied to all
    /// generated traces, mirroring the bundle-friendly firing structure.
    pub cluster: (usize, usize, f64),
}

impl SyntheticTraceSpec {
    /// A uniform spec where every tensor has the same density and no
    /// structure. Useful for unit tests and controlled sweeps.
    pub fn uniform(density: f64) -> Self {
        Self {
            input_density: density,
            q_density: density,
            k_density: density,
            v_density: density,
            hidden_density: density,
            feature_spread: 0.0,
            silent_fraction: 0.0,
            cluster: (1, 1, 1.0),
        }
    }

    fn profile(&self, density: f64) -> TraceProfile {
        TraceProfile::new(density.clamp(0.0, 1.0))
            .with_feature_spread(self.feature_spread)
            .with_silent_features(self.silent_fraction)
            .with_clustering(self.cluster.0, self.cluster.1, self.cluster.2)
    }
}

/// The full per-layer workload of one model inference.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelWorkload {
    /// The model configuration the workload belongs to.
    pub config: ModelConfig,
    /// Layers in execution order.
    pub layers: Vec<LayerWorkload>,
}

impl ModelWorkload {
    /// Creates an empty workload for `config`.
    pub fn new(config: ModelConfig) -> Self {
        Self {
            config,
            layers: Vec::new(),
        }
    }

    /// Generates a synthetic workload whose traces follow `spec`.
    ///
    /// Per encoder block, the generated layers are: `P1` (Q/K/V projection),
    /// `ATN`, `P2` (output projection), `MLP` fc1 and fc2 — the same five
    /// entries the paper's per-layer evaluation (Fig. 11) uses.
    pub fn synthetic<R: Rng>(config: &ModelConfig, spec: &SyntheticTraceSpec, rng: &mut R) -> Self {
        let shape = config.activation_shape();
        let hidden_shape = shape.with_features(config.mlp_hidden());
        let mut layers = Vec::new();
        for block in 0..config.blocks {
            let input =
                SpikeTraceGenerator::new(spec.profile(spec.input_density)).generate(shape, rng);
            layers.push(LayerWorkload::Projection(ProjectionWorkload {
                block,
                kind: LayerKind::QkvProjection,
                label: format!("block{block}.P1"),
                input: input.clone(),
                output_features: 3 * config.features,
                weight_bits: config.weight_bits,
            }));

            let q = SpikeTraceGenerator::new(spec.profile(spec.q_density)).generate(shape, rng);
            let k = SpikeTraceGenerator::new(spec.profile(spec.k_density)).generate(shape, rng);
            let v = SpikeTraceGenerator::new(spec.profile(spec.v_density)).generate(shape, rng);
            layers.push(LayerWorkload::Attention(AttentionWorkload {
                block,
                label: format!("block{block}.ATN"),
                q,
                k,
                v,
                heads: config.heads,
                score_bits: score_bits_for(config),
            }));

            let attn_out =
                SpikeTraceGenerator::new(spec.profile(spec.input_density)).generate(shape, rng);
            layers.push(LayerWorkload::Projection(ProjectionWorkload {
                block,
                kind: LayerKind::OutputProjection,
                label: format!("block{block}.P2"),
                input: attn_out,
                output_features: config.features,
                weight_bits: config.weight_bits,
            }));

            let mlp_in =
                SpikeTraceGenerator::new(spec.profile(spec.input_density)).generate(shape, rng);
            layers.push(LayerWorkload::Projection(ProjectionWorkload {
                block,
                kind: LayerKind::MlpFc1,
                label: format!("block{block}.MLP.fc1"),
                input: mlp_in,
                output_features: config.mlp_hidden(),
                weight_bits: config.weight_bits,
            }));

            let hidden = SpikeTraceGenerator::new(spec.profile(spec.hidden_density))
                .generate(hidden_shape, rng);
            layers.push(LayerWorkload::Projection(ProjectionWorkload {
                block,
                kind: LayerKind::MlpFc2,
                label: format!("block{block}.MLP.fc2"),
                input: hidden,
                output_features: config.features,
                weight_bits: config.weight_bits,
            }));
        }
        Self {
            config: config.clone(),
            layers,
        }
    }

    /// Appends a layer to the workload.
    pub fn push(&mut self, layer: LayerWorkload) {
        self.layers.push(layer);
    }

    /// Layers in execution order.
    pub fn layers(&self) -> &[LayerWorkload] {
        &self.layers
    }

    /// Iterator over the projection-like layers.
    pub fn projection_layers(&self) -> impl Iterator<Item = &ProjectionWorkload> {
        self.layers.iter().filter_map(|l| match l {
            LayerWorkload::Projection(p) => Some(p),
            LayerWorkload::Attention(_) => None,
        })
    }

    /// Iterator over the attention layers.
    pub fn attention_layers(&self) -> impl Iterator<Item = &AttentionWorkload> {
        self.layers.iter().filter_map(|l| match l {
            LayerWorkload::Attention(a) => Some(a),
            LayerWorkload::Projection(_) => None,
        })
    }

    /// Total dense operation count of the workload.
    pub fn total_dense_ops(&self) -> u64 {
        self.layers.iter().map(|l| l.dense_ops()).sum()
    }

    /// Mean firing density across all projection-layer inputs.
    pub fn mean_projection_density(&self) -> f64 {
        let mut total_spikes = 0usize;
        let mut total_positions = 0usize;
        for p in self.projection_layers() {
            total_spikes += p.input.count_ones();
            total_positions += p.input.shape().len();
        }
        if total_positions == 0 {
            0.0
        } else {
            total_spikes as f64 / total_positions as f64
        }
    }
}

/// The paper states attention scores are 6–10-bit integers depending on the
/// model; the maximum possible score is the per-head feature count, so the
/// needed width is `ceil(log2(D/H + 1))` clamped to that range.
pub fn score_bits_for(config: &ModelConfig) -> usize {
    let max_score = config.head_features() as u32;
    ((32 - max_score.leading_zeros()) as usize).clamp(6, 10)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_config() -> ModelConfig {
        ModelConfig::new("tiny", crate::DatasetKind::Cifar10, 2, 4, 8, 16, 2)
    }

    #[test]
    fn synthetic_workload_has_five_layers_per_block() {
        let config = tiny_config();
        let mut rng = StdRng::seed_from_u64(1);
        let workload =
            ModelWorkload::synthetic(&config, &SyntheticTraceSpec::uniform(0.2), &mut rng);
        assert_eq!(workload.layers().len(), 5 * config.blocks);
        assert_eq!(workload.projection_layers().count(), 4 * config.blocks);
        assert_eq!(workload.attention_layers().count(), config.blocks);
    }

    #[test]
    fn layer_kinds_follow_paper_grouping() {
        let config = tiny_config();
        let mut rng = StdRng::seed_from_u64(2);
        let workload =
            ModelWorkload::synthetic(&config, &SyntheticTraceSpec::uniform(0.2), &mut rng);
        let labels: Vec<&str> = workload.layers()[..5]
            .iter()
            .map(|l| l.kind().group_label())
            .collect();
        assert_eq!(labels, vec!["P1", "ATN", "P2", "MLP", "MLP"]);
    }

    #[test]
    fn projection_op_counts_match_formula() {
        let config = tiny_config();
        let mut rng = StdRng::seed_from_u64(3);
        let workload =
            ModelWorkload::synthetic(&config, &SyntheticTraceSpec::uniform(0.5), &mut rng);
        let p1 = workload.projection_layers().next().unwrap();
        assert_eq!(
            p1.dense_ops(),
            (4 * 8 * 16) as u64 * (3 * 16) as u64,
            "P1 dense ops = T*N*D * 3D"
        );
        assert!(p1.spike_ops() <= p1.dense_ops());
        assert_eq!(p1.weight_bytes(), (16 * 48) as u64);
    }

    #[test]
    fn attention_op_counts_match_formula() {
        let config = tiny_config();
        let mut rng = StdRng::seed_from_u64(4);
        let workload =
            ModelWorkload::synthetic(&config, &SyntheticTraceSpec::uniform(0.5), &mut rng);
        let attn = workload.attention_layers().next().unwrap();
        assert_eq!(attn.score_ops(), (4 * 8 * 8 * 16) as u64);
        assert_eq!(attn.dense_ops(), 2 * attn.score_ops());
    }

    #[test]
    fn densities_follow_spec() {
        let config = ModelConfig::new("tiny", crate::DatasetKind::Cifar10, 1, 8, 32, 64, 2);
        let mut rng = StdRng::seed_from_u64(5);
        let mut spec = SyntheticTraceSpec::uniform(0.3);
        spec.k_density = 0.05;
        let workload = ModelWorkload::synthetic(&config, &spec, &mut rng);
        let attn = workload.attention_layers().next().unwrap();
        assert!(attn.q.density() > 0.2);
        assert!(attn.k.density() < 0.12);
        assert!((workload.mean_projection_density() - 0.3).abs() < 0.1);
    }

    #[test]
    fn score_bits_are_clamped_to_paper_range() {
        assert_eq!(score_bits_for(&ModelConfig::model1_cifar10()), 6); // head dim 48 -> 6 bits
        assert_eq!(score_bits_for(&ModelConfig::model3_imagenet100()), 6); // head dim 16 -> 6 (clamped)
        let wide = ModelConfig::new("wide", crate::DatasetKind::Cifar10, 1, 1, 4, 2048, 2);
        assert_eq!(score_bits_for(&wide), 10); // head dim 1024 -> 11 bits clamped to 10
    }

    #[test]
    fn total_dense_ops_sums_layers() {
        let config = tiny_config();
        let mut rng = StdRng::seed_from_u64(6);
        let workload =
            ModelWorkload::synthetic(&config, &SyntheticTraceSpec::uniform(0.2), &mut rng);
        let sum: u64 = workload.layers().iter().map(|l| l.dense_ops()).sum();
        assert_eq!(workload.total_dense_ops(), sum);
        assert!(sum > 0);
    }

    #[test]
    fn kind_predicates() {
        assert!(LayerKind::MlpFc1.is_projection_like());
        assert!(!LayerKind::Attention.is_projection_like());
        assert_eq!(LayerKind::MlpFc2.group_label(), "MLP");
    }
}
