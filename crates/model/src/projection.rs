//! Spiking linear (projection) layers.

use bishop_neuron::{lif_over_time, LifConfig};
use bishop_spiketensor::words::simd;
use bishop_spiketensor::{DenseMatrix, SpikeTensor};
use rand::Rng;

use crate::parallel::ComputePool;

/// Multiplies the binary spike plane at timestep `t` (an `N × D_in` 0/1
/// matrix) with a dense `D_in × D_out` weight matrix.
///
/// Because the left operand is binary this is exactly the "select
/// accumulate" computation the Bishop dense core performs: for every active
/// spike `(n, d_in)` the weight row `W[d_in, :]` is accumulated into output
/// row `n`.
///
/// Word-parallel: each token's active input features are enumerated with the
/// `trailing_zeros` set-bit iterator over the packed feature row, so the work
/// is proportional to the number of spikes rather than `D_in`; the dense
/// weight-row accumulation runs on the active SIMD tier's element-wise
/// `add_assign` kernel (no reassociation, so still bit-for-bit identical to
/// [`spike_matmul_reference`]).
///
/// # Panics
///
/// Panics if the weight row count differs from the spike tensor's feature
/// count or `t` is out of range.
pub fn spike_matmul(spikes: &SpikeTensor, t: usize, weight: &DenseMatrix) -> DenseMatrix {
    let shape = spikes.shape();
    assert!(t < shape.timesteps, "timestep {t} out of range");
    assert_eq!(
        weight.rows(),
        shape.features,
        "weight rows ({}) must equal input features ({})",
        weight.rows(),
        shape.features
    );
    let kernels = simd::active();
    let mut out = DenseMatrix::zeros(shape.tokens, weight.cols());
    for n in 0..shape.tokens {
        for d_in in spikes.row_words(t, n).iter_set_bits() {
            kernels.add_assign(out.row_mut(n), weight.row(d_in));
        }
    }
    out
}

/// Pool-parallel variant of [`spike_matmul`]: output token rows are
/// independent, so they are fanned across the compute pool and reassembled
/// in token order. Each row runs the exact same accumulation sequence as
/// the sequential kernel, so the result is bit-for-bit identical to
/// [`spike_matmul`] at any pool width.
pub fn spike_matmul_with(
    spikes: &SpikeTensor,
    t: usize,
    weight: &DenseMatrix,
    pool: &ComputePool,
) -> DenseMatrix {
    if !pool.is_parallel() {
        return spike_matmul(spikes, t, weight);
    }
    let shape = spikes.shape();
    assert!(t < shape.timesteps, "timestep {t} out of range");
    assert_eq!(
        weight.rows(),
        shape.features,
        "weight rows ({}) must equal input features ({})",
        weight.rows(),
        shape.features
    );
    let rows = pool.run(shape.tokens, |n| {
        let kernels = simd::active();
        let mut row = vec![0.0_f32; weight.cols()];
        for d_in in spikes.row_words(t, n).iter_set_bits() {
            kernels.add_assign(&mut row, weight.row(d_in));
        }
        row
    });
    DenseMatrix::from_rows(&rows)
}

/// Scalar reference implementation of [`spike_matmul`], kept for
/// differential testing and the before/after kernel benchmarks.
pub fn spike_matmul_reference(spikes: &SpikeTensor, t: usize, weight: &DenseMatrix) -> DenseMatrix {
    let shape = spikes.shape();
    assert!(t < shape.timesteps, "timestep {t} out of range");
    assert_eq!(
        weight.rows(),
        shape.features,
        "weight rows ({}) must equal input features ({})",
        weight.rows(),
        shape.features
    );
    let mut out = DenseMatrix::zeros(shape.tokens, weight.cols());
    for n in 0..shape.tokens {
        for d_in in 0..shape.features {
            if spikes.get(t, n, d_in) {
                for d_out in 0..weight.cols() {
                    out.add_assign(n, d_out, weight.get(d_in, d_out));
                }
            }
        }
    }
    out
}

/// A spiking linear layer: binary input spikes × multi-bit weights, followed
/// by an LIF neuron layer that re-binarises the synaptic integration.
///
/// This models the MLP and Q/K/V/O projection layers of the spiking
/// transformer (§2.2 of the paper: complexity `O(T·N·D²)`).
///
/// ```
/// use bishop_model::SpikingLinear;
/// use bishop_neuron::LifConfig;
/// use bishop_spiketensor::{DenseMatrix, SpikeTensor, TensorShape};
///
/// let weight = DenseMatrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 0.1]]);
/// let layer = SpikingLinear::from_weight(weight, LifConfig::default());
/// let x = SpikeTensor::ones(TensorShape::new(1, 3, 2));
/// let y = layer.forward(&x);
/// // Feature 0 receives 2.0 > threshold and fires; feature 1 receives 0.1.
/// assert!(y.get(0, 0, 0));
/// assert!(!y.get(0, 0, 1));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SpikingLinear {
    weight: DenseMatrix,
    lif: LifConfig,
}

impl SpikingLinear {
    /// Creates a layer from an explicit weight matrix.
    pub fn from_weight(weight: DenseMatrix, lif: LifConfig) -> Self {
        Self { weight, lif }
    }

    /// Creates a layer with random uniform weights in `[-scale, scale]`.
    pub fn random<R: Rng>(
        in_features: usize,
        out_features: usize,
        scale: f32,
        lif: LifConfig,
        rng: &mut R,
    ) -> Self {
        Self {
            weight: DenseMatrix::random_uniform(in_features, out_features, scale, rng),
            lif,
        }
    }

    /// Input feature dimension.
    pub fn in_features(&self) -> usize {
        self.weight.rows()
    }

    /// Output feature dimension.
    pub fn out_features(&self) -> usize {
        self.weight.cols()
    }

    /// The layer's weight matrix.
    pub fn weight(&self) -> &DenseMatrix {
        &self.weight
    }

    /// The LIF configuration of the layer's neuron stage.
    pub fn lif_config(&self) -> LifConfig {
        self.lif
    }

    /// Computes the per-timestep synaptic integration `X[t] · W` without
    /// applying the LIF stage. Exposed because the Bishop spike generator
    /// consumes exactly this intermediate quantity.
    pub fn synaptic_integration(&self, input: &SpikeTensor) -> Vec<DenseMatrix> {
        self.synaptic_integration_with(input, &ComputePool::sequential())
    }

    /// Pool-parallel [`SpikingLinear::synaptic_integration`]: timesteps are
    /// independent before the LIF stage (the membrane coupling happens in
    /// `lif_over_time`), so they are fanned across the compute pool. A
    /// single-timestep input falls back to row-chunked
    /// [`spike_matmul_with`]. Bit-identical to the sequential path.
    pub fn synaptic_integration_with(
        &self,
        input: &SpikeTensor,
        pool: &ComputePool,
    ) -> Vec<DenseMatrix> {
        let timesteps = input.shape().timesteps;
        if timesteps == 1 {
            return vec![spike_matmul_with(input, 0, &self.weight, pool)];
        }
        pool.run(timesteps, |t| spike_matmul(input, t, &self.weight))
    }

    /// Full forward pass: synaptic integration followed by the LIF layer.
    pub fn forward(&self, input: &SpikeTensor) -> SpikeTensor {
        self.forward_with(input, &ComputePool::sequential())
    }

    /// Pool-parallel [`SpikingLinear::forward`]; bit-identical at any pool
    /// width.
    pub fn forward_with(&self, input: &SpikeTensor, pool: &ComputePool) -> SpikeTensor {
        let integration = self.synaptic_integration_with(input, pool);
        lif_over_time(&integration, self.lif)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bishop_spiketensor::TensorShape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn spike_matmul_accumulates_weight_rows_of_active_inputs() {
        let weight =
            DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![10.0, 20.0], vec![100.0, 200.0]]);
        let mut x = SpikeTensor::zeros(TensorShape::new(1, 2, 3));
        x.set(0, 0, 0, true);
        x.set(0, 0, 2, true);
        x.set(0, 1, 1, true);
        let y = spike_matmul(&x, 0, &weight);
        assert_eq!(y.get(0, 0), 101.0);
        assert_eq!(y.get(0, 1), 202.0);
        assert_eq!(y.get(1, 0), 10.0);
        assert_eq!(y.get(1, 1), 20.0);
    }

    #[test]
    fn spike_matmul_of_empty_input_is_zero() {
        let weight = DenseMatrix::from_rows(&[vec![1.0], vec![1.0]]);
        let x = SpikeTensor::zeros(TensorShape::new(1, 4, 2));
        let y = spike_matmul(&x, 0, &weight);
        assert_eq!(y.sum(), 0.0);
    }

    #[test]
    fn spike_matmul_equals_dense_matmul_on_binary_input() {
        let mut rng = StdRng::seed_from_u64(9);
        let weight = DenseMatrix::random_uniform(6, 5, 1.0, &mut rng);
        let x = SpikeTensor::from_fn(TensorShape::new(2, 4, 6), |t, n, d| (t + n + d) % 3 == 0);
        for t in 0..2 {
            let dense_x = DenseMatrix::from_fn(4, 6, |n, d| if x.get(t, n, d) { 1.0 } else { 0.0 });
            let expected = dense_x.matmul(&weight);
            let got = spike_matmul(&x, t, &weight);
            assert!(expected.max_abs_diff(&got) < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "must equal input features")]
    fn spike_matmul_rejects_mismatched_weight() {
        let weight = DenseMatrix::zeros(3, 3);
        let x = SpikeTensor::zeros(TensorShape::new(1, 2, 2));
        spike_matmul(&x, 0, &weight);
    }

    #[test]
    fn forward_produces_binary_output_of_right_shape() {
        let mut rng = StdRng::seed_from_u64(11);
        let layer = SpikingLinear::random(8, 16, 0.5, LifConfig::default(), &mut rng);
        let x = SpikeTensor::from_fn(TensorShape::new(3, 5, 8), |_, n, d| (n + d) % 2 == 0);
        let y = layer.forward(&x);
        assert_eq!(y.shape(), TensorShape::new(3, 5, 16));
        assert_eq!(layer.in_features(), 8);
        assert_eq!(layer.out_features(), 16);
    }

    #[test]
    fn stronger_weights_fire_more() {
        let weak = SpikingLinear::from_weight(
            DenseMatrix::from_fn(4, 4, |_, _| 0.05),
            LifConfig::default(),
        );
        let strong = SpikingLinear::from_weight(
            DenseMatrix::from_fn(4, 4, |_, _| 0.6),
            LifConfig::default(),
        );
        let x = SpikeTensor::ones(TensorShape::new(4, 4, 4));
        assert!(strong.forward(&x).count_ones() > weak.forward(&x).count_ones());
    }

    #[test]
    fn synaptic_integration_has_one_matrix_per_timestep() {
        let layer = SpikingLinear::from_weight(DenseMatrix::zeros(4, 2), LifConfig::default());
        let x = SpikeTensor::zeros(TensorShape::new(5, 3, 4));
        let integration = layer.synaptic_integration(&x);
        assert_eq!(integration.len(), 5);
        assert_eq!(integration[0].rows(), 3);
        assert_eq!(integration[0].cols(), 2);
    }
}
