//! # bishop-model
//!
//! Spiking transformer model definitions, functional (bit-exact) inference,
//! workload descriptions, and computational-complexity profiling for the
//! Bishop reproduction.
//!
//! The paper evaluates five spiking transformer models (Table 2). This crate
//! provides:
//!
//! * [`ModelConfig`] / [`DatasetKind`] — the architecture hyper-parameters of
//!   Models 1–5 plus arbitrary custom configurations;
//! * functional layers ([`SpikingLinear`], [`SpikingSelfAttention`],
//!   [`SpikingMlp`], [`SpikingTokenizer`], [`EncoderBlock`],
//!   [`SpikingTransformer`]) that execute the model exactly as defined in
//!   Eq. 3–8 of the paper, producing binary activation traces;
//! * [`ModelWorkload`]/[`LayerWorkload`] — the layer-by-layer description of
//!   a model's computation (input spikes, weight shapes, Q/K/V tensors) that
//!   the Bishop and PTB accelerator simulators consume;
//! * [`profile`] — analytic FLOP counting used to reproduce the workload
//!   breakdown of Fig. 3.
//!
//! ```
//! use bishop_model::{ModelConfig, profile::WorkloadProfile};
//!
//! let model3 = ModelConfig::model3_imagenet100();
//! let profile = WorkloadProfile::of(&model3);
//! // Attention and MLP blocks dominate the workload (Fig. 3).
//! assert!(profile.attention_plus_mlp_fraction() > 0.6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod encoder;
pub mod mlp;
pub mod parallel;
pub mod profile;
pub mod projection;
pub mod ssa;
pub mod stepper;
pub mod tokenizer;
pub mod transformer;
pub mod workload;

pub use config::{DatasetKind, ModelConfig};
pub use encoder::EncoderBlock;
pub use mlp::SpikingMlp;
pub use parallel::{ComputePool, WorkerProbe};
pub use projection::{spike_matmul, spike_matmul_reference, SpikingLinear};
pub use ssa::{select_accumulate, select_accumulate_reference, SpikingSelfAttention, SsaOutput};
pub use stepper::{BlockState, ModelState, PooledReadout, StepOutcome, TransformerStepper};
pub use tokenizer::SpikingTokenizer;
pub use transformer::{InferenceResult, SpikingTransformer};
pub use workload::{
    AttentionWorkload, LayerKind, LayerWorkload, ModelWorkload, ProjectionWorkload,
};
