//! Pool-parallelism bit-identity: running the model with an intra-batch
//! [`ComputePool`] of any width must produce exactly the results of the
//! sequential pass — logits to the last bit, spike tensors word for word,
//! and exported LIF membrane state float for float. This is the contract
//! that lets the native engine fan one batch across cores without giving
//! up the serving stack's determinism guarantees.

use bishop_model::{ComputePool, DatasetKind, ModelConfig, SpikingTransformer, TransformerStepper};
use bishop_spiketensor::DenseMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn model_and_patches(seed: u64) -> (SpikingTransformer, DenseMatrix) {
    // Timesteps (5) exceeding small pool widths, unaligned token count,
    // two blocks, four heads: every fan-out axis gets ragged chunks.
    let config = ModelConfig::new("pool-identity", DatasetKind::Cifar10, 2, 5, 7, 32, 4);
    let mut rng = StdRng::seed_from_u64(seed);
    let model = SpikingTransformer::random(&config, 24, 10, &mut rng);
    let patches = DenseMatrix::random_uniform(config.tokens, 24, 1.0, &mut rng);
    (model, patches)
}

fn logits_bits(logits: &[f32]) -> Vec<u32> {
    logits.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn infer_with_pool_is_bit_identical_to_sequential() {
    let (model, patches) = model_and_patches(71);
    let sequential = model.infer(&patches);
    for width in [2, 3, 8, 0] {
        let pool = ComputePool::new(width);
        let parallel = model.infer_with(&patches, &pool);
        assert_eq!(
            logits_bits(&parallel.logits),
            logits_bits(&sequential.logits),
            "logits diverged at pool width {}",
            pool.width()
        );
        assert_eq!(parallel.prediction, sequential.prediction);
        assert_eq!(parallel.final_spikes, sequential.final_spikes);
        // The captured workload embeds every intermediate spike tensor
        // (Q/K/V, O_temp, MLP activations) — equality here pins the whole
        // activation trace, not just the classifier readout.
        assert_eq!(parallel.workload, sequential.workload);
    }
}

#[test]
fn stepper_with_pool_matches_sequential_stepper_and_full_inference() {
    let (model, patches) = model_and_patches(72);
    let timesteps = model.config().timesteps;
    let reference = model.infer(&patches);

    let mut sequential = TransformerStepper::new(&model, &patches);
    for _ in 0..timesteps {
        sequential.step();
    }

    for width in [2, 3, 8] {
        let mut pooled =
            TransformerStepper::new(&model, &patches).with_pool(ComputePool::new(width));
        for _ in 0..timesteps {
            pooled.step();
        }
        // Exported membranes are the strictest comparison: every LIF
        // potential of every layer after every step, bit for bit.
        assert_eq!(
            pooled.export(),
            sequential.export(),
            "membrane state diverged at pool width {width}"
        );
        assert_eq!(
            logits_bits(&pooled.finish().logits),
            logits_bits(&reference.logits),
            "stepper logits diverged from full inference at pool width {width}"
        );
    }
}

#[test]
fn pooled_stepper_resume_split_stays_lockstep() {
    let (model, patches) = model_and_patches(73);
    let timesteps = model.config().timesteps;

    let mut single = TransformerStepper::new(&model, &patches);
    for _ in 0..timesteps {
        single.step();
    }

    // A session stepped partly sequentially and resumed under a pool (the
    // worker it migrates to may have a different pool width) must land on
    // the same state.
    let mut first = TransformerStepper::new(&model, &patches);
    first.step();
    let parked = first.export();
    let mut second =
        TransformerStepper::resume(&model, &patches, parked).with_pool(ComputePool::new(4));
    for _ in 1..timesteps {
        second.step();
    }
    assert_eq!(second.export(), single.export());
    assert_eq!(
        logits_bits(&second.finish().logits),
        logits_bits(&single.finish().logits)
    );
}
