//! Differential property tests: the word-parallel attention and
//! select-accumulate kernels must be bit-for-bit identical to the retained
//! scalar `*_reference` implementations, including on feature widths that
//! are not a multiple of 64.

use bishop_model::{
    select_accumulate, select_accumulate_reference, spike_matmul, spike_matmul_reference,
    SpikingSelfAttention,
};
use bishop_spiketensor::{DenseMatrix, SpikeTensor, TensorShape};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_tensor(shape: TensorShape, density: f64, seed: u64) -> SpikeTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    SpikeTensor::from_fn(shape, |_, _, _| rng.gen_bool(density))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn attention_scores_match_reference(
        t in 1usize..3,
        n in 1usize..10,
        d_index in 0usize..6,
        density in 0.0f64..0.7,
        seed in any::<u64>(),
    ) {
        const FEATURES: [usize; 6] = [1, 17, 63, 64, 65, 130];
        let shape = TensorShape::new(t, n, FEATURES[d_index % FEATURES.len()]);
        let q = random_tensor(shape, density, seed);
        let k = random_tensor(shape, (density + 0.2).min(1.0), seed ^ 0x5A5A);
        for ti in 0..shape.timesteps {
            let word = SpikingSelfAttention::attention_scores(&q, &k, ti);
            let scalar = SpikingSelfAttention::attention_scores_reference(&q, &k, ti);
            prop_assert_eq!(word, scalar);
        }
    }

    #[test]
    fn per_head_scores_match_reference_on_head_slices(
        n in 2usize..8,
        heads in 1usize..5,
        head_dim in 1usize..40,
        density in 0.05f64..0.6,
        seed in any::<u64>(),
    ) {
        // attention_scores_in on zero-copy sub-rows must equal the reference
        // run on materialised head_slice copies.
        let shape = TensorShape::new(2, n, heads * head_dim);
        let q = random_tensor(shape, density, seed);
        let k = random_tensor(shape, density, seed ^ 0xF00D);
        for h in 0..heads {
            let qh = q.head_slice(h, heads);
            let kh = k.head_slice(h, heads);
            for t in 0..shape.timesteps {
                let word = SpikingSelfAttention::attention_scores_in(
                    &q, &k, t, h * head_dim, (h + 1) * head_dim,
                );
                let scalar = SpikingSelfAttention::attention_scores_reference(&qh, &kh, t);
                prop_assert_eq!(word, scalar);
            }
        }
    }

    #[test]
    fn spike_matmul_matches_reference(
        t in 1usize..3,
        n in 1usize..8,
        d_index in 0usize..6,
        d_out in 1usize..20,
        density in 0.0f64..0.8,
        seed in any::<u64>(),
    ) {
        const FEATURES: [usize; 6] = [1, 17, 63, 64, 65, 130];
        let shape = TensorShape::new(t, n, FEATURES[d_index % FEATURES.len()]);
        let spikes = random_tensor(shape, density, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let weight = DenseMatrix::random_uniform(shape.features, d_out, 1.0, &mut rng);
        for ti in 0..shape.timesteps {
            let word = spike_matmul(&spikes, ti, &weight);
            let scalar = spike_matmul_reference(&spikes, ti, &weight);
            // Bit-for-bit: the word-parallel path accumulates the same
            // weights in the same order, so the floats are identical.
            prop_assert_eq!(word, scalar);
        }
    }

    #[test]
    fn select_accumulate_matches_reference(
        n in 1usize..8,
        d_index in 0usize..6,
        head_dim in 1usize..33,
        density in 0.0f64..0.8,
        scale_raw in -4.0f32..4.0,
        seed in any::<u64>(),
    ) {
        // The masked-add path of the dispatch table, driven through the SSA
        // S·V accumulation on a head column window [d0, d1) of a wider value
        // tensor — exactly the slice geometry the parallel stepper uses.
        const FEATURES: [usize; 6] = [1, 17, 63, 64, 65, 130];
        let d_lo = FEATURES[d_index % FEATURES.len()];
        let features = d_lo.max(head_dim);
        let d0 = features - head_dim.min(features);
        let shape = TensorShape::new(1, n, features);
        let v = random_tensor(shape, density, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xACC);
        let s = DenseMatrix::random_uniform(n, n, 1.0, &mut rng);
        let base = DenseMatrix::random_uniform(n, features, 1.0, &mut rng);
        let mut word = base.clone();
        let mut scalar = base.clone();
        select_accumulate(&mut word, &s, scale_raw, &v, 0, d0, features);
        select_accumulate_reference(&mut scalar, &s, scale_raw, &v, 0, d0, features);
        prop_assert_eq!(word, scalar);
    }
}

/// The full SSA forward pass (which now runs entirely on zero-copy sub-row
/// views) must produce scores identical to the scalar reference computed on
/// materialised head slices of its own Q/K.
#[test]
fn forward_scores_match_reference_head_slices() {
    use bishop_neuron::LifConfig;

    let mut rng = StdRng::seed_from_u64(77);
    for (features, heads) in [(24, 2), (96, 4), (130, 2)] {
        let ssa = SpikingSelfAttention::random(features, heads, 2, LifConfig::default(), &mut rng);
        let shape = TensorShape::new(3, 7, features);
        let x = random_tensor(shape, 0.35, 1000 + features as u64);
        let out = ssa.forward(&x);
        for h in 0..heads {
            let qh = out.q.head_slice(h, heads);
            let kh = out.k.head_slice(h, heads);
            for t in 0..shape.timesteps {
                let reference = SpikingSelfAttention::attention_scores_reference(&qh, &kh, t);
                assert_eq!(
                    out.scores[h][t], reference,
                    "scores diverged at head {h}, t {t}, features {features}"
                );
            }
        }
    }
}
