//! Streaming tickets and session continuation through the full runtime
//! stack: admission → domain batcher → worker → engine streaming path.

use std::sync::Arc;
use std::time::Duration;

use bishop_bundle::TrainingRegime;
use bishop_core::SimOptions;
use bishop_engine::{CatalogEntry, EngineName};
use bishop_model::{DatasetKind, ModelConfig};
use bishop_runtime::{
    BatchPolicy, InferenceRequest, InferenceResponse, OnlineConfig, OnlineServer, RuntimeConfig,
    SamplerConfig, SessionState, SessionStore, SessionStoreConfig, StepEvent, Ticket,
};

const TIMESTEPS: usize = 6;

fn entry() -> Arc<CatalogEntry> {
    CatalogEntry::new(
        ModelConfig::new("session-rt", DatasetKind::Cifar10, 2, TIMESTEPS, 8, 16, 2),
        TrainingRegime::Bsa,
        SimOptions::baseline(),
    )
}

fn server() -> OnlineServer {
    OnlineServer::start(
        OnlineConfig::new(RuntimeConfig::new(2, BatchPolicy::new(4)))
            .with_batch_timeout(None)
            .with_sampler(SamplerConfig::disabled()),
    )
}

/// Drains the ticket's progress channel to disconnection, then waits for
/// the terminal outcome.
fn drain(ticket: Ticket) -> (Vec<StepEvent>, InferenceResponse) {
    let events: Vec<StepEvent> = ticket
        .progress()
        .expect("streaming tickets carry a progress channel")
        .iter()
        .collect();
    let response = ticket
        .wait()
        .expect("ticket resolves")
        .expect("streaming-capable engine");
    (events, response)
}

#[test]
fn streaming_ticket_delivers_per_timestep_events_then_the_response() {
    let server = server();
    let handle = server.handle();
    let request = InferenceRequest::new(0, entry(), 7)
        .with_engine(EngineName::native())
        .with_streaming();
    let ticket = handle.try_submit(request).expect("admitted");
    let (events, response) = drain(ticket);

    assert_eq!(events.len(), TIMESTEPS, "one event per timestep");
    for (i, event) in events.iter().enumerate() {
        assert_eq!(event.index, i);
        assert_eq!(event.total, TIMESTEPS);
        assert_eq!(event.unit, "timestep");
    }
    assert_eq!(response.batch_size, 1, "stateful requests never coalesce");
    let state = response.session_state.as_deref().expect("state exported");
    assert_eq!(state.timesteps_done(), TIMESTEPS);
    let logits = response.logits.as_ref().expect("native reports logits");
    assert_eq!(logits.len(), DatasetKind::Cifar10.classes());

    let stats = server.shutdown();
    assert_eq!(stats.completed, 1);
    let native = stats
        .engines
        .iter()
        .find(|e| e.engine == EngineName::native())
        .expect("native domain");
    assert_eq!(
        native.stream_events, TIMESTEPS as u64,
        "step events are counted per engine"
    );
}

#[test]
fn split_continuation_is_bit_identical_through_the_runtime_on_native() {
    let server = server();
    let handle = server.handle();
    let entry = entry();

    let single = InferenceRequest::new(0, Arc::clone(&entry), 11)
        .with_engine(EngineName::native())
        .with_streaming();
    let (_, single_response) = drain(handle.try_submit(single).expect("admitted"));

    let first = InferenceRequest::new(1, Arc::clone(&entry), 11)
        .with_engine(EngineName::native())
        .with_streaming()
        .with_steps(2);
    let (first_events, first_response) = drain(handle.try_submit(first).expect("admitted"));
    assert_eq!(first_events.len(), 2);
    let parked = first_response.session_state.expect("state exported");

    let second = InferenceRequest::new(2, Arc::clone(&entry), 11)
        .with_engine(EngineName::native())
        .with_streaming()
        .with_resume(Arc::clone(&parked))
        .with_steps(TIMESTEPS - 2);
    let (second_events, second_response) = drain(handle.try_submit(second).expect("admitted"));

    // Event indices continue the absolute timestep count across requests.
    assert_eq!(second_events[0].index, 2);
    assert_eq!(second_events.last().unwrap().index, TIMESTEPS - 1);
    assert_eq!(
        second_response.logits, single_response.logits,
        "two-request continuation diverged from the single-request path"
    );
    assert_eq!(second_response.session_state, single_response.session_state);
    server.shutdown();
}

#[test]
fn split_continuation_is_bit_identical_through_the_runtime_on_simulator() {
    let server = server();
    let handle = server.handle();
    let entry = entry();

    let single = InferenceRequest::new(0, Arc::clone(&entry), 5).with_streaming();
    let (_, single_response) = drain(handle.try_submit(single).expect("admitted"));

    let first = InferenceRequest::new(1, Arc::clone(&entry), 5)
        .with_streaming()
        .with_steps(4);
    let (_, first_response) = drain(handle.try_submit(first).expect("admitted"));
    let parked = first_response.session_state.expect("state exported");
    assert_eq!(*parked, SessionState::Simulated { timesteps_done: 4 });

    let second = InferenceRequest::new(2, Arc::clone(&entry), 5)
        .with_streaming()
        .with_resume(parked)
        .with_steps(TIMESTEPS - 4);
    let (second_events, second_response) = drain(handle.try_submit(second).expect("admitted"));

    assert_eq!(
        second_response.output, single_response.output,
        "simulated metrics diverged across the split"
    );
    assert!(
        !second_events.is_empty(),
        "simulator reports per-layer progress"
    );
    assert!(second_events.iter().all(|e| e.unit == "layer"));
    server.shutdown();
}

#[test]
fn baseline_engines_resolve_streaming_tickets_with_a_typed_refusal() {
    let server = server();
    let handle = server.handle();
    let request = InferenceRequest::new(0, entry(), 3)
        .with_engine(EngineName::from("ptb"))
        .with_streaming();
    let ticket = handle
        .try_submit(request)
        .expect("admission is typed later");
    let events: Vec<StepEvent> = ticket.progress().expect("channel exists").iter().collect();
    assert!(events.is_empty(), "refusal emits no step events");
    let error = ticket
        .wait()
        .expect("ticket resolves")
        .expect_err("ptb has no streaming path");
    assert_eq!(error.code(), "streaming_unsupported");
    let stats = server.shutdown();
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.queue_depth, 0, "refusals drain the queue");
}

#[test]
fn resume_without_streaming_skips_the_progress_channel_but_exports_state() {
    let server = server();
    let handle = server.handle();
    let entry = entry();
    let first = InferenceRequest::new(0, Arc::clone(&entry), 9)
        .with_engine(EngineName::native())
        .with_streaming()
        .with_steps(3);
    let (_, first_response) = drain(handle.try_submit(first).expect("admitted"));
    let parked = first_response.session_state.expect("state exported");

    // A continuation without `streaming` still rides the stateful path
    // (exclusive batch, exported state) — it just has no event channel.
    let second = InferenceRequest::new(1, entry, 9)
        .with_engine(EngineName::native())
        .with_resume(parked)
        .with_steps(3);
    let ticket = handle.try_submit(second).expect("admitted");
    assert!(ticket.progress().is_none(), "no channel without streaming");
    let response = ticket
        .wait()
        .expect("ticket resolves")
        .expect("native continues the session");
    let state = response.session_state.expect("state exported");
    assert_eq!(state.timesteps_done(), TIMESTEPS);
    server.shutdown();
}

#[test]
fn registered_session_store_is_scraped_into_the_time_series() {
    let server = OnlineServer::start(
        OnlineConfig::new(RuntimeConfig::new(1, BatchPolicy::new(1))).with_sampler(
            SamplerConfig::default()
                .with_intervals(Duration::from_millis(1), Duration::from_millis(1)),
        ),
    );
    let handle = server.handle();
    let store = Arc::new(SessionStore::new(SessionStoreConfig::default()));
    assert!(handle.register_sessions(Arc::clone(&store)));
    assert!(
        !handle.register_sessions(Arc::clone(&store)),
        "second registration is refused"
    );
    assert!(handle.sessions().is_some());
    store
        .create("session-rt", "native", 1)
        .expect("slot available");
    let obs = Arc::clone(handle.obs());
    server.shutdown(); // final scrape lands the session gauges
    let names = obs.timeseries.series_names();
    assert!(
        names.iter().any(|n| n == "sessions.active"),
        "sessions.active missing from {names:?}"
    );
    assert!(names.iter().any(|n| n == "sessions.evicted.ttl"));
}
