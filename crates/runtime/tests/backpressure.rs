//! Backpressure and admission-control behaviour of the bounded submission
//! queue: a full queue must *reject* (never deadlock or block the caller),
//! and every shed request must be accounted for in the serving outcome.

use std::time::Duration;

use bishop_runtime::{
    default_mixed_models, mixed_trace, BatchPolicy, BishopServer, OnlineConfig, OnlineServer,
    Rejection, RuntimeConfig, Ticket,
};

fn overloaded_config(max_pending: usize) -> OnlineConfig {
    OnlineConfig::new(RuntimeConfig::new(1, BatchPolicy::new(4)).with_queue_capacity(1))
        .with_max_pending(max_pending)
        .with_batch_timeout(Some(Duration::from_millis(1)))
}

#[test]
fn full_queue_rejects_instead_of_deadlocking() {
    let server = OnlineServer::start(overloaded_config(1));
    let handle = server.handle();
    let trace = mixed_trace(&default_mixed_models(), 64, 2, 11);

    let mut tickets: Vec<Ticket> = Vec::new();
    let mut rejected = 0u64;
    for request in trace {
        match handle.try_submit(request) {
            Ok(ticket) => tickets.push(ticket),
            Err(Rejection::QueueFull) => rejected += 1,
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }
    // One pending request at a time, 64 back-to-back submissions: shedding
    // must kick in long before the pool can drain the earlier admissions.
    assert!(rejected > 0, "overload must shed, not absorb");

    // Every admitted request still completes: no deadlock, no lost ticket.
    let admitted = tickets.len() as u64;
    for ticket in tickets {
        ticket
            .wait()
            .expect("admitted requests complete")
            .expect("simulator engine executes every batch");
    }
    let stats = server.shutdown();
    assert_eq!(stats.submitted, 64);
    assert_eq!(stats.admitted, admitted);
    assert_eq!(stats.completed, admitted);
    assert_eq!(stats.queue_depth, 0, "nothing left pending after shutdown");
    assert_eq!(stats.backlog_ops, 0);

    // The outcome accounts for every submission: completed + shed == offered.
    assert_eq!(stats.admission.queue_full, rejected);
    assert_eq!(stats.completed + stats.admission.total(), stats.submitted);
}

#[test]
fn zero_capacity_sheds_everything() {
    let server = OnlineServer::start(overloaded_config(0));
    let handle = server.handle();
    for request in mixed_trace(&default_mixed_models(), 8, 2, 5) {
        assert_eq!(handle.try_submit(request).err(), Some(Rejection::QueueFull));
    }
    let stats = server.shutdown();
    assert_eq!(stats.admission.queue_full, 8);
    assert_eq!(stats.completed, 0);
    assert_eq!(stats.submitted, 8);
}

#[test]
fn deadline_admission_sheds_when_backlog_outlasts_the_deadline() {
    // A drain rate of 1 op/s makes any non-empty backlog outlast a 1 ms
    // deadline, so the first admission poisons every later deadline submit
    // until it completes.
    let config = OnlineConfig::new(RuntimeConfig::new(1, BatchPolicy::new(8)))
        .with_batch_timeout(None)
        .with_drain_rate(1.0);
    let server = OnlineServer::start(config);
    let handle = server.handle();
    let mut trace = mixed_trace(&default_mixed_models(), 2, 1, 21);

    let second = trace.pop().unwrap();
    let first = trace.pop().unwrap();
    let ticket = handle
        .try_submit_with_deadline(first, Duration::from_millis(1))
        .expect("empty backlog admits any deadline");
    assert_eq!(
        handle
            .try_submit_with_deadline(second, Duration::from_millis(1))
            .err(),
        Some(Rejection::DeadlineUnmeetable),
    );

    handle.flush();
    ticket
        .wait()
        .expect("admitted request completes")
        .expect("simulator engine executes the batch");
    let stats = server.shutdown();
    assert_eq!(stats.admission.deadline, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.completed + stats.admission.total(), stats.submitted);
}

#[test]
fn flush_closes_partial_batches() {
    let config =
        OnlineConfig::new(RuntimeConfig::new(2, BatchPolicy::new(8))).with_batch_timeout(None);
    let server = OnlineServer::start(config);
    let handle = server.handle();
    // 3 < max_batch_size compatible requests: without a flush (and with the
    // timeout disabled) these would sit in the former forever.
    let single_model = vec![default_mixed_models().remove(0)];
    let tickets: Vec<Ticket> = mixed_trace(&single_model, 3, 3, 31)
        .into_iter()
        .map(|r| handle.try_submit(r).expect("admitted"))
        .collect();
    handle.flush();
    for ticket in tickets {
        let response = ticket
            .wait()
            .expect("flush closed the batch")
            .expect("simulator engine executes the batch");
        assert_eq!(response.batch_size, 3);
    }
    server.shutdown();
}

#[test]
fn blocking_replay_still_serves_all_requests_and_sheds_none() {
    // The offline `serve` path rides the same online machinery but blocks
    // for backpressure instead of shedding: with a queue of capacity 1 and
    // 12 requests, every request is still answered exactly once.
    let config = RuntimeConfig::new(2, BatchPolicy::new(4)).with_queue_capacity(1);
    let outcome = BishopServer::new(config).serve(mixed_trace(&default_mixed_models(), 12, 2, 7));
    assert_eq!(outcome.responses.len(), 12);
    assert_eq!(outcome.admission.total(), 0);
}
