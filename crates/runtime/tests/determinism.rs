//! The runtime's determinism guarantee: the same seed and the same traffic
//! trace produce identical `ThroughputReport` aggregates (and identical
//! per-request simulated latencies) regardless of worker count.

use bishop_runtime::{
    default_mixed_models, mixed_trace, BatchPolicy, BishopServer, RuntimeConfig, ServingOutcome,
};

fn serve_with_workers(workers: usize) -> ServingOutcome {
    let trace = mixed_trace(&default_mixed_models(), 24, 3, 77);
    let server = BishopServer::new(RuntimeConfig::new(workers, BatchPolicy::new(4)));
    server.serve(trace)
}

#[test]
fn aggregates_are_identical_for_1_2_and_4_workers() {
    let one = serve_with_workers(1);
    let two = serve_with_workers(2);
    let four = serve_with_workers(4);

    assert_eq!(one.report.aggregates, two.report.aggregates);
    assert_eq!(one.report.aggregates, four.report.aggregates);

    // Per-request simulated latencies and batch assignments also match.
    for (a, b) in one.responses.iter().zip(four.responses.iter()) {
        assert_eq!(a.request_id, b.request_id);
        assert_eq!(a.batch_id, b.batch_id);
        assert_eq!(a.batch_size, b.batch_size);
        assert_eq!(a.latency_seconds, b.latency_seconds);
    }

    // Wall-clock stats are the one part allowed to differ.
    assert_eq!(one.report.wall.workers, 1);
    assert_eq!(four.report.wall.workers, 4);
}

#[test]
fn repeated_runs_with_the_same_trace_are_identical() {
    let a = serve_with_workers(2);
    let b = serve_with_workers(2);
    // Cache counters differ only if the caches were shared; each run above
    // uses a fresh server, so even those match.
    assert_eq!(a.report.aggregates, b.report.aggregates);
}

#[test]
fn different_seeds_change_the_aggregates() {
    let models = default_mixed_models();
    let server = BishopServer::new(RuntimeConfig::new(2, BatchPolicy::new(4)));
    let a = server.serve(mixed_trace(&models, 8, 2, 1));
    let b = server.serve(mixed_trace(&models, 8, 2, 2));
    assert_ne!(
        a.report.aggregates.total_simulated_cycles,
        b.report.aggregates.total_simulated_cycles
    );
}
