//! Temporal-observability suite: drives the background sampler, the SLO
//! engine and the always-on worker profiler against live serving traffic —
//!
//! * a scripted breaker-driven outage burns the availability error budget
//!   (fast-burn alert in the event log, budget < 1 on `/v1/slo`'s data
//!   source) and the objective recovers to `ok` once the outage ages out
//!   of the budget window;
//! * under a saturating flood routed at the native engine, the sampling
//!   profiler attributes at least 80% of the native worker's wall-clock to
//!   `engine_execute` while the idle simulator worker reads as idle;
//! * the sampler's final scrape on shutdown lands the admission/outcome
//!   counters in the time-series store even for a short-lived server.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bishop_core::{BishopConfig, BishopSimulator};
use bishop_engine::{EngineName, EngineRegistry, InferenceEngine, NativeEngine, SimulatorEngine};
use bishop_faults::{FaultInjectingEngine, FaultPlan};
use bishop_obs::{ObsConfig, ObsHub, SloAlert, SloSpec, SloTuning};
use bishop_runtime::{
    default_mixed_models, BatchPolicy, BreakerConfig, InferenceRequest, OnlineConfig, OnlineServer,
    RetryPolicy, RuntimeConfig, SamplerConfig,
};

fn simulator() -> Arc<dyn InferenceEngine> {
    Arc::new(SimulatorEngine::new(BishopSimulator::new(
        BishopConfig::default(),
    )))
}

/// A breaker that opens within a handful of forced failures and re-probes
/// quickly, so an outage → recovery cycle fits in a test.
fn fast_breaker() -> BreakerConfig {
    BreakerConfig {
        window: 8,
        error_threshold: 0.5,
        min_observations: 4,
        cooldown: Duration::from_millis(300),
        half_open_probes: 1,
        ..BreakerConfig::default()
    }
}

/// An event sink that captures the emitted JSON lines for assertions.
#[derive(Clone, Default)]
struct CaptureSink(Arc<Mutex<Vec<u8>>>);

impl CaptureSink {
    fn text(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl std::io::Write for CaptureSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn availability_budget_burns_through_a_forced_outage_and_recovers() {
    // One availability objective over short windows so the whole
    // burn-and-recover arc fits in seconds; alert thresholds low enough
    // that a near-total outage in the fast window trips fast-burn.
    let hub = Arc::new(ObsHub::new(
        ObsConfig::default()
            .with_slos(vec![SloSpec::good_ratio(
                "availability",
                0.999,
                "requests.ok",
                "requests.finished",
            )
            .with_windows(5.0, 2.5)])
            .with_slo_tuning(SloTuning {
                fast_burn_threshold: 8.0,
                slow_burn_threshold: 6.0,
            }),
    ));
    let sink = CaptureSink::default();
    hub.events.set_sink(Box::new(sink.clone()));

    let injector = Arc::new(FaultInjectingEngine::new(simulator(), FaultPlan::new()));
    let registry =
        EngineRegistry::new().with_engine(Arc::clone(&injector) as Arc<dyn InferenceEngine>);
    let server = OnlineServer::start(
        OnlineConfig::new(RuntimeConfig::new(1, BatchPolicy::new(1)))
            .with_batch_timeout(Some(Duration::from_millis(2)))
            .with_registry(Arc::new(registry))
            .with_retry_policy(RetryPolicy::disabled())
            .with_breaker(fast_breaker())
            .with_obs(Arc::clone(&hub))
            .with_sampler(
                SamplerConfig::default()
                    .with_intervals(Duration::from_millis(1), Duration::from_millis(25)),
            ),
    );
    let handle = server.handle();
    let entry = default_mixed_models().into_iter().next().expect("catalog");
    let mut next_id = 0u64;
    let mut submit_one = |wait: bool| {
        let request = InferenceRequest::new(next_id, Arc::clone(&entry), next_id % 4);
        next_id += 1;
        if let Ok(ticket) = handle.try_submit(request) {
            if wait {
                let _ = ticket.wait();
            } else {
                let _ = ticket.wait_for(Duration::from_millis(250));
            }
        }
    };

    // Healthy baseline: the objective is met and no alert is active.
    let healthy_until = Instant::now() + Duration::from_millis(800);
    while Instant::now() < healthy_until {
        submit_one(true);
        std::thread::sleep(Duration::from_millis(10));
    }
    let status = &hub.slo.evaluate(&hub.timeseries, None)[0];
    assert_eq!(status.alert, SloAlert::Ok, "healthy baseline: {status:?}");
    assert!(status.compliance > 0.99, "{status:?}");

    // Forced outage: every execution fails until the breaker opens, then
    // admission sheds into the open breaker — both burn availability.
    injector.set_forced(true);
    let tripping = Instant::now();
    loop {
        assert!(
            tripping.elapsed() < Duration::from_secs(10),
            "fast-burn alert never fired; last status {:?}",
            hub.slo.evaluate(&hub.timeseries, None)[0]
        );
        submit_one(false);
        std::thread::sleep(Duration::from_millis(10));
        let status = &hub.slo.evaluate(&hub.timeseries, None)[0];
        if status.alert == SloAlert::FastBurn {
            assert!(status.error_budget_remaining < 1.0, "{status:?}");
            assert!(status.compliance < 1.0, "{status:?}");
            assert!(
                status.burn_rate_fast >= 8.0,
                "fast burn must clear its threshold: {status:?}"
            );
            break;
        }
    }

    // Recovery: the fault lifts, the breaker re-closes off a clean probe,
    // and once the outage ages out of the budget window the alert returns
    // to ok.
    injector.set_forced(false);
    let recovering = Instant::now();
    loop {
        assert!(
            recovering.elapsed() < Duration::from_secs(20),
            "objective never recovered; last status {:?}",
            hub.slo.evaluate(&hub.timeseries, None)[0]
        );
        submit_one(false);
        std::thread::sleep(Duration::from_millis(20));
        if hub.slo.evaluate(&hub.timeseries, None)[0].alert == SloAlert::Ok {
            break;
        }
    }

    server.shutdown();

    // The arc is on the event log: an edge-triggered fast-burn alert and
    // an edge-triggered recovery, tagged with the objective's name.
    let events = sink.text();
    assert!(
        events.contains("\"event\":\"slo_fast_burn\""),
        "missing fast-burn alert: {events}"
    );
    assert!(
        events.contains("\"event\":\"slo_recovered\""),
        "missing recovery event: {events}"
    );
    assert!(events.contains("\"slo\":\"availability\""), "{events}");
}

#[test]
fn profiler_attributes_a_saturating_native_flood_to_engine_execute() {
    // Two engines so the profiler must separate a saturated native worker
    // from an idle simulator worker; a fine profile interval so the flood
    // collects plenty of samples.
    let registry = EngineRegistry::new()
        .with_engine(simulator())
        .with_engine(Arc::new(NativeEngine::new()));
    let server = OnlineServer::start(
        OnlineConfig::new(RuntimeConfig::new(1, BatchPolicy::new(8)))
            .with_batch_timeout(Some(Duration::from_millis(2)))
            .with_registry(Arc::new(registry))
            .with_sampler(
                SamplerConfig::default()
                    .with_intervals(Duration::from_micros(500), Duration::from_millis(50)),
            ),
    );
    let handle = server.handle();
    let obs = Arc::clone(handle.obs());
    let entry = default_mixed_models().into_iter().next().expect("catalog");

    // Drop the startup idle time from the tallies, then flood: a backlog
    // deep enough that the native worker never waits for work.
    obs.profiler.reset();
    let tickets: Vec<_> = (0..96)
        .map(|id| {
            handle
                .try_submit(
                    InferenceRequest::new(id, Arc::clone(&entry), id % 8)
                        .with_engine(EngineName::native()),
                )
                .expect("flood admitted")
        })
        .collect();
    for ticket in tickets {
        assert!(matches!(ticket.wait(), Some(Ok(_))), "flood must succeed");
    }
    let report = obs.profiler.report();

    let execute = report.fraction("native", "worker", "engine_execute");
    assert!(
        execute >= 0.8,
        "saturated native worker must spend >= 80% of wall-clock executing, \
         got {execute:.3}; collapsed: {:?}",
        report.collapsed()
    );
    let sim_idle = report.fraction("simulator", "worker", "idle");
    assert!(
        sim_idle >= 0.9,
        "unloaded simulator worker must read idle, got {sim_idle:.3}"
    );
    assert!(
        report
            .collapsed()
            .iter()
            .any(|line| line.starts_with("native/worker;engine_execute ")),
        "collapsed stacks must carry the hot frame: {:?}",
        report.collapsed()
    );

    server.shutdown();
}

#[test]
fn sampler_final_scrape_lands_counters_for_a_short_lived_server() {
    let server = OnlineServer::start(
        OnlineConfig::new(RuntimeConfig::new(1, BatchPolicy::new(4)))
            .with_batch_timeout(Some(Duration::from_millis(2)))
            .with_sampler(
                SamplerConfig::default()
                    .with_intervals(Duration::from_millis(1), Duration::from_millis(10)),
            ),
    );
    let handle = server.handle();
    let obs = Arc::clone(handle.obs());
    let entry = default_mixed_models().into_iter().next().expect("catalog");
    // Let the sampler's first scrape establish the zero baseline before
    // traffic, so every finished request lands in the window deltas.
    std::thread::sleep(Duration::from_millis(30));
    let tickets: Vec<_> = (0..8)
        .map(|id| {
            handle
                .try_submit(InferenceRequest::new(id, Arc::clone(&entry), id))
                .expect("admitted")
        })
        .collect();
    for ticket in tickets {
        assert!(matches!(ticket.wait(), Some(Ok(_))));
    }
    server.shutdown();

    // The shutdown-path scrape guarantees the counters landed even if the
    // server lived for less than one metrics interval.
    let names = obs.timeseries.series_names();
    for required in [
        "requests.submitted",
        "requests.ok",
        "requests.finished",
        "queue_depth.all",
        "queue_depth.simulator",
        "engine.completed.simulator",
        "breaker_state.simulator",
    ] {
        assert!(
            names.iter().any(|n| n == required),
            "missing series {required}; got {names:?}"
        );
    }
    let now = obs.timeseries.now_seconds();
    assert!(obs.timeseries.window_sum("requests.ok", 120.0, now) >= 8.0);
    assert_eq!(
        obs.timeseries.window_sum("requests.failed", 120.0, now),
        0.0
    );
}

#[test]
fn compute_pool_lanes_register_profiler_slots_and_log_resolution() {
    // A forced pool width of 3 (independent of the host's core count) must
    // surface as three ("native", "compute") profiler lanes and one
    // structured boot line recording the resolved SIMD tier and width.
    let hub = Arc::new(ObsHub::default());
    let sink = CaptureSink::default();
    hub.events.set_sink(Box::new(sink.clone()));
    let server = OnlineServer::start(
        OnlineConfig::new(RuntimeConfig::new(1, BatchPolicy::sequential()))
            .with_native_compute_workers(3)
            .with_sampler(SamplerConfig::disabled())
            .with_obs(Arc::clone(&hub)),
    );
    let handle = server.handle();

    let events = sink.text();
    assert!(
        events.contains("\"event\":\"native_compute_resolved\""),
        "missing boot event: {events}"
    );
    assert!(events.contains("\"compute_workers\":3"), "{events}");
    assert!(
        ["scalar", "neon", "avx2", "avx512"]
            .iter()
            .any(|tier| events.contains(&format!("\"simd_tier\":\"{tier}\""))),
        "boot event must name a known SIMD tier: {events}"
    );

    // With the background sampler off, one manual sweep sees exactly the
    // three idle pool lanes under the "compute" kind.
    hub.profiler.sample(0.001);
    let report = hub.profiler.report();
    let row = report
        .entries
        .iter()
        .find(|entry| entry.engine == "native" && entry.kind == "compute")
        .expect("compute lanes must be registered with the profiler");
    assert_eq!(row.stage, "idle");
    assert_eq!(row.samples, 3);

    // And the width-3 pool actually serves: a native request fans its
    // timesteps across the lanes and still completes.
    let entry = default_mixed_models().into_iter().next().expect("catalog");
    let ticket = handle
        .try_submit(InferenceRequest::new(0, entry, 0).with_engine(EngineName::native()))
        .expect("admitted");
    assert!(matches!(ticket.wait(), Some(Ok(_))));
}
