//! Scheduling-domain behaviour: head-of-line isolation between engine
//! domains and deadline-aware `"auto"` engine selection.
//!
//! The isolation test reproduces the pre-domain failure mode — a flood of
//! slow `native` batches monopolizing the worker pool while cheap
//! `simulator` requests starve behind them — and asserts the per-engine
//! domains prevent it. The autoselection tests pin the dispatch policy: a
//! tight deadline degrades to the fast engine, a loose one gets real
//! execution, and an impossible one sheds typed.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bishop_engine::EngineName;
use bishop_runtime::{
    default_mixed_models, BatchPolicy, InferenceRequest, OnlineConfig, OnlineServer, Rejection,
    RuntimeConfig, Ticket,
};

/// The non-ECP catalog entry (cifar10-serve): executable on every engine.
fn baseline_entry() -> Arc<bishop_engine::CatalogEntry> {
    default_mixed_models()
        .into_iter()
        .find(|e| e.options.ecp_threshold.is_none())
        .expect("cifar entry serves baseline options")
}

#[test]
fn native_flood_does_not_head_of_line_block_simulator() {
    // One worker per domain — the configuration where the pre-domain
    // failure mode was total: a single shared worker would serve every
    // queued native batch before touching a simulator batch.
    let server = OnlineServer::start(
        OnlineConfig::new(RuntimeConfig::new(1, BatchPolicy::new(4)))
            .with_batch_timeout(Some(Duration::from_millis(1)))
            .with_max_pending(4096),
    );
    let handle = server.handle();
    let entry = baseline_entry();

    // Flood the native domain: 64 real CPU forward passes (batches of ≤ 4)
    // keep its single worker busy for a long stretch.
    let native_tickets: Vec<Ticket> = (0..64)
        .map(|i| {
            let request =
                InferenceRequest::new(i, Arc::clone(&entry), i).with_engine(EngineName::native());
            handle.try_submit(request).expect("admitted")
        })
        .collect();

    // Simulator traffic submitted *behind* the flood must still resolve
    // promptly: it rides its own domain, queue and worker.
    let started = Instant::now();
    let simulator_tickets: Vec<Ticket> = (0..16)
        .map(|i| {
            let request = InferenceRequest::new(1000 + i, Arc::clone(&entry), i)
                .with_engine(EngineName::simulator());
            handle.try_submit(request).expect("admitted")
        })
        .collect();
    for ticket in &simulator_tickets {
        ticket
            .wait_for(Duration::from_secs(10))
            .expect("simulator tickets resolve while the native flood runs")
            .expect("simulator executes");
    }
    let simulator_elapsed = started.elapsed();

    // The native flood must still be in progress when the last simulator
    // ticket resolved — i.e. the simulator traffic did NOT wait for it.
    let native_backlog_at_sim_done: usize = handle
        .engine_stats()
        .iter()
        .find(|e| e.engine == EngineName::native())
        .expect("native domain stats")
        .queue_depth;
    assert!(
        native_backlog_at_sim_done > 0,
        "the native flood should outlast the simulator traffic \
         (native queue drained in {simulator_elapsed:?}; widen the flood if \
          this machine is exceptionally fast)"
    );

    // Every native ticket still completes — isolation, not starvation.
    let native_started = Instant::now();
    for ticket in native_tickets {
        ticket
            .wait_for(Duration::from_secs(60))
            .expect("native tickets resolve")
            .expect("native executes");
    }
    let native_elapsed = native_started.elapsed();
    assert!(
        simulator_elapsed < native_elapsed + Duration::from_millis(1),
        "simulator traffic ({simulator_elapsed:?}) must not wait out the \
         native flood ({native_elapsed:?} more)"
    );

    let stats = server.shutdown();
    assert_eq!(stats.completed, 80);
    assert_eq!(stats.failed, 0);
    let per_engine = |name: &str| {
        stats
            .engines
            .iter()
            .find(|e| e.engine.as_str() == name)
            .expect("engine stats")
            .clone()
    };
    assert_eq!(per_engine("native").completed, 64);
    assert_eq!(per_engine("simulator").completed, 16);
    assert!(
        per_engine("native").drain_observations > 0,
        "native completions must feed calibration"
    );
}

#[test]
fn auto_routes_tight_deadlines_to_simulator_and_loose_ones_to_native() {
    // Pin the calibration seeds so the test controls the predictions:
    // native drains 1e3 ops/s (a cifar request of ~1e8 ops predicts ~1e5 s),
    // simulator drains 1e12 ops/s (the same request predicts ~100 µs).
    let server = OnlineServer::start(
        OnlineConfig::new(RuntimeConfig::new(1, BatchPolicy::new(1)))
            .with_batch_timeout(None)
            .with_engine_drain_seed(EngineName::native(), 1e3)
            .with_engine_drain_seed(EngineName::simulator(), 1e12),
    );
    let handle = server.handle();
    let entry = baseline_entry();
    let auto =
        |id: u64| InferenceRequest::new(id, Arc::clone(&entry), id).with_engine(EngineName::auto());

    // Tight deadline: native's predicted completion (~1e5 s) blows it,
    // simulator's (~100 µs) meets it — degrade to simulator.
    let tight = handle
        .try_submit_with_deadline(auto(0), Duration::from_millis(50))
        .expect("simulator meets the tight deadline");
    // Loose deadline: native's predicted completion fits — prefer real
    // execution.
    let loose = handle
        .try_submit_with_deadline(auto(1), Duration::from_secs(1_000_000))
        .expect("native meets the loose deadline");
    // No deadline at all: the most-preferred supporting engine (native).
    let unconstrained = handle.try_submit(auto(2)).expect("admitted");

    handle.flush();
    let tight = tight.wait().expect("resolved").expect("executed");
    let loose = loose.wait().expect("resolved").expect("executed");
    let unconstrained = unconstrained.wait().expect("resolved").expect("executed");
    assert_eq!(tight.engine(), "simulator", "tight deadline degrades");
    assert_eq!(
        loose.engine(),
        "native",
        "loose deadline gets real execution"
    );
    assert_eq!(
        unconstrained.engine(),
        "native",
        "no deadline prefers native"
    );

    let stats = server.shutdown();
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.admission.no_engine, 0);
}

#[test]
fn auto_sheds_typed_when_no_engine_meets_the_deadline() {
    // Both candidates seeded at 1 op/s: a ~1e8-op request predicts ~3 years
    // on either engine; any realistic deadline is unmeetable.
    let server = OnlineServer::start(
        OnlineConfig::new(RuntimeConfig::new(1, BatchPolicy::new(1)))
            .with_batch_timeout(None)
            .with_engine_drain_seed(EngineName::native(), 1.0)
            .with_engine_drain_seed(EngineName::simulator(), 1.0),
    );
    let handle = server.handle();
    let request = InferenceRequest::new(0, baseline_entry(), 1).with_engine(EngineName::auto());
    assert_eq!(
        handle
            .try_submit_with_deadline(request, Duration::from_secs(1))
            .err(),
        Some(Rejection::NoEngineMeetsDeadline)
    );
    let stats = server.shutdown();
    assert_eq!(stats.admission.no_engine, 1);
    assert_eq!(stats.completed, 0);
    assert_eq!(
        stats.completed + stats.admission.total(),
        stats.submitted,
        "every submission is accounted for"
    );
}

#[test]
fn auto_respects_deadlines_as_calibration_learns() {
    // Acceptance property: an "auto" request never resolves on an engine
    // whose predicted completion exceeded its deadline at admission. Drive
    // a stream of deadline'd auto requests while completions recalibrate
    // the drain rates; every admitted request must have been routed to an
    // engine that predicted in-budget completion (asserted structurally:
    // admission only returns a ticket when the dispatcher found one).
    let server = OnlineServer::start(
        OnlineConfig::new(RuntimeConfig::new(1, BatchPolicy::new(4)))
            .with_batch_timeout(Some(Duration::from_millis(1))),
    );
    let handle = server.handle();
    let entry = baseline_entry();
    let mut admitted = Vec::new();
    let mut shed = 0u64;
    for i in 0..32 {
        let request =
            InferenceRequest::new(i, Arc::clone(&entry), i % 4).with_engine(EngineName::auto());
        match handle.try_submit_with_deadline(request, Duration::from_millis(200)) {
            Ok(ticket) => admitted.push(ticket),
            Err(Rejection::NoEngineMeetsDeadline) => shed += 1,
            Err(other) => panic!("unexpected rejection {other}"),
        }
    }
    handle.flush();
    for ticket in admitted {
        let response = ticket
            .wait_for(Duration::from_secs(30))
            .expect("admitted auto requests resolve")
            .expect("executed");
        // Whatever engine won, it is a concrete registered one.
        assert!(
            response.engine() == "native" || response.engine() == "simulator",
            "auto resolved on unexpected engine {}",
            response.engine()
        );
    }
    let stats = server.shutdown();
    assert_eq!(stats.admission.no_engine, shed);
    assert_eq!(stats.completed + stats.admission.total(), stats.submitted);
}

#[test]
fn domain_worker_overrides_size_each_pool_independently() {
    let server = OnlineServer::start(
        OnlineConfig::new(RuntimeConfig::new(1, BatchPolicy::new(2)))
            .with_batch_timeout(None)
            .with_domain_workers(EngineName::simulator(), 3),
    );
    let handle = server.handle();
    let entry = baseline_entry();
    // 6 simulator singletons across 3 workers: worker indices 0..3 appear.
    let tickets: Vec<Ticket> = (0..6)
        .map(|i| {
            let request = InferenceRequest::new(i, Arc::clone(&entry), i);
            handle.try_submit(request).expect("admitted")
        })
        .collect();
    handle.flush();
    for ticket in tickets {
        let response = ticket.wait().expect("resolved").expect("executed");
        assert!(
            response.worker < 3,
            "worker index {} outside the overridden pool",
            response.worker
        );
    }
    server.shutdown();
}
