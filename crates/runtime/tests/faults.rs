//! Chaos suite: drives the serving stack's fault-tolerance machinery with
//! planned faults and proves the headline guarantees end to end —
//!
//! * an injected engine panic is contained by the worker: every batch-mate
//!   resolves to the typed [`EngineError::Panicked`] and the worker keeps
//!   serving the very next batch;
//! * retryable faults are retried with backoff inside the worker, each
//!   attempt visible as its own `engine_execute` span on the request trace;
//! * while `native` flaps, `"auto"` traffic silently degrades to the
//!   simulator with **zero** non-shed client-visible failures, the breaker
//!   open/half-open/close cycle is observable on `/v1/engines`, `/metrics`
//!   and the router decision record, and traffic returns to `native` once
//!   its breaker re-closes;
//! * `/healthz` turns 503 when every engine's breaker is open, and explicit
//!   requests into an open breaker get a typed `engine_unavailable` 503
//!   priced with the breaker's reopen deadline.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bishop_core::{BishopConfig, BishopSimulator};
use bishop_engine::{
    EngineError, EngineName, EngineRegistry, InferenceEngine, NativeEngine, SimulatorEngine,
};
use bishop_faults::{FaultInjectingEngine, FaultPlan, INJECTED_PANIC_MARKER};
use bishop_gateway::{Gateway, GatewayConfig, Json};
use bishop_runtime::{
    default_mixed_models, BatchPolicy, BreakerConfig, InferenceRequest, OnlineConfig, OnlineServer,
    RetryPolicy, RuntimeConfig, ServeError,
};

/// Installs (once, process-wide) a panic hook that swallows the payloads
/// [`FaultInjectingEngine`] raises on purpose — an injected panic crossing
/// the worker's `catch_unwind` is the expected outcome under test, not
/// noise — while chaining every other panic to the previous hook.
fn silence_injected_panics() {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains(INJECTED_PANIC_MARKER));
            if !injected {
                previous(info);
            }
        }));
    });
}

fn simulator() -> Arc<dyn InferenceEngine> {
    Arc::new(SimulatorEngine::new(BishopSimulator::new(
        BishopConfig::default(),
    )))
}

/// A fast breaker so open → half-open → close cycles fit in a test. The
/// cooldown is long enough that the open state is observable over several
/// HTTP roundtrips before a half-open probe is admitted, yet short enough
/// that two probe cycles fit comfortably in a test run.
fn fast_breaker() -> BreakerConfig {
    BreakerConfig {
        window: 8,
        error_threshold: 0.5,
        min_observations: 4,
        cooldown: Duration::from_secs(1),
        half_open_probes: 1,
        ..BreakerConfig::default()
    }
}

/// Sends raw bytes, reads until EOF, returns (status, full response text).
fn raw_roundtrip(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw).expect("send");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read reply");
    let status = reply
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {reply:?}"));
    (status, reply)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    raw_roundtrip(
        addr,
        format!("GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

fn infer_raw(body: &str) -> Vec<u8> {
    format!(
        "POST /v1/infer HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// The value of `name: ...` in the response head, if present.
fn header_value<'a>(reply: &'a str, name: &str) -> Option<&'a str> {
    let head = reply.split("\r\n\r\n").next().unwrap_or(reply);
    head.lines()
        .find_map(|line| line.strip_prefix(&format!("{name}: ")))
}

/// The parsed JSON body of a response.
fn body_json(reply: &str) -> Json {
    let body = reply
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .unwrap_or("");
    Json::parse(body).unwrap_or_else(|e| panic!("unparsable body {e}: {body:?}"))
}

/// The `/v1/engines` row for `name` (a flat array of engine objects).
fn engine_row(addr: SocketAddr, name: &str) -> Json {
    let (status, reply) = get(addr, "/v1/engines");
    assert_eq!(status, 200, "{reply}");
    let Json::Array(engines) = body_json(&reply) else {
        panic!("engines listing is not an array: {reply}");
    };
    engines
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some(name))
        .unwrap_or_else(|| panic!("no {name} row in {reply}"))
        .clone()
}

fn breaker_state_of(row: &Json) -> String {
    row.get("breaker_state")
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("engine row without breaker_state: {row:?}"))
        .to_string()
}

#[test]
fn injected_panic_resolves_every_batch_mate_typed_and_the_worker_survives() {
    silence_injected_panics();
    // One worker, one domain, retries off: the planned panic on the first
    // batch must surface typed instead of being masked by a retry.
    let registry = EngineRegistry::new().with_engine(Arc::new(FaultInjectingEngine::new(
        simulator(),
        FaultPlan::new().panic_at(0),
    )));
    let server = OnlineServer::start(
        OnlineConfig::new(RuntimeConfig::new(1, BatchPolicy::new(3)))
            .with_batch_timeout(Some(Duration::from_millis(5)))
            .with_registry(Arc::new(registry))
            .with_retry_policy(RetryPolicy::disabled()),
    );
    let handle = server.handle();
    let entry = default_mixed_models().into_iter().next().expect("catalog");

    // Three compatible requests fill the batch policy exactly: one batch,
    // one execute call, one planned panic.
    let tickets: Vec<_> = (0..3)
        .map(|id| {
            handle
                .try_submit(InferenceRequest::new(id, Arc::clone(&entry), 0))
                .expect("admitted")
        })
        .collect();
    for ticket in tickets {
        match ticket.wait() {
            Some(Err(ServeError::Engine(EngineError::Panicked { engine }))) => {
                assert_eq!(engine, "simulator");
            }
            other => panic!("batch-mate must resolve typed Panicked, got {other:?}"),
        }
    }

    // The worker that contained the panic is still serving.
    let ticket = handle
        .try_submit(InferenceRequest::new(99, Arc::clone(&entry), 0))
        .expect("admitted after panic");
    assert!(
        matches!(ticket.wait(), Some(Ok(_))),
        "the worker must keep serving after containing a panic"
    );

    let sim_stats = handle
        .engine_stats()
        .into_iter()
        .find(|e| e.engine == EngineName::simulator())
        .expect("simulator stats");
    assert_eq!(sim_stats.worker_panics, 1);
    assert_eq!(sim_stats.failed, 3);

    let stats = server.shutdown();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.failed, 3);
}

#[test]
fn retried_request_traces_one_engine_execute_span_per_attempt() {
    // The simulator fails its first two executions and succeeds on the
    // third: the default policy's three attempts recover the batch, and the
    // trace shows the whole story.
    let registry = EngineRegistry::new().with_engine(Arc::new(FaultInjectingEngine::new(
        simulator(),
        FaultPlan::new().fail_range(0, 2),
    )));
    let runtime = OnlineServer::start(
        OnlineConfig::new(RuntimeConfig::new(1, BatchPolicy::new(2)))
            .with_batch_timeout(Some(Duration::from_millis(5)))
            .with_registry(Arc::new(registry)),
    );
    let handle = runtime.handle();
    let gateway = Gateway::start(GatewayConfig::default(), runtime.handle()).expect("bind");
    let addr = gateway.local_addr();

    let (status, reply) = raw_roundtrip(
        addr,
        &infer_raw(r#"{"model": "cifar10-serve", "seed": 0, "trace": true}"#),
    );
    assert_eq!(status, 200, "{reply}");
    let body = body_json(&reply);
    let timings = body.get("timings").expect("timings when trace: true");
    assert_eq!(
        timings.get("retries").and_then(Json::as_u64),
        Some(2),
        "two failed attempts before the success: {reply}"
    );

    // One engine_execute span per attempt, monotone and non-overlapping.
    let Some(Json::Array(stages)) = timings.get("stages") else {
        panic!("timings without stages: {reply}");
    };
    let labels: Vec<&str> = stages
        .iter()
        .map(|s| s.get("stage").and_then(Json::as_str).unwrap())
        .collect();
    assert_eq!(
        labels,
        [
            "parse",
            "router",
            "admission",
            "queue_wait",
            "batch_formation",
            "engine_execute",
            "engine_execute",
            "engine_execute",
        ],
        "{reply}"
    );
    let mut previous_end = 0.0_f64;
    for stage in stages {
        let start = stage.get("start_seconds").and_then(Json::as_f64).unwrap();
        let end = stage.get("end_seconds").and_then(Json::as_f64).unwrap();
        assert!(start >= previous_end - 1e-9, "overlapping spans: {reply}");
        assert!(end >= start, "span ends before it starts: {reply}");
        previous_end = end;
    }

    let stats = handle
        .engine_stats()
        .into_iter()
        .find(|e| e.engine == EngineName::simulator())
        .expect("simulator stats");
    assert_eq!(stats.retries_attempted, 2);
    assert_eq!(stats.retries_recovered, 1);
    assert_eq!(stats.retries_exhausted, 0);

    gateway.shutdown();
    runtime.shutdown();
}

#[test]
fn auto_traffic_degrades_to_simulator_while_native_flaps_then_returns() {
    // Native flaps in deterministic bursts of two errors and one clean call
    // (three bursts, clean from call 9 on): every native-routed request
    // recovers within the three-attempt budget, the error rate still trips
    // the breaker, and once the plan runs clean a half-open probe re-closes
    // it. Throughout, no client ever sees a failure.
    let injector = Arc::new(FaultInjectingEngine::new(
        Arc::new(NativeEngine::new()),
        FaultPlan::new().flapping(0, 2, 1, 3),
    ));
    let registry = EngineRegistry::new()
        .with_engine(simulator())
        .with_engine(Arc::clone(&injector) as Arc<dyn InferenceEngine>);
    let runtime = OnlineServer::start(
        OnlineConfig::new(RuntimeConfig::new(1, BatchPolicy::new(2)))
            .with_batch_timeout(Some(Duration::from_millis(5)))
            .with_registry(Arc::new(registry))
            .with_breaker(fast_breaker()),
    );
    let handle = runtime.handle();
    let gateway = Gateway::start(GatewayConfig::default(), runtime.handle()).expect("bind");
    let addr = gateway.local_addr();

    let infer_auto = |seed: u64| -> (String, u64) {
        let body = format!(
            "{{\"model\": \"cifar10-serve\", \"seed\": {seed}, \
             \"engine\": \"auto\", \"trace\": true}}"
        );
        let (status, reply) = raw_roundtrip(addr, &infer_raw(&body));
        assert_eq!(status, 200, "auto requests must never fail: {reply}");
        let engine = body_json(&reply)
            .get("engine")
            .and_then(Json::as_str)
            .expect("served engine on the response")
            .to_string();
        let id = header_value(&reply, "X-Request-Id")
            .expect("request id header")
            .parse()
            .unwrap();
        (engine, id)
    };

    // Drive auto traffic until the native breaker opens. The first batches
    // are served by native through retries; their recorded failures trip
    // the breaker without a single client-visible error.
    let mut degraded_request = None;
    let opened = Instant::now();
    while breaker_state_of(&engine_row(addr, "native")) != "open" {
        assert!(
            opened.elapsed() < Duration::from_secs(10),
            "native breaker never opened"
        );
        infer_auto(0);
    }

    // With the breaker open, auto traffic lands on the simulator.
    for seed in 0..3 {
        let (engine, id) = infer_auto(seed);
        assert_eq!(engine, "simulator", "open breaker must divert traffic");
        degraded_request = Some(id);
    }

    // The degraded request's trace records why: native was skipped with its
    // breaker open, and the verdict names the fallback as degraded.
    let (status, reply) = get(
        addr,
        &format!("/v1/debug/traces/{}", degraded_request.expect("sent")),
    );
    assert_eq!(status, 200, "{reply}");
    let trace = body_json(&reply);
    let router = trace.get("router").expect("router record on the trace");
    let Some(Json::Array(candidates)) = router.get("candidates") else {
        panic!("router record without candidates: {reply}");
    };
    let native_candidate = candidates
        .iter()
        .find(|c| c.get("engine").and_then(Json::as_str) == Some("native"))
        .expect("native candidate on the record");
    assert_eq!(
        native_candidate.get("breaker_open").and_then(Json::as_bool),
        Some(true),
        "{reply}"
    );
    let verdict = router.get("verdict").expect("verdict");
    assert_eq!(
        verdict.get("outcome").and_then(Json::as_str),
        Some("degraded"),
        "{reply}"
    );
    assert_eq!(
        verdict.get("engine").and_then(Json::as_str),
        Some("simulator"),
        "{reply}"
    );

    // Keep trickling auto traffic: each cooldown expiry admits a half-open
    // probe to native. The first probe hits the tail of the flap (and
    // re-opens the breaker), a later one lands clean and closes it.
    let recovering = Instant::now();
    while breaker_state_of(&engine_row(addr, "native")) != "closed" {
        assert!(
            recovering.elapsed() < Duration::from_secs(10),
            "native breaker never re-closed"
        );
        infer_auto(1);
        std::thread::sleep(Duration::from_millis(30));
    }

    // Recovery is observable on every surface: the engines listing, the
    // metrics scrape, and fresh traffic choosing native un-degraded again.
    let row = engine_row(addr, "native");
    assert!(
        row.get("breaker_opened_total").and_then(Json::as_u64) >= Some(1),
        "{row:?}"
    );
    assert_eq!(row.get("worker_panics").and_then(Json::as_u64), Some(0));
    let (status, scrape) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        scrape.contains("bishop_breaker_state{engine=\"native\"} 0"),
        "closed breaker must scrape as 0: {scrape}"
    );
    assert!(
        scrape.contains("bishop_retries_total{engine=\"native\",outcome=\"recovered\"}"),
        "{scrape}"
    );
    let (engine, _) = infer_auto(2);
    assert_eq!(engine, "native", "recovered native takes traffic back");

    // Zero client-visible failures end to end, on either surface.
    let failed: u64 = handle.engine_stats().iter().map(|e| e.failed).sum();
    assert_eq!(failed, 0, "every batch must have recovered via retries");
    gateway.shutdown();
    let stats = runtime.shutdown();
    assert_eq!(stats.failed, 0);
    assert!(
        stats.admission.unavailable == 0,
        "auto is degraded, not shed"
    );
}

#[test]
fn healthz_and_explicit_requests_report_an_open_breaker_typed() {
    // A single-engine stack (the wrapped simulator) so "all breakers open"
    // is one forced outage away; a long cooldown keeps it open while the
    // assertions run.
    let injector = Arc::new(FaultInjectingEngine::new(simulator(), FaultPlan::new()));
    let registry =
        EngineRegistry::new().with_engine(Arc::clone(&injector) as Arc<dyn InferenceEngine>);
    let runtime = OnlineServer::start(
        OnlineConfig::new(RuntimeConfig::new(1, BatchPolicy::new(2)))
            .with_batch_timeout(Some(Duration::from_millis(5)))
            .with_registry(Arc::new(registry))
            .with_retry_policy(RetryPolicy::disabled())
            .with_breaker(BreakerConfig {
                window: 4,
                min_observations: 2,
                cooldown: Duration::from_secs(30),
                ..fast_breaker()
            }),
    );
    let gateway = Gateway::start(GatewayConfig::default(), runtime.handle()).expect("bind");
    let addr = gateway.local_addr();

    let (status, reply) = get(addr, "/healthz");
    assert_eq!(status, 200, "{reply}");
    assert_eq!(
        body_json(&reply).get("status").and_then(Json::as_str),
        Some("ok")
    );

    // Force the outage and fail requests until the breaker opens. Each
    // pre-open failure is a typed retryable 503.
    injector.set_forced(true);
    let body = r#"{"model": "cifar10-serve", "seed": 0, "engine": "simulator"}"#;
    let tripping = Instant::now();
    loop {
        let (status, reply) = raw_roundtrip(addr, &infer_raw(body));
        assert_eq!(status, 503, "{reply}");
        let code = body_json(&reply)
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .map(str::to_string)
            .expect("machine-readable error");
        assert!(
            header_value(&reply, "Retry-After").is_some(),
            "every 503 carries Retry-After: {reply}"
        );
        if code == "engine_unavailable" {
            // Priced from the breaker's reopen deadline (30 s cooldown).
            let retry_after: u64 = header_value(&reply, "Retry-After")
                .unwrap()
                .parse()
                .unwrap();
            assert!((1..=60).contains(&retry_after), "{reply}");
            break;
        }
        assert_eq!(code, "engine_transient", "{reply}");
        assert!(
            tripping.elapsed() < Duration::from_secs(10),
            "breaker never opened"
        );
    }

    // All engines' breakers are open: the instance is not ready.
    let (status, reply) = get(addr, "/healthz");
    assert_eq!(status, 503, "{reply}");
    let health = body_json(&reply);
    assert_eq!(
        health.get("status").and_then(Json::as_str),
        Some("unhealthy")
    );
    let row = engine_row(addr, "simulator");
    assert_eq!(breaker_state_of(&row), "open");
    assert!(
        row.get("breaker_reopen_seconds")
            .and_then(Json::as_f64)
            .is_some_and(|s| s > 0.0),
        "open breaker must advertise its reopen deadline: {row:?}"
    );

    // Recovery path still works: lift the outage — the breaker stays open
    // (cooldown), so health stays 503 until a probe would run; the typed
    // rejection is what clients see meanwhile.
    injector.set_forced(false);
    let (status, _) = raw_roundtrip(addr, &infer_raw(body));
    assert_eq!(status, 503, "open breaker sheds until its cooldown expires");

    gateway.shutdown();
    let stats = runtime.shutdown();
    assert!(stats.admission.unavailable >= 1);
    assert_eq!(stats.completed, 0);
}
