//! Online submission: the always-on serving path.
//!
//! Where [`BishopServer::serve`](crate::BishopServer::serve) replays a closed
//! trace, this module keeps a server *running*: clients call
//! [`ServerHandle::try_submit`] at any time and get back a [`Ticket`] that
//! resolves to the request's [`InferenceResponse`] once the batch it rode in
//! has been executed.
//!
//! ```text
//!  clients ──► admission ──► sync_channel(queue) ──► batcher thread ──► workers
//!              control         (bounded)             size-or-timeout     │ engine
//!              shed: queue     try_send: shed         TTB-aligned        │ registry
//!              depth/deadline  on full                batches            ▼
//!                                                                  per-ticket
//!                                                                  completion
//! ```
//!
//! **Admission control** sheds load with explicit [`Rejection`]s instead of
//! blocking: a request is rejected when the pending count reaches
//! `max_pending` (queue-depth shedding), when the bounded submission channel
//! is full, or when its deadline cannot be met given the admitted backlog
//! (estimated as `backlog_ops / drain_ops_per_second`). A shed request costs
//! the caller one atomic read — it never touches the batcher.
//!
//! **Batching** follows a size-*or-timeout* policy: a batch closes as soon
//! as `max_batch_size` compatible requests arrived, or when its oldest
//! member has waited `batch_timeout`. With `batch_timeout: None` batches
//! close only on size or an explicit [`ServerHandle::flush`] — the
//! timing-free mode the deterministic offline `serve` path is built on.
//!
//! **Execution** is pluggable: each worker resolves the batch's
//! [`EngineName`] through the server's
//! [`EngineRegistry`] and executes it on that backend. An engine refusal is
//! not a crash or a hang — the riders' tickets resolve to a typed
//! [`ServeError`] and the failure is counted in [`OnlineStats::failed`].

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bishop_engine::{
    CalibrationCache, EngineError, EngineName, EngineOutput, EngineRegistry, ResultCache,
};

use crate::batch::{config_ops, BatchFormer, BatchKey, Batchable, RequestBatch};
use crate::request::{InferenceRequest, InferenceResponse};
use crate::server::RuntimeConfig;

/// Why a submitted request failed to produce a response (as opposed to being
/// shed at admission, which is a [`Rejection`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request named an engine the server's registry does not hold.
    UnknownEngine(EngineName),
    /// The engine refused or failed to execute the batch.
    Engine(EngineError),
}

impl ServeError {
    /// A stable machine-readable code (the gateway's wire error codes).
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::UnknownEngine(_) => "unknown_engine",
            ServeError::Engine(error) => error.code(),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownEngine(name) => write!(f, "unknown engine \"{name}\""),
            ServeError::Engine(error) => error.fmt(f),
        }
    }
}

impl std::error::Error for ServeError {}

/// What one submitted request ultimately resolved to.
pub type ServeResult = Result<InferenceResponse, ServeError>;

/// Configuration of an [`OnlineServer`], wrapping the batch/worker
/// [`RuntimeConfig`] with the online-only knobs.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Worker pool, queue capacity, batching policy and hardware model.
    pub runtime: RuntimeConfig,
    /// Close a partially-filled batch once its oldest member has waited
    /// this long. `None` disables the timeout: batches close only on size
    /// or an explicit flush (the deterministic trace-replay mode).
    pub batch_timeout: Option<Duration>,
    /// Queue-depth admission cap: [`ServerHandle::try_submit`] sheds when
    /// this many requests are already admitted but not yet completed. `0`
    /// sheds everything (useful for overload tests).
    pub max_pending: usize,
    /// Calibrated drain rate (estimated dense ops the pool retires per
    /// wall-clock second) used by deadline admission to predict how long the
    /// admitted backlog will take to clear.
    pub drain_ops_per_second: f64,
    /// Record every executed batch for post-run report assembly. Leave off
    /// for long-running servers (the record grows without bound).
    pub record_batches: bool,
    /// Execution backends. `None` builds the full default registry
    /// (`simulator`, `native`, `ptb`, `gpu`) over the server's caches.
    pub registry: Option<Arc<EngineRegistry>>,
}

impl OnlineConfig {
    /// Online defaults on top of the given runtime configuration: 2 ms
    /// batch timeout, 1024 pending requests, no batch recording, default
    /// engine registry.
    pub fn new(runtime: RuntimeConfig) -> Self {
        Self {
            runtime,
            batch_timeout: Some(Duration::from_millis(2)),
            max_pending: 1024,
            drain_ops_per_second: 5e9,
            record_batches: false,
            registry: None,
        }
    }

    /// Overrides the batch timeout (`None` = close on size/flush only).
    pub fn with_batch_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.batch_timeout = timeout;
        self
    }

    /// Overrides the queue-depth admission cap.
    pub fn with_max_pending(mut self, max_pending: usize) -> Self {
        self.max_pending = max_pending;
        self
    }

    /// Overrides the calibrated drain rate used by deadline admission.
    pub fn with_drain_rate(mut self, ops_per_second: f64) -> Self {
        self.drain_ops_per_second = ops_per_second.max(1.0);
        self
    }

    /// Enables or disables executed-batch recording.
    pub fn with_record_batches(mut self, record: bool) -> Self {
        self.record_batches = record;
        self
    }

    /// Overrides the engine registry (e.g. to serve a custom backend or to
    /// restrict the served set).
    pub fn with_registry(mut self, registry: Arc<EngineRegistry>) -> Self {
        self.registry = Some(registry);
        self
    }
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self::new(RuntimeConfig::default())
    }
}

/// Why a submission was shed instead of admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// The admitted-but-uncompleted count reached `max_pending`, or the
    /// bounded submission channel was full.
    QueueFull,
    /// The admitted backlog is predicted to outlast the request's deadline.
    DeadlineUnmeetable,
    /// The server is shutting down and no longer admits work.
    ShuttingDown,
}

impl Rejection {
    /// A stable machine-readable code (the gateway's wire error codes).
    pub fn code(&self) -> &'static str {
        match self {
            Rejection::QueueFull => "queue_full",
            Rejection::DeadlineUnmeetable => "deadline_unmeetable",
            Rejection::ShuttingDown => "shutting_down",
        }
    }
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::QueueFull => f.write_str("submission queue full"),
            Rejection::DeadlineUnmeetable => f.write_str("deadline unmeetable under current load"),
            Rejection::ShuttingDown => f.write_str("server shutting down"),
        }
    }
}

impl std::error::Error for Rejection {}

/// Per-reason shed counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionStats {
    /// Requests shed because the queue (or pending cap) was full.
    pub queue_full: u64,
    /// Requests shed because their deadline was unmeetable.
    pub deadline: u64,
    /// Requests shed because the server was shutting down.
    pub shutdown: u64,
}

impl AdmissionStats {
    /// Total shed requests across all reasons.
    pub fn total(&self) -> u64 {
        self.queue_full + self.deadline + self.shutdown
    }
}

/// A point-in-time snapshot of an online server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    /// Requests offered to admission control (admitted + shed).
    pub submitted: u64,
    /// Requests admitted into the submission queue.
    pub admitted: u64,
    /// Requests whose batch executed successfully.
    pub completed: u64,
    /// Requests whose batch failed with a [`ServeError`] (typed refusal;
    /// the tickets resolved, nothing hung).
    pub failed: u64,
    /// Shed counters, by reason.
    pub admission: AdmissionStats,
    /// Batches executed by the worker pool.
    pub batches_executed: u64,
    /// Requests admitted but not yet completed.
    pub queue_depth: usize,
    /// Estimated dense ops of the admitted-but-uncompleted backlog.
    pub backlog_ops: u64,
    /// Total busy cycles reported by the engines.
    pub total_simulated_cycles: u64,
    /// Total energy in millijoules reported by the engines.
    pub total_energy_mj: f64,
    /// Mean per-request latency in seconds (on the engines' clocks).
    pub mean_latency_seconds: f64,
    /// Worst per-request latency in seconds.
    pub max_latency_seconds: f64,
}

/// Shared atomic counters behind every [`ServerHandle`] clone.
#[derive(Debug, Default)]
struct StatsCells {
    submitted: AtomicU64,
    admitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_deadline: AtomicU64,
    rejected_shutdown: AtomicU64,
    batches_executed: AtomicU64,
    pending: AtomicUsize,
    backlog_ops: AtomicU64,
    total_cycles: AtomicU64,
    energy_mj_bits: AtomicU64,
    latency_sum_bits: AtomicU64,
    latency_max_bits: AtomicU64,
    shutting_down: AtomicBool,
}

/// Lock-free `f64 += delta` on an `AtomicU64` holding the value's bits.
fn add_f64(cell: &AtomicU64, delta: f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(current) + delta).to_bits();
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(observed) => current = observed,
        }
    }
}

/// Lock-free `f64 = max(f64, value)` on an `AtomicU64` holding the bits.
fn max_f64(cell: &AtomicU64, value: f64) {
    let mut current = cell.load(Ordering::Relaxed);
    while value > f64::from_bits(current) {
        match cell.compare_exchange_weak(
            current,
            value.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(observed) => current = observed,
        }
    }
}

/// A pending claim on one submitted request's outcome.
#[derive(Debug)]
pub struct Ticket {
    request_id: u64,
    rx: mpsc::Receiver<ServeResult>,
}

impl Ticket {
    /// The id of the request this ticket tracks.
    pub fn request_id(&self) -> u64 {
        self.request_id
    }

    /// Blocks until the outcome is ready. Returns `None` only if the
    /// server dropped the request (shutdown mid-flight).
    pub fn wait(self) -> Option<ServeResult> {
        self.rx.recv().ok()
    }

    /// Waits up to `timeout` for the outcome.
    pub fn wait_for(&self, timeout: Duration) -> Option<ServeResult> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Returns the outcome if it is already available.
    pub fn try_wait(&self) -> Option<ServeResult> {
        self.rx.try_recv().ok()
    }
}

/// One admitted request travelling through the batcher: the request plus
/// its completion channel and cached cost estimate.
#[derive(Debug)]
struct PendingRequest {
    request: InferenceRequest,
    completion: mpsc::Sender<ServeResult>,
    estimated_ops: u64,
}

impl Batchable for PendingRequest {
    fn request(&self) -> &InferenceRequest {
        &self.request
    }
}

/// Messages flowing from handles into the batcher thread.
enum Submission {
    Request(Box<PendingRequest>),
    Flush(mpsc::Sender<()>),
    Shutdown,
}

/// One executed batch, recorded for post-run report assembly. (Per-request
/// worker attribution lives on the ticket responses, not here.)
#[derive(Debug)]
pub(crate) struct ExecutedBatch {
    pub(crate) batch: RequestBatch<InferenceRequest>,
    pub(crate) output: Arc<EngineOutput>,
}

/// A cloneable, thread-safe submission endpoint of an [`OnlineServer`].
#[derive(Debug, Clone)]
pub struct ServerHandle {
    tx: mpsc::SyncSender<Submission>,
    cells: Arc<StatsCells>,
    registry: Arc<EngineRegistry>,
    max_pending: usize,
    drain_ops_per_second: f64,
}

impl ServerHandle {
    /// Submits a request without a deadline; sheds (never blocks) when the
    /// queue-depth cap or the bounded channel is full.
    pub fn try_submit(&self, request: InferenceRequest) -> Result<Ticket, Rejection> {
        self.submit_inner(request, None, false)
    }

    /// Submits a request that is only worth serving if it can *start*
    /// within `deadline`: admission predicts the backlog drain time and
    /// sheds the request up front when the deadline is unmeetable.
    pub fn try_submit_with_deadline(
        &self,
        request: InferenceRequest,
        deadline: Duration,
    ) -> Result<Ticket, Rejection> {
        self.submit_inner(request, Some(deadline), false)
    }

    /// Submits a request, *blocking* on a full queue instead of shedding —
    /// the backpressure mode trace replay (`BishopServer::serve`) uses.
    /// Queue-depth and deadline admission do not apply; the only possible
    /// rejection is [`Rejection::ShuttingDown`].
    pub fn submit_blocking(&self, request: InferenceRequest) -> Result<Ticket, Rejection> {
        self.submit_inner(request, None, true)
    }

    fn submit_inner(
        &self,
        request: InferenceRequest,
        deadline: Option<Duration>,
        block: bool,
    ) -> Result<Ticket, Rejection> {
        let cells = &self.cells;
        cells.submitted.fetch_add(1, Ordering::Relaxed);
        if cells.shutting_down.load(Ordering::Acquire) {
            cells.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
            return Err(Rejection::ShuttingDown);
        }
        if !block {
            if cells.pending.load(Ordering::Acquire) >= self.max_pending {
                cells.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
                return Err(Rejection::QueueFull);
            }
            if let Some(deadline) = deadline {
                let backlog = cells.backlog_ops.load(Ordering::Acquire) as f64;
                if backlog / self.drain_ops_per_second > deadline.as_secs_f64() {
                    cells.rejected_deadline.fetch_add(1, Ordering::Relaxed);
                    return Err(Rejection::DeadlineUnmeetable);
                }
            }
        }

        let estimated_ops = config_ops(request.model());
        let request_id = request.id;
        let (completion, rx) = mpsc::channel();
        cells.pending.fetch_add(1, Ordering::AcqRel);
        cells.backlog_ops.fetch_add(estimated_ops, Ordering::AcqRel);
        let submission = Submission::Request(Box::new(PendingRequest {
            request,
            completion,
            estimated_ops,
        }));
        let outcome = if block {
            self.tx
                .send(submission)
                .map_err(|_| Rejection::ShuttingDown)
        } else {
            self.tx.try_send(submission).map_err(|error| match error {
                mpsc::TrySendError::Full(_) => Rejection::QueueFull,
                mpsc::TrySendError::Disconnected(_) => Rejection::ShuttingDown,
            })
        };
        match outcome {
            Ok(()) => {
                cells.admitted.fetch_add(1, Ordering::Relaxed);
                Ok(Ticket { request_id, rx })
            }
            Err(rejection) => {
                cells.pending.fetch_sub(1, Ordering::AcqRel);
                cells.backlog_ops.fetch_sub(estimated_ops, Ordering::AcqRel);
                match rejection {
                    Rejection::QueueFull => {
                        cells.rejected_queue_full.fetch_add(1, Ordering::Relaxed)
                    }
                    _ => cells.rejected_shutdown.fetch_add(1, Ordering::Relaxed),
                };
                Err(rejection)
            }
        }
    }

    /// Closes every partially-filled batch and waits until the batcher has
    /// dispatched them. Does not wait for execution — use the tickets.
    pub fn flush(&self) {
        let (ack_tx, ack_rx) = mpsc::channel();
        if self.tx.send(Submission::Flush(ack_tx)).is_ok() {
            let _ = ack_rx.recv();
        }
    }

    /// The engine registry this server executes on (what `GET /v1/engines`
    /// publishes).
    pub fn engines(&self) -> &Arc<EngineRegistry> {
        &self.registry
    }

    /// A point-in-time snapshot of the server's counters.
    pub fn stats(&self) -> OnlineStats {
        let c = &self.cells;
        let completed = c.completed.load(Ordering::Acquire);
        let latency_sum = f64::from_bits(c.latency_sum_bits.load(Ordering::Acquire));
        OnlineStats {
            submitted: c.submitted.load(Ordering::Acquire),
            admitted: c.admitted.load(Ordering::Acquire),
            completed,
            failed: c.failed.load(Ordering::Acquire),
            admission: AdmissionStats {
                queue_full: c.rejected_queue_full.load(Ordering::Acquire),
                deadline: c.rejected_deadline.load(Ordering::Acquire),
                shutdown: c.rejected_shutdown.load(Ordering::Acquire),
            },
            batches_executed: c.batches_executed.load(Ordering::Acquire),
            queue_depth: c.pending.load(Ordering::Acquire),
            backlog_ops: c.backlog_ops.load(Ordering::Acquire),
            total_simulated_cycles: c.total_cycles.load(Ordering::Acquire),
            total_energy_mj: f64::from_bits(c.energy_mj_bits.load(Ordering::Acquire)),
            mean_latency_seconds: if completed == 0 {
                0.0
            } else {
                latency_sum / completed as f64
            },
            max_latency_seconds: f64::from_bits(c.latency_max_bits.load(Ordering::Acquire)),
        }
    }
}

/// The always-on serving stack: batcher thread + worker pool over a
/// pluggable engine registry, fed through cloneable [`ServerHandle`]s.
#[derive(Debug)]
pub struct OnlineServer {
    handle: ServerHandle,
    batcher: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    executed: Arc<Mutex<Vec<ExecutedBatch>>>,
}

impl OnlineServer {
    /// Starts a server with fresh caches (and, unless the config overrides
    /// it, the default engine registry over those caches).
    pub fn start(config: OnlineConfig) -> Self {
        Self::with_caches(
            config,
            Arc::new(CalibrationCache::new()),
            Arc::new(ResultCache::new()),
        )
    }

    /// Starts a server sharing existing calibration/result caches.
    pub fn with_caches(
        config: OnlineConfig,
        cache: Arc<CalibrationCache>,
        results: Arc<ResultCache>,
    ) -> Self {
        let registry = config.registry.clone().unwrap_or_else(|| {
            Arc::new(EngineRegistry::serving_default(
                &config.runtime.hardware,
                cache,
                results,
            ))
        });
        let workers = config.runtime.workers;
        let bundle = config.runtime.hardware.bundle;
        let cells = Arc::new(StatsCells::default());
        let executed = Arc::new(Mutex::new(Vec::new()));

        let (submit_tx, submit_rx) =
            mpsc::sync_channel::<Submission>(config.runtime.queue_capacity);
        let mut batch_txs = Vec::with_capacity(workers);
        let mut worker_handles = Vec::with_capacity(workers);
        for index in 0..workers {
            let (tx, rx) = mpsc::channel::<RequestBatch<PendingRequest>>();
            batch_txs.push(tx);
            worker_handles.push(spawn_worker(
                index,
                rx,
                Arc::clone(&registry),
                Arc::clone(&cells),
                config.record_batches.then(|| Arc::clone(&executed)),
                bundle,
            ));
        }

        let batcher = spawn_batcher(
            submit_rx,
            batch_txs,
            Arc::clone(&registry),
            config.runtime.batching,
            config.batch_timeout,
            bundle,
        );

        let handle = ServerHandle {
            tx: submit_tx,
            cells,
            registry,
            max_pending: config.max_pending,
            drain_ops_per_second: config.drain_ops_per_second.max(1.0),
        };
        Self {
            handle,
            batcher,
            workers: worker_handles,
            executed,
        }
    }

    /// A new submission handle; clone freely across threads.
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// The engine registry this server executes on.
    pub fn engines(&self) -> &Arc<EngineRegistry> {
        &self.handle.registry
    }

    /// A point-in-time snapshot of the server's counters.
    pub fn stats(&self) -> OnlineStats {
        self.handle.stats()
    }

    /// Graceful shutdown: stop admitting, drain already-admitted requests,
    /// execute their batches, join every thread, and report final stats.
    pub fn shutdown(self) -> OnlineStats {
        self.shutdown_with_batches().0
    }

    /// Shutdown that also returns the recorded executed batches (empty
    /// unless `record_batches` was set).
    pub(crate) fn shutdown_with_batches(self) -> (OnlineStats, Vec<ExecutedBatch>) {
        self.handle
            .cells
            .shutting_down
            .store(true, Ordering::Release);
        let _ = self.handle.tx.send(Submission::Shutdown);
        let _ = self.batcher.join();
        for worker in self.workers {
            let _ = worker.join();
        }
        let stats = self.handle.stats();
        let executed = std::mem::take(&mut *self.executed.lock().expect("executed lock"));
        (stats, executed)
    }
}

/// Most riders one batch may hold for `request`'s engine: the largest count
/// whose *padded* fold (batched timesteps rounded up to the bundle multiple
/// `BSt`) stays within the engine's folded-timestep limit, so coalescing
/// never builds a batch the engine is known to refuse while each rider
/// alone would execute. (A model whose singleton fold already pads past the
/// limit caps at 1 and surfaces the engine's typed refusal.)
fn engine_batch_cap(
    registry: &EngineRegistry,
    request: &InferenceRequest,
    bundle: bishop_bundle::BundleShape,
) -> usize {
    registry
        .get(request.engine.as_str())
        .and_then(|engine| engine.descriptor().max_folded_timesteps)
        .map(|limit| {
            // Padding rounds folds up to a multiple of BSt, so the usable
            // budget is the largest such multiple at or below the limit.
            let usable = (limit / bundle.timesteps.max(1)) * bundle.timesteps.max(1);
            (usable / request.model().timesteps.max(1)).max(1)
        })
        .unwrap_or(usize::MAX)
}

/// Spawns the batcher thread: drains the submission channel, forms
/// size-or-timeout batches (capped at the target engine's fold limit), and
/// dispatches them least-loaded.
fn spawn_batcher(
    submit_rx: mpsc::Receiver<Submission>,
    batch_txs: Vec<mpsc::Sender<RequestBatch<PendingRequest>>>,
    registry: Arc<EngineRegistry>,
    policy: crate::batch::BatchPolicy,
    batch_timeout: Option<Duration>,
    bundle: bishop_bundle::BundleShape,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let workers = batch_txs.len();
        let mut former = BatchFormer::<PendingRequest>::new(policy);
        // Open keys in arrival order of their oldest member, for the
        // timeout policy. Entries leave when their batch closes.
        let mut ages: Vec<(Instant, BatchKey)> = Vec::new();
        let mut load = vec![0u64; workers];
        let dispatch = |batch: RequestBatch<PendingRequest>, load: &mut [u64]| {
            let target = (0..workers)
                .min_by_key(|&w| (load[w], w))
                .expect("at least one worker");
            load[target] += batch.estimated_ops(bundle);
            // A worker hanging up mid-shutdown drops the batch; its tickets
            // resolve to `None` rather than deadlocking.
            let _ = batch_txs[target].send(batch);
        };

        'run: loop {
            // Wait for the next message, or — with a timeout policy and an
            // open batch — until the oldest open batch comes due.
            let message = match (batch_timeout, ages.first()) {
                (Some(timeout), Some((opened, _))) => {
                    let due = *opened + timeout;
                    match due.checked_duration_since(Instant::now()) {
                        None => None, // already due: close aged batches below
                        Some(wait) => match submit_rx.recv_timeout(wait) {
                            Ok(message) => Some(message),
                            Err(mpsc::RecvTimeoutError::Timeout) => None,
                            Err(mpsc::RecvTimeoutError::Disconnected) => break 'run,
                        },
                    }
                }
                _ => match submit_rx.recv() {
                    Ok(message) => Some(message),
                    Err(_) => break 'run,
                },
            };

            match message {
                Some(Submission::Request(pending)) => {
                    let key = BatchKey::from(pending.request());
                    let cap = engine_batch_cap(&registry, pending.request(), bundle);
                    let newly_opened = former.pending_count(&key) == 0;
                    match former.push_capped(*pending, cap) {
                        Some(batch) => {
                            ages.retain(|(_, k)| *k != key);
                            dispatch(batch, &mut load);
                        }
                        None if newly_opened => ages.push((Instant::now(), key)),
                        None => {}
                    }
                }
                Some(Submission::Flush(ack)) => {
                    for batch in former.flush() {
                        dispatch(batch, &mut load);
                    }
                    ages.clear();
                    let _ = ack.send(());
                }
                Some(Submission::Shutdown) => {
                    // Drain whatever raced in behind the shutdown marker so
                    // already-admitted requests still get served.
                    while let Ok(message) = submit_rx.try_recv() {
                        match message {
                            Submission::Request(pending) => {
                                let cap = engine_batch_cap(&registry, pending.request(), bundle);
                                if let Some(batch) = former.push_capped(*pending, cap) {
                                    dispatch(batch, &mut load);
                                }
                            }
                            Submission::Flush(ack) => {
                                let _ = ack.send(());
                            }
                            Submission::Shutdown => {}
                        }
                    }
                    break 'run;
                }
                None => {
                    // Timeout tick: close every batch whose oldest member
                    // has waited past the policy timeout.
                    let timeout = batch_timeout.expect("timeout tick implies a timeout policy");
                    let now = Instant::now();
                    while let Some((opened, _)) = ages.first() {
                        if *opened + timeout > now {
                            break;
                        }
                        let (_, key) = ages.remove(0);
                        if let Some(batch) = former.close_key(&key) {
                            dispatch(batch, &mut load);
                        }
                    }
                }
            }
        }

        for batch in former.flush() {
            dispatch(batch, &mut load);
        }
        // Dropping the senders lets every worker drain its queue and exit.
    })
}

/// Spawns one worker: executes batches on whichever engine each batch names.
fn spawn_worker(
    index: usize,
    batch_rx: mpsc::Receiver<RequestBatch<PendingRequest>>,
    registry: Arc<EngineRegistry>,
    cells: Arc<StatsCells>,
    record: Option<Arc<Mutex<Vec<ExecutedBatch>>>>,
    bundle: bishop_bundle::BundleShape,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        for batch in batch_rx {
            let outcome = match registry.get(batch.engine().as_str()) {
                None => Err(ServeError::UnknownEngine(batch.engine().clone())),
                Some(engine) => engine
                    .execute(&batch.engine_batch(bundle))
                    .map_err(ServeError::Engine),
            };
            let batch_size = batch.len();

            match outcome {
                Ok(output) => {
                    let output = Arc::new(output);
                    let latency = output.latency_seconds;
                    cells.batches_executed.fetch_add(1, Ordering::AcqRel);
                    cells
                        .total_cycles
                        .fetch_add(output.cycles, Ordering::AcqRel);
                    add_f64(&cells.energy_mj_bits, output.energy_mj);
                    add_f64(&cells.latency_sum_bits, latency * batch_size as f64);
                    max_f64(&cells.latency_max_bits, latency);

                    if let Some(record) = &record {
                        record.lock().expect("executed lock").push(ExecutedBatch {
                            batch: RequestBatch {
                                id: batch.id,
                                requests: batch
                                    .requests
                                    .iter()
                                    .map(|p| p.request.clone())
                                    .collect(),
                            },
                            output: Arc::clone(&output),
                        });
                    }

                    for pending in batch.requests {
                        let response = InferenceResponse {
                            request_id: pending.request.id,
                            batch_id: batch.id,
                            batch_size,
                            worker: index,
                            latency_seconds: latency,
                            output: Arc::clone(&output),
                        };
                        cells
                            .backlog_ops
                            .fetch_sub(pending.estimated_ops, Ordering::AcqRel);
                        cells.pending.fetch_sub(1, Ordering::AcqRel);
                        cells.completed.fetch_add(1, Ordering::AcqRel);
                        let _ = pending.completion.send(Ok(response));
                    }
                }
                Err(error) => {
                    for pending in batch.requests {
                        cells
                            .backlog_ops
                            .fetch_sub(pending.estimated_ops, Ordering::AcqRel);
                        cells.pending.fetch_sub(1, Ordering::AcqRel);
                        cells.failed.fetch_add(1, Ordering::AcqRel);
                        let _ = pending.completion.send(Err(error.clone()));
                    }
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchPolicy;
    use crate::request::{default_mixed_models, mixed_trace};
    use bishop_core::SimOptions;

    fn online(policy: BatchPolicy, timeout: Option<Duration>) -> OnlineServer {
        OnlineServer::start(
            OnlineConfig::new(RuntimeConfig::new(2, policy)).with_batch_timeout(timeout),
        )
    }

    #[test]
    fn ticket_resolves_with_the_request_id() {
        let server = online(BatchPolicy::new(4), None);
        let handle = server.handle();
        let trace = mixed_trace(&default_mixed_models(), 4, 2, 9);
        let tickets: Vec<Ticket> = trace
            .into_iter()
            .map(|r| handle.try_submit(r).expect("admitted"))
            .collect();
        handle.flush();
        for (i, ticket) in tickets.into_iter().enumerate() {
            assert_eq!(ticket.request_id(), i as u64);
            let response = ticket
                .wait()
                .expect("response delivered")
                .expect("simulator engine never fails");
            assert_eq!(response.request_id, i as u64);
            assert!(response.latency_seconds > 0.0);
            assert_eq!(response.engine(), "simulator");
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.admission, AdmissionStats::default());
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.backlog_ops, 0);
    }

    #[test]
    fn timeout_closes_partial_batches_without_flush() {
        let server = online(BatchPolicy::new(64), Some(Duration::from_millis(2)));
        let handle = server.handle();
        let trace = mixed_trace(&default_mixed_models(), 2, 1, 3);
        let tickets: Vec<Ticket> = trace
            .into_iter()
            .map(|r| handle.try_submit(r).expect("admitted"))
            .collect();
        for ticket in tickets {
            let response = ticket
                .wait()
                .expect("timeout closed the batch")
                .expect("executed");
            assert!(response.batch_size < 64);
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_rejects_new_submissions() {
        let server = online(BatchPolicy::new(4), None);
        let handle = server.handle();
        server.shutdown();
        let request = mixed_trace(&default_mixed_models(), 1, 1, 5).pop().unwrap();
        assert_eq!(
            handle.try_submit(request).err(),
            Some(Rejection::ShuttingDown)
        );
        assert_eq!(handle.stats().admission.shutdown, 1);
    }

    #[test]
    fn unknown_engine_resolves_tickets_with_a_typed_error() {
        let server = online(BatchPolicy::new(1), None);
        let handle = server.handle();
        let request = mixed_trace(&default_mixed_models(), 1, 1, 5)
            .pop()
            .unwrap()
            .with_engine(EngineName::from("tpu"));
        let ticket = handle
            .try_submit(request)
            .expect("admission is engine-agnostic");
        handle.flush();
        let outcome = ticket.wait().expect("ticket resolves");
        assert_eq!(
            outcome,
            Err(ServeError::UnknownEngine(EngineName::from("tpu")))
        );
        let stats = server.shutdown();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.queue_depth, 0, "failures drain the queue");
        assert_eq!(stats.backlog_ops, 0);
    }

    #[test]
    fn engine_refusals_resolve_tickets_with_the_engine_error() {
        // The native engine has no ECP path: requests routing an ECP model
        // there fail typed, not silently and not hanging.
        let server = online(BatchPolicy::new(1), None);
        let handle = server.handle();
        let entry = default_mixed_models()
            .into_iter()
            .find(|e| e.options == SimOptions::with_ecp(6))
            .expect("imagenet entry defaults to ECP");
        let request = InferenceRequest::new(0, entry, 1).with_engine(EngineName::native());
        let ticket = handle.try_submit(request).expect("admitted");
        handle.flush();
        let outcome = ticket.wait().expect("ticket resolves");
        let error = outcome.expect_err("native must refuse ECP");
        assert_eq!(error.code(), "ecp_unsupported");
        assert_eq!(server.shutdown().failed, 1);
    }

    #[test]
    fn batcher_caps_coalescing_at_the_engine_fold_limit() {
        // The native engine caps batches at 1024 folded timesteps. A model
        // spanning 300 timesteps may share a batch with at most 3 peers
        // (3 × 300 ≤ 1024 < 4 × 300) even under a much larger batch policy
        // — no request may fail `batch_too_large` because of coalescing.
        use bishop_engine::CatalogEntry;
        use bishop_model::{DatasetKind, ModelConfig};

        let server = online(BatchPolicy::new(8), None);
        let handle = server.handle();
        let entry = CatalogEntry::new(
            ModelConfig::new("fold-cap", DatasetKind::Cifar10, 1, 300, 4, 16, 2),
            bishop_bundle::TrainingRegime::Bsa,
            SimOptions::baseline(),
        );
        let tickets: Vec<Ticket> = (0..6)
            .map(|i| {
                let request = InferenceRequest::new(i, Arc::clone(&entry), i)
                    .with_engine(EngineName::native());
                handle.try_submit(request).expect("admitted")
            })
            .collect();
        handle.flush();
        for ticket in tickets {
            let response = ticket
                .wait()
                .expect("ticket resolves")
                .expect("capped batches stay within the engine's fold limit");
            assert!(
                response.batch_size <= 3,
                "batch of {} exceeds the fold cap",
                response.batch_size
            );
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn f64_cells_accumulate_and_max() {
        let cell = AtomicU64::new(0);
        add_f64(&cell, 1.5);
        add_f64(&cell, 2.25);
        assert_eq!(f64::from_bits(cell.load(Ordering::Relaxed)), 3.75);
        let max_cell = AtomicU64::new(0);
        max_f64(&max_cell, 2.0);
        max_f64(&max_cell, 1.0);
        assert_eq!(f64::from_bits(max_cell.load(Ordering::Relaxed)), 2.0);
    }
}
