//! The serving loop: bounded submission queue → batch former → worker pool.
//!
//! ```text
//!  clients ──► sync_channel(queue_capacity) ──► BatchFormer ──► least-loaded
//!                    (backpressure)             (timing-free)    dispatch
//!                                                                   │
//!                              ┌────────────────────┬───────────────┤
//!                              ▼                    ▼               ▼
//!                         worker 0             worker 1  …     worker N-1
//!                     (BishopSimulator)    (BishopSimulator)  (one chip each)
//!                              └──────────┬─────────┴───────────────┘
//!                                         ▼
//!                                  ThroughputReport
//! ```
//!
//! Determinism: batch formation depends only on submission order, worker
//! assignment only on deterministic cost estimates, and each batch's
//! simulation only on its members — so the report's [`ServingAggregates`]
//! are identical for any worker count. Only [`WallClockStats`] varies.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

use bishop_core::{BishopConfig, BishopSimulator, RunMetrics};

use crate::batch::{BatchFormer, BatchPolicy, RequestBatch};
use crate::cache::{CalibrationCache, ResultCache, ResultKey, WorkloadKey};
use crate::report::{
    CoreUtilization, LatencyPercentiles, ServingAggregates, ThroughputReport, WallClockStats,
};
use crate::request::{InferenceRequest, InferenceResponse};

/// Configuration of a [`BishopServer`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of worker threads; each models one Bishop chip instance.
    pub workers: usize,
    /// Capacity of the bounded submission queue (submitters block when it
    /// is full — backpressure instead of unbounded memory growth).
    pub queue_capacity: usize,
    /// Batch-former policy.
    pub batching: BatchPolicy,
    /// Hardware configuration shared by every chip instance.
    pub hardware: BishopConfig,
}

impl RuntimeConfig {
    /// A batched multi-worker configuration.
    pub fn new(workers: usize, batching: BatchPolicy) -> Self {
        Self {
            workers: workers.max(1),
            queue_capacity: 256,
            batching,
            hardware: BishopConfig::default(),
        }
    }

    /// The sequential baseline: one worker, no batching. This is what a
    /// single-shot simulation loop over the trace would do.
    pub fn sequential() -> Self {
        Self::new(1, BatchPolicy::sequential())
    }

    /// Overrides the submission-queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Overrides the hardware configuration.
    pub fn with_hardware(mut self, hardware: BishopConfig) -> Self {
        self.hardware = hardware;
        self
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self::new(4, BatchPolicy::default())
    }
}

/// Everything a serving run produces.
#[derive(Debug, Clone)]
pub struct ServingOutcome {
    /// One response per request, sorted by request id.
    pub responses: Vec<InferenceResponse>,
    /// The run's throughput report.
    pub report: ThroughputReport,
}

/// One executed batch travelling from a worker back to the collector.
struct ExecutedBatch {
    worker: usize,
    batch: RequestBatch,
    metrics: Arc<RunMetrics>,
}

/// The batched multi-core inference server.
#[derive(Debug)]
pub struct BishopServer {
    config: RuntimeConfig,
    simulator: BishopSimulator,
    cache: Arc<CalibrationCache>,
    results: Arc<ResultCache>,
}

impl BishopServer {
    /// Creates a server with fresh caches.
    pub fn new(config: RuntimeConfig) -> Self {
        Self::with_cache(config, Arc::new(CalibrationCache::new()))
    }

    /// Creates a server sharing an existing calibration cache (e.g. warmed
    /// by a previous run or shared between servers).
    pub fn with_cache(config: RuntimeConfig, cache: Arc<CalibrationCache>) -> Self {
        let simulator = BishopSimulator::new(config.hardware.clone());
        Self {
            config,
            simulator,
            cache,
            results: Arc::new(ResultCache::new()),
        }
    }

    /// The server configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The calibration (workload synthesis) cache backing this server.
    pub fn cache(&self) -> &Arc<CalibrationCache> {
        &self.cache
    }

    /// The batch result cache backing this server.
    pub fn result_cache(&self) -> &Arc<ResultCache> {
        &self.results
    }

    /// Serves a traffic trace end to end and reports per-request responses
    /// plus the run's [`ThroughputReport`].
    ///
    /// The trace is pushed through the bounded submission queue by a
    /// dedicated submitter thread (exercising backpressure), formed into
    /// batches in submission order, dispatched least-loaded across the
    /// worker pool, and collected back into responses sorted by request id.
    pub fn serve(&self, trace: Vec<InferenceRequest>) -> ServingOutcome {
        let start = Instant::now();
        let cache_before = self.cache.stats();
        let results_before = self.results.stats();
        let workers = self.config.workers;
        let bundle = self.config.hardware.bundle;

        let (submit_tx, submit_rx) =
            mpsc::sync_channel::<InferenceRequest>(self.config.queue_capacity);
        let (result_tx, result_rx) = mpsc::channel::<ExecutedBatch>();
        let mut batch_txs = Vec::with_capacity(workers);
        let mut batch_rxs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = mpsc::channel::<RequestBatch>();
            batch_txs.push(tx);
            batch_rxs.push(rx);
        }

        let executed = std::thread::scope(|scope| {
            // Submitter: pushes the trace through the bounded queue.
            scope.spawn(move || {
                for request in trace {
                    if submit_tx.send(request).is_err() {
                        break;
                    }
                }
            });

            // Workers: one simulated chip instance each.
            for (index, batch_rx) in batch_rxs.into_iter().enumerate() {
                let result_tx = result_tx.clone();
                let simulator = self.simulator.clone();
                let cache = Arc::clone(&self.cache);
                let results = Arc::clone(&self.results);
                scope.spawn(move || {
                    for batch in batch_rx {
                        let options = batch.options();
                        let config = batch.batched_config(bundle);
                        let regime = batch.requests[0].regime;
                        let workload_key = WorkloadKey::new(&config, regime, batch.combined_seed());
                        let result_key = ResultKey {
                            workload: workload_key,
                            options,
                        };
                        // Two memoization levels: identical batches reuse the
                        // whole simulated result; batches sharing a workload
                        // but not options reuse the synthesized trace.
                        let metrics = results.get_or_simulate(result_key, || {
                            let workload =
                                cache.get_or_build(&config, regime, batch.combined_seed());
                            simulator.simulate_named(&workload, &options, config.name.clone())
                        });
                        let sent = result_tx.send(ExecutedBatch {
                            worker: index,
                            batch,
                            metrics,
                        });
                        if sent.is_err() {
                            break;
                        }
                    }
                });
            }
            drop(result_tx);

            // Batch former + least-loaded dispatcher (this thread).
            let mut former = BatchFormer::new(self.config.batching);
            let mut load = vec![0u64; workers];
            let dispatch = |batch: RequestBatch, load: &mut [u64]| {
                let target = (0..workers)
                    .min_by_key(|&w| (load[w], w))
                    .expect("at least one worker");
                load[target] += batch.estimated_ops(bundle);
                batch_txs[target].send(batch).expect("worker alive");
            };
            for request in submit_rx {
                if let Some(batch) = former.push(request) {
                    dispatch(batch, &mut load);
                }
            }
            for batch in former.flush() {
                dispatch(batch, &mut load);
            }
            drop(batch_txs);

            // Collector: drains until every worker hung up.
            let mut executed: Vec<ExecutedBatch> = result_rx.iter().collect();
            executed.sort_by_key(|e| e.batch.id);
            executed
        });

        let elapsed = start.elapsed().as_secs_f64();
        self.assemble(executed, elapsed, cache_before, results_before)
    }

    fn assemble(
        &self,
        executed: Vec<ExecutedBatch>,
        elapsed_seconds: f64,
        cache_before: crate::cache::CacheStats,
        results_before: crate::cache::CacheStats,
    ) -> ServingOutcome {
        let mut responses = Vec::new();
        let mut latencies = Vec::new();
        for e in &executed {
            let latency = e.metrics.total_latency_seconds();
            for request in &e.batch.requests {
                latencies.push(latency);
                responses.push(InferenceResponse {
                    request_id: request.id,
                    batch_id: e.batch.id,
                    batch_size: e.batch.len(),
                    worker: e.worker,
                    latency_seconds: latency,
                    batch_metrics: Arc::clone(&e.metrics),
                });
            }
        }
        responses.sort_by_key(|r| r.request_id);

        let requests = responses.len() as u64;
        let batches = executed.len() as u64;
        let total_simulated_cycles: u64 = executed.iter().map(|e| e.metrics.total_cycles()).sum();
        let total_energy_mj: f64 = executed.iter().map(|e| e.metrics.total_energy_mj()).sum();
        let busy_seconds = total_simulated_cycles as f64 / self.config.hardware.clock_hz;
        let aggregates = ServingAggregates {
            requests,
            batches,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                requests as f64 / batches as f64
            },
            latency: LatencyPercentiles::from_latencies(&latencies),
            total_simulated_cycles,
            simulated_requests_per_chip_second: if busy_seconds == 0.0 {
                0.0
            } else {
                requests as f64 / busy_seconds
            },
            total_energy_mj,
            utilization: CoreUtilization::from_runs(executed.iter().map(|e| e.metrics.as_ref())),
            cache: self.cache.stats().since(&cache_before),
            result_cache: self.results.stats().since(&results_before),
        };
        let wall = WallClockStats {
            elapsed_seconds,
            requests_per_second: if elapsed_seconds == 0.0 {
                0.0
            } else {
                requests as f64 / elapsed_seconds
            },
            workers: self.config.workers,
        };
        ServingOutcome {
            responses,
            report: ThroughputReport { aggregates, wall },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{default_mixed_models, mixed_trace};

    fn trace(count: usize) -> Vec<InferenceRequest> {
        mixed_trace(&default_mixed_models(), count, 4, 1000)
    }

    #[test]
    fn serve_answers_every_request_exactly_once() {
        let server = BishopServer::new(RuntimeConfig::new(2, BatchPolicy::new(4)));
        let outcome = server.serve(trace(10));
        assert_eq!(outcome.responses.len(), 10);
        for (i, response) in outcome.responses.iter().enumerate() {
            assert_eq!(response.request_id, i as u64);
            assert!(response.latency_seconds > 0.0);
            assert!(response.worker < 2);
            assert!(response.energy_share_mj() > 0.0);
        }
        assert_eq!(outcome.report.aggregates.requests, 10);
        assert!(outcome.report.wall.requests_per_second > 0.0);
    }

    #[test]
    fn empty_trace_yields_empty_report() {
        let server = BishopServer::new(RuntimeConfig::default());
        let outcome = server.serve(Vec::new());
        assert!(outcome.responses.is_empty());
        assert_eq!(outcome.report.aggregates, ServingAggregates::default());
    }

    #[test]
    fn batching_amortizes_simulated_cost_per_request() {
        // The same trace served sequentially (batch=1) and batched (batch=8):
        // batching folds requests into the timestep axis, paying weight
        // streaming and pipeline overhead once per batch, so the total
        // simulated cycles must strictly drop.
        let requests = trace(16);
        let sequential = BishopServer::new(RuntimeConfig::sequential()).serve(requests.clone());
        let batched = BishopServer::new(RuntimeConfig::new(1, BatchPolicy::new(8))).serve(requests);
        assert!(
            batched.report.aggregates.total_simulated_cycles
                < sequential.report.aggregates.total_simulated_cycles,
            "batched {} cycles vs sequential {} cycles",
            batched.report.aggregates.total_simulated_cycles,
            sequential.report.aggregates.total_simulated_cycles,
        );
        assert!(
            batched.report.aggregates.simulated_requests_per_chip_second
                > sequential
                    .report
                    .aggregates
                    .simulated_requests_per_chip_second
        );
        assert!(batched.report.aggregates.mean_batch_size > 1.0);
    }

    #[test]
    fn repeated_traffic_hits_the_caches() {
        let server = BishopServer::new(RuntimeConfig::new(2, BatchPolicy::new(4)));
        let first = server.serve(trace(8));
        assert_eq!(first.report.aggregates.cache.hits, 0);
        assert!(first.report.aggregates.cache.misses > 0);
        assert!(first.report.aggregates.result_cache.misses > 0);
        // The identical trace again: every batch result is already memoized,
        // so neither simulation nor workload synthesis runs at all.
        let second = server.serve(trace(8));
        assert_eq!(second.report.aggregates.result_cache.misses, 0);
        assert_eq!(
            second.report.aggregates.result_cache.hits,
            first.report.aggregates.result_cache.misses
        );
        assert_eq!(
            second.report.aggregates.cache,
            crate::cache::CacheStats::default(),
            "result hits short-circuit workload synthesis entirely"
        );
        // And the simulated aggregates are unchanged.
        assert_eq!(first.report.aggregates, {
            let mut a = second.report.aggregates.clone();
            a.cache = first.report.aggregates.cache;
            a.result_cache = first.report.aggregates.result_cache;
            a
        });
    }

    #[test]
    fn tiny_queue_capacity_still_serves_all_requests() {
        let config = RuntimeConfig::new(2, BatchPolicy::new(4)).with_queue_capacity(1);
        let outcome = BishopServer::new(config).serve(trace(12));
        assert_eq!(outcome.responses.len(), 12);
    }

    #[test]
    fn utilization_shares_sum_to_one() {
        let outcome = BishopServer::new(RuntimeConfig::default()).serve(trace(6));
        let u = outcome.report.aggregates.utilization;
        let sum = u.p1 + u.atn + u.p2 + u.mlp;
        assert!((sum - 1.0).abs() < 1e-9, "group shares sum to {sum}");
    }
}
