//! Trace replay on the online serving path.
//!
//! ```text
//!  trace ──► submit_blocking ──► OnlineServer ──► tickets ──► ThroughputReport
//!            (backpressure)      (batcher +         │
//!                                 engine workers)   ▼
//!                                             InferenceResponse
//! ```
//!
//! [`BishopServer::serve`] is a thin deterministic client of the
//! [`OnlineServer`]: it pushes the whole trace
//! through the bounded submission queue (blocking for backpressure instead
//! of shedding), disables the batch timeout so batches close purely on
//! size-or-flush (timing-free), waits on every ticket and assembles the
//! per-run [`ThroughputReport`].
//!
//! Determinism: batch formation depends only on submission order, worker
//! assignment only on deterministic cost estimates, and each batch's
//! execution only on its members — so, for traces running on deterministic
//! engines (the default `simulator`), the report's [`ServingAggregates`]
//! are identical for any worker count. Only [`WallClockStats`] varies.

use std::sync::Arc;
use std::time::Instant;

use bishop_core::BishopConfig;
use bishop_engine::{CalibrationCache, ResultCache};

use crate::batch::BatchPolicy;
use crate::online::{
    AdmissionStats, ExecutedBatch, OnlineConfig, OnlineServer, ServeError, Ticket,
};
use crate::report::{
    CoreUtilization, LatencyPercentiles, ServingAggregates, ThroughputReport, WallClockStats,
};
use crate::request::{InferenceRequest, InferenceResponse};

/// Configuration of a [`BishopServer`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of worker threads; each models one execution-substrate
    /// instance.
    pub workers: usize,
    /// Capacity of the bounded submission queue (submitters block when it
    /// is full — backpressure instead of unbounded memory growth).
    pub queue_capacity: usize,
    /// Batch-former policy.
    pub batching: BatchPolicy,
    /// Hardware configuration shared by every simulated chip instance (and
    /// source of the Token-Time-Bundle shape batches are padded to).
    pub hardware: BishopConfig,
}

impl RuntimeConfig {
    /// A batched multi-worker configuration.
    pub fn new(workers: usize, batching: BatchPolicy) -> Self {
        Self {
            workers: workers.max(1),
            queue_capacity: 256,
            batching,
            hardware: BishopConfig::default(),
        }
    }

    /// The sequential baseline: one worker, no batching. This is what a
    /// single-shot simulation loop over the trace would do.
    pub fn sequential() -> Self {
        Self::new(1, BatchPolicy::sequential())
    }

    /// Overrides the submission-queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Overrides the hardware configuration.
    pub fn with_hardware(mut self, hardware: BishopConfig) -> Self {
        self.hardware = hardware;
        self
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self::new(4, BatchPolicy::default())
    }
}

/// Everything a serving run produces.
#[derive(Debug, Clone)]
pub struct ServingOutcome {
    /// One response per successfully served request, sorted by request id.
    pub responses: Vec<InferenceResponse>,
    /// Requests whose engine refused the batch, as `(request_id, error)`
    /// pairs sorted by request id. Empty for simulator-only traces.
    pub failures: Vec<(u64, ServeError)>,
    /// The run's throughput report.
    pub report: ThroughputReport,
    /// Requests shed by admission control during the run. Always zero for
    /// blocking trace replay; the field exists so outcomes assembled from
    /// online serving account for every submitted request.
    pub admission: AdmissionStats,
}

/// The batched multi-core inference server.
#[derive(Debug)]
pub struct BishopServer {
    config: RuntimeConfig,
    cache: Arc<CalibrationCache>,
    results: Arc<ResultCache>,
}

impl BishopServer {
    /// Creates a server with fresh caches.
    pub fn new(config: RuntimeConfig) -> Self {
        Self::with_cache(config, Arc::new(CalibrationCache::new()))
    }

    /// Creates a server sharing an existing calibration cache (e.g. warmed
    /// by a previous run or shared between servers).
    pub fn with_cache(config: RuntimeConfig, cache: Arc<CalibrationCache>) -> Self {
        Self {
            config,
            cache,
            results: Arc::new(ResultCache::new()),
        }
    }

    /// The server configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The calibration (workload synthesis) cache backing this server.
    pub fn cache(&self) -> &Arc<CalibrationCache> {
        &self.cache
    }

    /// The batch result cache backing this server.
    pub fn result_cache(&self) -> &Arc<ResultCache> {
        &self.results
    }

    /// Serves a traffic trace end to end and reports per-request responses
    /// plus the run's [`ThroughputReport`].
    ///
    /// Implemented on the online submission path: the trace is pushed
    /// through the bounded submission queue with *blocking* backpressure
    /// (replay never sheds), batches close purely on size-or-flush (no
    /// timeout — timing-free, hence deterministic), and the per-ticket
    /// outcomes are collected back sorted by request id. Requests whose
    /// engine refuses the batch land in [`ServingOutcome::failures`] instead
    /// of aborting the replay.
    pub fn serve(&self, trace: Vec<InferenceRequest>) -> ServingOutcome {
        let start = Instant::now();
        let cache_before = self.cache.stats();
        let results_before = self.results.stats();

        let online = OnlineServer::with_caches(
            OnlineConfig::new(self.config.clone())
                .with_batch_timeout(None)
                .with_record_batches(true),
            Arc::clone(&self.cache),
            Arc::clone(&self.results),
        );
        let handle = online.handle();
        let tickets: Vec<Ticket> = trace
            .into_iter()
            .map(|request| {
                handle
                    .submit_blocking(request)
                    .expect("replay server admits until shutdown")
            })
            .collect();
        handle.flush();
        let mut responses = Vec::new();
        let mut failures = Vec::new();
        for ticket in tickets {
            let id = ticket.request_id();
            match ticket.wait().expect("replay server answers every ticket") {
                Ok(response) => responses.push(response),
                Err(error) => failures.push((id, error)),
            }
        }
        let (stats, mut executed) = online.shutdown_with_batches();
        // Executed batches arrive in completion order (worker-timing
        // dependent); sort by formation order so floating-point sums below
        // are deterministic.
        executed.sort_by_key(|e| e.batch.id);

        let elapsed = start.elapsed().as_secs_f64();
        self.assemble(
            executed,
            responses,
            failures,
            stats.admission,
            elapsed,
            cache_before,
            results_before,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        &self,
        executed: Vec<ExecutedBatch>,
        mut responses: Vec<InferenceResponse>,
        mut failures: Vec<(u64, ServeError)>,
        admission: AdmissionStats,
        elapsed_seconds: f64,
        cache_before: bishop_engine::CacheStats,
        results_before: bishop_engine::CacheStats,
    ) -> ServingOutcome {
        responses.sort_by_key(|r| r.request_id);
        failures.sort_by_key(|(id, _)| *id);
        let latencies: Vec<f64> = responses.iter().map(|r| r.latency_seconds).collect();

        let requests = responses.len() as u64;
        let batches = executed.len() as u64;
        let total_simulated_cycles: u64 = executed.iter().map(|e| e.output.cycles).sum();
        let total_energy_mj: f64 = executed.iter().map(|e| e.output.energy_mj).sum();
        // Busy time sums each batch's latency on its *own* engine's clock.
        // Dividing the cycle sum by the Bishop clock would misreport any
        // trace touching other substrates (native CPU cycles at 2.5 GHz,
        // the GPU roofline at 921.6 MHz).
        let busy_seconds: f64 = executed.iter().map(|e| e.output.latency_seconds).sum();
        let aggregates = ServingAggregates {
            requests,
            batches,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                requests as f64 / batches as f64
            },
            latency: LatencyPercentiles::from_latencies(&latencies),
            total_simulated_cycles,
            simulated_requests_per_chip_second: if busy_seconds == 0.0 {
                0.0
            } else {
                requests as f64 / busy_seconds
            },
            total_energy_mj,
            utilization: CoreUtilization::from_runs(
                executed.iter().filter_map(|e| e.output.metrics.as_deref()),
            ),
            cache: self.cache.stats().since(&cache_before),
            result_cache: self.results.stats().since(&results_before),
        };
        let wall = WallClockStats {
            elapsed_seconds,
            requests_per_second: if elapsed_seconds == 0.0 {
                0.0
            } else {
                requests as f64 / elapsed_seconds
            },
            workers: self.config.workers,
        };
        ServingOutcome {
            responses,
            failures,
            report: ThroughputReport { aggregates, wall },
            admission,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{default_mixed_models, mixed_trace};
    use bishop_engine::EngineName;

    fn trace(count: usize) -> Vec<InferenceRequest> {
        mixed_trace(&default_mixed_models(), count, 4, 1000)
    }

    #[test]
    fn serve_answers_every_request_exactly_once() {
        let server = BishopServer::new(RuntimeConfig::new(2, BatchPolicy::new(4)));
        let outcome = server.serve(trace(10));
        assert_eq!(outcome.responses.len(), 10);
        assert!(outcome.failures.is_empty());
        for (i, response) in outcome.responses.iter().enumerate() {
            assert_eq!(response.request_id, i as u64);
            assert!(response.latency_seconds > 0.0);
            assert!(response.worker < 2);
            assert!(response.energy_share_mj() > 0.0);
            assert_eq!(response.engine(), "simulator");
        }
        assert_eq!(outcome.report.aggregates.requests, 10);
        assert!(outcome.report.wall.requests_per_second > 0.0);
        assert_eq!(outcome.admission.total(), 0, "blocking replay never sheds");
    }

    #[test]
    fn empty_trace_yields_empty_report() {
        let server = BishopServer::new(RuntimeConfig::default());
        let outcome = server.serve(Vec::new());
        assert!(outcome.responses.is_empty());
        assert_eq!(outcome.report.aggregates, ServingAggregates::default());
    }

    #[test]
    fn batching_amortizes_simulated_cost_per_request() {
        // The same trace served sequentially (batch=1) and batched (batch=8):
        // batching folds requests into the timestep axis, paying weight
        // streaming and pipeline overhead once per batch, so the total
        // simulated cycles must strictly drop.
        let requests = trace(16);
        let sequential = BishopServer::new(RuntimeConfig::sequential()).serve(requests.clone());
        let batched = BishopServer::new(RuntimeConfig::new(1, BatchPolicy::new(8))).serve(requests);
        assert!(
            batched.report.aggregates.total_simulated_cycles
                < sequential.report.aggregates.total_simulated_cycles,
            "batched {} cycles vs sequential {} cycles",
            batched.report.aggregates.total_simulated_cycles,
            sequential.report.aggregates.total_simulated_cycles,
        );
        assert!(
            batched.report.aggregates.simulated_requests_per_chip_second
                > sequential
                    .report
                    .aggregates
                    .simulated_requests_per_chip_second
        );
        assert!(batched.report.aggregates.mean_batch_size > 1.0);
    }

    #[test]
    fn repeated_traffic_hits_the_caches() {
        let server = BishopServer::new(RuntimeConfig::new(2, BatchPolicy::new(4)));
        let first = server.serve(trace(8));
        assert_eq!(first.report.aggregates.cache.hits, 0);
        assert!(first.report.aggregates.cache.misses > 0);
        assert!(first.report.aggregates.result_cache.misses > 0);
        // The identical trace again: every batch result is already memoized,
        // so neither simulation nor workload synthesis runs at all.
        let second = server.serve(trace(8));
        assert_eq!(second.report.aggregates.result_cache.misses, 0);
        assert_eq!(
            second.report.aggregates.result_cache.hits,
            first.report.aggregates.result_cache.misses
        );
        assert_eq!(
            second.report.aggregates.cache,
            bishop_engine::CacheStats::default(),
            "result hits short-circuit workload synthesis entirely"
        );
        // And the simulated aggregates are unchanged.
        assert_eq!(first.report.aggregates, {
            let mut a = second.report.aggregates.clone();
            a.cache = first.report.aggregates.cache;
            a.result_cache = first.report.aggregates.result_cache;
            a
        });
    }

    #[test]
    fn tiny_queue_capacity_still_serves_all_requests() {
        let config = RuntimeConfig::new(2, BatchPolicy::new(4)).with_queue_capacity(1);
        let outcome = BishopServer::new(config).serve(trace(12));
        assert_eq!(outcome.responses.len(), 12);
    }

    #[test]
    fn utilization_shares_sum_to_one() {
        let outcome = BishopServer::new(RuntimeConfig::default()).serve(trace(6));
        let u = outcome.report.aggregates.utilization;
        let sum = u.p1 + u.atn + u.p2 + u.mlp;
        assert!((sum - 1.0).abs() < 1e-9, "group shares sum to {sum}");
    }

    #[test]
    fn native_engine_trace_serves_with_real_execution() {
        // Route the non-ECP model to the native CPU backend: every request
        // gets a measured-wall-clock response with a real prediction.
        let requests: Vec<InferenceRequest> = trace(8)
            .into_iter()
            .filter(|r| r.options.ecp_threshold.is_none())
            .map(|r| r.with_engine(EngineName::native()))
            .collect();
        let count = requests.len();
        let outcome = BishopServer::new(RuntimeConfig::new(2, BatchPolicy::new(4))).serve(requests);
        assert_eq!(outcome.responses.len(), count);
        assert!(outcome.failures.is_empty());
        for response in &outcome.responses {
            assert_eq!(response.engine(), "native");
            assert!(response.output.wall_seconds.expect("measured") > 0.0);
            assert!(response.output.prediction.is_some());
        }
    }

    #[test]
    fn mixed_engine_traces_report_failures_without_aborting() {
        // The ImageNet entry defaults to ECP; forcing the whole trace onto
        // the native engine fails those requests typed while the rest serve.
        let requests: Vec<InferenceRequest> = trace(8)
            .into_iter()
            .map(|r| r.with_engine(EngineName::native()))
            .collect();
        let outcome = BishopServer::new(RuntimeConfig::new(2, BatchPolicy::new(4))).serve(requests);
        assert_eq!(outcome.responses.len() + outcome.failures.len(), 8);
        assert!(!outcome.failures.is_empty());
        for (_, error) in &outcome.failures {
            assert_eq!(error.code(), "ecp_unsupported");
        }
    }
}
