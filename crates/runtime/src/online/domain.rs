//! One scheduling domain: a bounded queue, a batcher and a dedicated
//! worker pool serving a fixed set of engines.
//!
//! With domain isolation on (the default) every registered engine gets its
//! own domain, so substrates can never head-of-line-block each other: a
//! multi-millisecond `native` batch occupies only the native domain's
//! workers while `simulator` traffic keeps flowing through its own. The
//! pre-refactor topology — one shared queue and pool for every engine — is
//! still constructible as a single domain serving all engines via
//! [`OnlineConfig::with_domain_isolation`](super::OnlineConfig::with_domain_isolation),
//! which is what the scheduler bench A/Bs against.

use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bishop_engine::{EngineBatch, EngineError, EngineOutput, EngineRegistry, StepEvent, StepSink};
use bishop_obs::{EventLevel, EventValue, ObsHub, Stage, StageSlot, WorkerStage};

use crate::batch::{BatchFormer, BatchKey, BatchPolicy, Batchable, RequestBatch};
use crate::request::{InferenceRequest, InferenceResponse};

use super::breaker::BreakerTransition;
use super::calibration::{add_f64, max_f64, EngineCells};
use super::retry::RetryPolicy;
use super::{ServeError, ServeResult, StatsCells};

/// One admitted request travelling through a domain batcher: the request
/// plus its completion channel and cached cost estimate.
#[derive(Debug)]
pub(crate) struct PendingRequest {
    pub(crate) request: InferenceRequest,
    pub(crate) completion: mpsc::Sender<ServeResult>,
    pub(crate) estimated_ops: u64,
    /// Bounded progress channel into the request's ticket, when the caller
    /// asked for streaming. Workers forward engine step events through it
    /// with `try_send` — a slow ticket reader drops events, never blocks
    /// the worker.
    pub(crate) progress: Option<mpsc::SyncSender<StepEvent>>,
}

/// Forwards engine step callbacks into a ticket's bounded progress channel
/// without ever blocking the worker, and counts what flowed (and what a
/// saturated channel dropped).
struct ProgressSink {
    progress: Option<mpsc::SyncSender<StepEvent>>,
    emitted: u64,
    dropped: u64,
}

impl StepSink for ProgressSink {
    fn on_step(&mut self, event: &StepEvent) {
        self.emitted += 1;
        if let Some(tx) = &self.progress {
            if tx.try_send(event.clone()).is_err() {
                self.dropped += 1;
            }
        }
    }
}

impl Batchable for PendingRequest {
    fn request(&self) -> &InferenceRequest {
        &self.request
    }
}

/// Messages flowing from handles into a domain's batcher thread.
pub(crate) enum Submission {
    Request(Box<PendingRequest>),
    Flush(mpsc::Sender<()>),
    Shutdown,
}

/// One executed batch, recorded for post-run report assembly. (Per-request
/// worker attribution lives on the ticket responses, not here.)
#[derive(Debug)]
pub(crate) struct ExecutedBatch {
    pub(crate) batch: RequestBatch<InferenceRequest>,
    pub(crate) output: Arc<EngineOutput>,
}

/// The submission half of a domain, held by every
/// [`ServerHandle`](super::ServerHandle) clone: the bounded channel into
/// the domain's batcher plus the per-engine cells of the engines the
/// domain serves (whose backlogs together form the domain's admission
/// backlog).
#[derive(Debug, Clone)]
pub(crate) struct DomainSubmitter {
    pub(crate) tx: mpsc::SyncSender<Submission>,
    pub(crate) engines: Vec<Arc<EngineCells>>,
}

impl DomainSubmitter {
    /// Estimated dense ops queued ahead of a new arrival in this domain:
    /// the sum of its engines' backlogs. With isolation on this is one
    /// engine's backlog; in the shared layout it is the whole stack's —
    /// which is exactly why a shared pool head-of-line-blocks.
    pub(crate) fn backlog_ops(&self) -> u64 {
        self.engines
            .iter()
            .map(|e| e.backlog_ops.load(Ordering::Acquire))
            .sum()
    }
}

/// The thread half of a running domain, joined at shutdown.
#[derive(Debug)]
pub(crate) struct DomainThreads {
    batcher: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl DomainThreads {
    /// Joins the domain's batcher, then its workers (the batcher dropping
    /// its batch senders is what lets the workers drain and exit).
    pub(crate) fn join(self) {
        let _ = self.batcher.join();
        for worker in self.workers {
            let _ = worker.join();
        }
    }
}

/// Everything needed to boot one domain.
pub(crate) struct DomainSpec {
    /// The engines this domain serves (per-engine layout: exactly one).
    pub(crate) engines: Vec<Arc<EngineCells>>,
    /// Dedicated worker threads.
    pub(crate) workers: usize,
    /// Capacity of the domain's bounded submission channel.
    pub(crate) queue_capacity: usize,
    /// First batch id this domain's former assigns.
    pub(crate) batch_id_base: u64,
    /// Stride between consecutive batch ids (the domain count), keeping ids
    /// globally unique and deterministic across domains.
    pub(crate) batch_id_stride: u64,
    /// Batch-former policy.
    pub(crate) policy: BatchPolicy,
    /// Size-*or*-timeout batching window (`None` = size/flush only).
    pub(crate) batch_timeout: Option<Duration>,
    /// Bundle shape batches are padded to.
    pub(crate) bundle: bishop_bundle::BundleShape,
    /// Engine resolution for the domain's workers.
    pub(crate) registry: Arc<EngineRegistry>,
    /// Global server counters.
    pub(crate) cells: Arc<StatsCells>,
    /// Executed-batch recording sink, when enabled.
    pub(crate) record: Option<Arc<Mutex<Vec<ExecutedBatch>>>>,
    /// Observability hub: stage stamps for riders' traces, engine-error
    /// events from the workers.
    pub(crate) obs: Arc<ObsHub>,
    /// Retry loop tuning for the domain's workers.
    pub(crate) retry: RetryPolicy,
}

/// Boots one domain: its bounded channel, batcher thread and worker pool.
pub(crate) fn spawn_domain(spec: DomainSpec) -> (DomainSubmitter, DomainThreads) {
    let (submit_tx, submit_rx) = mpsc::sync_channel::<Submission>(spec.queue_capacity);
    // Profiler attribution label: the engine name with per-engine
    // isolation, `"shared"` for a multi-engine (or engine-less) domain.
    let profile_label = match spec.engines.as_slice() {
        [only] => only.name.as_str().to_string(),
        _ => "shared".to_string(),
    };
    let mut batch_txs = Vec::with_capacity(spec.workers);
    let mut workers = Vec::with_capacity(spec.workers);
    for index in 0..spec.workers {
        let (tx, rx) = mpsc::channel::<RequestBatch<PendingRequest>>();
        batch_txs.push(tx);
        workers.push(spawn_worker(
            index,
            rx,
            Arc::clone(&spec.registry),
            Arc::clone(&spec.cells),
            spec.engines.clone(),
            spec.record.clone(),
            spec.bundle,
            Arc::clone(&spec.obs),
            spec.retry.clone(),
            spec.obs.profiler.register(&profile_label, "worker"),
        ));
    }
    let batcher = spawn_batcher(
        submit_rx,
        batch_txs,
        Arc::clone(&spec.registry),
        spec.policy,
        spec.batch_timeout,
        spec.bundle,
        spec.batch_id_base,
        spec.batch_id_stride,
        spec.obs.profiler.register(&profile_label, "batcher"),
    );
    (
        DomainSubmitter {
            tx: submit_tx,
            engines: spec.engines,
        },
        DomainThreads { batcher, workers },
    )
}

/// Most riders one batch may hold for `request`'s engine: the largest count
/// whose *padded* fold (batched timesteps rounded up to the bundle multiple
/// `BSt`) stays within the engine's folded-timestep limit, so coalescing
/// never builds a batch the engine is known to refuse while each rider
/// alone would execute. (A model whose singleton fold already pads past the
/// limit caps at 1 and surfaces the engine's typed refusal.)
fn engine_batch_cap(
    registry: &EngineRegistry,
    request: &InferenceRequest,
    bundle: bishop_bundle::BundleShape,
) -> usize {
    registry
        .get(request.engine.as_str())
        .and_then(|engine| engine.descriptor().max_folded_timesteps)
        .map(|limit| {
            // Padding rounds folds up to a multiple of BSt, so the usable
            // budget is the largest such multiple at or below the limit.
            let usable = (limit / bundle.timesteps.max(1)) * bundle.timesteps.max(1);
            (usable / request.model().timesteps.max(1)).max(1)
        })
        .unwrap_or(usize::MAX)
}

/// Spawns a domain's batcher thread: drains the domain channel, forms
/// size-or-timeout batches (capped at the target engine's fold limit), and
/// dispatches them least-loaded across the domain's own workers.
#[allow(clippy::too_many_arguments)]
fn spawn_batcher(
    submit_rx: mpsc::Receiver<Submission>,
    batch_txs: Vec<mpsc::Sender<RequestBatch<PendingRequest>>>,
    registry: Arc<EngineRegistry>,
    policy: BatchPolicy,
    batch_timeout: Option<Duration>,
    bundle: bishop_bundle::BundleShape,
    batch_id_base: u64,
    batch_id_stride: u64,
    stage_slot: Arc<StageSlot>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let workers = batch_txs.len();
        let mut former =
            BatchFormer::<PendingRequest>::with_ids(policy, batch_id_base, batch_id_stride);
        // Open keys in arrival order of their oldest member, for the
        // timeout policy. Entries leave when their batch closes.
        let mut ages: Vec<(Instant, BatchKey)> = Vec::new();
        let mut load = vec![0u64; workers];
        let dispatch = |batch: RequestBatch<PendingRequest>, load: &mut [u64]| {
            // The batch just closed: every rider's batch-formation span ends
            // here (it began when the rider left the queue).
            for pending in &batch.requests {
                if let Some(trace) = &pending.request.trace {
                    trace.stamp(Stage::BatchFormation);
                }
            }
            let target = (0..workers)
                .min_by_key(|&w| (load[w], w))
                .expect("at least one worker");
            load[target] += batch.estimated_ops(bundle);
            // A worker hanging up mid-shutdown drops the batch; its tickets
            // resolve to `None` rather than deadlocking.
            let _ = batch_txs[target].send(batch);
        };

        'run: loop {
            // Wait for the next message, or — with a timeout policy and an
            // open batch — until the oldest open batch comes due. The
            // profiler sees the blocking wait as idle and everything after
            // a message (or a timeout tick) lands as batch formation.
            stage_slot.set(WorkerStage::Idle);
            let message = match (batch_timeout, ages.first()) {
                (Some(timeout), Some((opened, _))) => {
                    let due = *opened + timeout;
                    match due.checked_duration_since(Instant::now()) {
                        None => None, // already due: close aged batches below
                        Some(wait) => match submit_rx.recv_timeout(wait) {
                            Ok(message) => Some(message),
                            Err(mpsc::RecvTimeoutError::Timeout) => None,
                            Err(mpsc::RecvTimeoutError::Disconnected) => break 'run,
                        },
                    }
                }
                _ => match submit_rx.recv() {
                    Ok(message) => Some(message),
                    Err(_) => break 'run,
                },
            };

            stage_slot.set(WorkerStage::BatchFormation);
            match message {
                Some(Submission::Request(pending)) => {
                    if let Some(trace) = &pending.request.trace {
                        trace.stamp(Stage::QueueWait);
                    }
                    let key = BatchKey::from(pending.request());
                    // Stateful (session/streaming) requests never coalesce —
                    // membranes are per-sequence state — and must not sit in
                    // an open group waiting for batch-mates that can never
                    // arrive: cap 1 closes their singleton batch immediately.
                    let cap = if pending.request().stateful() {
                        1
                    } else {
                        engine_batch_cap(&registry, pending.request(), bundle)
                    };
                    let newly_opened = former.pending_count(&key) == 0;
                    match former.push_capped(*pending, cap) {
                        Some(batch) => {
                            ages.retain(|(_, k)| *k != key);
                            dispatch(batch, &mut load);
                        }
                        None if newly_opened => ages.push((Instant::now(), key)),
                        None => {}
                    }
                }
                Some(Submission::Flush(ack)) => {
                    for batch in former.flush() {
                        dispatch(batch, &mut load);
                    }
                    ages.clear();
                    let _ = ack.send(());
                }
                Some(Submission::Shutdown) => {
                    // Drain whatever raced in behind the shutdown marker so
                    // already-admitted requests still get served.
                    while let Ok(message) = submit_rx.try_recv() {
                        match message {
                            Submission::Request(pending) => {
                                if let Some(trace) = &pending.request.trace {
                                    trace.stamp(Stage::QueueWait);
                                }
                                let cap = if pending.request().stateful() {
                                    1
                                } else {
                                    engine_batch_cap(&registry, pending.request(), bundle)
                                };
                                if let Some(batch) = former.push_capped(*pending, cap) {
                                    dispatch(batch, &mut load);
                                }
                            }
                            Submission::Flush(ack) => {
                                let _ = ack.send(());
                            }
                            Submission::Shutdown => {}
                        }
                    }
                    break 'run;
                }
                None => {
                    // Timeout tick: close every batch whose oldest member
                    // has waited past the policy timeout.
                    let timeout = batch_timeout.expect("timeout tick implies a timeout policy");
                    let now = Instant::now();
                    while let Some((opened, _)) = ages.first() {
                        if *opened + timeout > now {
                            break;
                        }
                        let (_, key) = ages.remove(0);
                        if let Some(batch) = former.close_key(&key) {
                            dispatch(batch, &mut load);
                        }
                    }
                }
            }
        }

        stage_slot.set(WorkerStage::BatchFormation);
        for batch in former.flush() {
            dispatch(batch, &mut load);
        }
        stage_slot.set(WorkerStage::Idle);
        // Dropping the senders lets every worker drain its queue and exit.
    })
}

/// Emits one structured line for a breaker state transition. Opening is an
/// operator page (traffic is being refused); half-opening and closing are
/// recovery progress.
pub(crate) fn log_breaker_transition(obs: &ObsHub, engine: &str, transition: BreakerTransition) {
    let level = match transition {
        BreakerTransition::Opened => EventLevel::Warn,
        BreakerTransition::HalfOpened | BreakerTransition::Closed => EventLevel::Info,
    };
    obs.events.emit(
        level,
        transition.event(),
        &[("engine", EventValue::Str(engine))],
    );
}

/// Spawns one domain worker: executes batches on whichever engine each
/// batch names — containing engine panics with `catch_unwind` and retrying
/// retryable faults per the domain's [`RetryPolicy`] — resolves riders'
/// tickets, feeds the engine's circuit breaker with every attempt outcome,
/// and feeds the drain-rate calibration with the measured wall-clock of
/// every successful attempt.
#[allow(clippy::too_many_arguments)]
fn spawn_worker(
    index: usize,
    batch_rx: mpsc::Receiver<RequestBatch<PendingRequest>>,
    registry: Arc<EngineRegistry>,
    cells: Arc<StatsCells>,
    engines: Vec<Arc<EngineCells>>,
    record: Option<Arc<Mutex<Vec<ExecutedBatch>>>>,
    bundle: bishop_bundle::BundleShape,
    obs: Arc<ObsHub>,
    retry: RetryPolicy,
    stage_slot: Arc<StageSlot>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        // The blocking receive runs with Idle published; each batch body
        // publishes its stage transitions and restores Idle before the
        // next receive, so the sampling profiler attributes the worker's
        // wall-clock to execute / backoff / fan-out correctly.
        for batch in batch_rx {
            stage_slot.set(WorkerStage::EngineExecute);
            let batch_size = batch.len();
            let batch_ops: u64 = batch.requests.iter().map(|p| p.estimated_ops).sum();
            // Stateful (session/streaming) requests always form singleton
            // batches (the batcher caps them at 1); they execute on the
            // engine's streaming path below instead of `execute`.
            let stateful = batch_size == 1 && batch.requests[0].request.stateful();
            // Requests naming an unregistered engine ride the default
            // domain and fail typed below; they have no per-engine cells.
            let engine_cells = engines
                .iter()
                .find(|e| e.name == *batch.engine())
                .map(Arc::clone);
            // Annotate every traced rider with where it executes: the batch
            // span id shared with its batch-mates and the concrete engine.
            // The execute span (worker queue + engine run) is stamped once
            // per *attempt* below, so retried requests show one
            // `engine_execute` span per attempt.
            for pending in &batch.requests {
                if let Some(trace) = &pending.request.trace {
                    trace.set_batch_id(batch.id);
                    trace.set_engine(batch.engine().as_str());
                }
            }

            let mut attempts: u32 = 0;
            let mut wall_seconds = 0.0;
            let outcome = match registry.get(batch.engine().as_str()) {
                None => Err(ServeError::UnknownEngine(batch.engine().clone())),
                Some(engine) if stateful => {
                    let engine_name = engine.descriptor().name;
                    let pending = &batch.requests[0];
                    let request = &pending.request;
                    // The streaming path executes the request's *base*
                    // configuration (no batch rename, no timestep padding):
                    // session continuations must resolve the same weights
                    // and the same memoized workload as the single long
                    // request would, or the split stops being bit-identical.
                    let engine_batch = EngineBatch {
                        config: request.entry.config.clone(),
                        regime: request.regime,
                        seed: request.seed,
                        options: request.options,
                        batch_size: 1,
                        batch_id: batch.id,
                    };
                    let steps = request.effective_steps();
                    let resume = request.resume.clone();
                    let mut sink = ProgressSink {
                        progress: pending.progress.clone(),
                        emitted: 0,
                        dropped: 0,
                    };
                    attempts = 1;
                    let started = Instant::now();
                    // One attempt, never retried: step events already
                    // reached the client, and replaying them after a
                    // mid-sequence fault would double-deliver timesteps.
                    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        engine.execute_streaming(&engine_batch, steps, resume.as_deref(), &mut sink)
                    }))
                    .unwrap_or_else(|_| {
                        if let Some(cells) = &engine_cells {
                            cells.panics.fetch_add(1, Ordering::AcqRel);
                        }
                        Err(EngineError::Panicked {
                            engine: engine_name,
                        })
                    });
                    wall_seconds = started.elapsed().as_secs_f64();
                    if let Some(trace) = &request.trace {
                        trace.stamp(Stage::EngineExecute);
                    }
                    let health_fault = attempt.as_ref().is_err_and(|e| e.retryable());
                    if let Some(cells) = &engine_cells {
                        if let Some(transition) = cells.breaker.record(health_fault) {
                            log_breaker_transition(&obs, engine_name, transition);
                        }
                        cells
                            .stream_events
                            .fetch_add(sink.emitted, Ordering::AcqRel);
                    }
                    if sink.dropped > 0 {
                        obs.events.emit(
                            EventLevel::Warn,
                            "stream_events_dropped",
                            &[
                                ("engine", EventValue::Str(engine_name)),
                                ("batch_id", EventValue::U64(batch.id)),
                                ("dropped", EventValue::U64(sink.dropped)),
                            ],
                        );
                    }
                    match attempt {
                        Ok(streamed) => Ok((
                            streamed.output,
                            Some(Arc::new(streamed.state)),
                            streamed.logits,
                        )),
                        Err(error) => Err(ServeError::Engine(error)),
                    }
                }
                Some(engine) => {
                    let engine_name = engine.descriptor().name;
                    let engine_batch = batch.engine_batch(bundle);
                    loop {
                        attempts += 1;
                        let started = Instant::now();
                        // Contain engine panics: batch-mates resolve to a
                        // typed error and the worker keeps draining. The
                        // engine is behind an `Arc` and takes `&self`, so
                        // no worker-local state can be left torn.
                        let attempt =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                engine.execute(&engine_batch)
                            }))
                            .unwrap_or_else(|_| {
                                if let Some(cells) = &engine_cells {
                                    cells.panics.fetch_add(1, Ordering::AcqRel);
                                }
                                Err(EngineError::Panicked {
                                    engine: engine_name,
                                })
                            });
                        wall_seconds = started.elapsed().as_secs_f64();
                        for pending in &batch.requests {
                            if let Some(trace) = &pending.request.trace {
                                trace.stamp(Stage::EngineExecute);
                            }
                        }
                        // Only health faults feed the breaker; capability
                        // refusals say nothing about the engine.
                        let health_fault = attempt.as_ref().is_err_and(|e| e.retryable());
                        if let Some(cells) = &engine_cells {
                            if let Some(transition) = cells.breaker.record(health_fault) {
                                log_breaker_transition(&obs, engine_name, transition);
                            }
                        }
                        match attempt {
                            Ok(output) => {
                                if let Some(cells) = &engine_cells {
                                    cells.retry_budget.refill();
                                    if attempts > 1 {
                                        cells.retries_recovered.fetch_add(1, Ordering::AcqRel);
                                    }
                                }
                                break Ok((output, None, None));
                            }
                            Err(error) => {
                                if health_fault && attempts < retry.max_attempts.max(1) {
                                    let budget_ok = engine_cells
                                        .as_ref()
                                        .is_some_and(|c| c.retry_budget.try_spend());
                                    if budget_ok {
                                        if let Some(cells) = &engine_cells {
                                            cells.retries_attempted.fetch_add(1, Ordering::AcqRel);
                                        }
                                        stage_slot.set(WorkerStage::RetryBackoff);
                                        std::thread::sleep(retry.backoff(attempts));
                                        stage_slot.set(WorkerStage::EngineExecute);
                                        continue;
                                    }
                                    if let Some(cells) = &engine_cells {
                                        cells.retry_budget_denied.fetch_add(1, Ordering::AcqRel);
                                    }
                                    obs.events.emit(
                                        EventLevel::Warn,
                                        "retry_budget_exhausted",
                                        &[
                                            ("engine", EventValue::Str(engine_name)),
                                            ("batch_id", EventValue::U64(batch.id)),
                                            ("code", EventValue::Str(error.code())),
                                        ],
                                    );
                                } else if health_fault && attempts > 1 {
                                    if let Some(cells) = &engine_cells {
                                        cells.retries_exhausted.fetch_add(1, Ordering::AcqRel);
                                    }
                                }
                                break Err(ServeError::Engine(error));
                            }
                        }
                    }
                }
            };
            if attempts > 1 {
                for pending in &batch.requests {
                    if let Some(trace) = &pending.request.trace {
                        trace.set_retries(attempts - 1);
                    }
                }
            }
            stage_slot.set(WorkerStage::ResponseFanout);
            match outcome {
                Ok((output, session_state, logits)) => {
                    let output = Arc::new(output);
                    let latency = output.latency_seconds;
                    cells.batches_executed.fetch_add(1, Ordering::AcqRel);
                    cells
                        .total_cycles
                        .fetch_add(output.cycles, Ordering::AcqRel);
                    add_f64(&cells.energy_mj_bits, output.energy_mj);
                    add_f64(&cells.latency_sum_bits, latency * batch_size as f64);
                    max_f64(&cells.latency_max_bits, latency);
                    if let Some(engine) = &engine_cells {
                        engine.batches_executed.fetch_add(1, Ordering::AcqRel);
                        engine.drain.observe(batch_ops, wall_seconds);
                        engine.latency.record(latency, batch_size);
                    }

                    if let Some(record) = &record {
                        record.lock().expect("executed lock").push(ExecutedBatch {
                            batch: RequestBatch {
                                id: batch.id,
                                requests: batch
                                    .requests
                                    .iter()
                                    .map(|p| p.request.clone())
                                    .collect(),
                            },
                            output: Arc::clone(&output),
                        });
                    }

                    for pending in batch.requests {
                        let response = InferenceResponse {
                            request_id: pending.request.id,
                            batch_id: batch.id,
                            batch_size,
                            worker: index,
                            latency_seconds: latency,
                            output: Arc::clone(&output),
                            session_state: session_state.clone(),
                            logits: logits.clone(),
                        };
                        cells
                            .backlog_ops
                            .fetch_sub(pending.estimated_ops, Ordering::AcqRel);
                        cells.pending.fetch_sub(1, Ordering::AcqRel);
                        cells.completed.fetch_add(1, Ordering::AcqRel);
                        if let Some(engine) = &engine_cells {
                            engine
                                .backlog_ops
                                .fetch_sub(pending.estimated_ops, Ordering::AcqRel);
                            engine.pending.fetch_sub(1, Ordering::AcqRel);
                            engine.completed.fetch_add(1, Ordering::AcqRel);
                        }
                        let _ = pending.completion.send(Ok(response));
                    }
                }
                Err(error) => {
                    // One structured line per failed batch (not per rider):
                    // the operator signal for a refusing or broken backend.
                    obs.events.emit(
                        EventLevel::Error,
                        "engine_error",
                        &[
                            ("engine", EventValue::Str(batch.engine().as_str())),
                            ("batch_id", EventValue::U64(batch.id)),
                            ("batch_size", EventValue::U64(batch_size as u64)),
                            ("code", EventValue::Str(error.code())),
                        ],
                    );
                    for pending in batch.requests {
                        cells
                            .backlog_ops
                            .fetch_sub(pending.estimated_ops, Ordering::AcqRel);
                        cells.pending.fetch_sub(1, Ordering::AcqRel);
                        cells.failed.fetch_add(1, Ordering::AcqRel);
                        if let Some(engine) = &engine_cells {
                            engine
                                .backlog_ops
                                .fetch_sub(pending.estimated_ops, Ordering::AcqRel);
                            engine.pending.fetch_sub(1, Ordering::AcqRel);
                            engine.failed.fetch_add(1, Ordering::AcqRel);
                        }
                        let _ = pending.completion.send(Err(error.clone()));
                    }
                }
            }
            stage_slot.set(WorkerStage::Idle);
        }
    })
}
