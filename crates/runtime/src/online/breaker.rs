//! Per-engine circuit breakers: closed → open on error-rate-over-window →
//! half-open probe → closed.
//!
//! A breaker guards one engine's scheduling domain. Workers feed it the
//! outcome of every *execution attempt* (only retryable execution faults
//! count as failures — capability refusals like `ecp_unsupported` say
//! nothing about engine health); the admission path consults it before
//! routing new work at the engine. While open, explicit-engine requests are
//! shed with a typed `engine_unavailable` and `"auto"` requests degrade to
//! the next candidate; after a cooldown the breaker admits a bounded number
//! of half-open probes whose outcomes decide between reopening and closing.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Tuning of one engine's circuit breaker.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Master switch; a disabled breaker admits everything and records
    /// nothing (the offline/deterministic serving path uses this).
    pub enabled: bool,
    /// Sliding window of recent attempt outcomes the error rate is
    /// computed over.
    pub window: usize,
    /// Error rate (failures / window) at or above which the breaker opens.
    pub error_threshold: f64,
    /// Minimum outcomes in the window before the rate is meaningful; the
    /// breaker never opens on fewer.
    pub min_observations: usize,
    /// How long an open breaker waits before admitting half-open probes.
    pub cooldown: Duration,
    /// Consecutive probe successes needed to close from half-open (and the
    /// cap on concurrently admitted probes).
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            window: 32,
            error_threshold: 0.5,
            min_observations: 16,
            cooldown: Duration::from_secs(5),
            half_open_probes: 2,
        }
    }
}

impl BreakerConfig {
    /// A breaker that never trips (admits everything, records nothing).
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }
}

/// The breaker's position in its state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakerState {
    /// Healthy: everything is admitted, outcomes feed the error window.
    #[default]
    Closed,
    /// Probing: a bounded number of requests are admitted; their outcomes
    /// decide between closing and reopening.
    HalfOpen,
    /// Tripped: nothing is admitted until the cooldown elapses.
    Open,
}

impl BreakerState {
    /// Stable lowercase label for wire encodings.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::HalfOpen => "half_open",
            BreakerState::Open => "open",
        }
    }

    /// Numeric encoding for the `bishop_breaker_state` gauge:
    /// 0 = closed, 1 = half-open, 2 = open.
    pub fn metric_value(self) -> u64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }
}

/// A state-machine transition worth logging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BreakerTransition {
    /// Closed/half-open → open.
    Opened,
    /// Open → half-open (cooldown elapsed, probes admitted).
    HalfOpened,
    /// Half-open → closed (probes succeeded).
    Closed,
}

impl BreakerTransition {
    /// The event name the transition is logged under.
    pub(crate) fn event(self) -> &'static str {
        match self {
            BreakerTransition::Opened => "breaker_open",
            BreakerTransition::HalfOpened => "breaker_half_open",
            BreakerTransition::Closed => "breaker_close",
        }
    }
}

/// The admission verdict for one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum BreakerAdmit {
    /// Route the request at the engine.
    Allow,
    /// Refuse: the breaker is open (or half-open with its probe quota
    /// spent). `retry_after` is the time until the next half-open probe
    /// window — what the gateway prices `Retry-After` from.
    Shed {
        /// Seconds until the breaker will admit a probe again.
        retry_after: Duration,
    },
}

/// A point-in-time public view of one breaker.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BreakerSnapshot {
    /// Current state.
    pub state: BreakerState,
    /// Consecutive failed attempts, resetting on any success.
    pub consecutive_errors: u64,
    /// How many times the breaker has opened since boot.
    pub opened_total: u64,
    /// Seconds until an open breaker admits half-open probes (`None`
    /// unless open).
    pub reopen_seconds: Option<f64>,
}

#[derive(Debug, Default)]
struct BreakerInner {
    state: BreakerState,
    window: VecDeque<bool>,
    opened_at: Option<Instant>,
    consecutive_errors: u64,
    half_open_admitted: u32,
    half_open_successes: u32,
    opened_total: u64,
}

/// One engine's circuit breaker. Admission checks and outcome recording
/// both run under one short-lived mutex (a handful of ns on the request
/// path; the breaker is consulted once per request, not per byte).
#[derive(Debug)]
pub(crate) struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub(crate) fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            inner: Mutex::new(BreakerInner::default()),
        }
    }

    /// Decides whether new work may be routed at the engine right now.
    /// An open breaker whose cooldown has elapsed flips to half-open here
    /// (admission is what probes), reporting the transition for logging.
    pub(crate) fn admit(&self) -> (BreakerAdmit, Option<BreakerTransition>) {
        if !self.config.enabled {
            return (BreakerAdmit::Allow, None);
        }
        let mut inner = self.inner.lock().expect("breaker lock");
        match inner.state {
            BreakerState::Closed => (BreakerAdmit::Allow, None),
            BreakerState::Open => {
                let elapsed = inner
                    .opened_at
                    .map(|at| at.elapsed())
                    .unwrap_or(Duration::ZERO);
                if elapsed >= self.config.cooldown {
                    inner.state = BreakerState::HalfOpen;
                    inner.half_open_admitted = 1;
                    inner.half_open_successes = 0;
                    (BreakerAdmit::Allow, Some(BreakerTransition::HalfOpened))
                } else {
                    (
                        BreakerAdmit::Shed {
                            retry_after: self.config.cooldown - elapsed,
                        },
                        None,
                    )
                }
            }
            BreakerState::HalfOpen => {
                if inner.half_open_admitted < self.config.half_open_probes.max(1) {
                    inner.half_open_admitted += 1;
                    (BreakerAdmit::Allow, None)
                } else {
                    // Probes are in flight; further traffic waits for their
                    // verdict (one cooldown is the conservative price).
                    (
                        BreakerAdmit::Shed {
                            retry_after: self.config.cooldown,
                        },
                        None,
                    )
                }
            }
        }
    }

    /// Feeds one execution-attempt outcome into the state machine.
    /// `failure` must already be filtered to *health* faults (retryable
    /// errors), never capability refusals.
    pub(crate) fn record(&self, failure: bool) -> Option<BreakerTransition> {
        if !self.config.enabled {
            return None;
        }
        let mut inner = self.inner.lock().expect("breaker lock");
        if failure {
            inner.consecutive_errors += 1;
        } else {
            inner.consecutive_errors = 0;
        }
        match inner.state {
            BreakerState::Closed => {
                if inner.window.len() == self.config.window.max(1) {
                    inner.window.pop_front();
                }
                inner.window.push_back(failure);
                let observed = inner.window.len();
                let failures = inner.window.iter().filter(|&&f| f).count();
                if observed >= self.config.min_observations.max(1)
                    && failures as f64 / observed as f64 >= self.config.error_threshold
                {
                    inner.state = BreakerState::Open;
                    inner.opened_at = Some(Instant::now());
                    inner.opened_total += 1;
                    inner.window.clear();
                    Some(BreakerTransition::Opened)
                } else {
                    None
                }
            }
            BreakerState::HalfOpen => {
                // A verdict came back: free its probe slot. Without this,
                // probes that coalesce into one batch (one recorded outcome
                // for several admissions) would strand the breaker half-open
                // with its quota spent and no further outcome ever due.
                inner.half_open_admitted = inner.half_open_admitted.saturating_sub(1);
                if failure {
                    inner.state = BreakerState::Open;
                    inner.opened_at = Some(Instant::now());
                    inner.opened_total += 1;
                    inner.half_open_admitted = 0;
                    inner.half_open_successes = 0;
                    Some(BreakerTransition::Opened)
                } else {
                    inner.half_open_successes += 1;
                    if inner.half_open_successes >= self.config.half_open_probes.max(1) {
                        inner.state = BreakerState::Closed;
                        inner.opened_at = None;
                        inner.half_open_admitted = 0;
                        inner.half_open_successes = 0;
                        Some(BreakerTransition::Closed)
                    } else {
                        None
                    }
                }
            }
            // Late completions of batches admitted before the trip carry no
            // new admission-relevant signal.
            BreakerState::Open => None,
        }
    }

    /// A point-in-time public view.
    pub(crate) fn snapshot(&self) -> BreakerSnapshot {
        let inner = self.inner.lock().expect("breaker lock");
        let reopen_seconds = match inner.state {
            BreakerState::Open => Some(
                inner
                    .opened_at
                    .map(|at| {
                        self.config
                            .cooldown
                            .saturating_sub(at.elapsed())
                            .as_secs_f64()
                    })
                    .unwrap_or(0.0),
            ),
            _ => None,
        };
        BreakerSnapshot {
            state: inner.state,
            consecutive_errors: inner.consecutive_errors,
            opened_total: inner.opened_total,
            reopen_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> BreakerConfig {
        BreakerConfig {
            enabled: true,
            window: 8,
            error_threshold: 0.5,
            min_observations: 4,
            cooldown: Duration::from_millis(20),
            half_open_probes: 2,
        }
    }

    fn trip(breaker: &CircuitBreaker) {
        for _ in 0..3 {
            assert_eq!(breaker.record(true), None);
        }
        assert_eq!(breaker.record(true), Some(BreakerTransition::Opened));
    }

    #[test]
    fn opens_on_error_rate_after_min_observations() {
        let breaker = CircuitBreaker::new(fast_config());
        assert_eq!(breaker.admit().0, BreakerAdmit::Allow);
        trip(&breaker);
        let snapshot = breaker.snapshot();
        assert_eq!(snapshot.state, BreakerState::Open);
        assert_eq!(snapshot.consecutive_errors, 4);
        assert_eq!(snapshot.opened_total, 1);
        assert!(snapshot.reopen_seconds.is_some());
        match breaker.admit().0 {
            BreakerAdmit::Shed { retry_after } => {
                assert!(retry_after <= Duration::from_millis(20));
            }
            other => panic!("open breaker must shed, got {other:?}"),
        }
    }

    #[test]
    fn successes_keep_the_breaker_closed() {
        let breaker = CircuitBreaker::new(fast_config());
        for _ in 0..100 {
            assert_eq!(breaker.record(false), None);
        }
        // Sub-threshold error rate never trips.
        for _ in 0..3 {
            assert_eq!(breaker.record(true), None);
            for _ in 0..7 {
                assert_eq!(breaker.record(false), None);
            }
        }
        assert_eq!(breaker.snapshot().state, BreakerState::Closed);
    }

    #[test]
    fn half_open_probes_close_on_success_and_reopen_on_failure() {
        let breaker = CircuitBreaker::new(fast_config());
        trip(&breaker);
        std::thread::sleep(Duration::from_millis(25));
        // Cooldown elapsed: the next admit flips to half-open.
        let (admit, transition) = breaker.admit();
        assert_eq!(admit, BreakerAdmit::Allow);
        assert_eq!(transition, Some(BreakerTransition::HalfOpened));
        // Second probe fits the quota, a third is shed.
        assert_eq!(breaker.admit().0, BreakerAdmit::Allow);
        assert!(matches!(breaker.admit().0, BreakerAdmit::Shed { .. }));
        // Both probes succeed → closed.
        assert_eq!(breaker.record(false), None);
        assert_eq!(breaker.record(false), Some(BreakerTransition::Closed));
        assert_eq!(breaker.snapshot().state, BreakerState::Closed);
        assert_eq!(breaker.snapshot().reopen_seconds, None);

        // Trip again; a failing probe reopens immediately.
        trip(&breaker);
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(breaker.admit().1, Some(BreakerTransition::HalfOpened));
        assert_eq!(breaker.record(true), Some(BreakerTransition::Opened));
        assert_eq!(breaker.snapshot().state, BreakerState::Open);
        // Two window trips plus the half-open reopen: three opens in all.
        assert_eq!(breaker.snapshot().opened_total, 3);
    }

    #[test]
    fn coalesced_probes_cannot_strand_the_breaker_half_open() {
        // Two probes are admitted but coalesce into one batch, so only ONE
        // outcome is recorded. The freed slot must let a further probe in,
        // and its success must close the breaker — not strand it half-open
        // with a spent quota and no outcome ever due.
        let breaker = CircuitBreaker::new(fast_config());
        trip(&breaker);
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(breaker.admit().1, Some(BreakerTransition::HalfOpened));
        assert_eq!(breaker.admit().0, BreakerAdmit::Allow);
        assert_eq!(breaker.record(false), None);
        assert_eq!(breaker.admit().0, BreakerAdmit::Allow);
        assert_eq!(breaker.record(false), Some(BreakerTransition::Closed));
    }

    #[test]
    fn disabled_breaker_is_inert() {
        let breaker = CircuitBreaker::new(BreakerConfig::disabled());
        for _ in 0..64 {
            assert_eq!(breaker.record(true), None);
        }
        assert_eq!(breaker.admit(), (BreakerAdmit::Allow, None));
        assert_eq!(breaker.snapshot().state, BreakerState::Closed);
    }

    #[test]
    fn state_labels_and_metric_values_are_stable() {
        assert_eq!(BreakerState::Closed.label(), "closed");
        assert_eq!(BreakerState::HalfOpen.label(), "half_open");
        assert_eq!(BreakerState::Open.label(), "open");
        assert_eq!(BreakerState::Closed.metric_value(), 0);
        assert_eq!(BreakerState::HalfOpen.metric_value(), 1);
        assert_eq!(BreakerState::Open.metric_value(), 2);
        assert_eq!(BreakerTransition::Opened.event(), "breaker_open");
        assert_eq!(BreakerTransition::HalfOpened.event(), "breaker_half_open");
        assert_eq!(BreakerTransition::Closed.event(), "breaker_close");
    }
}
