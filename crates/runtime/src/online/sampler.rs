//! The background observability sampler: one thread per server feeding
//! the obs hub's temporal layer.
//!
//! The thread runs two cadences off one loop. Every *profile* tick
//! (default 10 ms) it sweeps the worker/batcher [stage
//! slots](bishop_obs::StageSlot) and attributes the elapsed wall-clock to
//! each thread's published stage. Every *metrics* tick (default 1 s) it
//! scrapes the server's atomic counters — global admission/outcome
//! counts, per-engine queue depth / backlog / drain rate / breaker state,
//! router verdicts — into the [`TimeSeriesStore`](bishop_obs::TimeSeriesStore)
//! rollups, diffs the stage histograms into windowed p50/p95/p99 gauges,
//! and re-evaluates the SLO engine (which emits edge-triggered burn-rate
//! alerts into the event log).
//!
//! Everything the sampler reads is a relaxed atomic load or a short-lived
//! registry lock, so its steady-state cost is independent of request
//! throughput — the overhead bar the `obs` bench holds it to.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bishop_obs::{HistogramSnapshot, ObsHub};
use bishop_session::SessionStore;

use super::breaker::BreakerState;
use super::calibration::EngineCells;
use super::StatsCells;

/// Configuration of the background sampler thread.
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Whether the sampler thread runs at all. Off, the time-series
    /// store, SLO engine and profiler stay empty (but the endpoints
    /// still serve their empty shapes).
    pub enabled: bool,
    /// Stage-slot sweep period (the profiler's sampling resolution).
    pub profile_interval: Duration,
    /// Counter-scrape / SLO-evaluation period.
    pub metrics_interval: Duration,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            profile_interval: Duration::from_millis(10),
            metrics_interval: Duration::from_secs(1),
        }
    }
}

impl SamplerConfig {
    /// A sampler that never runs (deterministic replay, bare-overhead
    /// benchmarking).
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }

    /// Overrides both cadences (tests shrink them to milliseconds).
    pub fn with_intervals(mut self, profile: Duration, metrics: Duration) -> Self {
        self.profile_interval = profile.max(Duration::from_micros(100));
        self.metrics_interval = metrics.max(Duration::from_millis(1));
        self
    }
}

/// The running sampler: a stop flag plus the thread handle.
#[derive(Debug)]
pub(crate) struct SamplerThread {
    stop: Arc<AtomicBool>,
    handle: JoinHandle<()>,
}

impl SamplerThread {
    /// Signals the thread and joins it (it runs one final scrape so even
    /// a short-lived server lands its counters in the store).
    pub(crate) fn stop_and_join(self) {
        self.stop.store(true, Ordering::Release);
        let _ = self.handle.join();
    }
}

/// Spawns the sampler thread over the server's shared state.
pub(crate) fn spawn_sampler(
    config: SamplerConfig,
    obs: Arc<ObsHub>,
    cells: Arc<StatsCells>,
    engines: Vec<Arc<EngineCells>>,
    sessions: Arc<OnceLock<Arc<SessionStore>>>,
) -> SamplerThread {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        let mut histogram_baseline: BTreeMap<(String, &'static str), HistogramSnapshot> =
            BTreeMap::new();
        let mut last_profile = Instant::now();
        let mut last_metrics = Instant::now();
        while !stop_flag.load(Ordering::Acquire) {
            std::thread::sleep(config.profile_interval);
            let now = Instant::now();
            obs.profiler
                .sample(now.duration_since(last_profile).as_secs_f64());
            last_profile = now;
            if now.duration_since(last_metrics) >= config.metrics_interval {
                scrape(&obs, &cells, &engines, &sessions, &mut histogram_baseline);
                obs.slo.evaluate(&obs.timeseries, Some(&obs.events));
                last_metrics = now;
            }
        }
        // Final scrape: a server shut down inside one metrics interval
        // still lands its counters and a final SLO evaluation.
        scrape(&obs, &cells, &engines, &sessions, &mut histogram_baseline);
        obs.slo.evaluate(&obs.timeseries, Some(&obs.events));
    });
    SamplerThread { stop, handle }
}

/// One metrics sweep: counters and gauges into the time-series store.
fn scrape(
    obs: &ObsHub,
    cells: &StatsCells,
    engines: &[Arc<EngineCells>],
    sessions: &OnceLock<Arc<SessionStore>>,
    histogram_baseline: &mut BTreeMap<(String, &'static str), HistogramSnapshot>,
) {
    let ts = &obs.timeseries;
    let completed = cells.completed.load(Ordering::Acquire);
    let failed = cells.failed.load(Ordering::Acquire);
    let shed_queue_full = cells.rejected_queue_full.load(Ordering::Acquire);
    let shed_deadline = cells.rejected_deadline.load(Ordering::Acquire);
    let shed_no_engine = cells.rejected_no_engine.load(Ordering::Acquire);
    let shed_unavailable = cells.rejected_unavailable.load(Ordering::Acquire);
    let shed_shutdown = cells.rejected_shutdown.load(Ordering::Acquire);
    let shed_total =
        shed_queue_full + shed_deadline + shed_no_engine + shed_unavailable + shed_shutdown;
    // Availability counts every user-visible terminal outcome: successes
    // are good; engine failures plus availability sheds (open breaker,
    // shutdown) are bad. Load-management sheds (queue-full, deadline)
    // count against `shed_rate` instead.
    let errored = failed + shed_unavailable + shed_shutdown;

    ts.record_counter(
        "requests.submitted",
        cells.submitted.load(Ordering::Acquire) as f64,
    );
    ts.record_counter(
        "requests.admitted",
        cells.admitted.load(Ordering::Acquire) as f64,
    );
    ts.record_counter("requests.ok", completed as f64);
    ts.record_counter("requests.failed", failed as f64);
    ts.record_counter("requests.shed", shed_total as f64);
    ts.record_counter("requests.finished", (completed + errored) as f64);
    ts.record_counter(
        "batches.total",
        cells.batches_executed.load(Ordering::Acquire) as f64,
    );
    ts.record_gauge(
        "queue_depth.all",
        cells.pending.load(Ordering::Acquire) as f64,
    );
    ts.record_gauge(
        "backlog_ops.all",
        cells.backlog_ops.load(Ordering::Acquire) as f64,
    );

    for engine in engines {
        let name = engine.name.as_str();
        ts.record_gauge(
            &format!("queue_depth.{name}"),
            engine.pending.load(Ordering::Acquire) as f64,
        );
        ts.record_gauge(
            &format!("backlog_ops.{name}"),
            engine.backlog_ops.load(Ordering::Acquire) as f64,
        );
        ts.record_gauge(
            &format!("drain_ops_per_second.{name}"),
            engine.drain.ops_per_second(),
        );
        let breaker_level = match engine.breaker.snapshot().state {
            BreakerState::Closed => 0.0,
            BreakerState::HalfOpen => 1.0,
            BreakerState::Open => 2.0,
        };
        ts.record_gauge(&format!("breaker_state.{name}"), breaker_level);
        ts.record_counter(
            &format!("engine.completed.{name}"),
            engine.completed.load(Ordering::Acquire) as f64,
        );
        ts.record_counter(
            &format!("engine.failed.{name}"),
            engine.failed.load(Ordering::Acquire) as f64,
        );
        ts.record_counter(
            &format!("engine.batches.{name}"),
            engine.batches_executed.load(Ordering::Acquire) as f64,
        );
        ts.record_counter(
            &format!("engine.retries.{name}"),
            engine.retries_attempted.load(Ordering::Acquire) as f64,
        );
        ts.record_counter(
            &format!("engine.stream_events.{name}"),
            engine.stream_events.load(Ordering::Acquire) as f64,
        );
    }

    // Session-slot occupancy, when a gateway registered its store with
    // this server (the store lives at the edge; the sampler just reads
    // its counters into the same temporal layer everything else uses).
    if let Some(store) = sessions.get() {
        let stats = store.stats();
        ts.record_gauge("sessions.active", stats.active as f64);
        ts.record_counter("sessions.evicted.ttl", stats.evicted_ttl as f64);
        ts.record_counter("sessions.evicted.capacity", stats.evicted_capacity as f64);
        ts.record_counter("sessions.evicted.explicit", stats.evicted_explicit as f64);
    }

    // Router verdicts, as per-verdict totals across engines.
    let mut verdict_totals: BTreeMap<&'static str, u64> = BTreeMap::new();
    for ((_, verdict), count) in obs.router.snapshot() {
        *verdict_totals.entry(verdict).or_default() += count;
    }
    for (verdict, total) in verdict_totals {
        ts.record_counter(&format!("router.{verdict}"), total as f64);
    }

    // Stage-latency quantiles: diff each histogram against the previous
    // sweep so the gauges describe *this window's* latency, then merge
    // the per-engine windows into an all-engines series per stage.
    let mut merged_by_stage: BTreeMap<&'static str, HistogramSnapshot> = BTreeMap::new();
    for (key, snapshot) in obs.histograms.snapshot_all() {
        let baseline = histogram_baseline.remove(&key).unwrap_or_default();
        let window = snapshot.diff(&baseline);
        if window.count() > 0 {
            let (engine, stage) = (&key.0, key.1);
            for (q, label) in [(0.5, "p50"), (0.95, "p95"), (0.99, "p99")] {
                ts.record_gauge(
                    &format!("stage_{label}.{engine}.{stage}"),
                    window.quantile(q),
                );
            }
            merged_by_stage.entry(stage).or_default().merge(&window);
        }
        histogram_baseline.insert(key, snapshot);
    }
    for (stage, window) in merged_by_stage {
        for (q, label) in [(0.5, "p50"), (0.95, "p95"), (0.99, "p99")] {
            ts.record_gauge(&format!("stage_{label}.all.{stage}"), window.quantile(q));
        }
    }
}
