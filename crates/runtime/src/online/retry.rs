//! Per-domain retry policy: capped exponential backoff plus a retry budget
//! so retries cannot amplify an outage.
//!
//! Workers re-submit *retryable* engine errors (transient faults, contained
//! panics — never capability refusals) up to
//! [`RetryPolicy::max_attempts`], sleeping a capped exponential backoff
//! between attempts. Every retry first spends a token from the engine's
//! [`RetryBudget`]; the budget refills a configurable fraction per
//! *successful* batch (not per wall-clock second), so during a full outage
//! the budget drains once and stays empty — the retry amplification factor
//! over an outage converges to `1 + budget/traffic` instead of
//! `max_attempts`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Tuning of one domain's retry loop.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total execution attempts per batch, including the first
    /// (`1` disables retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; attempt `n` waits
    /// `base_backoff · 2^(n−1)`, capped at [`max_backoff`](Self::max_backoff).
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
    /// Initial (and maximum) retry-budget tokens; each retry spends one.
    pub budget: f64,
    /// Tokens restored per successful batch, up to the budget cap.
    pub budget_refill_per_success: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(50),
            budget: 64.0,
            budget_refill_per_success: 0.1,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (the offline/deterministic path).
    pub fn disabled() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// Whether the policy allows any retries at all.
    pub fn enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// The backoff to sleep before retry number `retry` (1-based):
    /// `base · 2^(retry−1)`, capped.
    pub fn backoff(&self, retry: u32) -> Duration {
        let factor = 1u32 << retry.saturating_sub(1).min(16);
        (self.base_backoff.saturating_mul(factor)).min(self.max_backoff)
    }
}

/// Token budget in fixed-point milli-tokens on one atomic, shared by every
/// worker of an engine's domain. Lock-free: spend and refill are CAS loops.
#[derive(Debug)]
pub(crate) struct RetryBudget {
    millitokens: AtomicU64,
    cap: u64,
    refill: u64,
}

const MILLI: f64 = 1000.0;

impl RetryBudget {
    /// A full budget per `policy`.
    pub(crate) fn new(policy: &RetryPolicy) -> Self {
        let cap = (policy.budget.max(0.0) * MILLI) as u64;
        Self {
            millitokens: AtomicU64::new(cap),
            cap,
            refill: (policy.budget_refill_per_success.max(0.0) * MILLI) as u64,
        }
    }

    /// Spends one token if available; `false` denies the retry.
    pub(crate) fn try_spend(&self) -> bool {
        let mut current = self.millitokens.load(Ordering::Relaxed);
        loop {
            let Some(next) = current.checked_sub(MILLI as u64) else {
                return false;
            };
            match self.millitokens.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
    }

    /// Restores the per-success refill fraction, capped at the budget.
    pub(crate) fn refill(&self) {
        let mut current = self.millitokens.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_add(self.refill).min(self.cap);
            if next == current {
                return;
            }
            match self.millitokens.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// Remaining whole tokens (diagnostic).
    #[cfg(test)]
    pub(crate) fn tokens(&self) -> f64 {
        self.millitokens.load(Ordering::Relaxed) as f64 / MILLI
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(18),
            ..RetryPolicy::default()
        };
        assert_eq!(policy.backoff(1), Duration::from_millis(5));
        assert_eq!(policy.backoff(2), Duration::from_millis(10));
        assert_eq!(policy.backoff(3), Duration::from_millis(18));
        assert_eq!(policy.backoff(30), Duration::from_millis(18));
        assert!(RetryPolicy::default().enabled());
        assert!(!RetryPolicy::disabled().enabled());
    }

    #[test]
    fn budget_spends_refills_and_caps() {
        let budget = RetryBudget::new(&RetryPolicy {
            budget: 2.0,
            budget_refill_per_success: 0.5,
            ..RetryPolicy::default()
        });
        assert!(budget.try_spend());
        assert!(budget.try_spend());
        assert!(!budget.try_spend(), "budget exhausted");
        // Two successes restore two half-tokens → one whole retry token.
        budget.refill();
        assert!(!budget.try_spend());
        budget.refill();
        assert!(budget.try_spend());
        // Refill never exceeds the cap.
        for _ in 0..100 {
            budget.refill();
        }
        assert_eq!(budget.tokens(), 2.0);
    }

    #[test]
    fn zero_budget_denies_every_retry() {
        let budget = RetryBudget::new(&RetryPolicy {
            budget: 0.0,
            ..RetryPolicy::default()
        });
        assert!(!budget.try_spend());
        budget.refill();
        assert_eq!(budget.tokens(), 0.0);
    }
}
