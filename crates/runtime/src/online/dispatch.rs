//! Deadline-aware engine autoselection.
//!
//! A request submitted with [`EngineName::auto`] does not name a substrate;
//! the dispatcher resolves one at admission time from the per-engine
//! scheduling state: it walks the auto-eligible engines in preference order
//! (most-preferred first — `native` before `simulator` by default, so
//! requests get real execution whenever their budget allows it), skips
//! engines whose descriptor cannot execute the request profile at all, and
//! picks the first whose **predicted completion** — the domain's queued
//! backlog plus the request's own cost, divided by the engine's calibrated
//! [`DrainRate`](super::calibration::DrainRate) — fits the request's
//! deadline. A deadline no eligible engine can meet sheds the request with
//! the typed [`Rejection::NoEngineMeetsDeadline`](super::Rejection), before
//! it consumes a queue slot anywhere.

use std::sync::Arc;
use std::time::Duration;

use bishop_engine::{EngineDescriptor, EngineName};
use bishop_obs::{ObsHub, RouterCandidate, RouterDecision, RouterVerdict};

use crate::request::InferenceRequest;

use super::breaker::BreakerAdmit;
use super::calibration::EngineCells;
use super::domain::{log_breaker_transition, DomainSubmitter};
use super::Rejection;

/// One resolvable engine: its identity and descriptor, the per-engine
/// scheduling cells, and the index of the domain serving it.
#[derive(Debug)]
pub(crate) struct EngineEntry {
    pub(crate) name: EngineName,
    pub(crate) descriptor: EngineDescriptor,
    pub(crate) cells: Arc<EngineCells>,
    pub(crate) domain: usize,
}

/// Predicted seconds until a request submitted *now* completes on an
/// engine: everything already queued ahead of it in the engine's domain
/// plus its own cost, drained at the engine's calibrated rate.
pub(crate) fn predicted_completion_seconds(
    domain_backlog_ops: u64,
    request_ops: u64,
    drain_ops_per_second: f64,
) -> f64 {
    (domain_backlog_ops as f64 + request_ops as f64) / drain_ops_per_second.max(1.0)
}

/// Resolves an `"auto"` request to the index (into `entries`) of the
/// most-preferred eligible engine whose predicted completion meets the
/// deadline. Without a deadline every eligible engine qualifies, so the
/// most-preferred one wins outright.
///
/// Alongside the outcome, returns the full [`RouterDecision`] record:
/// every candidate actually considered (in preference order, up to and
/// including the chosen one) with the predicted completion it was judged
/// on — the evidence a trace needs to explain *why* this request landed
/// where it did, or why it was shed.
pub(crate) fn select_engine(
    entries: &[EngineEntry],
    auto_order: &[usize],
    domains: &[DomainSubmitter],
    request: &InferenceRequest,
    estimated_ops: u64,
    deadline: Option<Duration>,
    obs: &ObsHub,
) -> (Result<usize, Rejection>, RouterDecision) {
    let mut candidates = Vec::with_capacity(auto_order.len());
    let mut any_supports = false;
    let mut any_admitted = false;
    let mut skipped_eligible = false;
    let mut chosen = None;
    for &index in auto_order {
        let entry = &entries[index];
        // Never route onto an engine the descriptor says would refuse the
        // profile (ECP on a non-ECP engine, oversized fold): a typed
        // refusal after dispatch would waste the queue slot the request
        // was admitted into.
        let eligible = entry
            .descriptor
            .supports_model(request.model(), &request.options);
        if !eligible {
            candidates.push(RouterCandidate {
                engine: entry.name.as_str().to_string(),
                eligible: false,
                predicted_seconds: None,
                meets_deadline: None,
                breaker_open: false,
            });
            continue;
        }
        any_supports = true;
        // Health-aware degradation: an engine whose breaker refuses
        // admission is passed over exactly like a deadline miss — the next
        // candidate absorbs the traffic instead of the client seeing a
        // 5xx. (An open breaker past its cooldown flips to half-open here,
        // so auto traffic is what probes a recovering engine.)
        let (admit, transition) = entry.cells.breaker.admit();
        if let Some(transition) = transition {
            log_breaker_transition(obs, entry.name.as_str(), transition);
        }
        if let BreakerAdmit::Shed { .. } = admit {
            candidates.push(RouterCandidate {
                engine: entry.name.as_str().to_string(),
                eligible: true,
                predicted_seconds: None,
                meets_deadline: None,
                breaker_open: true,
            });
            skipped_eligible = true;
            continue;
        }
        any_admitted = true;
        let (predicted, meets) = match deadline {
            // No deadline: nothing to predict — the most-preferred
            // eligible engine wins outright.
            None => (None, None),
            Some(deadline) => {
                let predicted = predicted_completion_seconds(
                    domains[entry.domain].backlog_ops(),
                    estimated_ops,
                    entry.cells.drain.ops_per_second(),
                );
                (Some(predicted), Some(predicted <= deadline.as_secs_f64()))
            }
        };
        candidates.push(RouterCandidate {
            engine: entry.name.as_str().to_string(),
            eligible: true,
            predicted_seconds: predicted,
            meets_deadline: meets,
            breaker_open: false,
        });
        if meets != Some(false) {
            chosen = Some(index);
            break;
        }
        skipped_eligible = true;
    }

    // Three distinct sheds: a profile no candidate can execute is permanent
    // (retrying cannot help — the client must change the request); a
    // deadline no candidate meets is load-transient; every eligible
    // candidate breaker-blocked is health-transient (retry after the
    // breakers' cooldown).
    let outcome = match chosen {
        Some(index) => Ok(index),
        None if any_admitted => Err(Rejection::NoEngineMeetsDeadline),
        None if any_supports => Err(Rejection::EngineUnavailable),
        None => Err(Rejection::NoEngineSupportsRequest),
    };
    let verdict = match &outcome {
        Ok(index) => RouterVerdict::Chosen {
            engine: entries[*index].name.as_str().to_string(),
            // Degraded: a more-preferred eligible engine was passed over
            // because its predicted completion missed the deadline.
            degraded: skipped_eligible,
        },
        Err(rejection) => RouterVerdict::Shed {
            reason: rejection.code().to_string(),
        },
    };
    let decision = RouterDecision {
        deadline_seconds: deadline.map(|d| d.as_secs_f64()),
        candidates,
        verdict,
    };
    (outcome, decision)
}

#[cfg(test)]
mod tests {
    use super::super::breaker::BreakerConfig;
    use super::super::retry::RetryPolicy;
    use super::*;
    use bishop_core::SimOptions;
    use bishop_engine::{CatalogEntry, EngineSubstrate};
    use bishop_model::{DatasetKind, ModelConfig};
    use bishop_obs::assert_verdict;
    use std::sync::mpsc;

    fn entry(
        name: &str,
        domain: usize,
        seed_rate: f64,
        supports_ecp: bool,
    ) -> (EngineEntry, DomainSubmitter) {
        let cells = Arc::new(EngineCells::new(
            EngineName::from(name),
            seed_rate,
            BreakerConfig::default(),
            &RetryPolicy::default(),
        ));
        let descriptor = EngineDescriptor {
            name: if name == "native" {
                "native"
            } else {
                "simulator"
            },
            substrate: EngineSubstrate::HostCpu,
            supports_ecp,
            deterministic: true,
            measures_wall_clock: false,
            max_folded_timesteps: None,
            supports_streaming: false,
            seed_drain_ops_per_second: seed_rate,
            simd_tier: None,
            description: "test",
        };
        let (tx, _rx) = mpsc::sync_channel(1);
        let submitter = DomainSubmitter {
            tx,
            engines: vec![Arc::clone(&cells)],
        };
        (
            EngineEntry {
                name: EngineName::from(name),
                descriptor,
                cells,
                domain,
            },
            submitter,
        )
    }

    fn request(options: SimOptions) -> InferenceRequest {
        let entry = CatalogEntry::new(
            ModelConfig::new("m", DatasetKind::Cifar10, 1, 4, 16, 32, 2),
            bishop_bundle::TrainingRegime::Bsa,
            options,
        );
        InferenceRequest::new(0, entry, 1).with_engine(EngineName::auto())
    }

    #[test]
    fn prefers_the_first_engine_that_meets_the_deadline() {
        let (slow, slow_domain) = entry("native", 0, 1e3, false);
        let (fast, fast_domain) = entry("simulator", 1, 1e12, true);
        let entries = [slow, fast];
        let domains = [slow_domain, fast_domain];
        let request = request(SimOptions::baseline());
        let ops = 1_000_000;

        let obs = ObsHub::default();
        // No deadline: most-preferred (first) engine wins.
        let chosen = select_engine(&entries, &[0, 1], &domains, &request, ops, None, &obs)
            .0
            .expect("eligible");
        assert_eq!(chosen, 0);
        // Tight deadline: 1e6 ops at 1e3 ops/s is 1000 s — the slow engine
        // cannot meet 1 ms, the fast one predicts 1 µs and wins.
        let (outcome, decision) = select_engine(
            &entries,
            &[0, 1],
            &domains,
            &request,
            ops,
            Some(Duration::from_millis(1)),
            &obs,
        );
        assert_eq!(outcome.expect("fast engine fits"), 1);
        // The decision record captures both candidates, the miss and the
        // hit, and flags the choice as degraded (a more-preferred engine
        // was passed over for deadline reasons).
        assert_eq!(decision.candidates.len(), 2);
        assert_eq!(decision.candidates[0].meets_deadline, Some(false));
        assert_eq!(decision.candidates[1].meets_deadline, Some(true));
        assert_verdict!(decision.verdict, chosen = "simulator", degraded = true);
        // Loose deadline: the slow-but-preferred engine fits again, and the
        // walk stops at it — only one candidate is recorded, undegraded.
        let (outcome, decision) = select_engine(
            &entries,
            &[0, 1],
            &domains,
            &request,
            ops,
            Some(Duration::from_secs(2000)),
            &obs,
        );
        assert_eq!(outcome.expect("slow engine fits"), 0);
        assert_eq!(decision.candidates.len(), 1);
        assert_eq!(decision.verdict.label(), "chosen");
        assert_eq!(decision.verdict.engine_label(), "native");
    }

    #[test]
    fn sheds_when_no_engine_meets_the_deadline() {
        let (slow, slow_domain) = entry("native", 0, 1.0, false);
        let entries = [slow];
        let domains = [slow_domain];
        let (outcome, decision) = select_engine(
            &entries,
            &[0],
            &domains,
            &request(SimOptions::baseline()),
            1_000_000,
            Some(Duration::from_millis(1)),
            &ObsHub::default(),
        );
        assert_eq!(outcome, Err(Rejection::NoEngineMeetsDeadline));
        // The shed verdict carries the same wire code the client sees.
        assert_eq!(decision.verdict.label(), "shed");
        assert_eq!(decision.verdict.engine_label(), "none");
        assert_verdict!(decision.verdict, shed = "no_engine_meets_deadline");
    }

    #[test]
    fn skips_engines_that_cannot_execute_the_profile() {
        // ECP request: the non-ECP preferred engine is ineligible even with
        // no deadline; the ECP-capable one is chosen.
        let (no_ecp, d0) = entry("native", 0, 1e12, false);
        let (with_ecp, d1) = entry("simulator", 1, 1e12, true);
        let entries = [no_ecp, with_ecp];
        let domains = [d0, d1];
        let obs = ObsHub::default();
        let (outcome, decision) = select_engine(
            &entries,
            &[0, 1],
            &domains,
            &request(SimOptions::with_ecp(6)),
            1000,
            None,
            &obs,
        );
        assert_eq!(outcome.expect("ECP-capable engine eligible"), 1);
        // The ineligible engine still appears in the record, marked so.
        assert!(!decision.candidates[0].eligible);
        assert!(decision.candidates[1].eligible);
        // Skipping an *ineligible* engine is not degradation — no eligible
        // candidate was passed over.
        assert_verdict!(decision.verdict, chosen = "simulator", degraded = false);
        // No candidate supports the profile at all: the *permanent* shed,
        // distinct from a transient unmeetable deadline.
        let (outcome, _) = select_engine(
            &entries,
            &[0],
            &domains,
            &request(SimOptions::with_ecp(6)),
            1000,
            None,
            &obs,
        );
        assert_eq!(outcome, Err(Rejection::NoEngineSupportsRequest));
    }

    /// Trips one entry's breaker open by feeding its window hard failures.
    fn trip_breaker(entry: &EngineEntry) {
        let config = BreakerConfig::default();
        for _ in 0..config.window {
            entry.cells.breaker.record(true);
        }
        assert_eq!(
            entry.cells.breaker.snapshot().state,
            super::super::breaker::BreakerState::Open
        );
    }

    #[test]
    fn routes_around_an_open_breaker_and_sheds_when_all_are_open() {
        let (native, d0) = entry("native", 0, 1e12, false);
        let (simulator, d1) = entry("simulator", 1, 1e12, true);
        trip_breaker(&native);
        let entries = [native, simulator];
        let domains = [d0, d1];
        let obs = ObsHub::default();
        // The preferred engine's breaker is open: auto degrades to the next
        // candidate and the decision record says why.
        let (outcome, decision) = select_engine(
            &entries,
            &[0, 1],
            &domains,
            &request(SimOptions::baseline()),
            1000,
            None,
            &obs,
        );
        assert_eq!(outcome.expect("healthy engine absorbs the traffic"), 1);
        assert!(decision.candidates[0].eligible);
        assert!(decision.candidates[0].breaker_open);
        assert!(!decision.candidates[1].breaker_open);
        assert_verdict!(decision.verdict, chosen = "simulator", degraded = true);
        // Every eligible breaker open: the health-transient shed, distinct
        // from both deadline and capability sheds.
        trip_breaker(&entries[1]);
        let (outcome, decision) = select_engine(
            &entries,
            &[0, 1],
            &domains,
            &request(SimOptions::baseline()),
            1000,
            None,
            &obs,
        );
        assert_eq!(outcome, Err(Rejection::EngineUnavailable));
        assert_verdict!(decision.verdict, shed = "engine_unavailable");
    }

    #[test]
    fn prediction_accounts_for_queued_backlog() {
        let (engine, domain) = entry("native", 0, 1e6, false);
        // Empty domain: 1e3 ops at 1e6 ops/s = 1 ms, meets a 10 ms deadline.
        assert!(select_engine(
            &[engine],
            &[0],
            std::slice::from_ref(&domain),
            &request(SimOptions::baseline()),
            1_000,
            Some(Duration::from_millis(10)),
            &ObsHub::default(),
        )
        .0
        .is_ok());
        // 1e6 ops of backlog pushes predicted completion past the deadline.
        domain.engines[0]
            .backlog_ops
            .store(1_000_000, std::sync::atomic::Ordering::Release);
        let (engine, _) = entry("native", 0, 1e6, false);
        assert_eq!(
            select_engine(
                &[engine],
                &[0],
                std::slice::from_ref(&domain),
                &request(SimOptions::baseline()),
                1_000,
                Some(Duration::from_millis(10)),
                &ObsHub::default(),
            )
            .0,
            Err(Rejection::NoEngineMeetsDeadline)
        );
    }
}
