//! Per-engine drain-rate calibration and latency observation.
//!
//! Deadline admission and `"auto"` dispatch both need to predict how fast a
//! scheduling domain retires work. A single static `drain_ops_per_second`
//! cannot describe heterogeneous substrates (the memoized simulator clears
//! backlogs orders of magnitude faster than real CPU execution), so every
//! engine carries its own [`DrainRate`]: an online exponentially-weighted
//! moving average of *observed* ops/second, seeded from the engine's
//! [`EngineDescriptor`](bishop_engine::EngineDescriptor) before any batch
//! has completed and updated by workers on every batch completion.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use bishop_engine::EngineName;

use crate::report::LatencyPercentiles;

use super::breaker::{BreakerConfig, BreakerSnapshot, CircuitBreaker};
use super::retry::{RetryBudget, RetryPolicy};

/// Weight of the newest observation in the drain-rate EWMA. Low enough to
/// ride out one anomalous batch, high enough to converge from a bad seed
/// within a handful of completions.
const EWMA_ALPHA: f64 = 0.2;

/// Observed per-request latencies retained per engine for the percentile
/// snapshot `GET /v1/engines` publishes.
const LATENCY_WINDOW: usize = 512;

/// Lock-free `f64 += delta` on an `AtomicU64` holding the value's bits.
pub(crate) fn add_f64(cell: &AtomicU64, delta: f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(current) + delta).to_bits();
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(observed) => current = observed,
        }
    }
}

/// Lock-free `f64 = max(f64, value)` on an `AtomicU64` holding the bits.
pub(crate) fn max_f64(cell: &AtomicU64, value: f64) {
    let mut current = cell.load(Ordering::Relaxed);
    while value > f64::from_bits(current) {
        match cell.compare_exchange_weak(
            current,
            value.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(observed) => current = observed,
        }
    }
}

/// An online EWMA of one engine's observed drain rate (dense ops retired
/// per wall-clock second), lock-free and shared between the admission path
/// (reads) and the engine's workers (writes).
#[derive(Debug)]
pub(crate) struct DrainRate {
    ops_per_second_bits: AtomicU64,
    observations: AtomicU64,
}

impl DrainRate {
    /// A rate seeded with an a-priori estimate (clamped to ≥ 1 op/s so the
    /// backlog-drain division below can never blow up).
    pub(crate) fn seeded(ops_per_second: f64) -> Self {
        Self {
            ops_per_second_bits: AtomicU64::new(ops_per_second.max(1.0).to_bits()),
            observations: AtomicU64::new(0),
        }
    }

    /// Folds one completed batch into the EWMA: `ops` estimated dense ops
    /// retired over `wall_seconds` of measured wall-clock.
    pub(crate) fn observe(&self, ops: u64, wall_seconds: f64) {
        let sample = ops as f64 / wall_seconds.max(1e-9);
        self.observations.fetch_add(1, Ordering::Relaxed);
        let mut current = self.ops_per_second_bits.load(Ordering::Relaxed);
        loop {
            let blended = (EWMA_ALPHA * sample + (1.0 - EWMA_ALPHA) * f64::from_bits(current))
                .max(1.0)
                .to_bits();
            match self.ops_per_second_bits.compare_exchange_weak(
                current,
                blended,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// The current calibrated rate, always ≥ 1 op/s.
    pub(crate) fn ops_per_second(&self) -> f64 {
        f64::from_bits(self.ops_per_second_bits.load(Ordering::Relaxed))
    }

    /// How many batch completions have been folded in.
    pub(crate) fn observations(&self) -> u64 {
        self.observations.load(Ordering::Relaxed)
    }
}

/// A bounded ring of recently observed per-request latencies (on the
/// engine's clock — what responses report), for the p50/p95 snapshot.
#[derive(Debug, Default)]
pub(crate) struct LatencyWindow {
    samples: Mutex<std::collections::VecDeque<f64>>,
}

impl LatencyWindow {
    /// Records `count` requests that each observed `latency_seconds` (the
    /// riders of one batch all share the batch's latency).
    pub(crate) fn record(&self, latency_seconds: f64, count: usize) {
        let mut samples = self.samples.lock().expect("latency window lock");
        for _ in 0..count.min(LATENCY_WINDOW) {
            if samples.len() == LATENCY_WINDOW {
                samples.pop_front();
            }
            samples.push_back(latency_seconds);
        }
    }

    /// Percentiles over the retained window (zeroed when empty).
    pub(crate) fn percentiles(&self) -> LatencyPercentiles {
        let samples = self.samples.lock().expect("latency window lock");
        let latencies: Vec<f64> = samples.iter().copied().collect();
        LatencyPercentiles::from_latencies(&latencies)
    }
}

/// The per-engine scheduling state every domain worker feeds and every
/// admission decision reads: queue/backlog gauges, outcome counters, the
/// calibrated [`DrainRate`] and the latency observation window.
#[derive(Debug)]
pub(crate) struct EngineCells {
    pub(crate) name: EngineName,
    pub(crate) pending: AtomicUsize,
    pub(crate) backlog_ops: AtomicU64,
    pub(crate) batches_executed: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) drain: DrainRate,
    pub(crate) latency: LatencyWindow,
    /// The engine's circuit breaker (admission consults, workers feed).
    pub(crate) breaker: CircuitBreaker,
    /// The domain's retry-budget token bucket.
    pub(crate) retry_budget: RetryBudget,
    /// Engine panics contained by `catch_unwind` in this domain's workers.
    pub(crate) panics: AtomicU64,
    /// Retry attempts workers actually slept-and-re-executed.
    pub(crate) retries_attempted: AtomicU64,
    /// Batches that succeeded on a retry attempt.
    pub(crate) retries_recovered: AtomicU64,
    /// Batches that failed after exhausting their retry attempts.
    pub(crate) retries_exhausted: AtomicU64,
    /// Retries denied because the budget was empty.
    pub(crate) retry_budget_denied: AtomicU64,
    /// Step events emitted by this engine's streaming executions.
    pub(crate) stream_events: AtomicU64,
}

impl EngineCells {
    /// Zeroed cells for `name`, with the drain rate seeded at
    /// `seed_ops_per_second` and fault-tolerance per the given tuning.
    pub(crate) fn new(
        name: EngineName,
        seed_ops_per_second: f64,
        breaker: BreakerConfig,
        retry: &RetryPolicy,
    ) -> Self {
        Self {
            name,
            pending: AtomicUsize::new(0),
            backlog_ops: AtomicU64::new(0),
            batches_executed: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            drain: DrainRate::seeded(seed_ops_per_second),
            latency: LatencyWindow::default(),
            breaker: CircuitBreaker::new(breaker),
            retry_budget: RetryBudget::new(retry),
            panics: AtomicU64::new(0),
            retries_attempted: AtomicU64::new(0),
            retries_recovered: AtomicU64::new(0),
            retries_exhausted: AtomicU64::new(0),
            retry_budget_denied: AtomicU64::new(0),
            stream_events: AtomicU64::new(0),
        }
    }

    /// A point-in-time public snapshot.
    pub(crate) fn snapshot(&self) -> EngineLoadStats {
        EngineLoadStats {
            engine: self.name.clone(),
            queue_depth: self.pending.load(Ordering::Acquire),
            backlog_ops: self.backlog_ops.load(Ordering::Acquire),
            batches_executed: self.batches_executed.load(Ordering::Acquire),
            completed: self.completed.load(Ordering::Acquire),
            failed: self.failed.load(Ordering::Acquire),
            drain_ops_per_second: self.drain.ops_per_second(),
            drain_observations: self.drain.observations(),
            latency: self.latency.percentiles(),
            breaker: self.breaker.snapshot(),
            worker_panics: self.panics.load(Ordering::Acquire),
            retries_attempted: self.retries_attempted.load(Ordering::Acquire),
            retries_recovered: self.retries_recovered.load(Ordering::Acquire),
            retries_exhausted: self.retries_exhausted.load(Ordering::Acquire),
            retry_budget_denied: self.retry_budget_denied.load(Ordering::Acquire),
            stream_events: self.stream_events.load(Ordering::Acquire),
        }
    }
}

/// A point-in-time snapshot of one engine's scheduling domain, published
/// through [`OnlineStats::engines`](super::OnlineStats::engines), the
/// gateway's `GET /v1/engines` and the per-engine `/metrics` series.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineLoadStats {
    /// The engine the domain serves.
    pub engine: EngineName,
    /// Requests admitted to this engine but not yet completed.
    pub queue_depth: usize,
    /// Estimated dense ops of the engine's admitted-but-uncompleted backlog.
    pub backlog_ops: u64,
    /// Batches this engine has executed.
    pub batches_executed: u64,
    /// Requests completed on this engine.
    pub completed: u64,
    /// Requests failed on this engine (typed refusals).
    pub failed: u64,
    /// Calibrated drain rate: EWMA of observed dense ops retired per
    /// wall-clock second, seeded from the engine descriptor.
    pub drain_ops_per_second: f64,
    /// How many batch completions the calibration has folded in (0 = the
    /// rate is still the descriptor seed).
    pub drain_observations: u64,
    /// Observed per-request latency percentiles (engine clock) over a
    /// bounded recent window.
    pub latency: LatencyPercentiles,
    /// The engine's circuit-breaker state.
    pub breaker: BreakerSnapshot,
    /// Engine panics contained by the domain's workers.
    pub worker_panics: u64,
    /// Retry attempts the domain's workers executed.
    pub retries_attempted: u64,
    /// Batches that succeeded on a retry.
    pub retries_recovered: u64,
    /// Batches that failed after exhausting retries.
    pub retries_exhausted: u64,
    /// Retries denied by an empty budget.
    pub retry_budget_denied: u64,
    /// Step events this engine's streaming executions emitted (per-timestep
    /// on native, per-layer on the simulator).
    pub stream_events: u64,
}

impl Default for EngineLoadStats {
    fn default() -> Self {
        Self {
            engine: EngineName::default(),
            queue_depth: 0,
            backlog_ops: 0,
            batches_executed: 0,
            completed: 0,
            failed: 0,
            drain_ops_per_second: 1.0,
            drain_observations: 0,
            latency: LatencyPercentiles::default(),
            breaker: BreakerSnapshot::default(),
            worker_panics: 0,
            retries_attempted: 0,
            retries_recovered: 0,
            retries_exhausted: 0,
            retry_budget_denied: 0,
            stream_events: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_cells_accumulate_and_max() {
        let cell = AtomicU64::new(0);
        add_f64(&cell, 1.5);
        add_f64(&cell, 2.25);
        assert_eq!(f64::from_bits(cell.load(Ordering::Relaxed)), 3.75);
        let max_cell = AtomicU64::new(0);
        max_f64(&max_cell, 2.0);
        max_f64(&max_cell, 1.0);
        assert_eq!(f64::from_bits(max_cell.load(Ordering::Relaxed)), 2.0);
    }

    #[test]
    fn drain_rate_converges_toward_observations() {
        let rate = DrainRate::seeded(1.0);
        assert_eq!(rate.ops_per_second(), 1.0);
        assert_eq!(rate.observations(), 0);
        for _ in 0..64 {
            rate.observe(1_000_000, 1.0); // steady 1e6 ops/s
        }
        assert_eq!(rate.observations(), 64);
        let calibrated = rate.ops_per_second();
        assert!(
            (calibrated - 1e6).abs() / 1e6 < 0.01,
            "EWMA should have converged near 1e6, got {calibrated}"
        );
    }

    #[test]
    fn drain_rate_never_drops_below_one() {
        let rate = DrainRate::seeded(0.0);
        assert_eq!(rate.ops_per_second(), 1.0);
        rate.observe(0, 100.0);
        assert!(rate.ops_per_second() >= 1.0);
    }

    #[test]
    fn latency_window_is_bounded_and_reports_percentiles() {
        let window = LatencyWindow::default();
        assert_eq!(window.percentiles(), LatencyPercentiles::default());
        window.record(1.0, 4);
        window.record(3.0, 4);
        let p = window.percentiles();
        assert_eq!(p.p50, 1.0);
        assert_eq!(p.max, 3.0);
        // Flooding past the window keeps only the newest samples.
        window.record(7.0, 10 * LATENCY_WINDOW);
        let p = window.percentiles();
        assert_eq!(p.p50, 7.0);
        assert_eq!(p.p95, 7.0);
    }

    #[test]
    fn engine_cells_snapshot_reflects_counters() {
        let cells = EngineCells::new(
            EngineName::native(),
            123.0,
            BreakerConfig::default(),
            &RetryPolicy::default(),
        );
        cells.pending.store(3, Ordering::Release);
        cells.completed.store(9, Ordering::Release);
        cells.panics.store(2, Ordering::Release);
        cells.retries_attempted.store(5, Ordering::Release);
        let snap = cells.snapshot();
        assert_eq!(snap.engine, EngineName::native());
        assert_eq!(snap.queue_depth, 3);
        assert_eq!(snap.completed, 9);
        assert_eq!(snap.drain_ops_per_second, 123.0);
        assert_eq!(snap.drain_observations, 0);
        assert_eq!(snap.breaker.state.label(), "closed");
        assert_eq!(snap.worker_panics, 2);
        assert_eq!(snap.retries_attempted, 5);
    }
}
