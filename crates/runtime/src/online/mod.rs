//! Online submission: the always-on serving path.
//!
//! Where [`BishopServer::serve`](crate::BishopServer::serve) replays a closed
//! trace, this module keeps a server *running*: clients call
//! [`ServerHandle::try_submit`] at any time and get back a [`Ticket`] that
//! resolves to the request's [`InferenceResponse`] once the batch it rode in
//! has been executed.
//!
//! ```text
//!                      ┌► admission ─► domain: simulator ─► batcher ─► workers
//!  clients ─► dispatch │   control     (bounded queue)      size-or-   (dedicated)
//!             "auto" → │   shed:        …                   timeout        │
//!             engine   │   queue/      domain: native   ─► batcher ─► workers
//!             by       │   deadline    (bounded queue)                    ▼
//!             deadline └──────────────────────────────────────────► per-ticket
//!                                                                   completion
//! ```
//!
//! **Scheduling domains.** Every registered engine gets its own *domain*: a
//! bounded queue, a batcher with its own [`BatchFormer`] (capped at that
//! engine's padded fold limit) and a dedicated worker pool — so substrates
//! can never head-of-line-block each other (a slow `native` batch occupies
//! only native workers; `simulator` traffic flows on beside it). The
//! pre-domain topology (one shared queue and pool) remains available via
//! [`OnlineConfig::with_domain_isolation`] for A/B measurement.
//!
//! **Admission control** sheds load with explicit [`Rejection`]s instead of
//! blocking: a request is rejected when the pending count reaches
//! `max_pending` (queue-depth shedding), when its domain's bounded channel
//! is full, or when its deadline cannot be met given the *domain's* admitted
//! backlog drained at the engine's **calibrated rate** — an online EWMA of
//! observed ops/second per engine, seeded from the engine descriptor and fed
//! back from every worker completion. A shed request costs the caller a few
//! atomic reads — it never touches a batcher.
//!
//! **Autoselection.** A request naming [`EngineName::auto`] is routed by the
//! dispatcher to the most-preferred engine whose *predicted completion*
//! (domain backlog + own cost, at the calibrated drain rate) meets its
//! deadline — `native` when the budget allows real execution, degrading to
//! `simulator` under pressure, shedding with
//! [`Rejection::NoEngineMeetsDeadline`] only when nothing fits.
//!
//! **Batching** follows a size-*or-timeout* policy per domain: a batch
//! closes as soon as `max_batch_size` compatible requests arrived, or when
//! its oldest member has waited `batch_timeout`. With `batch_timeout: None`
//! batches close only on size or an explicit [`ServerHandle::flush`] — the
//! timing-free mode the deterministic offline `serve` path is built on.
//! Batch ids are strided across domains (domain *i* of *n* assigns ids
//! `i, i+n, i+2n, …`), keeping them globally unique and deterministic.
//!
//! **Execution** is pluggable: each domain worker resolves the batch's
//! [`EngineName`] through the server's [`EngineRegistry`] and executes it on
//! that backend. An engine refusal is not a crash or a hang — the riders'
//! tickets resolve to a typed [`ServeError`] and the failure is counted in
//! [`OnlineStats::failed`].

mod breaker;
mod calibration;
mod dispatch;
mod domain;
mod retry;
mod sampler;

pub use breaker::{BreakerConfig, BreakerSnapshot, BreakerState};
pub use calibration::EngineLoadStats;
pub(crate) use domain::ExecutedBatch;
pub use retry::RetryPolicy;
pub use sampler::SamplerConfig;

use breaker::BreakerAdmit;

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::time::Duration;

use bishop_engine::{
    CalibrationCache, EngineError, EngineName, EngineRegistry, InferenceEngine, NativeEngine,
    NativeEngineConfig, ResultCache, StepEvent,
};
use bishop_model::{ComputePool, WorkerProbe};
use bishop_obs::{EventLevel, EventValue, ObsHub, Stage, StageSlot, TraceContext, WorkerStage};
use bishop_session::SessionStore;

use crate::batch::config_ops;
use crate::request::{InferenceRequest, InferenceResponse};
use crate::server::RuntimeConfig;

use calibration::EngineCells;
use dispatch::EngineEntry;
use domain::{
    spawn_domain, DomainSpec, DomainSubmitter, DomainThreads, PendingRequest, Submission,
};

// Referenced by the module docs above.
#[allow(unused_imports)]
use crate::batch::BatchFormer;

/// The drain rate (dense ops per second) assumed for requests naming an
/// engine the registry does not hold (they fail typed after dispatch, but
/// deadline admission still needs *some* rate), when the deprecated global
/// knob is unset. This was the old single global default.
pub const DEFAULT_DRAIN_OPS_PER_SECOND: f64 = 5e9;

/// Why a submitted request failed to produce a response (as opposed to being
/// shed at admission, which is a [`Rejection`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request named an engine the server's registry does not hold.
    UnknownEngine(EngineName),
    /// The engine refused or failed to execute the batch.
    Engine(EngineError),
}

impl ServeError {
    /// A stable machine-readable code (the gateway's wire error codes).
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::UnknownEngine(_) => "unknown_engine",
            ServeError::Engine(error) => error.code(),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownEngine(name) => write!(f, "unknown engine \"{name}\""),
            ServeError::Engine(error) => error.fmt(f),
        }
    }
}

impl std::error::Error for ServeError {}

/// What one submitted request ultimately resolved to.
pub type ServeResult = Result<InferenceResponse, ServeError>;

/// Configuration of an [`OnlineServer`], wrapping the batch/worker
/// [`RuntimeConfig`] with the online-only knobs.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Worker pool, queue capacity, batching policy and hardware model.
    /// With domain isolation on, `runtime.workers` and
    /// `runtime.queue_capacity` apply *per domain* (overridable per engine
    /// via [`OnlineConfig::with_domain_workers`]).
    pub runtime: RuntimeConfig,
    /// Close a partially-filled batch once its oldest member has waited
    /// this long. `None` disables the timeout: batches close only on size
    /// or an explicit flush (the deterministic trace-replay mode).
    pub batch_timeout: Option<Duration>,
    /// Queue-depth admission cap: [`ServerHandle::try_submit`] sheds when
    /// this many requests are already admitted but not yet completed
    /// (across all domains). `0` sheds everything (useful for overload
    /// tests).
    pub max_pending: usize,
    /// **Deprecated global knob**, kept as a calibration *seed*: per-engine
    /// drain rates (an online EWMA of observed ops/second) replaced the
    /// single global rate. `None` (the default) seeds each engine from its
    /// own descriptor; `Some(rate)` (via [`OnlineConfig::with_drain_rate`])
    /// seeds every engine with the given value instead — matching the old
    /// single-rate behaviour until observations flow.
    pub drain_ops_per_second: Option<f64>,
    /// Record every executed batch for post-run report assembly. Leave off
    /// for long-running servers (the record grows without bound).
    pub record_batches: bool,
    /// Execution backends. `None` builds the full default registry
    /// (`simulator`, `native`, `ptb`, `gpu`) over the server's caches.
    pub registry: Option<Arc<EngineRegistry>>,
    /// Width of the native engine's intra-batch compute pool (`0` =
    /// auto-size to the host's available parallelism, `1` = sequential).
    /// Only applies when the default registry is built (an injected
    /// registry brings its own engines); pool lanes publish `"compute"`
    /// stage slots to the profiler. Execution stays bit-identical at any
    /// width.
    pub native_compute_workers: usize,
    /// Whether each engine gets its own scheduling domain (queue, batcher
    /// and dedicated workers). `false` rebuilds the pre-domain topology —
    /// one shared queue and worker pool serving every engine — for A/B
    /// measurement of head-of-line blocking.
    pub isolate_domains: bool,
    /// Per-engine worker-pool size overrides (engine name → workers);
    /// engines not listed use `runtime.workers`. Ignored without domain
    /// isolation.
    pub domain_workers: Vec<(EngineName, usize)>,
    /// Per-engine drain-rate seed overrides (engine name → ops/second);
    /// takes precedence over both the global knob and the descriptor seed.
    pub engine_drain_seeds: Vec<(EngineName, f64)>,
    /// Preference order `"auto"` requests resolve against (most-preferred
    /// first); names not registered are skipped. Defaults to
    /// [`EngineRegistry::default_auto_preference`].
    pub auto_preference: Vec<EngineName>,
    /// The observability hub (stage histograms, trace store, router
    /// decision counters, event log) the server feeds. `None` (the
    /// default) builds a hub with [`bishop_obs::ObsConfig`] defaults;
    /// inject one to share it with a gateway or to tune retention.
    pub obs: Option<Arc<ObsHub>>,
    /// Per-domain retry loop for *retryable* engine errors (transient
    /// faults, contained panics): capped exponential backoff under a
    /// shared retry budget. Defaults on; [`RetryPolicy::disabled`] turns
    /// it off for deterministic replay.
    pub retry: RetryPolicy,
    /// Per-engine circuit breaker: error-rate-over-window trips the engine
    /// open, a cooldown later half-open probes decide recovery. `"auto"`
    /// dispatch skips open engines (degrading to the next candidate);
    /// explicit-engine requests shed typed. Defaults on;
    /// [`BreakerConfig::disabled`] turns it off.
    pub breaker: BreakerConfig,
    /// The background observability sampler: sweeps the worker stage
    /// slots into the profiler and scrapes counters/gauges/quantiles into
    /// the time-series store (which the SLO engine evaluates). Defaults
    /// on; [`SamplerConfig::disabled`] turns the thread off.
    pub sampler: SamplerConfig,
}

impl OnlineConfig {
    /// Online defaults on top of the given runtime configuration: 2 ms
    /// batch timeout, 1024 pending requests, no batch recording, default
    /// engine registry, per-engine scheduling domains.
    pub fn new(runtime: RuntimeConfig) -> Self {
        Self {
            runtime,
            batch_timeout: Some(Duration::from_millis(2)),
            max_pending: 1024,
            drain_ops_per_second: None,
            record_batches: false,
            registry: None,
            native_compute_workers: 0,
            isolate_domains: true,
            domain_workers: Vec::new(),
            engine_drain_seeds: Vec::new(),
            auto_preference: EngineRegistry::default_auto_preference()
                .into_iter()
                .map(EngineName::new)
                .collect(),
            obs: None,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            sampler: SamplerConfig::default(),
        }
    }

    /// Overrides the batch timeout (`None` = close on size/flush only).
    pub fn with_batch_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.batch_timeout = timeout;
        self
    }

    /// Overrides the queue-depth admission cap.
    pub fn with_max_pending(mut self, max_pending: usize) -> Self {
        self.max_pending = max_pending;
        self
    }

    /// **Deprecated** in favour of per-engine calibration (see
    /// [`OnlineConfig::drain_ops_per_second`]): sets the drain-rate *seed*
    /// every engine's calibration starts from. Values below 1 op/s are
    /// clamped to 1.0 — with a diagnostic on stderr in debug builds —
    /// because a zero or negative rate would make every backlog prediction
    /// infinite.
    pub fn with_drain_rate(mut self, ops_per_second: f64) -> Self {
        if ops_per_second < 1.0 {
            #[cfg(debug_assertions)]
            eprintln!(
                "bishop-runtime: OnlineConfig::with_drain_rate({ops_per_second}) \
                 clamped to 1.0 ops/s"
            );
        }
        self.drain_ops_per_second = Some(ops_per_second.max(1.0));
        self
    }

    /// Enables or disables executed-batch recording.
    pub fn with_record_batches(mut self, record: bool) -> Self {
        self.record_batches = record;
        self
    }

    /// Overrides the engine registry (e.g. to serve a custom backend or to
    /// restrict the served set).
    pub fn with_registry(mut self, registry: Arc<EngineRegistry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Overrides the native engine's intra-batch compute-pool width (`0` =
    /// auto, `1` = sequential). Only effective with the default registry.
    pub fn with_native_compute_workers(mut self, workers: usize) -> Self {
        self.native_compute_workers = workers;
        self
    }

    /// Enables or disables per-engine scheduling domains (`false` = the
    /// pre-domain shared queue + pool, for A/B measurement).
    pub fn with_domain_isolation(mut self, isolate: bool) -> Self {
        self.isolate_domains = isolate;
        self
    }

    /// Overrides the worker-pool size of one engine's domain.
    pub fn with_domain_workers(mut self, engine: EngineName, workers: usize) -> Self {
        self.domain_workers.retain(|(name, _)| *name != engine);
        self.domain_workers.push((engine, workers.max(1)));
        self
    }

    /// Overrides the drain-rate calibration seed of one engine (clamped to
    /// ≥ 1 op/s).
    pub fn with_engine_drain_seed(mut self, engine: EngineName, ops_per_second: f64) -> Self {
        self.engine_drain_seeds.retain(|(name, _)| *name != engine);
        self.engine_drain_seeds
            .push((engine, ops_per_second.max(1.0)));
        self
    }

    /// Overrides the `"auto"` resolution preference order (most-preferred
    /// first).
    pub fn with_auto_preference(mut self, preference: Vec<EngineName>) -> Self {
        self.auto_preference = preference;
        self
    }

    /// Injects an observability hub (to share one with a gateway, or to
    /// tune trace retention and event-log levels).
    pub fn with_obs(mut self, obs: Arc<ObsHub>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Overrides the per-domain retry policy ([`RetryPolicy::disabled`]
    /// turns retries off).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Overrides the per-engine circuit-breaker tuning
    /// ([`BreakerConfig::disabled`] turns breakers off).
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    /// Overrides the background sampler ([`SamplerConfig::disabled`]
    /// turns the thread off; tests shrink the intervals).
    pub fn with_sampler(mut self, sampler: SamplerConfig) -> Self {
        self.sampler = sampler;
        self
    }

    /// The drain-rate seed for one engine: an explicit per-engine override
    /// wins, then an explicitly-set global knob, then the descriptor seed.
    fn drain_seed(&self, name: &str, descriptor_seed: f64) -> f64 {
        if let Some((_, rate)) = self
            .engine_drain_seeds
            .iter()
            .find(|(engine, _)| engine.as_str() == name)
        {
            return rate.max(1.0);
        }
        if let Some(rate) = self.drain_ops_per_second {
            return rate.max(1.0);
        }
        descriptor_seed.max(1.0)
    }
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self::new(RuntimeConfig::default())
    }
}

/// Why a submission was shed instead of admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// The admitted-but-uncompleted count reached `max_pending`, or the
    /// target domain's bounded submission channel was full.
    QueueFull,
    /// The admitted backlog of the named engine's domain is predicted to
    /// outlast the request's deadline.
    DeadlineUnmeetable,
    /// The request asked for `"auto"` and at least one eligible engine
    /// could execute the profile, but none's predicted completion meets
    /// the deadline. Load-transient: the same request may succeed once
    /// backlogs drain.
    NoEngineMeetsDeadline,
    /// The request asked for `"auto"` and no eligible engine can execute
    /// the request profile at all (unsupported options, oversized model,
    /// or an empty candidate set). Permanent for this request shape —
    /// retrying cannot help.
    NoEngineSupportsRequest,
    /// The named engine's circuit breaker is open (for `"auto"`: every
    /// eligible engine's breaker is). Health-transient: retry after the
    /// breaker's cooldown — [`ServerHandle::breaker_reopen_seconds`]
    /// prices the `Retry-After`.
    EngineUnavailable,
    /// The server is shutting down and no longer admits work.
    ShuttingDown,
}

impl Rejection {
    /// A stable machine-readable code (the gateway's wire error codes).
    pub fn code(&self) -> &'static str {
        match self {
            Rejection::QueueFull => "queue_full",
            Rejection::DeadlineUnmeetable => "deadline_unmeetable",
            Rejection::NoEngineMeetsDeadline => "no_engine_meets_deadline",
            Rejection::NoEngineSupportsRequest => "auto_unroutable",
            Rejection::EngineUnavailable => "engine_unavailable",
            Rejection::ShuttingDown => "shutting_down",
        }
    }
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::QueueFull => f.write_str("submission queue full"),
            Rejection::DeadlineUnmeetable => f.write_str("deadline unmeetable under current load"),
            Rejection::NoEngineMeetsDeadline => {
                f.write_str("no eligible engine's predicted completion meets the deadline")
            }
            Rejection::NoEngineSupportsRequest => {
                f.write_str("no auto-eligible engine can execute the request profile")
            }
            Rejection::EngineUnavailable => {
                f.write_str("engine unavailable: its circuit breaker is open")
            }
            Rejection::ShuttingDown => f.write_str("server shutting down"),
        }
    }
}

impl std::error::Error for Rejection {}

/// Per-reason shed counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionStats {
    /// Requests shed because the queue (or pending cap) was full.
    pub queue_full: u64,
    /// Requests shed because their deadline was unmeetable on the engine
    /// they named.
    pub deadline: u64,
    /// `"auto"` requests shed because no eligible engine met the deadline
    /// ([`Rejection::NoEngineMeetsDeadline`]) or could execute the profile
    /// at all ([`Rejection::NoEngineSupportsRequest`]).
    pub no_engine: u64,
    /// Requests shed because the target engine's circuit breaker was open
    /// ([`Rejection::EngineUnavailable`]).
    pub unavailable: u64,
    /// Requests shed because the server was shutting down.
    pub shutdown: u64,
}

impl AdmissionStats {
    /// Total shed requests across all reasons.
    pub fn total(&self) -> u64 {
        self.queue_full + self.deadline + self.no_engine + self.unavailable + self.shutdown
    }
}

/// A point-in-time snapshot of an online server's counters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OnlineStats {
    /// Requests offered to admission control (admitted + shed).
    pub submitted: u64,
    /// Requests admitted into a domain queue.
    pub admitted: u64,
    /// Requests whose batch executed successfully.
    pub completed: u64,
    /// Requests whose batch failed with a [`ServeError`] (typed refusal;
    /// the tickets resolved, nothing hung).
    pub failed: u64,
    /// Shed counters, by reason.
    pub admission: AdmissionStats,
    /// Batches executed across every domain's worker pool.
    pub batches_executed: u64,
    /// Requests admitted but not yet completed, across all domains.
    pub queue_depth: usize,
    /// Estimated dense ops of the admitted-but-uncompleted backlog, across
    /// all domains.
    pub backlog_ops: u64,
    /// Total busy cycles reported by the engines.
    pub total_simulated_cycles: u64,
    /// Total energy in millijoules reported by the engines.
    pub total_energy_mj: f64,
    /// Mean per-request latency in seconds (on the engines' clocks).
    pub mean_latency_seconds: f64,
    /// Worst per-request latency in seconds.
    pub max_latency_seconds: f64,
    /// Per-engine scheduling-domain snapshots (queue depth, backlog,
    /// calibrated drain rate, observed latency percentiles), in registry
    /// order.
    pub engines: Vec<EngineLoadStats>,
}

/// Shared atomic counters behind every [`ServerHandle`] clone.
#[derive(Debug, Default)]
pub(crate) struct StatsCells {
    pub(crate) submitted: AtomicU64,
    pub(crate) admitted: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) rejected_queue_full: AtomicU64,
    pub(crate) rejected_deadline: AtomicU64,
    pub(crate) rejected_no_engine: AtomicU64,
    pub(crate) rejected_unavailable: AtomicU64,
    pub(crate) rejected_shutdown: AtomicU64,
    pub(crate) batches_executed: AtomicU64,
    pub(crate) pending: AtomicUsize,
    pub(crate) backlog_ops: AtomicU64,
    pub(crate) total_cycles: AtomicU64,
    pub(crate) energy_mj_bits: AtomicU64,
    pub(crate) latency_sum_bits: AtomicU64,
    pub(crate) latency_max_bits: AtomicU64,
    pub(crate) shutting_down: AtomicBool,
}

/// A pending claim on one submitted request's outcome.
#[derive(Debug)]
pub struct Ticket {
    request_id: u64,
    rx: mpsc::Receiver<ServeResult>,
    trace: Option<Arc<TraceContext>>,
    /// Bounded per-step progress events, present when the request asked for
    /// streaming. The sender side lives with the domain worker; it closes
    /// when execution finishes, so draining this receiver to disconnection
    /// and then calling [`Ticket::wait`] never blocks on a dead stream.
    progress: Option<mpsc::Receiver<StepEvent>>,
}

impl Ticket {
    /// The id of the request this ticket tracks.
    pub fn request_id(&self) -> u64 {
        self.request_id
    }

    /// The trace context riding with the request, if the submitter
    /// attached one — the same context the runtime stamps stage
    /// boundaries into, so the edge can finish it after the response
    /// is written.
    pub fn trace(&self) -> Option<&Arc<TraceContext>> {
        self.trace.as_ref()
    }

    /// Blocks until the outcome is ready. Returns `None` only if the
    /// server dropped the request (shutdown mid-flight).
    pub fn wait(self) -> Option<ServeResult> {
        self.rx.recv().ok()
    }

    /// Waits up to `timeout` for the outcome.
    pub fn wait_for(&self, timeout: Duration) -> Option<ServeResult> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Returns the outcome if it is already available.
    pub fn try_wait(&self) -> Option<ServeResult> {
        self.rx.try_recv().ok()
    }

    /// The per-step progress channel, when the request asked for streaming.
    /// Receive until it disconnects (execution finished), then collect the
    /// terminal outcome with [`Ticket::wait`].
    pub fn progress(&self) -> Option<&mpsc::Receiver<StepEvent>> {
        self.progress.as_ref()
    }
}

/// A cloneable, thread-safe submission endpoint of an [`OnlineServer`].
#[derive(Debug, Clone)]
pub struct ServerHandle {
    domains: Arc<Vec<DomainSubmitter>>,
    engines_index: Arc<Vec<EngineEntry>>,
    /// Indices into `engines_index`, most-preferred first, that `"auto"`
    /// requests resolve against.
    auto_order: Arc<Vec<usize>>,
    cells: Arc<StatsCells>,
    registry: Arc<EngineRegistry>,
    max_pending: usize,
    /// Drain rate used for deadline admission of requests naming an engine
    /// the registry does not hold (they fail typed after dispatch).
    fallback_drain: f64,
    obs: Arc<ObsHub>,
    /// The session store an edge (gateway) registered with this server, if
    /// any — the background sampler scrapes its occupancy/eviction counters
    /// into the time-series store alongside the engine gauges.
    sessions: Arc<OnceLock<Arc<SessionStore>>>,
}

impl ServerHandle {
    /// Submits a request without a deadline; sheds (never blocks) when the
    /// queue-depth cap or the target domain's bounded channel is full.
    pub fn try_submit(&self, request: InferenceRequest) -> Result<Ticket, Rejection> {
        self.submit_inner(request, None, false)
    }

    /// Submits a request that is only worth serving if it can *start*
    /// within `deadline`: admission predicts the target domain's backlog
    /// drain time (at the engine's calibrated rate) and sheds the request
    /// up front when the deadline is unmeetable. `"auto"` requests are
    /// instead routed to the most-preferred engine whose predicted
    /// *completion* meets the deadline.
    pub fn try_submit_with_deadline(
        &self,
        request: InferenceRequest,
        deadline: Duration,
    ) -> Result<Ticket, Rejection> {
        self.submit_inner(request, Some(deadline), false)
    }

    /// Submits a request, *blocking* on a full queue instead of shedding —
    /// the backpressure mode trace replay (`BishopServer::serve`) uses.
    /// Queue-depth and deadline admission do not apply; the only possible
    /// rejections are [`Rejection::ShuttingDown`] and — for `"auto"`
    /// requests no registered engine can execute —
    /// [`Rejection::NoEngineSupportsRequest`].
    pub fn submit_blocking(&self, request: InferenceRequest) -> Result<Ticket, Rejection> {
        self.submit_inner(request, None, true)
    }

    /// Counts one shed into the event log: a rate-limited structured line
    /// carrying the request id, the engine it was bound for and the typed
    /// reason — the at-a-glance operator signal for "why are responses
    /// 429ing".
    fn log_shed(&self, request_id: u64, engine: &EngineName, rejection: Rejection) -> Rejection {
        self.obs.events.emit(
            EventLevel::Warn,
            "request_shed",
            &[
                ("request_id", EventValue::U64(request_id)),
                ("engine", EventValue::Str(engine.as_str())),
                ("reason", EventValue::Str(rejection.code())),
            ],
        );
        rejection
    }

    fn submit_inner(
        &self,
        mut request: InferenceRequest,
        deadline: Option<Duration>,
        block: bool,
    ) -> Result<Ticket, Rejection> {
        let cells = &self.cells;
        cells.submitted.fetch_add(1, Ordering::Relaxed);
        if cells.shutting_down.load(Ordering::Acquire) {
            cells.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
            return Err(self.log_shed(request.id, &request.engine, Rejection::ShuttingDown));
        }
        if !block && cells.pending.load(Ordering::Acquire) >= self.max_pending {
            cells.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
            return Err(self.log_shed(request.id, &request.engine, Rejection::QueueFull));
        }

        let estimated_ops = config_ops(request.model());

        // Resolve "auto" to a concrete engine before any bookkeeping: the
        // dispatcher picks the most-preferred engine whose predicted
        // completion meets the deadline, or sheds typed. The full decision
        // record — every candidate considered, the prediction each was
        // judged on, the verdict — feeds the router counters and rides on
        // the request's trace.
        let entry_index = if request.engine.is_auto() {
            let (outcome, decision) = dispatch::select_engine(
                &self.engines_index,
                &self.auto_order,
                &self.domains,
                &request,
                estimated_ops,
                deadline,
                &self.obs,
            );
            self.obs.router.record(&decision);
            if let Some(trace) = &request.trace {
                trace.set_router(decision);
            }
            match outcome {
                Ok(index) => {
                    request.engine = self.engines_index[index].name.clone();
                    Some(index)
                }
                Err(rejection) => {
                    let counter = match rejection {
                        Rejection::EngineUnavailable => &cells.rejected_unavailable,
                        _ => &cells.rejected_no_engine,
                    };
                    counter.fetch_add(1, Ordering::Relaxed);
                    if let Some(trace) = &request.trace {
                        trace.stamp(Stage::Router);
                    }
                    return Err(self.log_shed(request.id, &request.engine, rejection));
                }
            }
        } else {
            let entry_index = self
                .engines_index
                .iter()
                .position(|entry| entry.name == request.engine);
            // Explicitly-named engines are *not* rerouted around an open
            // breaker — the client asked for this one — but they are shed
            // typed instead of being queued onto a known-unhealthy engine.
            // (Blocking submission is the offline replay path; it bypasses
            // the breaker to stay deterministic.)
            if !block {
                if let Some(index) = entry_index {
                    let entry = &self.engines_index[index];
                    let (admit, transition) = entry.cells.breaker.admit();
                    if let Some(transition) = transition {
                        domain::log_breaker_transition(&self.obs, entry.name.as_str(), transition);
                    }
                    if let BreakerAdmit::Shed { .. } = admit {
                        cells.rejected_unavailable.fetch_add(1, Ordering::Relaxed);
                        return Err(self.log_shed(
                            request.id,
                            &request.engine,
                            Rejection::EngineUnavailable,
                        ));
                    }
                }
            }
            entry_index
        };
        if let Some(trace) = &request.trace {
            trace.set_engine(request.engine.as_str());
            trace.stamp(Stage::Router);
        }

        if !block {
            if let Some(deadline) = deadline {
                // Can the request *start* before its deadline? Predict how
                // long the target domain's admitted backlog takes to drain
                // at the engine's calibrated rate. (For auto requests the
                // stronger completion check above already passed.)
                let (backlog, drain) = match entry_index {
                    Some(index) => {
                        let entry = &self.engines_index[index];
                        (
                            self.domains[entry.domain].backlog_ops(),
                            entry.cells.drain.ops_per_second(),
                        )
                    }
                    // Unknown engine: it will fail typed after dispatch;
                    // admission falls back to the global backlog and seed.
                    None => (
                        cells.backlog_ops.load(Ordering::Acquire),
                        self.fallback_drain,
                    ),
                };
                if backlog as f64 / drain.max(1.0) > deadline.as_secs_f64() {
                    cells.rejected_deadline.fetch_add(1, Ordering::Relaxed);
                    return Err(self.log_shed(
                        request.id,
                        &request.engine,
                        Rejection::DeadlineUnmeetable,
                    ));
                }
            }
        }

        let domain_index = entry_index.map_or(0, |index| self.engines_index[index].domain);
        let engine_cells = entry_index.map(|index| Arc::clone(&self.engines_index[index].cells));
        let request_id = request.id;
        let engine_name = request.engine.clone();
        let trace = request.trace.clone();
        if let Some(trace) = &trace {
            trace.stamp(Stage::Admission);
        }
        let (completion, rx) = mpsc::channel();
        // Streaming requests get a bounded progress channel sized for one
        // event per executed timestep (workers `try_send` and drop on a
        // saturated channel rather than block).
        let (progress_tx, progress_rx) = if request.streaming {
            let (tx, rx) = mpsc::sync_channel(request.effective_steps().max(64));
            (Some(tx), Some(rx))
        } else {
            (None, None)
        };
        cells.pending.fetch_add(1, Ordering::AcqRel);
        cells.backlog_ops.fetch_add(estimated_ops, Ordering::AcqRel);
        if let Some(engine) = &engine_cells {
            engine.pending.fetch_add(1, Ordering::AcqRel);
            engine
                .backlog_ops
                .fetch_add(estimated_ops, Ordering::AcqRel);
        }
        let submission = Submission::Request(Box::new(PendingRequest {
            request,
            completion,
            estimated_ops,
            progress: progress_tx,
        }));
        let tx = &self.domains[domain_index].tx;
        let outcome = if block {
            tx.send(submission).map_err(|_| Rejection::ShuttingDown)
        } else {
            tx.try_send(submission).map_err(|error| match error {
                mpsc::TrySendError::Full(_) => Rejection::QueueFull,
                mpsc::TrySendError::Disconnected(_) => Rejection::ShuttingDown,
            })
        };
        match outcome {
            Ok(()) => {
                cells.admitted.fetch_add(1, Ordering::Relaxed);
                Ok(Ticket {
                    request_id,
                    rx,
                    trace,
                    progress: progress_rx,
                })
            }
            Err(rejection) => {
                cells.pending.fetch_sub(1, Ordering::AcqRel);
                cells.backlog_ops.fetch_sub(estimated_ops, Ordering::AcqRel);
                if let Some(engine) = &engine_cells {
                    engine.pending.fetch_sub(1, Ordering::AcqRel);
                    engine
                        .backlog_ops
                        .fetch_sub(estimated_ops, Ordering::AcqRel);
                }
                match rejection {
                    Rejection::QueueFull => {
                        cells.rejected_queue_full.fetch_add(1, Ordering::Relaxed)
                    }
                    _ => cells.rejected_shutdown.fetch_add(1, Ordering::Relaxed),
                };
                Err(self.log_shed(request_id, &engine_name, rejection))
            }
        }
    }

    /// Closes every partially-filled batch in every domain and waits until
    /// the batchers have dispatched them. Does not wait for execution — use
    /// the tickets.
    pub fn flush(&self) {
        let acks: Vec<mpsc::Receiver<()>> = self
            .domains
            .iter()
            .filter_map(|domain| {
                let (ack_tx, ack_rx) = mpsc::channel();
                domain
                    .tx
                    .send(Submission::Flush(ack_tx))
                    .ok()
                    .map(|()| ack_rx)
            })
            .collect();
        for ack in acks {
            let _ = ack.recv();
        }
    }

    /// The engine registry this server executes on (what `GET /v1/engines`
    /// publishes).
    pub fn engines(&self) -> &Arc<EngineRegistry> {
        &self.registry
    }

    /// The engines `"auto"` requests resolve against on *this* server, in
    /// its configured preference order (most-preferred first). Front-ends
    /// preflighting auto routability must consult this — not the registry
    /// default — so their view matches the dispatcher's.
    pub fn auto_candidates(&self) -> Vec<EngineName> {
        self.auto_order
            .iter()
            .map(|&index| self.engines_index[index].name.clone())
            .collect()
    }

    /// The observability hub this server feeds: stage-latency histograms,
    /// the recent/slowest trace store, router decision counters and the
    /// structured event log.
    pub fn obs(&self) -> &Arc<ObsHub> {
        &self.obs
    }

    /// Registers the edge's session store with this server so the
    /// background sampler scrapes its occupancy and eviction counters.
    /// Returns `false` (and changes nothing) if a store was already
    /// registered.
    pub fn register_sessions(&self, store: Arc<SessionStore>) -> bool {
        self.sessions.set(store).is_ok()
    }

    /// The registered session store, if an edge attached one.
    pub fn sessions(&self) -> Option<Arc<SessionStore>> {
        self.sessions.get().cloned()
    }

    /// Predicted seconds until the backlog ahead of a *new* request on the
    /// given engine drains at its calibrated rate — what a 429's
    /// `Retry-After` should quote. `"auto"` takes the best (smallest) drain
    /// over the auto candidates; an engine the registry does not hold
    /// falls back to the global backlog at the fallback seed rate.
    pub fn predicted_drain_seconds(&self, engine: &EngineName) -> f64 {
        let drain_of = |entry: &EngineEntry| {
            self.domains[entry.domain].backlog_ops() as f64
                / entry.cells.drain.ops_per_second().max(1.0)
        };
        if engine.is_auto() {
            let best = self
                .auto_order
                .iter()
                .map(|&index| drain_of(&self.engines_index[index]))
                .fold(f64::INFINITY, f64::min);
            if best.is_finite() {
                return best;
            }
        } else if let Some(entry) = self.engines_index.iter().find(|e| e.name == *engine) {
            return drain_of(entry);
        }
        self.cells.backlog_ops.load(Ordering::Acquire) as f64 / self.fallback_drain.max(1.0)
    }

    /// Seconds until the named engine's open breaker next admits a
    /// half-open probe — what an `engine_unavailable` 503's `Retry-After`
    /// should quote. `None` when the engine is unknown or its breaker is
    /// not open.
    pub fn breaker_reopen_seconds(&self, engine: &EngineName) -> Option<f64> {
        self.engines_index
            .iter()
            .find(|entry| entry.name == *engine)
            .and_then(|entry| entry.cells.breaker.snapshot().reopen_seconds)
    }

    /// Per-engine scheduling-domain snapshots, in registry order (a cheaper
    /// call than [`ServerHandle::stats`] when only the per-engine view is
    /// needed).
    pub fn engine_stats(&self) -> Vec<EngineLoadStats> {
        self.engines_index
            .iter()
            .map(|entry| entry.cells.snapshot())
            .collect()
    }

    /// A point-in-time snapshot of the server's counters.
    pub fn stats(&self) -> OnlineStats {
        let c = &self.cells;
        let completed = c.completed.load(Ordering::Acquire);
        let latency_sum = f64::from_bits(c.latency_sum_bits.load(Ordering::Acquire));
        OnlineStats {
            submitted: c.submitted.load(Ordering::Acquire),
            admitted: c.admitted.load(Ordering::Acquire),
            completed,
            failed: c.failed.load(Ordering::Acquire),
            admission: AdmissionStats {
                queue_full: c.rejected_queue_full.load(Ordering::Acquire),
                deadline: c.rejected_deadline.load(Ordering::Acquire),
                no_engine: c.rejected_no_engine.load(Ordering::Acquire),
                unavailable: c.rejected_unavailable.load(Ordering::Acquire),
                shutdown: c.rejected_shutdown.load(Ordering::Acquire),
            },
            batches_executed: c.batches_executed.load(Ordering::Acquire),
            queue_depth: c.pending.load(Ordering::Acquire),
            backlog_ops: c.backlog_ops.load(Ordering::Acquire),
            total_simulated_cycles: c.total_cycles.load(Ordering::Acquire),
            total_energy_mj: f64::from_bits(c.energy_mj_bits.load(Ordering::Acquire)),
            mean_latency_seconds: if completed == 0 {
                0.0
            } else {
                latency_sum / completed as f64
            },
            max_latency_seconds: f64::from_bits(c.latency_max_bits.load(Ordering::Acquire)),
            engines: self.engine_stats(),
        }
    }
}

/// Bridges one compute-pool lane to a profiler [`StageSlot`]: busy lanes
/// show as `engine_execute`, idle lanes as `idle`, under the `"compute"`
/// thread kind so fan-out self-time is attributed separately from the
/// domain workers.
#[derive(Debug)]
struct ComputeLaneProbe {
    slot: Arc<StageSlot>,
}

impl WorkerProbe for ComputeLaneProbe {
    fn busy(&self) {
        self.slot.set(WorkerStage::EngineExecute);
    }

    fn idle(&self) {
        self.slot.set(WorkerStage::Idle);
    }
}

/// Builds the default registry's native engine: compute pool sized by the
/// config knob, one profiler-registered probe per lane.
fn native_engine_with_probes(compute_workers: usize, obs: &ObsHub) -> NativeEngine {
    let engine_config = NativeEngineConfig {
        compute_workers,
        ..NativeEngineConfig::default()
    };
    let pool = ComputePool::new(compute_workers);
    let width = pool.width();
    let probes: Vec<Arc<dyn WorkerProbe>> = (0..width)
        .map(|_| {
            Arc::new(ComputeLaneProbe {
                slot: obs.profiler.register("native", "compute"),
            }) as Arc<dyn WorkerProbe>
        })
        .collect();
    let engine = NativeEngine::with_config_and_pool(engine_config, pool.with_probes(probes));
    // One structured boot line: which popcount path the host resolved to
    // and how wide the intra-batch fan-out is.
    obs.events.emit(
        EventLevel::Info,
        "native_compute_resolved",
        &[
            (
                "simd_tier",
                EventValue::Str(engine.descriptor().simd_tier.unwrap_or("scalar")),
            ),
            ("compute_workers", EventValue::U64(width as u64)),
        ],
    );
    engine
}

/// The always-on serving stack: per-engine scheduling domains (bounded
/// queue + batcher + dedicated workers each) over a pluggable engine
/// registry, fed through cloneable [`ServerHandle`]s with deadline-aware
/// `"auto"` dispatch.
#[derive(Debug)]
pub struct OnlineServer {
    handle: ServerHandle,
    domains: Vec<DomainThreads>,
    executed: Arc<Mutex<Vec<ExecutedBatch>>>,
    sampler: Option<sampler::SamplerThread>,
}

impl OnlineServer {
    /// Starts a server with fresh caches (and, unless the config overrides
    /// it, the default engine registry over those caches).
    pub fn start(config: OnlineConfig) -> Self {
        Self::with_caches(
            config,
            Arc::new(CalibrationCache::new()),
            Arc::new(ResultCache::new()),
        )
    }

    /// Starts a server sharing existing calibration/result caches.
    pub fn with_caches(
        config: OnlineConfig,
        cache: Arc<CalibrationCache>,
        results: Arc<ResultCache>,
    ) -> Self {
        let obs = config
            .obs
            .clone()
            .unwrap_or_else(|| Arc::new(ObsHub::default()));
        let registry = config.registry.clone().unwrap_or_else(|| {
            Arc::new(
                EngineRegistry::serving_default(&config.runtime.hardware, cache, results)
                    // Replace the stock native engine (in place, keeping
                    // its registry position) with one whose compute pool
                    // is sized by the config and whose lanes publish
                    // "compute" stage slots to the profiler.
                    .with_engine(Arc::new(native_engine_with_probes(
                        config.native_compute_workers,
                        &obs,
                    ))),
            )
        });
        let bundle = config.runtime.hardware.bundle;
        let cells = Arc::new(StatsCells::default());
        let executed = Arc::new(Mutex::new(Vec::new()));
        let record = config.record_batches.then(|| Arc::clone(&executed));

        // Lay engines out into domains: one per engine under isolation,
        // one shared domain otherwise. An empty registry still gets one
        // (engine-less) domain so unknown-engine requests can ride to a
        // worker and fail typed.
        let descriptors = registry.descriptors();
        let layout: Vec<Vec<usize>> = if descriptors.is_empty() {
            vec![Vec::new()]
        } else if config.isolate_domains {
            (0..descriptors.len()).map(|index| vec![index]).collect()
        } else {
            vec![(0..descriptors.len()).collect()]
        };

        let engine_cells: Vec<Arc<EngineCells>> = descriptors
            .iter()
            .map(|descriptor| {
                Arc::new(EngineCells::new(
                    EngineName::new(descriptor.name),
                    config.drain_seed(descriptor.name, descriptor.seed_drain_ops_per_second),
                    config.breaker.clone(),
                    &config.retry,
                ))
            })
            .collect();
        let mut engines_index = Vec::with_capacity(descriptors.len());
        for (domain, members) in layout.iter().enumerate() {
            for &index in members {
                engines_index.push(EngineEntry {
                    name: EngineName::new(descriptors[index].name),
                    descriptor: descriptors[index].clone(),
                    cells: Arc::clone(&engine_cells[index]),
                    domain,
                });
            }
        }
        let auto_order: Vec<usize> = config
            .auto_preference
            .iter()
            .filter_map(|preferred| {
                engines_index
                    .iter()
                    .position(|entry| entry.name == *preferred)
            })
            .collect();

        let stride = layout.len() as u64;
        let mut submitters = Vec::with_capacity(layout.len());
        let mut domain_threads = Vec::with_capacity(layout.len());
        for (domain, members) in layout.iter().enumerate() {
            let workers = if config.isolate_domains {
                members
                    .first()
                    .and_then(|&index| {
                        config
                            .domain_workers
                            .iter()
                            .find(|(name, _)| name.as_str() == descriptors[index].name)
                            .map(|(_, workers)| *workers)
                    })
                    .unwrap_or(config.runtime.workers)
            } else {
                config.runtime.workers
            };
            let (submitter, threads) = spawn_domain(DomainSpec {
                engines: members
                    .iter()
                    .map(|&index| Arc::clone(&engine_cells[index]))
                    .collect(),
                workers: workers.max(1),
                queue_capacity: config.runtime.queue_capacity,
                batch_id_base: domain as u64,
                batch_id_stride: stride,
                policy: config.runtime.batching,
                batch_timeout: config.batch_timeout,
                bundle,
                registry: Arc::clone(&registry),
                cells: Arc::clone(&cells),
                record: record.clone(),
                obs: Arc::clone(&obs),
                retry: config.retry.clone(),
            });
            submitters.push(submitter);
            domain_threads.push(threads);
        }

        let sessions: Arc<OnceLock<Arc<SessionStore>>> = Arc::new(OnceLock::new());
        let sampler_thread = config.sampler.enabled.then(|| {
            sampler::spawn_sampler(
                config.sampler.clone(),
                Arc::clone(&obs),
                Arc::clone(&cells),
                engine_cells.clone(),
                Arc::clone(&sessions),
            )
        });
        let handle = ServerHandle {
            domains: Arc::new(submitters),
            engines_index: Arc::new(engines_index),
            auto_order: Arc::new(auto_order),
            cells,
            registry,
            max_pending: config.max_pending,
            fallback_drain: config
                .drain_ops_per_second
                .unwrap_or(DEFAULT_DRAIN_OPS_PER_SECOND)
                .max(1.0),
            obs,
            sessions,
        };
        Self {
            handle,
            domains: domain_threads,
            executed,
            sampler: sampler_thread,
        }
    }

    /// A new submission handle; clone freely across threads.
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// The engine registry this server executes on.
    pub fn engines(&self) -> &Arc<EngineRegistry> {
        &self.handle.registry
    }

    /// A point-in-time snapshot of the server's counters.
    pub fn stats(&self) -> OnlineStats {
        self.handle.stats()
    }

    /// Graceful shutdown: stop admitting, drain already-admitted requests,
    /// execute their batches, join every domain's threads, and report final
    /// stats.
    pub fn shutdown(self) -> OnlineStats {
        self.shutdown_with_batches().0
    }

    /// Shutdown that also returns the recorded executed batches (empty
    /// unless `record_batches` was set).
    pub(crate) fn shutdown_with_batches(self) -> (OnlineStats, Vec<ExecutedBatch>) {
        self.handle
            .cells
            .shutting_down
            .store(true, Ordering::Release);
        for domain in self.handle.domains.iter() {
            let _ = domain.tx.send(Submission::Shutdown);
        }
        for threads in self.domains {
            threads.join();
        }
        // Stop the sampler after the domains drain so its final scrape
        // sees the fully settled counters.
        if let Some(sampler) = self.sampler {
            sampler.stop_and_join();
        }
        let stats = self.handle.stats();
        let executed = std::mem::take(&mut *self.executed.lock().expect("executed lock"));
        (stats, executed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchPolicy;
    use crate::request::{default_mixed_models, mixed_trace};
    use bishop_core::SimOptions;

    fn online(policy: BatchPolicy, timeout: Option<Duration>) -> OnlineServer {
        OnlineServer::start(
            OnlineConfig::new(RuntimeConfig::new(2, policy)).with_batch_timeout(timeout),
        )
    }

    #[test]
    fn ticket_resolves_with_the_request_id() {
        let server = online(BatchPolicy::new(4), None);
        let handle = server.handle();
        let trace = mixed_trace(&default_mixed_models(), 4, 2, 9);
        let tickets: Vec<Ticket> = trace
            .into_iter()
            .map(|r| handle.try_submit(r).expect("admitted"))
            .collect();
        handle.flush();
        for (i, ticket) in tickets.into_iter().enumerate() {
            assert_eq!(ticket.request_id(), i as u64);
            let response = ticket
                .wait()
                .expect("response delivered")
                .expect("simulator engine never fails");
            assert_eq!(response.request_id, i as u64);
            assert!(response.latency_seconds > 0.0);
            assert_eq!(response.engine(), "simulator");
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.admission, AdmissionStats::default());
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.backlog_ops, 0);
        // The per-engine view attributes everything to the simulator domain.
        let simulator = stats
            .engines
            .iter()
            .find(|e| e.engine == EngineName::simulator())
            .expect("simulator domain");
        assert_eq!(simulator.completed, 4);
        assert_eq!(simulator.queue_depth, 0);
        assert_eq!(simulator.backlog_ops, 0);
        assert!(simulator.drain_observations > 0, "workers fed calibration");
        assert!(simulator.latency.p95 > 0.0);
        for other in stats
            .engines
            .iter()
            .filter(|e| e.engine.as_str() != "simulator")
        {
            assert_eq!(other.completed, 0);
            assert_eq!(other.batches_executed, 0);
        }
    }

    #[test]
    fn timeout_closes_partial_batches_without_flush() {
        let server = online(BatchPolicy::new(64), Some(Duration::from_millis(2)));
        let handle = server.handle();
        let trace = mixed_trace(&default_mixed_models(), 2, 1, 3);
        let tickets: Vec<Ticket> = trace
            .into_iter()
            .map(|r| handle.try_submit(r).expect("admitted"))
            .collect();
        for ticket in tickets {
            let response = ticket
                .wait()
                .expect("timeout closed the batch")
                .expect("executed");
            assert!(response.batch_size < 64);
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_rejects_new_submissions() {
        let server = online(BatchPolicy::new(4), None);
        let handle = server.handle();
        server.shutdown();
        let request = mixed_trace(&default_mixed_models(), 1, 1, 5).pop().unwrap();
        assert_eq!(
            handle.try_submit(request).err(),
            Some(Rejection::ShuttingDown)
        );
        assert_eq!(handle.stats().admission.shutdown, 1);
    }

    #[test]
    fn unknown_engine_resolves_tickets_with_a_typed_error() {
        let server = online(BatchPolicy::new(1), None);
        let handle = server.handle();
        let request = mixed_trace(&default_mixed_models(), 1, 1, 5)
            .pop()
            .unwrap()
            .with_engine(EngineName::from("tpu"));
        let ticket = handle
            .try_submit(request)
            .expect("admission is engine-agnostic");
        handle.flush();
        let outcome = ticket.wait().expect("ticket resolves");
        assert_eq!(
            outcome,
            Err(ServeError::UnknownEngine(EngineName::from("tpu")))
        );
        let stats = server.shutdown();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.queue_depth, 0, "failures drain the queue");
        assert_eq!(stats.backlog_ops, 0);
        // Unknown engines ride the default domain but are not attributed to
        // any registered engine's scheduling stats.
        assert!(stats.engines.iter().all(|e| e.failed == 0));
    }

    #[test]
    fn engine_refusals_resolve_tickets_with_the_engine_error() {
        // The native engine has no ECP path: requests routing an ECP model
        // there fail typed, not silently and not hanging.
        let server = online(BatchPolicy::new(1), None);
        let handle = server.handle();
        let entry = default_mixed_models()
            .into_iter()
            .find(|e| e.options == SimOptions::with_ecp(6))
            .expect("imagenet entry defaults to ECP");
        let request = InferenceRequest::new(0, entry, 1).with_engine(EngineName::native());
        let ticket = handle.try_submit(request).expect("admitted");
        handle.flush();
        let outcome = ticket.wait().expect("ticket resolves");
        let error = outcome.expect_err("native must refuse ECP");
        assert_eq!(error.code(), "ecp_unsupported");
        let stats = server.shutdown();
        assert_eq!(stats.failed, 1);
        let native = stats
            .engines
            .iter()
            .find(|e| e.engine == EngineName::native())
            .expect("native domain");
        assert_eq!(native.failed, 1, "refusal attributed to the native domain");
    }

    #[test]
    fn batcher_caps_coalescing_at_the_engine_fold_limit() {
        // The native engine caps batches at 1024 folded timesteps. A model
        // spanning 300 timesteps may share a batch with at most 3 peers
        // (3 × 300 ≤ 1024 < 4 × 300) even under a much larger batch policy
        // — no request may fail `batch_too_large` because of coalescing.
        use bishop_engine::CatalogEntry;
        use bishop_model::{DatasetKind, ModelConfig};

        let server = online(BatchPolicy::new(8), None);
        let handle = server.handle();
        let entry = CatalogEntry::new(
            ModelConfig::new("fold-cap", DatasetKind::Cifar10, 1, 300, 4, 16, 2),
            bishop_bundle::TrainingRegime::Bsa,
            SimOptions::baseline(),
        );
        let tickets: Vec<Ticket> = (0..6)
            .map(|i| {
                let request = InferenceRequest::new(i, Arc::clone(&entry), i)
                    .with_engine(EngineName::native());
                handle.try_submit(request).expect("admitted")
            })
            .collect();
        handle.flush();
        for ticket in tickets {
            let response = ticket
                .wait()
                .expect("ticket resolves")
                .expect("capped batches stay within the engine's fold limit");
            assert!(
                response.batch_size <= 3,
                "batch of {} exceeds the fold cap",
                response.batch_size
            );
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn auto_requests_resolve_on_a_concrete_engine() {
        // No deadline: auto prefers native for a profile native supports;
        // an ECP profile skips native (no ECP path) and lands on simulator.
        let server = online(BatchPolicy::new(1), None);
        let handle = server.handle();
        let entry = default_mixed_models()
            .into_iter()
            .find(|e| e.options.ecp_threshold.is_none())
            .expect("cifar entry has baseline options");
        let native_bound =
            InferenceRequest::new(0, Arc::clone(&entry), 1).with_engine(EngineName::auto());
        let ecp_bound = InferenceRequest::new(1, entry, 2)
            .with_options(SimOptions::with_ecp(6))
            .with_engine(EngineName::auto());
        let first = handle.try_submit(native_bound).expect("admitted");
        let second = handle.try_submit(ecp_bound).expect("admitted");
        handle.flush();
        assert_eq!(first.wait().unwrap().unwrap().engine(), "native");
        assert_eq!(second.wait().unwrap().unwrap().engine(), "simulator");
        let stats = server.shutdown();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.admission.no_engine, 0);
    }

    #[test]
    fn shared_layout_still_serves_every_engine() {
        let server = OnlineServer::start(
            OnlineConfig::new(RuntimeConfig::new(2, BatchPolicy::new(4)))
                .with_batch_timeout(None)
                .with_domain_isolation(false),
        );
        let handle = server.handle();
        let trace = mixed_trace(&default_mixed_models(), 4, 2, 9);
        let tickets: Vec<Ticket> = trace
            .into_iter()
            .map(|r| handle.try_submit(r).expect("admitted"))
            .collect();
        handle.flush();
        for ticket in tickets {
            ticket.wait().expect("resolved").expect("executed");
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 4);
        // Per-engine attribution works even in the shared domain.
        let simulator = stats
            .engines
            .iter()
            .find(|e| e.engine == EngineName::simulator())
            .expect("simulator stats");
        assert_eq!(simulator.completed, 4);
    }

    #[test]
    fn drain_seed_resolution_prefers_explicit_overrides() {
        let config = OnlineConfig::default();
        // Unset global knob: descriptor seeds win.
        assert_eq!(config.drain_seed("native", 2e9), 2e9);
        // Explicit global knob seeds every engine.
        let config = OnlineConfig::default().with_drain_rate(123.0);
        assert_eq!(config.drain_seed("native", 2e9), 123.0);
        // Per-engine override beats both.
        let config = config.with_engine_drain_seed(EngineName::native(), 7.0);
        assert_eq!(config.drain_seed("native", 2e9), 7.0);
        assert_eq!(config.drain_seed("simulator", 5e9), 123.0);
        // Explicitly pinning the old global default is honoured verbatim —
        // `Some(rate)` vs `None`, no magic-value aliasing.
        let config = OnlineConfig::default().with_drain_rate(DEFAULT_DRAIN_OPS_PER_SECOND);
        assert_eq!(
            config.drain_seed("native", 2e9),
            DEFAULT_DRAIN_OPS_PER_SECOND
        );
        // The clamp never lets a seed below 1 op/s through.
        let config = OnlineConfig::default().with_drain_rate(0.0);
        assert_eq!(config.drain_seed("native", 2e9), 1.0);
    }
}
