//! The request/response API of the serving runtime.

use std::sync::Arc;

use bishop_bundle::TrainingRegime;
use bishop_core::SimOptions;
use bishop_engine::{CatalogEntry, EngineName, EngineOutput, ModelCatalog};
use bishop_model::ModelConfig;
use bishop_obs::TraceContext;
use bishop_session::SessionState;

/// One inference request submitted to the runtime.
///
/// A request names the model it wants served by an `Arc`-shared
/// [`CatalogEntry`] — one allocation per catalogued model for the lifetime
/// of the catalog, never a per-request `ModelConfig` clone — plus the
/// execution [`EngineName`] (which backend substrate runs the batch), the
/// training regime whose calibrated trace statistics drive the synthetic
/// workload, a trace seed (two requests with the same seed carry identical
/// activations — e.g. retries or replayed traffic), and the per-request
/// simulation options. Regime and options default to the catalog entry's.
#[derive(Debug, Clone)]
pub struct InferenceRequest {
    /// Caller-chosen request identifier; echoed in the response.
    pub id: u64,
    /// The catalogued model to run (shared, not cloned, along the path).
    pub entry: Arc<CatalogEntry>,
    /// Which calibrated trace statistics to use.
    pub regime: TrainingRegime,
    /// Seed of the request's activation trace.
    pub seed: u64,
    /// Per-request simulation options (e.g. ECP threshold).
    pub options: SimOptions,
    /// Which execution backend serves the request.
    pub engine: EngineName,
    /// The request's observability trace, when the edge allocated one. The
    /// runtime stamps stage boundaries into it as the request travels
    /// (admission, queue wait, batch formation, engine execute).
    pub trace: Option<Arc<TraceContext>>,
    /// Whether the caller wants per-step progress events streamed through
    /// the ticket while the batch executes (stateful execution path).
    pub streaming: bool,
    /// Parked session state to resume from (session continuation). The
    /// engine continues the sequence from `resume.timesteps_done()`.
    pub resume: Option<Arc<SessionState>>,
    /// Timesteps to execute in this request on the stateful path, when
    /// overriding the model's configured count. `None` = the catalog
    /// entry's `timesteps`.
    pub steps: Option<usize>,
}

/// Trace contexts are diagnostic sidecars: two requests are equal when
/// their *served* contents are — whether either was being traced never
/// affects batching, caching or determinism comparisons.
impl PartialEq for InferenceRequest {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
            && self.entry == other.entry
            && self.regime == other.regime
            && self.seed == other.seed
            && self.options == other.options
            && self.engine == other.engine
            && self.streaming == other.streaming
            && self.resume == other.resume
            && self.steps == other.steps
    }
}

impl InferenceRequest {
    /// Creates a request inheriting the entry's default regime and options,
    /// on the default (`simulator`) engine.
    pub fn new(id: u64, entry: Arc<CatalogEntry>, seed: u64) -> Self {
        Self {
            id,
            regime: entry.regime,
            options: entry.options,
            entry,
            seed,
            engine: EngineName::simulator(),
            trace: None,
            streaming: false,
            resume: None,
            steps: None,
        }
    }

    /// Overrides the training regime.
    pub fn with_regime(mut self, regime: TrainingRegime) -> Self {
        self.regime = regime;
        self
    }

    /// Overrides the simulation options.
    pub fn with_options(mut self, options: SimOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the execution engine.
    pub fn with_engine(mut self, engine: EngineName) -> Self {
        self.engine = engine;
        self
    }

    /// Attaches an observability trace context.
    pub fn with_trace(mut self, trace: Arc<TraceContext>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Requests per-step progress events (stateful execution path).
    pub fn with_streaming(mut self) -> Self {
        self.streaming = true;
        self
    }

    /// Continues a parked session from its exported state.
    pub fn with_resume(mut self, state: Arc<SessionState>) -> Self {
        self.resume = Some(state);
        self
    }

    /// Overrides how many timesteps this request executes on the stateful
    /// path.
    pub fn with_steps(mut self, steps: usize) -> Self {
        self.steps = Some(steps);
        self
    }

    /// Whether this request rides the stateful/streaming execution path
    /// (and therefore must never coalesce with other requests: membranes
    /// are per-sequence state).
    pub fn stateful(&self) -> bool {
        self.streaming || self.resume.is_some() || self.steps.is_some()
    }

    /// Timesteps this request executes on the stateful path.
    pub fn effective_steps(&self) -> usize {
        self.steps.unwrap_or(self.entry.config.timesteps)
    }

    /// The model configuration behind the catalog entry.
    pub fn model(&self) -> &ModelConfig {
        &self.entry.config
    }
}

/// The runtime's answer to one [`InferenceRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceResponse {
    /// The request this responds to.
    pub request_id: u64,
    /// The batch the request was served in.
    pub batch_id: u64,
    /// How many requests shared the batch.
    pub batch_size: usize,
    /// Index of the worker (chip/substrate instance) that executed the
    /// batch.
    pub worker: usize,
    /// End-to-end latency of the request in seconds on the engine's clock
    /// (the latency of the batch it rode in; measured wall-clock for
    /// wall-clock engines, simulated otherwise).
    pub latency_seconds: f64,
    /// Full engine output of the batch run, shared between all requests of
    /// the batch.
    pub output: Arc<EngineOutput>,
    /// Exported session state, when the request rode the stateful path.
    pub session_state: Option<Arc<SessionState>>,
    /// Running per-class logits, when the substrate computes them on the
    /// stateful path.
    pub logits: Option<Vec<f32>>,
}

impl InferenceResponse {
    /// Energy attributed to this request: an even share of the batch's
    /// total energy.
    pub fn energy_share_mj(&self) -> f64 {
        self.output.energy_mj / self.batch_size as f64
    }

    /// Name of the engine that executed the batch.
    pub fn engine(&self) -> &'static str {
        self.output.engine
    }
}

/// Builds a deterministic mixed traffic trace: `count` requests cycling
/// through the catalog `entries` round-robin, with seeds drawn from a pool
/// of `seed_pool_size` distinct values so that traffic contains repeats
/// (the realistic case the calibration cache exists for).
///
/// # Panics
///
/// Panics if `entries` is empty or `seed_pool_size` is zero.
pub fn mixed_trace(
    entries: &[Arc<CatalogEntry>],
    count: usize,
    seed_pool_size: u64,
    base_seed: u64,
) -> Vec<InferenceRequest> {
    assert!(
        !entries.is_empty(),
        "traffic trace needs at least one model"
    );
    assert!(seed_pool_size > 0, "seed pool must be non-empty");
    (0..count)
        .map(|i| {
            let entry = &entries[i % entries.len()];
            InferenceRequest::new(
                i as u64,
                Arc::clone(entry),
                base_seed + (i as u64 / entries.len() as u64) % seed_pool_size,
            )
        })
        .collect()
}

/// The default mixed CIFAR-10 / ImageNet-100 catalog used by the serving
/// demo, tests and benches: the paper's two headline image models at quick
/// scale (the entries of
/// [`ModelCatalog::serving_default`]).
pub fn default_mixed_models() -> Vec<Arc<CatalogEntry>> {
    ModelCatalog::serving_default().entries().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bishop_model::DatasetKind;

    #[test]
    fn mixed_trace_cycles_models_and_repeats_seeds() {
        let models = default_mixed_models();
        let trace = mixed_trace(&models, 8, 2, 100);
        assert_eq!(trace.len(), 8);
        // Round-robin over the two models.
        assert_eq!(trace[0].model().dataset, DatasetKind::Cifar10);
        assert_eq!(trace[1].model().dataset, DatasetKind::ImageNet100);
        assert_eq!(trace[2].model().dataset, DatasetKind::Cifar10);
        // Requests share the catalog allocation instead of cloning configs.
        assert!(Arc::ptr_eq(&trace[0].entry, &trace[2].entry));
        // Entry defaults are inherited: ImageNet-100 serves with ECP.
        assert_eq!(trace[1].options, SimOptions::with_ecp(6));
        // Seed pool of 2: request 0 and request 4 repeat the same trace.
        assert_eq!(trace[0].seed, trace[4].seed);
        assert_ne!(trace[0].seed, trace[2].seed);
        // Ids are sequential; everything runs on the default engine.
        assert_eq!(trace[7].id, 7);
        assert_eq!(trace[7].engine, EngineName::simulator());
    }

    #[test]
    fn request_builders_override_entry_defaults() {
        let entry = Arc::clone(&default_mixed_models()[0]);
        let request = InferenceRequest::new(1, entry, 9)
            .with_options(SimOptions::with_ecp(6))
            .with_regime(TrainingRegime::Baseline)
            .with_engine(EngineName::native());
        assert_eq!(request.options, SimOptions::with_ecp(6));
        assert_eq!(request.regime, TrainingRegime::Baseline);
        assert_eq!(request.engine.as_str(), "native");
        assert_eq!(request.seed, 9);
    }
}
