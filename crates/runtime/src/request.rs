//! The request/response API of the serving runtime.

use std::sync::Arc;

use bishop_bundle::TrainingRegime;
use bishop_core::{RunMetrics, SimOptions};
use bishop_model::{DatasetKind, ModelConfig};

/// One inference request submitted to the runtime.
///
/// A request names the model it wants served (by full [`ModelConfig`]), the
/// training regime whose calibrated trace statistics drive the synthetic
/// workload, a trace seed (two requests with the same seed carry identical
/// activations — e.g. retries or replayed traffic), and the per-request
/// simulation options.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceRequest {
    /// Caller-chosen request identifier; echoed in the response.
    pub id: u64,
    /// The model to run.
    pub model: ModelConfig,
    /// Which calibrated trace statistics to use.
    pub regime: TrainingRegime,
    /// Seed of the request's activation trace.
    pub seed: u64,
    /// Per-request simulation options (e.g. ECP threshold).
    pub options: SimOptions,
}

impl InferenceRequest {
    /// Creates a request with baseline options.
    pub fn new(id: u64, model: ModelConfig, regime: TrainingRegime, seed: u64) -> Self {
        Self {
            id,
            model,
            regime,
            seed,
            options: SimOptions::baseline(),
        }
    }

    /// Sets the simulation options.
    pub fn with_options(mut self, options: SimOptions) -> Self {
        self.options = options;
        self
    }
}

/// The runtime's answer to one [`InferenceRequest`].
#[derive(Debug, Clone)]
pub struct InferenceResponse {
    /// The request this responds to.
    pub request_id: u64,
    /// The batch the request was served in.
    pub batch_id: u64,
    /// How many requests shared the batch.
    pub batch_size: usize,
    /// Index of the simulated chip instance that executed the batch.
    pub worker: usize,
    /// Simulated end-to-end latency of the request in seconds (the latency
    /// of the batch it rode in).
    pub latency_seconds: f64,
    /// Full per-layer metrics of the batch run, shared between all requests
    /// of the batch.
    pub batch_metrics: Arc<RunMetrics>,
}

impl InferenceResponse {
    /// Simulated energy attributed to this request: an even share of the
    /// batch's total energy.
    pub fn energy_share_mj(&self) -> f64 {
        self.batch_metrics.total_energy_mj() / self.batch_size as f64
    }
}

/// Builds a deterministic mixed traffic trace: `count` requests cycling
/// through `models` round-robin, with seeds drawn from a pool of
/// `seed_pool_size` distinct values so that traffic contains repeats (the
/// realistic case the calibration cache exists for).
///
/// # Panics
///
/// Panics if `models` is empty or `seed_pool_size` is zero.
pub fn mixed_trace(
    models: &[(ModelConfig, TrainingRegime, SimOptions)],
    count: usize,
    seed_pool_size: u64,
    base_seed: u64,
) -> Vec<InferenceRequest> {
    assert!(!models.is_empty(), "traffic trace needs at least one model");
    assert!(seed_pool_size > 0, "seed pool must be non-empty");
    (0..count)
        .map(|i| {
            let (model, regime, options) = &models[i % models.len()];
            InferenceRequest::new(
                i as u64,
                model.clone(),
                *regime,
                base_seed + (i as u64 / models.len() as u64) % seed_pool_size,
            )
            .with_options(*options)
        })
        .collect()
}

/// The default mixed CIFAR-10 / ImageNet-100 trace used by the serving demo,
/// tests and benches: the paper's two headline image models at quick scale.
pub fn default_mixed_models() -> Vec<(ModelConfig, TrainingRegime, SimOptions)> {
    let cifar = ModelConfig::new("cifar10-serve", DatasetKind::Cifar10, 2, 4, 64, 128, 4);
    let imagenet = ModelConfig::new(
        "imagenet100-serve",
        DatasetKind::ImageNet100,
        2,
        4,
        64,
        128,
        4,
    );
    vec![
        (cifar, TrainingRegime::Bsa, SimOptions::baseline()),
        (imagenet, TrainingRegime::Bsa, SimOptions::with_ecp(6)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_trace_cycles_models_and_repeats_seeds() {
        let models = default_mixed_models();
        let trace = mixed_trace(&models, 8, 2, 100);
        assert_eq!(trace.len(), 8);
        // Round-robin over the two models.
        assert_eq!(trace[0].model.dataset, DatasetKind::Cifar10);
        assert_eq!(trace[1].model.dataset, DatasetKind::ImageNet100);
        assert_eq!(trace[2].model.dataset, DatasetKind::Cifar10);
        // Seed pool of 2: request 0 and request 4 repeat the same trace.
        assert_eq!(trace[0].seed, trace[4].seed);
        assert_ne!(trace[0].seed, trace[2].seed);
        // Ids are sequential.
        assert_eq!(trace[7].id, 7);
    }

    #[test]
    fn request_builder_sets_options() {
        let model = ModelConfig::new("m", DatasetKind::Cifar10, 1, 2, 8, 16, 2);
        let request = InferenceRequest::new(1, model, TrainingRegime::Baseline, 9)
            .with_options(SimOptions::with_ecp(6));
        assert_eq!(request.options, SimOptions::with_ecp(6));
        assert_eq!(request.seed, 9);
    }
}
