//! # bishop-runtime
//!
//! A batched, multi-core inference **serving runtime** in front of the
//! Bishop accelerator simulator — the first subsystem above single-shot
//! simulation, exercising the paper's core premise that Token-Time Bundling
//! turns many small spiking workloads into dense, schedulable batches
//! across heterogeneous cores.
//!
//! The pipeline is: clients submit [`InferenceRequest`]s — each naming an
//! `Arc`-shared catalog entry and an execution engine — through a *bounded
//! queue* (backpressure); the [`BatchFormer`] coalesces compatible requests
//! — same model, training regime, simulation options and engine — into
//! [`RequestBatch`]es by folding the batch dimension into the *timestep*
//! axis of the Token-Time-Bundle stream (spiking attention is per-timestep,
//! so the fold is cost-exact while weight streaming and pipeline overhead
//! are paid once per batch); a least-loaded dispatcher shards batches
//! across a pool of worker threads which execute each batch on the
//! [`InferenceEngine`](bishop_engine::InferenceEngine) backend it names
//! (the cycle-level Bishop simulator by default, the native CPU kernels or
//! a baseline model on request); workload synthesis is memoized in a shared
//! [`CalibrationCache`] keyed on `(ModelConfig, TrainingRegime, seed)`; and
//! every run emits a [`ThroughputReport`] with p50/p95/p99 latency,
//! requests/s and the per-group core-utilization breakdown.
//!
//! Determinism guarantee: for traces executing on deterministic engines
//! (the default `simulator`), [`ServingAggregates`] depend only on the
//! traffic trace (submission order and contents) — never on worker count,
//! machine speed or scheduling jitter. Only [`WallClockStats`] varies
//! between runs.
//!
//! Beyond offline trace replay, the [`online`] module keeps the same stack
//! *running*: [`ServerHandle::try_submit`] hands back a [`Ticket`] per
//! request, admission control sheds load with explicit [`Rejection`]s
//! (queue-depth and deadline based) instead of blocking, and each engine
//! runs its own **scheduling domain** — a bounded queue, a batcher closing
//! Token-Time-Bundle-aligned batches on a size-or-timeout policy, and a
//! dedicated worker pool — so substrates never head-of-line-block each
//! other. Per-engine **drain-rate calibration** (an online EWMA of observed
//! ops/second fed back from worker completions) drives both deadline
//! admission and `"auto"` engine selection: requests naming
//! [`EngineName::auto`](bishop_engine::EngineName::auto) route to the
//! most-preferred engine whose predicted completion meets their deadline.
//! `BishopServer::serve` is now a deterministic client of that online path
//! (timeout disabled, blocking backpressure).
//!
//! ```
//! use bishop_runtime::{mixed_trace, default_mixed_models, BatchPolicy, BishopServer, RuntimeConfig};
//!
//! let trace = mixed_trace(&default_mixed_models(), 8, 2, 42);
//! let server = BishopServer::new(RuntimeConfig::new(2, BatchPolicy::new(4)));
//! let outcome = server.serve(trace);
//! assert_eq!(outcome.responses.len(), 8);
//! println!("{}", outcome.report.render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod online;
pub mod report;
pub mod request;
pub mod server;

/// The memoizing workload/result caches, re-exported from
/// [`bishop_engine`] (they back the simulator backend and are shared across
/// serving stacks).
pub use bishop_engine::cache;

pub use batch::{BatchFormer, BatchKey, BatchPolicy, Batchable, RequestBatch};
/// Streaming/session vocabulary appearing in the runtime's public API
/// ([`InferenceRequest::resume`], [`Ticket::progress`],
/// [`ServerHandle::register_sessions`]), re-exported so runtime clients
/// need no direct `bishop-engine`/`bishop-session` dependency.
pub use bishop_engine::{SessionState, StepEvent};
pub use bishop_session::{
    EvictionReason, SessionError, SessionId, SessionSnapshot, SessionStore, SessionStoreConfig,
    SessionStoreStats,
};
pub use cache::{CacheStats, CalibrationCache, ResultCache, ResultKey, WorkloadKey};
pub use online::{
    AdmissionStats, BreakerConfig, BreakerSnapshot, BreakerState, EngineLoadStats, OnlineConfig,
    OnlineServer, OnlineStats, Rejection, RetryPolicy, SamplerConfig, ServeError, ServeResult,
    ServerHandle, Ticket, DEFAULT_DRAIN_OPS_PER_SECOND,
};
pub use report::{
    CoreUtilization, LatencyPercentiles, ServingAggregates, ThroughputReport, WallClockStats,
};
pub use request::{default_mixed_models, mixed_trace, InferenceRequest, InferenceResponse};
pub use server::{BishopServer, RuntimeConfig, ServingOutcome};
