//! Dynamic batch formation.
//!
//! Requests are compatible when they ask for the same model, regime,
//! simulation options *and execution engine* — then their activation traces
//! can ride one Token-Time-Bundle stream on one substrate. The batch
//! dimension folds into the *timestep* axis: spiking self-attention is
//! computed independently per timestep, so `B` requests of `T` timesteps are
//! exactly one workload of `B·T` timesteps (rounded up to the bundle
//! timestep multiple `BSt`), and per-layer weight streaming plus pipeline
//! fill/drain are paid once per batch instead of once per request.

use std::collections::HashMap;
use std::sync::Arc;

use bishop_bundle::BundleShape;
use bishop_core::SimOptions;
use bishop_engine::{CatalogEntry, EngineBatch, EngineName};
use bishop_model::ModelConfig;

use crate::request::InferenceRequest;

/// Compatibility key: requests with equal keys may share a batch.
///
/// Keys embed the `Arc`-shared [`CatalogEntry`] (compared by content, so
/// separately-built but identical entries still coalesce — at the cost of
/// one refcount bump, not a `ModelConfig` clone) plus the full `SimOptions`
/// and the engine name, so new fields on any of them can never silently
/// coalesce incompatible requests.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BatchKey {
    entry: Arc<CatalogEntry>,
    regime: bishop_bundle::TrainingRegime,
    options: SimOptions,
    engine: EngineName,
    /// Exclusivity discriminator: `Some(request id)` for stateful
    /// (streaming/session) requests, whose membrane state is per-sequence
    /// and must never fold into a shared timestep axis. Distinct per
    /// request, so stateful requests always form singleton batches — even
    /// against an open compatible group.
    exclusive: Option<u64>,
}

impl From<&InferenceRequest> for BatchKey {
    fn from(request: &InferenceRequest) -> Self {
        Self {
            entry: Arc::clone(&request.entry),
            regime: request.regime,
            options: request.options,
            engine: request.engine.clone(),
            exclusive: request.stateful().then_some(request.id),
        }
    }
}

/// Items the [`BatchFormer`] can coalesce: anything wrapping (or being) an
/// [`InferenceRequest`]. The online submission path batches requests
/// *together with* their per-ticket completion channels, so the former is
/// generic over the carried item instead of hard-coding `InferenceRequest`.
pub trait Batchable {
    /// The underlying request driving compatibility and cost decisions.
    fn request(&self) -> &InferenceRequest;
}

impl Batchable for InferenceRequest {
    fn request(&self) -> &InferenceRequest {
        self
    }
}

/// Batch-former policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Maximum number of requests coalesced into one batch. `1` disables
    /// batching (every request is served alone).
    pub max_batch_size: usize,
}

impl BatchPolicy {
    /// A policy batching up to `max_batch_size` requests.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch_size` is zero.
    pub fn new(max_batch_size: usize) -> Self {
        assert!(max_batch_size > 0, "batch size must be non-zero");
        Self { max_batch_size }
    }

    /// The no-batching policy (sequential single-request serving).
    pub fn sequential() -> Self {
        Self::new(1)
    }
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self::new(8)
    }
}

/// A closed batch of compatible requests, ready for dispatch.
///
/// Generic over the carried item (see [`Batchable`]); plain traces use the
/// default `T = InferenceRequest`, the online path uses items that also
/// carry the per-ticket completion channel.
#[derive(Debug, Clone)]
pub struct RequestBatch<T = InferenceRequest> {
    /// Sequential batch identifier (assignment order = formation order).
    pub id: u64,
    /// The coalesced requests, in submission order.
    pub requests: Vec<T>,
}

impl<T: Batchable> RequestBatch<T> {
    /// Number of requests riding this batch.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the batch is empty (never true for formed batches).
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Simulation options shared by every request of the batch.
    pub fn options(&self) -> SimOptions {
        self.requests[0].request().options
    }

    /// Engine name shared by every request of the batch.
    pub fn engine(&self) -> &EngineName {
        &self.requests[0].request().engine
    }

    /// The model configuration describing the whole batch: the members'
    /// configuration with the batch folded into the timestep axis, padded up
    /// to the bundle timestep multiple `BSt` so the packed TTB stream stays
    /// aligned.
    pub fn batched_config(&self, bundle: BundleShape) -> ModelConfig {
        let base = &self.requests[0].request().entry.config;
        let folded = base.timesteps * self.len();
        let padded = folded.div_ceil(bundle.timesteps) * bundle.timesteps;
        base.clone()
            .with_name(format!("{}[x{}]", base.name, self.len()))
            .with_timesteps(padded)
    }

    /// The substrate-neutral description of this batch handed to an
    /// [`InferenceEngine`](bishop_engine::InferenceEngine).
    pub fn engine_batch(&self, bundle: BundleShape) -> EngineBatch {
        EngineBatch {
            config: self.batched_config(bundle),
            regime: self.requests[0].request().regime,
            seed: self.combined_seed(),
            options: self.options(),
            batch_size: self.len(),
            batch_id: self.id,
        }
    }

    /// Deterministic seed of the batch's combined trace, folded from the
    /// member seeds in submission order.
    pub fn combined_seed(&self) -> u64 {
        self.requests.iter().fold(0x243F6A8885A308D3, |acc, r| {
            acc.rotate_left(17) ^ r.request().seed.wrapping_mul(0x9E3779B97F4A7C15)
        })
    }

    /// Analytic estimate of the batch's dense operation count, used by the
    /// least-loaded dispatch policy. Cheap (no trace synthesis): per block,
    /// `P1 + P2 + MLP` contribute `T·N·D·(3D + D + 8·D)` accumulations and
    /// attention contributes `2·T·N²·D`.
    pub fn estimated_ops(&self, bundle: BundleShape) -> u64 {
        config_ops(&self.batched_config(bundle))
    }
}

/// Analytic dense-operation estimate of one workload configuration; shared
/// by batch-level dispatch and the admission controller's backlog estimate.
pub(crate) fn config_ops(c: &ModelConfig) -> u64 {
    let t = c.timesteps as u64;
    let n = c.tokens as u64;
    let d = c.features as u64;
    let projections = t * n * d * (3 * d + d + 2 * (c.mlp_hidden() as u64));
    let attention = 2 * t * n * n * d;
    c.blocks as u64 * (projections + attention)
}

/// Groups submitted requests into compatible batches.
///
/// The former is deliberately timing-free: batches depend only on the
/// submission *order*, never on arrival timing or worker count, so a given
/// trace always forms the same batches — the property the runtime's
/// determinism guarantee rests on.
#[derive(Debug)]
pub struct BatchFormer<T = InferenceRequest> {
    policy: BatchPolicy,
    pending: HashMap<BatchKey, Vec<T>>,
    insertion_order: Vec<BatchKey>,
    next_batch_id: u64,
    batch_id_stride: u64,
}

impl<T: Batchable> BatchFormer<T> {
    /// Creates an empty former with the given policy, assigning batch ids
    /// `0, 1, 2, …`.
    pub fn new(policy: BatchPolicy) -> Self {
        Self::with_ids(policy, 0, 1)
    }

    /// Creates an empty former assigning batch ids `first_id, first_id +
    /// stride, first_id + 2·stride, …`. The per-engine scheduling domains
    /// each run their own former with `first_id` = the domain index and
    /// `stride` = the domain count, so batch ids stay globally unique *and*
    /// deterministic (each domain's formation order is deterministic given
    /// its submission order) without any cross-domain coordination.
    pub fn with_ids(policy: BatchPolicy, first_id: u64, stride: u64) -> Self {
        Self {
            policy,
            pending: HashMap::new(),
            insertion_order: Vec::new(),
            next_batch_id: first_id,
            batch_id_stride: stride.max(1),
        }
    }

    /// Accepts one request; returns a batch if this request filled one.
    ///
    /// Closed keys are removed entirely — the former's footprint is bounded
    /// by the *open* (partially-filled) batches, never by how many distinct
    /// keys it has ever seen. That matters for the long-lived online
    /// batcher, where the key space (model × options × engine) is
    /// client-controlled.
    pub fn push(&mut self, request: T) -> Option<RequestBatch<T>> {
        self.push_capped(request, usize::MAX)
    }

    /// Like [`push`](Self::push), but closes the batch at
    /// `min(policy.max_batch_size, max_batch_size)` requests. The online
    /// batcher derives the cap from the target engine's folded-timestep
    /// limit, so coalescing can never build a batch the engine is known to
    /// refuse (each rider alone being executable).
    pub fn push_capped(&mut self, request: T, max_batch_size: usize) -> Option<RequestBatch<T>> {
        let effective = self.policy.max_batch_size.min(max_batch_size).max(1);
        let key = BatchKey::from(request.request());
        let slot = match self.pending.entry(key.clone()) {
            std::collections::hash_map::Entry::Occupied(entry) => entry.into_mut(),
            std::collections::hash_map::Entry::Vacant(entry) => {
                self.insertion_order.push(key.clone());
                entry.insert(Vec::new())
            }
        };
        slot.push(request);
        if slot.len() >= effective {
            self.close_key(&key)
        } else {
            None
        }
    }

    /// Number of requests currently pending under `key`.
    pub fn pending_count(&self, key: &BatchKey) -> usize {
        self.pending.get(key).map_or(0, Vec::len)
    }

    /// Total number of requests waiting in partially-filled batches.
    pub fn pending_requests(&self) -> usize {
        self.pending.values().map(Vec::len).sum()
    }

    /// Number of currently open (partially-filled) batches.
    pub fn open_batches(&self) -> usize {
        self.pending.len()
    }

    /// Closes the partially-filled batch pending under `key`, if any, and
    /// forgets the key. Used by the online batcher's size-*or-timeout*
    /// policy: a batch whose oldest member has waited past the timeout is
    /// closed early.
    pub fn close_key(&mut self, key: &BatchKey) -> Option<RequestBatch<T>> {
        let requests = self.pending.remove(key)?;
        self.insertion_order.retain(|k| k != key);
        if requests.is_empty() {
            None
        } else {
            Some(self.close(requests))
        }
    }

    /// Closes every partially-filled batch, in first-submission order.
    pub fn flush(&mut self) -> Vec<RequestBatch<T>> {
        let mut batches = Vec::new();
        for key in std::mem::take(&mut self.insertion_order) {
            if let Some(requests) = self.pending.remove(&key) {
                if !requests.is_empty() {
                    batches.push(self.close(requests));
                }
            }
        }
        batches
    }

    fn close(&mut self, requests: Vec<T>) -> RequestBatch<T> {
        let id = self.next_batch_id;
        self.next_batch_id += self.batch_id_stride;
        RequestBatch { id, requests }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bishop_bundle::TrainingRegime;
    use bishop_model::DatasetKind;

    fn entry(name: &str) -> Arc<CatalogEntry> {
        CatalogEntry::new(
            ModelConfig::new(name, DatasetKind::Cifar10, 1, 4, 16, 32, 2),
            TrainingRegime::Bsa,
            SimOptions::baseline(),
        )
    }

    fn request(id: u64, name: &str, seed: u64, options: SimOptions) -> InferenceRequest {
        InferenceRequest::new(id, entry(name), seed).with_options(options)
    }

    #[test]
    fn compatible_requests_coalesce_up_to_the_policy_limit() {
        let mut former = BatchFormer::new(BatchPolicy::new(3));
        assert!(former
            .push(request(0, "m", 1, SimOptions::baseline()))
            .is_none());
        assert!(former
            .push(request(1, "m", 2, SimOptions::baseline()))
            .is_none());
        let batch = former
            .push(request(2, "m", 3, SimOptions::baseline()))
            .expect("third compatible request closes the batch");
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.id, 0);
        let ids: Vec<u64> = batch.requests.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn incompatible_requests_do_not_coalesce() {
        let mut former = BatchFormer::new(BatchPolicy::new(2));
        // Different model, options, regime, engine: five distinct keys.
        assert!(former
            .push(request(0, "a", 1, SimOptions::baseline()))
            .is_none());
        assert!(former
            .push(request(1, "b", 1, SimOptions::baseline()))
            .is_none());
        assert!(former
            .push(request(2, "a", 1, SimOptions::with_ecp(6)))
            .is_none());
        let other_regime =
            request(3, "a", 1, SimOptions::baseline()).with_regime(TrainingRegime::Baseline);
        assert!(former.push(other_regime).is_none());
        let other_engine =
            request(4, "a", 1, SimOptions::baseline()).with_engine(EngineName::native());
        assert!(former.push(other_engine).is_none());
        let batches = former.flush();
        assert_eq!(batches.len(), 5, "five incompatible singleton batches");
        assert!(batches.iter().all(|b| b.len() == 1));
    }

    #[test]
    fn flush_preserves_first_submission_order() {
        let mut former = BatchFormer::new(BatchPolicy::new(8));
        former.push(request(0, "z", 1, SimOptions::baseline()));
        former.push(request(1, "a", 1, SimOptions::baseline()));
        former.push(request(2, "z", 2, SimOptions::baseline()));
        let batches = former.flush();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].requests[0].model().name, "z");
        assert_eq!(batches[0].len(), 2);
        assert_eq!(batches[1].requests[0].model().name, "a");
    }

    #[test]
    fn batched_config_folds_timesteps_with_bundle_padding() {
        let mut former = BatchFormer::new(BatchPolicy::new(3));
        former.push(request(0, "m", 1, SimOptions::baseline()));
        former.push(request(1, "m", 2, SimOptions::baseline()));
        let batch = former
            .push(request(2, "m", 3, SimOptions::baseline()))
            .unwrap();
        // 3 requests x T=4 = 12 timesteps; BSt=8 pads to 16.
        let config = batch.batched_config(BundleShape::new(8, 4));
        assert_eq!(config.timesteps, 16);
        assert_eq!(config.tokens, 16, "token axis is untouched");
        assert!(config.name.contains("[x3]"));
        // The engine-facing description carries the same fold.
        let engine_batch = batch.engine_batch(BundleShape::new(8, 4));
        assert_eq!(engine_batch.config, config);
        assert_eq!(engine_batch.batch_size, 3);
        assert_eq!(engine_batch.seed, batch.combined_seed());
    }

    #[test]
    fn combined_seed_depends_on_members_and_order() {
        let mut a = BatchFormer::new(BatchPolicy::new(2));
        a.push(request(0, "m", 1, SimOptions::baseline()));
        let ab = a.push(request(1, "m", 2, SimOptions::baseline())).unwrap();
        let mut b = BatchFormer::new(BatchPolicy::new(2));
        b.push(request(0, "m", 2, SimOptions::baseline()));
        let ba = b.push(request(1, "m", 1, SimOptions::baseline())).unwrap();
        assert_ne!(ab.combined_seed(), ba.combined_seed());

        let mut c = BatchFormer::new(BatchPolicy::new(2));
        c.push(request(5, "m", 1, SimOptions::baseline()));
        let cab = c.push(request(9, "m", 2, SimOptions::baseline())).unwrap();
        assert_eq!(
            ab.combined_seed(),
            cab.combined_seed(),
            "seed folds member seeds, not request ids"
        );
    }

    #[test]
    fn closed_keys_are_forgotten_entirely() {
        // Regression: closing a batch used to leave an empty slot (and an
        // insertion-order entry) behind per distinct key — unbounded growth
        // in a long-lived batcher whose key space clients control.
        let mut former = BatchFormer::new(BatchPolicy::new(2));
        for i in 0..100u64 {
            // 100 distinct keys via distinct ECP thresholds, two pushes each.
            former.push(request(2 * i, "m", 1, SimOptions::with_ecp(i as u32)));
            let closed = former.push(request(2 * i + 1, "m", 2, SimOptions::with_ecp(i as u32)));
            assert!(closed.is_some(), "second compatible push closes the batch");
        }
        assert_eq!(former.open_batches(), 0);
        assert_eq!(former.pending_requests(), 0);
        assert!(former.flush().is_empty());

        // Same via the explicit close path.
        former.push(request(200, "m", 1, SimOptions::baseline()));
        let key = BatchKey::from(&request(201, "m", 1, SimOptions::baseline()));
        assert!(former.close_key(&key).is_some());
        assert_eq!(former.open_batches(), 0);
    }

    #[test]
    fn close_key_forgets_client_controlled_keys_without_filling_batches() {
        // The timeout path closes batches via `close_key` long before they
        // fill. A hostile (or merely diverse) client population churning
        // through distinct keys must leave no residue behind — neither a
        // pending slot nor an insertion-order entry per retired key.
        let mut former = BatchFormer::new(BatchPolicy::new(64));
        for i in 0..500u64 {
            let singleton = request(i, "m", i, SimOptions::with_ecp(i as u32));
            let key = BatchKey::from(&singleton);
            assert!(former.push(singleton).is_none(), "far below the size cap");
            let closed = former.close_key(&key).expect("one pending request");
            assert_eq!(closed.len(), 1);
            assert_eq!(former.pending_count(&key), 0, "key {i} was not forgotten");
            assert_eq!(former.open_batches(), 0);
            assert_eq!(former.pending_requests(), 0);
        }
        // Closing an already-forgotten key is a no-op, not a phantom batch.
        let key = BatchKey::from(&request(0, "m", 0, SimOptions::with_ecp(0)));
        assert!(former.close_key(&key).is_none());
        assert!(former.flush().is_empty());
    }

    #[test]
    fn strided_ids_interleave_across_formers() {
        // Two domain formers over a 3-domain layout: ids never collide and
        // each former's sequence is deterministic.
        let mut a = BatchFormer::with_ids(BatchPolicy::new(1), 0, 3);
        let mut b = BatchFormer::with_ids(BatchPolicy::new(1), 1, 3);
        let a_ids: Vec<u64> = (0..3)
            .map(|i| {
                a.push(request(i, "m", i, SimOptions::baseline()))
                    .expect("singleton closes")
                    .id
            })
            .collect();
        let b_ids: Vec<u64> = (0..3)
            .map(|i| {
                b.push(request(i, "m", i, SimOptions::baseline()))
                    .expect("singleton closes")
                    .id
            })
            .collect();
        assert_eq!(a_ids, vec![0, 3, 6]);
        assert_eq!(b_ids, vec![1, 4, 7]);
    }

    #[test]
    fn estimated_ops_grow_with_batch_size() {
        let mut former = BatchFormer::new(BatchPolicy::new(4));
        former.push(request(0, "m", 1, SimOptions::baseline()));
        let singles = former.flush();
        let single_ops = singles[0].estimated_ops(BundleShape::default());

        let mut former = BatchFormer::new(BatchPolicy::new(4));
        let mut closed = None;
        for i in 0..4 {
            closed = former.push(request(i, "m", i, SimOptions::baseline()));
        }
        let batch = closed.expect("fourth push fills the batch");
        assert!(batch.estimated_ops(BundleShape::default()) >= 4 * single_ops);
    }
}
