//! Per-run serving statistics.

use bishop_core::RunMetrics;

use crate::cache::CacheStats;

/// Simulated latency percentiles of one serving run, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyPercentiles {
    /// Median request latency.
    pub p50: f64,
    /// 95th-percentile request latency.
    pub p95: f64,
    /// 99th-percentile request latency.
    pub p99: f64,
    /// Mean request latency.
    pub mean: f64,
    /// Worst request latency.
    pub max: f64,
}

impl LatencyPercentiles {
    /// Computes percentiles from unsorted per-request latencies. An empty
    /// slice yields the zeroed default report.
    pub fn from_latencies(latencies: &[f64]) -> Self {
        let mut sorted = latencies.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN latency"));
        let Some(&max) = sorted.last() else {
            return Self::default();
        };
        // `max(1)` before `min(len)` instead of `clamp(1, len)`: clamp
        // panics when `len == 0`, and this helper must stay total even if
        // the empty guard above is ever bypassed.
        let at = |q: f64| {
            let rank = (q * sorted.len() as f64).ceil() as usize;
            sorted[rank.max(1).min(sorted.len()) - 1]
        };
        Self {
            p50: at(0.50),
            p95: at(0.95),
            p99: at(0.99),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            max,
        }
    }
}

/// Fraction of simulated busy cycles spent in each layer group
/// (`P1`/`ATN`/`P2`/`MLP`, as in the paper's per-layer breakdown).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CoreUtilization {
    /// Q/K/V projection share.
    pub p1: f64,
    /// Spiking self-attention share.
    pub atn: f64,
    /// Attention output projection share.
    pub p2: f64,
    /// MLP share.
    pub mlp: f64,
}

impl CoreUtilization {
    /// Aggregates the group shares over a set of batch runs.
    pub fn from_runs<'a>(runs: impl Iterator<Item = &'a RunMetrics> + Clone) -> Self {
        let total: u64 = runs.clone().map(|r| r.total_cycles()).sum();
        if total == 0 {
            return Self::default();
        }
        let group = |name: &str| {
            runs.clone().map(|r| r.cycles_for_group(name)).sum::<u64>() as f64 / total as f64
        };
        Self {
            p1: group("P1"),
            atn: group("ATN"),
            p2: group("P2"),
            mlp: group("MLP"),
        }
    }
}

/// Deterministic aggregates of one serving run: every field derives from the
/// simulated batch results and the (timing-free) batch formation, so a given
/// traffic trace produces bit-identical aggregates regardless of worker
/// count or scheduling jitter.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServingAggregates {
    /// Number of requests served.
    pub requests: u64,
    /// Number of batches formed.
    pub batches: u64,
    /// Mean requests per batch.
    pub mean_batch_size: f64,
    /// Simulated per-request latency percentiles.
    pub latency: LatencyPercentiles,
    /// Total busy cycles reported by the engines across all batches. Each
    /// engine counts on its own clock, so the sum is only commensurable for
    /// single-engine traces (throughput below is derived from per-batch
    /// latencies instead, which are clock-safe).
    pub total_simulated_cycles: u64,
    /// Simulated throughput of one chip instance: requests per
    /// chip-busy-second. Multiply by the worker count for fleet throughput.
    pub simulated_requests_per_chip_second: f64,
    /// Total simulated energy in millijoules.
    pub total_energy_mj: f64,
    /// Busy-cycle share per layer group.
    pub utilization: CoreUtilization,
    /// Calibration-cache (workload synthesis) hit/miss counters accumulated
    /// during the run.
    pub cache: CacheStats,
    /// Result-cache (whole-batch simulation) hit/miss counters accumulated
    /// during the run.
    pub result_cache: CacheStats,
}

/// Wall-clock (host-side) statistics of one serving run. Unlike
/// [`ServingAggregates`] these depend on the machine, the worker count and
/// scheduling noise.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WallClockStats {
    /// Host seconds spent inside `serve`.
    pub elapsed_seconds: f64,
    /// Requests completed per host second.
    pub requests_per_second: f64,
    /// Worker threads (simulated chip instances) used.
    pub workers: usize,
}

/// The full per-run report emitted by the runtime.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ThroughputReport {
    /// Machine-independent, deterministic aggregates.
    pub aggregates: ServingAggregates,
    /// Host-side wall-clock statistics.
    pub wall: WallClockStats,
}

impl ThroughputReport {
    /// Renders the report as a compact human-readable block.
    pub fn render(&self) -> String {
        let a = &self.aggregates;
        let util = &a.utilization;
        format!(
            "requests            : {}\n\
             batches             : {} (mean size {:.2})\n\
             sim latency p50     : {:.3} ms\n\
             sim latency p95     : {:.3} ms\n\
             sim latency p99     : {:.3} ms\n\
             sim chip throughput : {:.1} req/s per chip\n\
             sim energy          : {:.3} mJ\n\
             core utilization    : P1 {:.1}% | ATN {:.1}% | P2 {:.1}% | MLP {:.1}%\n\
             calibration cache   : {} hits / {} misses ({:.0}% hit rate)\n\
             result cache        : {} hits / {} misses ({:.0}% hit rate)\n\
             wall clock          : {:.3} s, {:.1} req/s on {} workers",
            a.requests,
            a.batches,
            a.mean_batch_size,
            a.latency.p50 * 1e3,
            a.latency.p95 * 1e3,
            a.latency.p99 * 1e3,
            a.simulated_requests_per_chip_second,
            a.total_energy_mj,
            util.p1 * 100.0,
            util.atn * 100.0,
            util.p2 * 100.0,
            util.mlp * 100.0,
            a.cache.hits,
            a.cache.misses,
            a.cache.hit_rate() * 100.0,
            a.result_cache.hits,
            a.result_cache.misses,
            a.result_cache.hit_rate() * 100.0,
            self.wall.elapsed_seconds,
            self.wall.requests_per_second,
            self.wall.workers,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_uniform_ladder() {
        let latencies: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let p = LatencyPercentiles::from_latencies(&latencies);
        assert_eq!(p.p50, 50.0);
        assert_eq!(p.p95, 95.0);
        assert_eq!(p.p99, 99.0);
        assert_eq!(p.max, 100.0);
        assert!((p.mean - 50.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles_of_tiny_sets() {
        let p = LatencyPercentiles::from_latencies(&[2.0]);
        assert_eq!(p.p50, 2.0);
        assert_eq!(p.p99, 2.0);
    }

    #[test]
    fn empty_latencies_yield_a_zeroed_report_without_panicking() {
        // Regression: the percentile rank was clamped with
        // `rank.clamp(1, sorted.len())`, which panics (`min > max`) on an
        // empty latency set — e.g. a serving run that shed every request.
        let p = LatencyPercentiles::from_latencies(&[]);
        assert_eq!(p, LatencyPercentiles::default());
        assert_eq!(p.p50, 0.0);
        assert_eq!(p.max, 0.0);
    }

    #[test]
    fn render_contains_headline_numbers() {
        let report = ThroughputReport {
            aggregates: ServingAggregates {
                requests: 12,
                batches: 3,
                mean_batch_size: 4.0,
                ..ServingAggregates::default()
            },
            wall: WallClockStats {
                elapsed_seconds: 0.5,
                requests_per_second: 24.0,
                workers: 2,
            },
        };
        let text = report.render();
        assert!(text.contains("requests            : 12"));
        assert!(text.contains("mean size 4.00"));
        assert!(text.contains("2 workers"));
    }
}
