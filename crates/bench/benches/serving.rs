//! Serving-throughput benchmark: sequential single-request simulation vs
//! batched multi-worker serving on the same mixed CIFAR-10 / ImageNet-100
//! traffic trace.
//!
//! The sequential baseline is the pre-runtime status quo: a plain loop that
//! synthesizes each request's workload and simulates it, one request at a
//! time, with no batching and no caching. The batched configuration runs the
//! full runtime: Token-Time-Bundle-aligned batch formation, a multi-worker
//! pool of simulated chip instances, and the two memoization levels
//! (calibration cache + batch result cache). The headline number is
//! requests/s — batched serving must comfortably beat the baseline.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use bishop_core::{BishopConfig, BishopSimulator};
use bishop_runtime::{
    cache::synthesize, default_mixed_models, mixed_trace, BatchPolicy, BishopServer,
    InferenceRequest, RuntimeConfig,
};

const TRACE_LEN: usize = 64;
const SEED_POOL: u64 = 4;

fn trace() -> Vec<InferenceRequest> {
    mixed_trace(&default_mixed_models(), TRACE_LEN, SEED_POOL, 42)
}

/// The pre-runtime baseline: one synthesis + one simulation per request.
fn serve_sequentially(requests: &[InferenceRequest]) -> f64 {
    let simulator = BishopSimulator::new(BishopConfig::default());
    let mut total_latency = 0.0;
    for request in requests {
        let workload = synthesize(request.model(), request.regime, request.seed);
        let run = simulator.simulate(&workload, &request.options);
        total_latency += run.total_latency_seconds();
    }
    total_latency
}

fn bench_serving(c: &mut Criterion) {
    let requests = trace();
    let mut group = c.benchmark_group("serving");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    group.warm_up_time(Duration::from_millis(500));

    group.bench_function("sequential_single_request", |b| {
        b.iter(|| serve_sequentially(black_box(&requests)))
    });

    group.bench_function("batched_4workers_batch8", |b| {
        b.iter(|| {
            let server = BishopServer::new(RuntimeConfig::new(4, BatchPolicy::new(8)));
            server.serve(requests.clone())
        })
    });

    // Steady-state serving: the server (and its caches) lives across
    // iterations — the realistic deployment shape.
    let warm = BishopServer::new(RuntimeConfig::new(4, BatchPolicy::new(8)));
    group.bench_function("batched_4workers_warm_cache", |b| {
        b.iter(|| warm.serve(requests.clone()))
    });

    group.finish();

    // Print the acceptance comparison once, outside the timed region.
    let start = std::time::Instant::now();
    serve_sequentially(&requests);
    let sequential_rps = requests.len() as f64 / start.elapsed().as_secs_f64();
    let batched = BishopServer::new(RuntimeConfig::new(4, BatchPolicy::new(8))).serve(requests);
    let batched_rps = batched.report.wall.requests_per_second;
    println!(
        "serving summary: sequential {:.1} req/s | batched {:.1} req/s | {:.2}x",
        sequential_rps,
        batched_rps,
        batched_rps / sequential_rps,
    );
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
