//! Scheduling-domain A/B: mixed simulator+native traffic with and without
//! per-engine domain isolation.
//!
//! The scenario reproduces the serving stack's heterogeneity problem at the
//! runtime level: a flood of slow `native` batches (real word-parallel CPU
//! forward passes) is queued, and cheap `simulator` probes are submitted
//! open-loop (fixed spacing) *while the flood drains*. Without isolation
//! (the pre-domain topology: one shared queue and worker pool), each probe
//! waits out the remaining native backlog on its worker's FIFO —
//! head-of-line blocking measured in hundreds of milliseconds. With
//! per-engine domains the probe rides its own queue and workers and pays
//! only execution (plus, on core-starved machines, OS-level CPU
//! contention, which no queueing policy can remove).
//!
//! Results are printed and written to `BENCH_scheduler.json` at the
//! workspace root. Acceptance: isolated mixed p95 stays within 2× of the
//! solo p95 whenever the machine has enough cores for the domains to
//! actually run in parallel (> 2); on smaller machines the bar is the
//! isolation win itself (isolated mixed p95 at least 2× better than the
//! shared pool's).

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use bishop_engine::EngineName;
use bishop_model::{ComputePool, DatasetKind, ModelConfig, SpikingTransformer};
use bishop_runtime::{
    default_mixed_models, BatchPolicy, InferenceRequest, OnlineConfig, OnlineServer, RuntimeConfig,
    Ticket,
};
use bishop_spiketensor::DenseMatrix;
use rand::SeedableRng;

/// Open-loop simulator probes per phase.
const SIM_PROBES: usize = 32;
/// Spacing between probe submissions (the probe window must sit inside the
/// native flood's drain time).
const SIM_SPACING: Duration = Duration::from_millis(5);
/// Native flood size (submitted up front, drains in the background).
const NATIVE_FLOOD: usize = 96;

fn config(isolate: bool) -> OnlineConfig {
    OnlineConfig::new(RuntimeConfig::new(2, BatchPolicy::new(8)).with_queue_capacity(1024))
        .with_batch_timeout(Some(Duration::from_millis(1)))
        .with_max_pending(8192)
        .with_domain_isolation(isolate)
}

fn baseline_entry() -> Arc<bishop_engine::CatalogEntry> {
    default_mixed_models()
        .into_iter()
        .find(|e| e.options.ecp_threshold.is_none())
        .expect("cifar entry serves baseline options")
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.max(1).min(sorted.len()) - 1]
}

/// Submits `SIM_PROBES` simulator requests open-loop, `SIM_SPACING` apart
/// (each from its own thread, so a blocked probe never delays the next),
/// and returns the sorted per-request wall latencies in seconds. A fixed
/// trace seed keeps the probes result-cache-warm after the first, so the
/// latency measures *scheduling*, not simulation.
fn probe_loadgen(server: &OnlineServer, base_id: u64) -> Vec<f64> {
    let entry = baseline_entry();
    let probes: Vec<_> = (0..SIM_PROBES)
        .map(|i| {
            let handle = server.handle();
            let entry = Arc::clone(&entry);
            std::thread::spawn(move || {
                std::thread::sleep(SIM_SPACING * i as u32);
                let request = InferenceRequest::new(base_id + i as u64, entry, 7);
                let started = Instant::now();
                let ticket = loop {
                    match handle.try_submit(request.clone()) {
                        Ok(ticket) => break ticket,
                        Err(_) => std::thread::sleep(Duration::from_micros(200)),
                    }
                };
                ticket
                    .wait()
                    .expect("server answers every admitted probe")
                    .expect("simulator executes");
                started.elapsed().as_secs_f64()
            })
        })
        .collect();
    let mut latencies: Vec<f64> = probes
        .into_iter()
        .map(|p| p.join().expect("probe thread"))
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN latency"));
    latencies
}

/// One A/B arm: solo probe p50/p95, then the same probes under a co-located
/// native flood. Returns (solo_p50, solo_p95, mixed_p50, mixed_p95,
/// native_flood_seconds).
fn run_arm(isolate: bool) -> (f64, f64, f64, f64, f64) {
    let server = OnlineServer::start(config(isolate));
    let entry = baseline_entry();

    // Warm both engines (simulator result cache, native weight cache) so
    // the measured phases compare scheduling, not first-touch costs.
    let warm_sim = probe_loadgen(&server, 900_000);
    assert_eq!(warm_sim.len(), SIM_PROBES);
    let warm_native =
        InferenceRequest::new(950_000, Arc::clone(&entry), 0).with_engine(EngineName::native());
    server
        .handle()
        .try_submit(warm_native)
        .expect("admitted")
        .wait()
        .expect("resolved")
        .expect("native executes");

    let solo = probe_loadgen(&server, 0);
    let (solo_p50, solo_p95) = (percentile(&solo, 0.5), percentile(&solo, 0.95));

    // Queue the native flood, then probe while it drains.
    let handle = server.handle();
    let flood_started = Instant::now();
    let native_tickets: Vec<Ticket> = (0..NATIVE_FLOOD)
        .map(|i| {
            let request = InferenceRequest::new(100_000 + i as u64, Arc::clone(&entry), i as u64)
                .with_engine(EngineName::native());
            handle.try_submit(request).expect("flood admitted")
        })
        .collect();
    let mixed = probe_loadgen(&server, 10_000);
    let (mixed_p50, mixed_p95) = (percentile(&mixed, 0.5), percentile(&mixed, 0.95));
    for ticket in native_tickets {
        ticket
            .wait()
            .expect("native tickets resolve")
            .expect("native executes");
    }
    let native_seconds = flood_started.elapsed().as_secs_f64();
    server.shutdown();
    (solo_p50, solo_p95, mixed_p50, mixed_p95, native_seconds)
}

/// Intra-batch A/B: one large folded native batch (the worst case for a
/// sequential worker — nothing else to overlap it with) executed with the
/// compute pool off vs auto-sized. Returns
/// `(pool_width, sequential_seconds, parallel_seconds, speedup)`. The two
/// passes are asserted bit-identical first, so the speedup is never bought
/// with drift.
fn intra_batch_ab() -> (usize, f64, f64, f64) {
    // 16 folded timesteps over a CIFAR-scale two-block model: the shape a
    // batch-of-4 × T=4 fold presents to the native engine.
    let config = ModelConfig::new("intra-batch-ab", DatasetKind::Cifar10, 2, 16, 64, 128, 4);
    let mut rng = rand::rngs::StdRng::seed_from_u64(41);
    let model =
        SpikingTransformer::random(&config, config.features, config.dataset.classes(), &mut rng);
    let patches = DenseMatrix::random_uniform(config.tokens, config.features, 1.0, &mut rng);
    let pool = ComputePool::new(0);

    let sequential_result = model.infer(&patches);
    let parallel_result = model.infer_with(&patches, &pool);
    assert_eq!(
        sequential_result, parallel_result,
        "pool execution must stay bit-identical to sequential"
    );

    let median = |f: &dyn Fn()| -> f64 {
        let mut times: Vec<f64> = (0..5)
            .map(|_| {
                let start = Instant::now();
                f();
                start.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timing"));
        times[times.len() / 2]
    };
    let sequential_s = median(&|| {
        criterion::black_box(model.infer(&patches));
    });
    let parallel_s = median(&|| {
        criterion::black_box(model.infer_with(&patches, &pool));
    });
    let speedup = sequential_s / parallel_s.max(1e-12);
    (pool.width(), sequential_s, parallel_s, speedup)
}

fn bench_scheduler(c: &mut Criterion) {
    // Microbench: one deadline'd auto-dispatch round trip on a warm stack
    // (admission + autoselection + batching + execution on the engine the
    // dispatcher picks — native, since the deadline is loose).
    let server = OnlineServer::start(config(true));
    let handle = server.handle();
    let entry = baseline_entry();
    let mut group = c.benchmark_group("scheduler");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    let mut id = 0u64;
    group.bench_function("auto_dispatch_roundtrip", |b| {
        b.iter(|| {
            let request = InferenceRequest::new(id, Arc::clone(&entry), id % 4)
                .with_engine(EngineName::auto());
            id += 1;
            let ticket = handle
                .try_submit_with_deadline(request, Duration::from_secs(5))
                .expect("admitted");
            ticket.wait().expect("resolved").expect("executed");
        })
    });
    group.finish();
    server.shutdown();

    // The A/B: per-engine domains vs the shared pre-domain pool.
    let (iso_solo_p50, iso_solo_p95, iso_mixed_p50, iso_mixed_p95, iso_native_s) = run_arm(true);
    let (_, shared_solo_p95, shared_mixed_p50, shared_mixed_p95, shared_native_s) = run_arm(false);

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let blowup_isolated = iso_mixed_p95 / iso_solo_p95.max(1e-9);
    let blowup_shared = shared_mixed_p95 / shared_solo_p95.max(1e-9);
    let isolation_win = shared_mixed_p95 / iso_mixed_p95.max(1e-9);
    println!(
        "scheduler A/B ({cores} cores; simulator probe latency while a native \
         flood of {NATIVE_FLOOD} drains):"
    );
    println!(
        "  isolated domains : solo p50 {:.3} ms p95 {:.3} ms | mixed p50 {:.3} ms p95 {:.3} ms \
         ({blowup_isolated:.1}x solo p95; flood drained in {iso_native_s:.2} s)",
        iso_solo_p50 * 1e3,
        iso_solo_p95 * 1e3,
        iso_mixed_p50 * 1e3,
        iso_mixed_p95 * 1e3,
    );
    println!(
        "  shared pool      : mixed p50 {:.3} ms p95 {:.3} ms \
         ({blowup_shared:.1}x solo p95; flood drained in {shared_native_s:.2} s)",
        shared_mixed_p50 * 1e3,
        shared_mixed_p95 * 1e3,
    );
    println!("  isolation win    : shared mixed p95 / isolated mixed p95 = {isolation_win:.1}x");

    // The intra-batch story: with only one large batch in flight, domain
    // isolation can't help — fanning the batch's own timesteps across the
    // compute pool is the only parallelism left.
    let (pool_width, seq_s, par_s, intra_speedup) = intra_batch_ab();
    println!(
        "  intra-batch A/B  : single large native batch, sequential {:.1} ms vs pool({pool_width}) \
         {:.1} ms = {intra_speedup:.2}x",
        seq_s * 1e3,
        par_s * 1e3,
    );
    // Only a bar where the pool genuinely has lanes to fan across: a
    // 1-core host resolves to width 1 and inlines everything (recorded as
    // ~1.0x), which is the designed behavior, not a regression.
    if pool_width >= 4 {
        assert!(
            intra_speedup >= 2.0,
            "a width-{pool_width} compute pool must speed a single large batch \
             up by >= 2x, got {intra_speedup:.2}x"
        );
    }

    // Acceptance. With cores to run domains in parallel, co-located native
    // load may cost the simulator at most 2x its solo p95. On one or two
    // cores, queue isolation still works but CPU contention is physically
    // unavoidable — there the bar is beating the shared pool's
    // head-of-line blocking by at least 2x.
    if cores > 2 {
        assert!(
            iso_mixed_p95 <= 2.0 * iso_solo_p95,
            "isolated mixed p95 {:.3} ms exceeds 2x solo p95 {:.3} ms",
            iso_mixed_p95 * 1e3,
            iso_solo_p95 * 1e3,
        );
    } else {
        assert!(
            isolation_win >= 2.0,
            "isolated domains must beat the shared pool's mixed p95 by >= 2x, got {:.2}x \
             (isolated {:.3} ms vs shared {:.3} ms)",
            isolation_win,
            iso_mixed_p95 * 1e3,
            shared_mixed_p95 * 1e3,
        );
    }

    let json = format!(
        "{{\n  \"cores\": {cores},\n  \"native_flood_requests\": {NATIVE_FLOOD},\n  \
         \"sim_probes\": {SIM_PROBES},\n  \
         \"isolated\": {{\"solo_p50_ms\": {:.4}, \"solo_p95_ms\": {:.4}, \
         \"mixed_p50_ms\": {:.4}, \"mixed_p95_ms\": {:.4}, \"blowup_vs_solo\": {:.2}}},\n  \
         \"shared\": {{\"mixed_p50_ms\": {:.4}, \"mixed_p95_ms\": {:.4}, \
         \"blowup_vs_solo\": {:.2}}},\n  \"isolation_win_p95\": {:.2},\n  \
         \"native_intra_batch\": {{\"compute_workers\": {pool_width}, \
         \"sequential_ms\": {:.4}, \"parallel_ms\": {:.4}, \"speedup\": {:.2}}}\n}}\n",
        iso_solo_p50 * 1e3,
        iso_solo_p95 * 1e3,
        iso_mixed_p50 * 1e3,
        iso_mixed_p95 * 1e3,
        blowup_isolated,
        shared_mixed_p50 * 1e3,
        shared_mixed_p95 * 1e3,
        blowup_shared,
        isolation_win,
        seq_s * 1e3,
        par_s * 1e3,
        intra_speedup,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scheduler.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(err) => eprintln!("could not write {path}: {err}"),
    }
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
