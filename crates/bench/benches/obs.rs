//! Observability overhead A/B: the same socket-level loadgen run against
//! two serving stacks — one with the full observability surface on (the
//! default: per-request traces, stage stamps, histogram folds, trace ring,
//! plus the background sampler feeding the time-series store, SLO engine
//! and worker profiler) and one with all of it off
//! (`GatewayConfig::with_request_tracing(false)` and
//! `SamplerConfig::disabled()`).
//!
//! The acceptance bar is that full observability costs ≤ 5% throughput;
//! the measured pair is written to `BENCH_obs.json` at the workspace root.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use bishop_engine::{CalibrationCache, ResultCache};
use bishop_gateway::{Gateway, GatewayConfig};
use bishop_runtime::{BatchPolicy, OnlineConfig, OnlineServer, RuntimeConfig, SamplerConfig};

const CLIENTS: usize = 16;
const REQUESTS_PER_CLIENT: usize = 512;
/// Paired measurement reps: each runs one bare and one full-observability
/// pass back to back (alternating order) against two runtime boots that
/// share ONE calibration cache and ONE result cache — the arms differ only
/// in the observability machinery, not in memoization state. Machine
/// interference — frequency scaling, background load, scheduler placement
/// — is one-sided (it only ever *slows* a pass), so each arm's unimpeded
/// capacity is estimated by its best pass; the median of per-rep paired
/// ratios is kept alongside as a drift check. Single-core runners schedule
/// noisily enough that the best-of estimator needs this many reps to
/// converge.
const REPS: usize = 15;

/// Replay traffic (every request the same seed) so the runtime's memoization
/// absorbs simulation cost and the loadgen isolates the HTTP + admission +
/// batching path — exactly where the tracing hooks live.
fn infer_bytes(seed: u64) -> Vec<u8> {
    let _ = seed;
    let body = r#"{"model": "cifar10-serve", "seed": 0, "engine": "simulator"}"#;
    format!(
        "POST /v1/infer HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Reads one keep-alive response; returns its status code.
fn read_response(stream: &mut TcpStream, buffer: &mut Vec<u8>) -> u16 {
    buffer.clear();
    let mut chunk = [0u8; 2048];
    let (head_end, body_len) = loop {
        let n = stream.read(&mut chunk).expect("response bytes");
        assert!(n > 0, "gateway closed unexpectedly");
        buffer.extend_from_slice(&chunk[..n]);
        if let Some(end) = buffer.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = std::str::from_utf8(&buffer[..end]).expect("UTF-8 head");
            let body_len = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .map(|v| v.parse::<usize>().expect("length"))
                .unwrap_or(0);
            break (end, body_len);
        }
    };
    while buffer.len() < head_end + 4 + body_len {
        let n = stream.read(&mut chunk).expect("body bytes");
        assert!(n > 0, "gateway closed mid-body");
        buffer.extend_from_slice(&chunk[..n]);
    }
    std::str::from_utf8(&buffer[..head_end])
        .expect("head")
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code")
}

/// Fans `CLIENTS` keep-alive connections at the gateway; returns req/s.
fn loadgen(addr: SocketAddr) -> f64 {
    let start = Instant::now();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|client| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                let mut buffer = Vec::new();
                for i in 0..REQUESTS_PER_CLIENT {
                    stream
                        .write_all(&infer_bytes((client * REQUESTS_PER_CLIENT + i) as u64))
                        .expect("send");
                    assert_eq!(read_response(&mut stream, &mut buffer), 200);
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread");
    }
    (CLIENTS * REQUESTS_PER_CLIENT) as f64 / start.elapsed().as_secs_f64()
}

fn bench_obs_overhead(_c: &mut Criterion) {
    // Two runtime boots sharing ONE calibration cache and ONE result
    // cache: the bare arm turns the whole observability surface off
    // (tracing off at the gateway, no sampler thread), the full arm runs
    // the stock defaults (tracing, sampler, time-series store, SLO
    // engine, profiler). Shared caches mean both arms serve replay
    // traffic from the same memoized state, so the A/B isolates the
    // observability machinery itself.
    let online = || {
        OnlineConfig::new(RuntimeConfig::new(4, BatchPolicy::new(8)))
            .with_batch_timeout(Some(Duration::from_millis(1)))
            .with_max_pending(4096)
    };
    let calibration = Arc::new(CalibrationCache::new());
    let results = Arc::new(ResultCache::new());
    let bare_runtime = OnlineServer::with_caches(
        online().with_sampler(SamplerConfig::disabled()),
        Arc::clone(&calibration),
        Arc::clone(&results),
    );
    let full_runtime = OnlineServer::with_caches(online(), calibration, results);
    let untraced_gateway = Gateway::start(
        GatewayConfig::default().with_request_tracing(false),
        bare_runtime.handle(),
    )
    .expect("bind ephemeral port");
    let traced_gateway = Gateway::start(GatewayConfig::default(), full_runtime.handle())
        .expect("bind ephemeral port");
    let untraced_addr = untraced_gateway.local_addr();
    let traced_addr = traced_gateway.local_addr();

    // Warm-up passes: first-touch costs (calibration, memoization fill,
    // thread spawn) hit both arms identically and are excluded.
    loadgen(untraced_addr);
    loadgen(traced_addr);

    let mut ratios = Vec::new();
    let mut traced = Vec::new();
    let mut untraced = Vec::new();
    for rep in 0..REPS {
        let (off, on) = if rep % 2 == 0 {
            let off = loadgen(untraced_addr);
            (off, loadgen(traced_addr))
        } else {
            let on = loadgen(traced_addr);
            (loadgen(untraced_addr), on)
        };
        println!(
            "obs overhead rep {rep}: obs off {off:.0} req/s, on {on:.0} req/s ({:+.2}%)",
            (off - on) / off * 100.0
        );
        ratios.push(on / off);
        untraced.push(off);
        traced.push(on);
    }
    untraced_gateway.shutdown();
    traced_gateway.shutdown();
    bare_runtime.shutdown();
    full_runtime.shutdown();

    ratios.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN ratio"));
    let median_paired_pct = (1.0 - ratios[ratios.len() / 2]) * 100.0;
    let best = |xs: &[f64]| xs.iter().copied().fold(f64::MIN, f64::max);
    let (on, off) = (best(&traced), best(&untraced));
    let overhead_pct = (off - on) / off * 100.0;
    println!(
        "obs overhead A/B : obs on {on:.0} req/s vs off {off:.0} req/s best-of-{REPS} \
         ({overhead_pct:+.2}% overhead; median paired {median_paired_pct:+.2}%)"
    );

    let json = format!(
        "{{\n  \"clients\": {CLIENTS},\n  \"requests_per_client\": {REQUESTS_PER_CLIENT},\n  \
         \"reps\": {REPS},\n  \"traced_rps\": {on:.0},\n  \
         \"untraced_rps\": {off:.0},\n  \"overhead_pct\": {overhead_pct:.2},\n  \
         \"median_paired_overhead_pct\": {median_paired_pct:.2}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(err) => eprintln!("could not write {path}: {err}"),
    }
    assert!(
        overhead_pct <= 5.0,
        "full observability must cost <= 5% throughput, measured {overhead_pct:.2}%"
    );
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
