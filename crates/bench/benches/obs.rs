//! Observability overhead A/B: the same socket-level loadgen as the gateway
//! bench, run twice — once with request tracing on (the default: every
//! request gets a `TraceContext`, stage stamps, histogram folds and a trace
//! ring entry) and once with `GatewayConfig::with_request_tracing(false)`.
//!
//! The acceptance bar is that tracing costs ≤ 5% throughput; the measured
//! pair is written to `BENCH_obs.json` at the workspace root.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use bishop_gateway::{Gateway, GatewayConfig};
use bishop_runtime::{BatchPolicy, OnlineConfig, OnlineServer, RuntimeConfig};

const CLIENTS: usize = 16;
const REQUESTS_PER_CLIENT: usize = 512;
/// Paired measurement reps: each runs one tracing-off and one tracing-on
/// pass back to back (alternating order) against frontends sharing ONE
/// runtime boot. Machine interference — frequency scaling, background
/// load, scheduler placement — is one-sided (it only ever *slows* a pass),
/// so each arm's unimpeded capacity is estimated by its best pass; the
/// median of per-rep paired ratios is kept alongside as a drift check.
const REPS: usize = 9;

/// Replay traffic (every request the same seed) so the runtime's memoization
/// absorbs simulation cost and the loadgen isolates the HTTP + admission +
/// batching path — exactly where the tracing hooks live.
fn infer_bytes(seed: u64) -> Vec<u8> {
    let _ = seed;
    let body = r#"{"model": "cifar10-serve", "seed": 0, "engine": "simulator"}"#;
    format!(
        "POST /v1/infer HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Reads one keep-alive response; returns its status code.
fn read_response(stream: &mut TcpStream, buffer: &mut Vec<u8>) -> u16 {
    buffer.clear();
    let mut chunk = [0u8; 2048];
    let (head_end, body_len) = loop {
        let n = stream.read(&mut chunk).expect("response bytes");
        assert!(n > 0, "gateway closed unexpectedly");
        buffer.extend_from_slice(&chunk[..n]);
        if let Some(end) = buffer.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = std::str::from_utf8(&buffer[..end]).expect("UTF-8 head");
            let body_len = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .map(|v| v.parse::<usize>().expect("length"))
                .unwrap_or(0);
            break (end, body_len);
        }
    };
    while buffer.len() < head_end + 4 + body_len {
        let n = stream.read(&mut chunk).expect("body bytes");
        assert!(n > 0, "gateway closed mid-body");
        buffer.extend_from_slice(&chunk[..n]);
    }
    std::str::from_utf8(&buffer[..head_end])
        .expect("head")
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code")
}

/// Fans `CLIENTS` keep-alive connections at the gateway; returns req/s.
fn loadgen(addr: SocketAddr) -> f64 {
    let start = Instant::now();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|client| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                let mut buffer = Vec::new();
                for i in 0..REQUESTS_PER_CLIENT {
                    stream
                        .write_all(&infer_bytes((client * REQUESTS_PER_CLIENT + i) as u64))
                        .expect("send");
                    assert_eq!(read_response(&mut stream, &mut buffer), 200);
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread");
    }
    (CLIENTS * REQUESTS_PER_CLIENT) as f64 / start.elapsed().as_secs_f64()
}

fn bench_obs_overhead(_c: &mut Criterion) {
    // One runtime boot, two gateway frontends sharing it: the traced and
    // untraced arms differ ONLY in `with_request_tracing` — batcher threads,
    // caches and calibration state are literally the same objects, so
    // whatever throughput mode the boot settled into applies to both.
    let runtime = OnlineServer::start(
        OnlineConfig::new(RuntimeConfig::new(4, BatchPolicy::new(8)))
            .with_batch_timeout(Some(Duration::from_millis(1)))
            .with_max_pending(4096),
    );
    let untraced_gateway = Gateway::start(
        GatewayConfig::default().with_request_tracing(false),
        runtime.handle(),
    )
    .expect("bind ephemeral port");
    let traced_gateway =
        Gateway::start(GatewayConfig::default(), runtime.handle()).expect("bind ephemeral port");
    let untraced_addr = untraced_gateway.local_addr();
    let traced_addr = traced_gateway.local_addr();

    // Warm-up passes: first-touch costs (calibration, memoization fill,
    // thread spawn) hit both arms identically and are excluded.
    loadgen(untraced_addr);
    loadgen(traced_addr);

    let mut ratios = Vec::new();
    let mut traced = Vec::new();
    let mut untraced = Vec::new();
    for rep in 0..REPS {
        let (off, on) = if rep % 2 == 0 {
            let off = loadgen(untraced_addr);
            (off, loadgen(traced_addr))
        } else {
            let on = loadgen(traced_addr);
            (loadgen(untraced_addr), on)
        };
        println!(
            "obs overhead rep {rep}: tracing off {off:.0} req/s, on {on:.0} req/s ({:+.2}%)",
            (off - on) / off * 100.0
        );
        ratios.push(on / off);
        untraced.push(off);
        traced.push(on);
    }
    untraced_gateway.shutdown();
    traced_gateway.shutdown();
    runtime.shutdown();

    ratios.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN ratio"));
    let median_paired_pct = (1.0 - ratios[ratios.len() / 2]) * 100.0;
    let best = |xs: &[f64]| xs.iter().copied().fold(f64::MIN, f64::max);
    let (on, off) = (best(&traced), best(&untraced));
    let overhead_pct = (off - on) / off * 100.0;
    println!(
        "obs overhead A/B : tracing on {on:.0} req/s vs off {off:.0} req/s best-of-{REPS} \
         ({overhead_pct:+.2}% overhead; median paired {median_paired_pct:+.2}%)"
    );

    let json = format!(
        "{{\n  \"clients\": {CLIENTS},\n  \"requests_per_client\": {REQUESTS_PER_CLIENT},\n  \
         \"reps\": {REPS},\n  \"traced_rps\": {on:.0},\n  \
         \"untraced_rps\": {off:.0},\n  \"overhead_pct\": {overhead_pct:.2},\n  \
         \"median_paired_overhead_pct\": {median_paired_pct:.2}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(err) => eprintln!("could not write {path}: {err}"),
    }
    assert!(
        overhead_pct <= 5.0,
        "request tracing must cost <= 5% throughput, measured {overhead_pct:.2}%"
    );
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
