//! Streaming & session serving bench: the wins the stateful path is for.
//!
//! Two A/Bs against one booted gateway + native runtime, raw-socket clients:
//!
//! 1. **Time-to-first-event.** The same native inference submitted blocking
//!    (one JSON response after the full forward pass) and streamed
//!    (`"stream": true`, chunked NDJSON). The streamed arm's first step
//!    event must land at least 2× sooner than the blocking arm's complete
//!    response — that is the latency the per-timestep event channel buys a
//!    client that can act on partial progress.
//! 2. **Resumed continuation vs cold replay.** Finishing the second half of
//!    a horizon from a parked session's LIF membranes, versus re-running
//!    the whole horizon from scratch. The continuation re-executes only the
//!    remaining timesteps, so it must beat the cold replay.
//!
//! The measured numbers are written to `BENCH_sessions.json` at the
//! workspace root.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use bishop_bundle::TrainingRegime;
use bishop_core::SimOptions;
use bishop_gateway::{Gateway, GatewayConfig, ModelCatalog};
use bishop_model::{DatasetKind, ModelConfig};
use bishop_runtime::{BatchPolicy, OnlineConfig, OnlineServer, RuntimeConfig};

/// Big enough that the native forward pass dominates HTTP overhead; the
/// paper-scale serving models at a longer 8-timestep horizon.
const TIMESTEPS: usize = 8;
const REPS: usize = 7;

fn bench_model() -> ModelCatalog {
    ModelCatalog::serving_default().with_model(
        "session-bench",
        ModelConfig::new(
            "session-bench",
            DatasetKind::Cifar10,
            2,
            TIMESTEPS,
            64,
            128,
            4,
        ),
        TrainingRegime::Bsa,
        SimOptions::baseline(),
    )
}

fn post(body: &str) -> Vec<u8> {
    format!(
        "POST /v1/infer HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn post_path(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Sends a blocking request; returns seconds to the complete response.
fn blocking_seconds(addr: SocketAddr, body: &str) -> f64 {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let start = Instant::now();
    stream.write_all(&post(body)).expect("send");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read");
    let elapsed = start.elapsed().as_secs_f64();
    assert!(
        reply.starts_with("HTTP/1.1 200"),
        "blocking request failed: {reply}"
    );
    elapsed
}

/// Sends a streamed request; returns (seconds to the first complete step
/// event chunk, seconds to the terminating 0-chunk).
fn streamed_seconds(addr: SocketAddr, body: &str) -> (f64, f64) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let start = Instant::now();
    stream.write_all(&post(body)).expect("send");
    let mut buffer = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut first_event: Option<f64> = None;
    let total = loop {
        let n = stream.read(&mut chunk).expect("read stream");
        assert!(n > 0, "gateway closed mid-stream");
        buffer.extend_from_slice(&chunk[..n]);
        if first_event.is_none() && first_chunk_complete(&buffer) {
            first_event = Some(start.elapsed().as_secs_f64());
        }
        if buffer.windows(7).any(|w| w == b"\r\n0\r\n\r\n") {
            break start.elapsed().as_secs_f64();
        }
    };
    assert!(
        buffer.starts_with(b"HTTP/1.1 200"),
        "streamed request failed: {}",
        String::from_utf8_lossy(&buffer)
    );
    (first_event.expect("at least one event chunk"), total)
}

/// True once the buffer holds the response head plus one complete chunk
/// (size line, payload, trailing CRLF) — i.e. the first step event has
/// fully arrived.
fn first_chunk_complete(buffer: &[u8]) -> bool {
    let Some(head_end) = buffer.windows(4).position(|w| w == b"\r\n\r\n") else {
        return false;
    };
    let body = &buffer[head_end + 4..];
    let Some(line_end) = body.windows(2).position(|w| w == b"\r\n") else {
        return false;
    };
    let Ok(size_text) = std::str::from_utf8(&body[..line_end]) else {
        return false;
    };
    let Ok(size) = usize::from_str_radix(size_text.trim(), 16) else {
        return false;
    };
    size > 0 && body.len() >= line_end + 2 + size + 2
}

/// Creates a session and returns its wire id.
fn create_session(addr: SocketAddr, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(&post_path("/v1/sessions", body))
        .expect("send");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read");
    assert!(
        reply.starts_with("HTTP/1.1 200"),
        "session create failed: {reply}"
    );
    let marker = "\"id\":\"";
    let at = reply.find(marker).expect("session id in response") + marker.len();
    reply[at..]
        .split('"')
        .next()
        .expect("closing quote")
        .to_string()
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN"));
    xs[xs.len() / 2]
}

fn bench_sessions(_c: &mut Criterion) {
    let runtime = OnlineServer::start(
        OnlineConfig::new(RuntimeConfig::new(2, BatchPolicy::new(4)))
            .with_batch_timeout(Some(Duration::from_millis(1))),
    );
    let gateway = Gateway::start(
        GatewayConfig::default().with_catalog(bench_model()),
        runtime.handle(),
    )
    .expect("bind ephemeral port");
    let addr = gateway.local_addr();

    // Warm-up: first-touch weight generation and thread spawn.
    blocking_seconds(
        addr,
        r#"{"model": "session-bench", "engine": "native", "seed": 999}"#,
    );

    // --- A/B 1: streamed time-to-first-event vs blocking time-to-last ---
    let mut blocking = Vec::new();
    let mut ttfe = Vec::new();
    let mut stream_total = Vec::new();
    for rep in 0..REPS {
        let seed = rep as u64;
        blocking.push(blocking_seconds(
            addr,
            &format!(r#"{{"model": "session-bench", "engine": "native", "seed": {seed}}}"#),
        ));
        let (first, total) = streamed_seconds(
            addr,
            &format!(
                r#"{{"model": "session-bench", "engine": "native", "seed": {seed}, "stream": true}}"#
            ),
        );
        ttfe.push(first);
        stream_total.push(total);
    }
    let blocking_ms = median(&mut blocking) * 1e3;
    let ttfe_ms = median(&mut ttfe) * 1e3;
    let stream_total_ms = median(&mut stream_total) * 1e3;
    let ttfe_speedup = blocking_ms / ttfe_ms;
    println!(
        "streaming : first event {ttfe_ms:.2} ms vs blocking {blocking_ms:.2} ms \
         ({ttfe_speedup:.1}x earlier; streamed total {stream_total_ms:.2} ms)"
    );

    // --- A/B 2: resumed second half vs cold full replay ---
    let mut cold = Vec::new();
    let mut resumed = Vec::new();
    for rep in 0..REPS {
        let seed = 100 + rep as u64;
        cold.push(blocking_seconds(
            addr,
            &format!(r#"{{"model": "session-bench", "engine": "native", "seed": {seed}}}"#),
        ));
        let id = create_session(
            addr,
            &format!(r#"{{"model": "session-bench", "engine": "native", "seed": {seed}}}"#),
        );
        // Park the first half untimed; time only finishing the horizon.
        blocking_seconds(
            addr,
            &format!(
                r#"{{"model": "session-bench", "session": "{id}", "timesteps": {}}}"#,
                TIMESTEPS / 2
            ),
        );
        resumed.push(blocking_seconds(
            addr,
            &format!(r#"{{"model": "session-bench", "session": "{id}"}}"#),
        ));
    }
    let cold_ms = median(&mut cold) * 1e3;
    let resumed_ms = median(&mut resumed) * 1e3;
    let resumed_speedup = cold_ms / resumed_ms;
    println!(
        "sessions  : resume second half {resumed_ms:.2} ms vs cold replay {cold_ms:.2} ms \
         ({resumed_speedup:.2}x)"
    );

    gateway.shutdown();
    runtime.shutdown();

    let json = format!(
        "{{\n  \"model\": \"session-bench\",\n  \"timesteps\": {TIMESTEPS},\n  \
         \"reps\": {REPS},\n  \"blocking_ms\": {blocking_ms:.3},\n  \
         \"stream_first_event_ms\": {ttfe_ms:.3},\n  \
         \"stream_total_ms\": {stream_total_ms:.3},\n  \
         \"ttfe_speedup\": {ttfe_speedup:.2},\n  \"cold_replay_ms\": {cold_ms:.3},\n  \
         \"resumed_ms\": {resumed_ms:.3},\n  \
         \"resumed_speedup\": {resumed_speedup:.2}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sessions.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(err) => eprintln!("could not write {path}: {err}"),
    }
    assert!(
        ttfe_speedup >= 2.0,
        "the first streamed event must arrive >= 2x sooner than the blocking \
         response, measured {ttfe_speedup:.2}x"
    );
    assert!(
        resumed_speedup > 1.0,
        "resuming a parked session must beat cold replay, measured {resumed_speedup:.2}x"
    );
}

criterion_group!(benches, bench_sessions);
criterion_main!(benches);
