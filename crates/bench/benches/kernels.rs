//! Micro-benchmarks of the kernels underneath the simulators: bundle
//! tagging, stratification, ECP pruning, and the per-core cost models.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::SeedableRng;

use bishop_bundle::{ecp, BundleShape, EcpConfig, Stratifier, TtbTags};
use bishop_core::{AttentionCoreModel, BishopConfig, BishopSimulator, SimOptions};
use bishop_memsys::EnergyModel;
use bishop_model::workload::SyntheticTraceSpec;
use bishop_model::{DatasetKind, ModelConfig, ModelWorkload};
use bishop_spiketensor::{SpikeTraceGenerator, TensorShape, TraceProfile};

fn trace(density: f64, shape: TensorShape, seed: u64) -> bishop_spiketensor::SpikeTensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    SpikeTraceGenerator::new(TraceProfile::new(density).with_feature_spread(1.5))
        .generate(shape, &mut rng)
}

fn bench_bundle_tagging(c: &mut Criterion) {
    let tensor = trace(0.15, TensorShape::new(10, 64, 384), 1);
    let mut group = c.benchmark_group("kernel_bundle_tagging");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("tag_model1_tensor", |b| {
        b.iter(|| TtbTags::from_tensor(black_box(&tensor), BundleShape::default()))
    });
    group.finish();
}

fn bench_stratifier(c: &mut Criterion) {
    let tensor = trace(0.2, TensorShape::new(4, 196, 128), 2);
    let mut group = c.benchmark_group("kernel_stratifier");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("stratify_model3_layer", |b| {
        b.iter(|| Stratifier::new(4).stratify(black_box(&tensor), BundleShape::default()))
    });
    group.finish();
}

fn bench_ecp(c: &mut Criterion) {
    let shape = TensorShape::new(4, 196, 128);
    let q = trace(0.12, shape, 3);
    let k = trace(0.08, shape, 4);
    let v = trace(0.18, shape, 5);
    let mut group = c.benchmark_group("kernel_ecp");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("prune_model3_attention", |b| {
        b.iter(|| {
            ecp::apply(
                black_box(&q),
                black_box(&k),
                black_box(&v),
                EcpConfig::uniform(6, BundleShape::default()),
            )
        })
    });
    group.finish();
}

fn bench_attention_core_model(c: &mut Criterion) {
    let config = ModelConfig::new("bench", DatasetKind::ImageNet100, 1, 4, 96, 128, 4);
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let workload = ModelWorkload::synthetic(&config, &SyntheticTraceSpec::uniform(0.12), &mut rng);
    let layer = workload.attention_layers().next().unwrap().clone();
    let core = AttentionCoreModel::new(&BishopConfig::default());
    let energy = EnergyModel::bishop_28nm();
    let mut group = c.benchmark_group("kernel_attention_core_model");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("cost_of_one_layer", |b| {
        b.iter(|| core.process(black_box(&layer), None, &energy))
    });
    group.finish();
}

fn bench_full_simulation(c: &mut Criterion) {
    let config = ModelConfig::new("bench-sim", DatasetKind::Cifar10, 2, 4, 64, 128, 4);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let workload = ModelWorkload::synthetic(&config, &SyntheticTraceSpec::uniform(0.12), &mut rng);
    let simulator = BishopSimulator::new(BishopConfig::default());
    let mut group = c.benchmark_group("kernel_full_simulation");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("bishop_two_block_model", |b| {
        b.iter(|| simulator.simulate(black_box(&workload), &SimOptions::baseline()))
    });
    group.finish();
}

criterion_group!(
    kernels,
    bench_bundle_tagging,
    bench_stratifier,
    bench_ecp,
    bench_attention_core_model,
    bench_full_simulation,
);
criterion_main!(kernels);
