//! Micro-benchmarks of the kernels underneath the simulators: bundle
//! tagging, stratification, ECP pruning, the per-core cost models, and
//! before/after pairs (scalar reference vs word-parallel) for the spiking
//! hot-path kernels. The `perf_ratios` group re-measures each pair outside
//! criterion and writes the speedups to `BENCH_kernels.json` at the
//! workspace root so the perf trajectory is tracked across PRs.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::SeedableRng;

use bishop_bundle::{ecp, BundleShape, EcpConfig, Stratifier, TtbTags};
use bishop_core::{AttentionCoreModel, BishopConfig, BishopSimulator, SimOptions};
use bishop_memsys::EnergyModel;
use bishop_model::workload::SyntheticTraceSpec;
use bishop_model::{
    select_accumulate, select_accumulate_reference, spike_matmul, spike_matmul_reference,
    DatasetKind, ModelConfig, ModelWorkload, SpikingSelfAttention,
};
use bishop_spiketensor::words::simd;
use bishop_spiketensor::{DenseMatrix, SpikeTraceGenerator, TensorShape, TraceProfile};

fn trace(density: f64, shape: TensorShape, seed: u64) -> bishop_spiketensor::SpikeTensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    SpikeTraceGenerator::new(TraceProfile::new(density).with_feature_spread(1.5))
        .generate(shape, &mut rng)
}

/// Shapes of the before/after pairs (Model-3-like attention layer).
fn pair_shapes() -> (TensorShape, BundleShape) {
    (TensorShape::new(4, 196, 128), BundleShape::default())
}

fn bench_attention_scores_pair(c: &mut Criterion) {
    let (shape, _) = pair_shapes();
    let q = trace(0.12, shape, 31);
    let k = trace(0.08, shape, 32);
    let mut group = c.benchmark_group("kernel_attention_scores");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("scalar_reference", |b| {
        b.iter(|| SpikingSelfAttention::attention_scores_reference(black_box(&q), black_box(&k), 0))
    });
    group.bench_function("word_parallel", |b| {
        b.iter(|| SpikingSelfAttention::attention_scores(black_box(&q), black_box(&k), 0))
    });
    group.finish();
}

fn bench_spike_matmul_pair(c: &mut Criterion) {
    let (shape, _) = pair_shapes();
    let spikes = trace(0.12, shape, 33);
    let mut rng = rand::rngs::StdRng::seed_from_u64(34);
    let weight = DenseMatrix::random_uniform(shape.features, shape.features, 0.2, &mut rng);
    let mut group = c.benchmark_group("kernel_spike_matmul");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("scalar_reference", |b| {
        b.iter(|| spike_matmul_reference(black_box(&spikes), 0, black_box(&weight)))
    });
    group.bench_function("word_parallel", |b| {
        b.iter(|| spike_matmul(black_box(&spikes), 0, black_box(&weight)))
    });
    group.finish();
}

fn bench_ttb_tags_pair(c: &mut Criterion) {
    let (shape, bundle) = pair_shapes();
    let tensor = trace(0.15, shape, 35);
    let mut group = c.benchmark_group("kernel_ttb_tags");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("scalar_reference", |b| {
        b.iter(|| TtbTags::from_tensor_reference(black_box(&tensor), bundle))
    });
    group.bench_function("word_parallel", |b| {
        b.iter(|| TtbTags::from_tensor(black_box(&tensor), bundle))
    });
    group.finish();
}

/// Medians a routine's wall time over `samples` timed runs of `iters`
/// iterations each.
fn median_secs<O>(samples: usize, iters: usize, mut routine: impl FnMut() -> O) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            start.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timing"));
    times[times.len() / 2]
}

/// Re-measures the scalar/word kernel pairs and writes the speedup ratios to
/// `BENCH_kernels.json` at the workspace root. Runs as the last "benchmark"
/// so an unfiltered `cargo bench -p bishop-bench --bench kernels` always
/// refreshes the tracked numbers; a command-line filter naming another
/// benchmark skips the re-measurement (and leaves the JSON untouched), like
/// any criterion benchmark would be skipped.
fn bench_perf_ratios(_c: &mut Criterion) {
    // The vendored Criterion applies its substring filter inside
    // bench_function only, so honour the same convention here (same arg
    // parsing as Criterion::configure_from_args): skip the re-measurement
    // unless the filter matches this group's "perf_ratio" prefix.
    let mut filter = None;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bench" | "--test" => {}
            "--profile-time" => {
                args.next();
            }
            _ if arg.starts_with("--") => {
                if let Some(next) = args.peek() {
                    if !next.starts_with("--") {
                        args.next();
                    }
                }
            }
            _ => filter = Some(arg),
        }
    }
    if let Some(needle) = filter {
        if !"perf_ratio".contains(needle.as_str()) {
            return;
        }
    }
    let (shape, bundle) = pair_shapes();
    let q = trace(0.12, shape, 31);
    let k = trace(0.08, shape, 32);
    let spikes = trace(0.12, shape, 33);
    let mut rng = rand::rngs::StdRng::seed_from_u64(34);
    let weight = DenseMatrix::random_uniform(shape.features, shape.features, 0.2, &mut rng);
    let tagged = trace(0.15, shape, 35);

    let mut entries = Vec::new();
    let mut measure =
        |name: &str, iters: usize, scalar: &mut dyn FnMut(), word: &mut dyn FnMut()| {
            let scalar_s = median_secs(5, iters, &mut *scalar);
            let word_s = median_secs(5, iters * 8, &mut *word);
            let speedup = scalar_s / word_s.max(1e-12);
            println!(
                "perf_ratio/{name:<30} scalar {:.3} ms  word {:.3} ms  speedup {speedup:.1}x",
                scalar_s * 1e3,
                word_s * 1e3
            );
            entries.push(format!(
            "  \"{name}\": {{\"scalar_ns\": {:.0}, \"word_ns\": {:.0}, \"speedup\": {speedup:.2}}}",
            scalar_s * 1e9,
            word_s * 1e9
        ));
        };

    measure(
        "attention_scores",
        3,
        &mut || {
            black_box(SpikingSelfAttention::attention_scores_reference(&q, &k, 0));
        },
        &mut || {
            black_box(SpikingSelfAttention::attention_scores(&q, &k, 0));
        },
    );
    measure(
        "spike_matmul",
        3,
        &mut || {
            black_box(spike_matmul_reference(&spikes, 0, &weight));
        },
        &mut || {
            black_box(spike_matmul(&spikes, 0, &weight));
        },
    );
    measure(
        "ttb_tags",
        10,
        &mut || {
            black_box(TtbTags::from_tensor_reference(&tagged, bundle));
        },
        &mut || {
            black_box(TtbTags::from_tensor(&tagged, bundle));
        },
    );
    let v = trace(0.18, shape, 36);
    let scores = DenseMatrix::random_uniform(shape.tokens, shape.tokens, 1.0, &mut rng);
    let scale = 1.0 / shape.features as f32;
    measure(
        "sv_select_accumulate",
        3,
        &mut || {
            let mut out = DenseMatrix::zeros(shape.tokens, shape.features);
            select_accumulate_reference(&mut out, &scores, scale, &v, 0, 0, shape.features);
            black_box(out);
        },
        &mut || {
            let mut out = DenseMatrix::zeros(shape.tokens, shape.features);
            select_accumulate(&mut out, &scores, scale, &v, 0, 0, shape.features);
            black_box(out);
        },
    );

    // Record which dispatch tier produced the `word` timings, so numbers
    // from different hosts are comparable.
    let json = format!(
        "{{\n  \"shape\": \"{shape}\",\n  \"simd_tier\": \"{}\",\n{}\n}}\n",
        simd::active().tier().label(),
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(err) => eprintln!("could not write {path}: {err}"),
    }
}

fn bench_bundle_tagging(c: &mut Criterion) {
    let tensor = trace(0.15, TensorShape::new(10, 64, 384), 1);
    let mut group = c.benchmark_group("kernel_bundle_tagging");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("tag_model1_tensor", |b| {
        b.iter(|| TtbTags::from_tensor(black_box(&tensor), BundleShape::default()))
    });
    group.finish();
}

fn bench_stratifier(c: &mut Criterion) {
    let tensor = trace(0.2, TensorShape::new(4, 196, 128), 2);
    let mut group = c.benchmark_group("kernel_stratifier");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("stratify_model3_layer", |b| {
        b.iter(|| Stratifier::new(4).stratify(black_box(&tensor), BundleShape::default()))
    });
    group.finish();
}

fn bench_ecp(c: &mut Criterion) {
    let shape = TensorShape::new(4, 196, 128);
    let q = trace(0.12, shape, 3);
    let k = trace(0.08, shape, 4);
    let v = trace(0.18, shape, 5);
    let mut group = c.benchmark_group("kernel_ecp");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("prune_model3_attention", |b| {
        b.iter(|| {
            ecp::apply(
                black_box(&q),
                black_box(&k),
                black_box(&v),
                EcpConfig::uniform(6, BundleShape::default()),
            )
        })
    });
    group.finish();
}

fn bench_attention_core_model(c: &mut Criterion) {
    let config = ModelConfig::new("bench", DatasetKind::ImageNet100, 1, 4, 96, 128, 4);
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let workload = ModelWorkload::synthetic(&config, &SyntheticTraceSpec::uniform(0.12), &mut rng);
    let layer = workload.attention_layers().next().unwrap().clone();
    let core = AttentionCoreModel::new(&BishopConfig::default());
    let energy = EnergyModel::bishop_28nm();
    let mut group = c.benchmark_group("kernel_attention_core_model");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("cost_of_one_layer", |b| {
        b.iter(|| core.process(black_box(&layer), None, &energy))
    });
    group.finish();
}

fn bench_full_simulation(c: &mut Criterion) {
    let config = ModelConfig::new("bench-sim", DatasetKind::Cifar10, 2, 4, 64, 128, 4);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let workload = ModelWorkload::synthetic(&config, &SyntheticTraceSpec::uniform(0.12), &mut rng);
    let simulator = BishopSimulator::new(BishopConfig::default());
    let mut group = c.benchmark_group("kernel_full_simulation");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("bishop_two_block_model", |b| {
        b.iter(|| simulator.simulate(black_box(&workload), &SimOptions::baseline()))
    });
    group.finish();
}

criterion_group!(
    kernels,
    bench_attention_scores_pair,
    bench_spike_matmul_pair,
    bench_ttb_tags_pair,
    bench_bundle_tagging,
    bench_stratifier,
    bench_ecp,
    bench_attention_core_model,
    bench_full_simulation,
    bench_perf_ratios,
);
criterion_main!(kernels);
